// Policy comparison on one workload: runs every implemented policy (the
// paper's §1 survey — LRU, FIFO, OPT, WS, SWS, VSWS, PFF — plus CD at each
// directive-selection level) and prints the LRU and WS parameter sweeps as
// fault/memory curves.
//
// Usage: policy_comparison [--jobs N] [WORKLOAD]   (default: HWSCRT, all cores)
//
// The twelve policy runs are independent tasks over the shared immutable
// trace, and the LRU/WS sweeps go through the parallel SweepScheduler; the
// printed tables are identical at every thread count.
#include <functional>
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/damped_ws.h"
#include "src/vm/pff.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool);
  std::string name = argc > 1 ? argv[1] : "HWSCRT";
  const cdmm::Workload& workload = cdmm::FindWorkload(name);
  auto compiled = cdmm::CompiledProgram::FromSource(workload.source);
  if (!compiled.ok()) {
    std::cerr << compiled.error().ToString() << "\n";
    return 1;
  }
  const cdmm::CompiledProgram& cp = compiled.value();
  const cdmm::Trace& full = cp.trace();
  std::shared_ptr<const cdmm::Trace> refs = cp.shared_references();
  uint32_t v = full.virtual_pages();

  std::cout << "Workload " << name << ": V=" << v << " pages, R=" << refs->reference_count()
            << " references\n\n";

  cdmm::TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
  uint32_t mid = std::max<uint32_t>(v / 4, 4);
  std::vector<std::function<cdmm::SimResult()>> sims = {
      [&] { return cdmm::SimulateFixed(*refs, mid, cdmm::Replacement::kLru); },
      [&] { return cdmm::SimulateFixed(*refs, mid, cdmm::Replacement::kFifo); },
      [&] { return cdmm::SimulateFixed(*refs, mid, cdmm::Replacement::kOpt); },
      [&] { return cdmm::SimulateWs(*refs, 2000); },
      [&] {
        return cdmm::SimulateSampledWs(*refs,
                                       {.sample_interval = 2000, .window_samples = 1});
      },
      [&] {
        return cdmm::SimulateVsws(
            *refs, {.min_interval = 500, .max_interval = 4000, .fault_threshold = 8});
      },
      [&] { return cdmm::SimulatePff(*refs, 2000); },
      [&] { return cdmm::SimulateDampedWs(*refs, {.tau = 2000, .release_interval = 64}); },
      [&] { return cdmm::SimulateVmin(*refs); },  // the variable-space optimum
  };
  for (auto sel : {cdmm::DirectiveSelection::kOutermost, cdmm::DirectiveSelection::kLevelCap,
                   cdmm::DirectiveSelection::kInnermost}) {
    sims.push_back([&full, sel] {
      cdmm::CdOptions options;
      options.selection = sel;
      options.level_cap = 2;
      return cdmm::SimulateCd(full, options);
    });
  }
  for (const cdmm::SimResult& r :
       sched.Map<cdmm::SimResult>(sims.size(), [&](size_t i) { return sims[i](); })) {
    table.AddRow({r.policy, cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                  cdmm::FormatMillions(r.space_time), cdmm::StrCat(r.max_resident)});
  }
  table.Print(std::cout);

  std::cout << "\nLRU fault curve (faults vs partition size):\n";
  cdmm::TextTable lru_curve({"m", "PF", "ST x1e6"});
  auto lru = sched.Lru(refs, v);
  for (uint32_t m = 1; m <= v; m = m < 8 ? m + 1 : m * 2) {
    const cdmm::SweepPoint& p = lru[m - 1];
    lru_curve.AddRow({cdmm::StrCat(m), cdmm::StrCat(p.faults), cdmm::FormatMillions(p.space_time)});
  }
  lru_curve.Print(std::cout);

  std::cout << "\nWS fault curve (faults vs window):\n";
  cdmm::TextTable ws_curve({"tau", "PF", "mean WS", "ST x1e6"});
  for (const cdmm::SweepPoint& p :
       sched.Ws(refs, cdmm::DefaultTauGrid(refs->reference_count(), 4))) {
    ws_curve.AddRow({cdmm::StrCat(static_cast<uint64_t>(p.parameter)), cdmm::StrCat(p.faults),
                     cdmm::FormatFixed(p.mean_memory, 2), cdmm::FormatMillions(p.space_time)});
  }
  ws_curve.Print(std::cout);
  return 0;
}
