// Policy comparison on one workload: runs every implemented policy (the
// paper's §1 survey — LRU, FIFO, OPT, WS, SWS, VSWS, PFF — plus CD at each
// directive-selection level) and prints the LRU and WS parameter sweeps as
// fault/memory curves.
//
// Usage: policy_comparison [WORKLOAD]   (default: HWSCRT)
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/damped_ws.h"
#include "src/vm/pff.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "HWSCRT";
  const cdmm::Workload& workload = cdmm::FindWorkload(name);
  auto compiled = cdmm::CompiledProgram::FromSource(workload.source);
  if (!compiled.ok()) {
    std::cerr << compiled.error().ToString() << "\n";
    return 1;
  }
  const cdmm::CompiledProgram& cp = compiled.value();
  const cdmm::Trace& full = cp.trace();
  cdmm::Trace refs = full.ReferencesOnly();
  uint32_t v = full.virtual_pages();

  std::cout << "Workload " << name << ": V=" << v << " pages, R=" << refs.reference_count()
            << " references\n\n";

  cdmm::TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
  auto add = [&](const cdmm::SimResult& r) {
    table.AddRow({r.policy, cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                  cdmm::FormatMillions(r.space_time), cdmm::StrCat(r.max_resident)});
  };
  uint32_t mid = std::max<uint32_t>(v / 4, 4);
  add(cdmm::SimulateFixed(refs, mid, cdmm::Replacement::kLru));
  add(cdmm::SimulateFixed(refs, mid, cdmm::Replacement::kFifo));
  add(cdmm::SimulateFixed(refs, mid, cdmm::Replacement::kOpt));
  add(cdmm::SimulateWs(refs, 2000));
  add(cdmm::SimulateSampledWs(refs, {.sample_interval = 2000, .window_samples = 1}));
  add(cdmm::SimulateVsws(refs, {.min_interval = 500, .max_interval = 4000, .fault_threshold = 8}));
  add(cdmm::SimulatePff(refs, 2000));
  add(cdmm::SimulateDampedWs(refs, {.tau = 2000, .release_interval = 64}));
  add(cdmm::SimulateVmin(refs));  // the variable-space optimum, for reference
  for (auto sel : {cdmm::DirectiveSelection::kOutermost, cdmm::DirectiveSelection::kLevelCap,
                   cdmm::DirectiveSelection::kInnermost}) {
    cdmm::CdOptions options;
    options.selection = sel;
    options.level_cap = 2;
    add(cdmm::SimulateCd(full, options));
  }
  table.Print(std::cout);

  std::cout << "\nLRU fault curve (faults vs partition size):\n";
  cdmm::TextTable lru_curve({"m", "PF", "ST x1e6"});
  auto lru = cdmm::LruSweep(refs, v);
  for (uint32_t m = 1; m <= v; m = m < 8 ? m + 1 : m * 2) {
    const cdmm::SweepPoint& p = lru[m - 1];
    lru_curve.AddRow({cdmm::StrCat(m), cdmm::StrCat(p.faults), cdmm::FormatMillions(p.space_time)});
  }
  lru_curve.Print(std::cout);

  std::cout << "\nWS fault curve (faults vs window):\n";
  cdmm::TextTable ws_curve({"tau", "PF", "mean WS", "ST x1e6"});
  for (const cdmm::SweepPoint& p :
       cdmm::WsSweep(refs, cdmm::DefaultTauGrid(refs.reference_count(), 4))) {
    ws_curve.AddRow({cdmm::StrCat(static_cast<uint64_t>(p.parameter)), cdmm::StrCat(p.faults),
                     cdmm::FormatFixed(p.mean_memory, 2), cdmm::FormatMillions(p.space_time)});
  }
  ws_curve.Print(std::cout);
  return 0;
}
