// Multiprogramming demo (§4): a job mix shares one frame pool under the CD
// memory manager — each process's ALLOCATE directives are resolved against
// live availability per the Figure 6 flowchart, with suspension/swapping on
// ungrantable PI=1 requests — versus a static equal-partition LRU baseline.
//
// Usage: multiprogramming [TOTAL_FRAMES] [WORKLOAD...]
//        (default: 128 frames, mix HWSCRT TQL INIT)
#include <cstdlib>
#include <iostream>
#include <memory>

#include "src/cdmm/pipeline.h"
#include "src/os/multiprog.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  uint32_t frames = 128;
  std::vector<std::string> names = {"HWSCRT", "TQL", "INIT"};
  if (argc > 1) {
    frames = static_cast<uint32_t>(std::atoi(argv[1]));
    if (frames == 0) {
      std::cerr << "bad frame count '" << argv[1] << "'\n";
      return 1;
    }
  }
  if (argc > 2) {
    names.assign(argv + 2, argv + argc);
  }

  std::vector<std::unique_ptr<cdmm::CompiledProgram>> programs;
  std::vector<cdmm::OsProcessSpec> specs;
  int priority = 0;
  for (const std::string& name : names) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(name).source);
    if (!cp.ok()) {
      std::cerr << name << ": " << cp.error().ToString() << "\n";
      return 1;
    }
    programs.push_back(std::make_unique<cdmm::CompiledProgram>(std::move(cp).value()));
    // Later jobs get higher priority so the swapper has victims to consider.
    specs.push_back(cdmm::OsProcessSpec{name, &programs.back()->trace(), priority++});
  }

  cdmm::OsOptions options;
  options.total_frames = frames;

  std::cout << "Job mix {" << cdmm::Join(names, ", ") << "} on " << frames << " frames\n\n";
  for (bool use_cd : {true, false}) {
    cdmm::OsRunResult r = use_cd ? cdmm::RunMultiprogrammedCd(specs, options)
                                 : cdmm::RunEqualPartitionLru(specs, options);
    std::cout << (use_cd ? "--- CD memory manager (Figure 6)" : "--- static equal-partition LRU")
              << " ---\n";
    cdmm::TextTable table(
        {"Process", "refs", "PF", "mean frames", "finished at", "swapped", "suspended"});
    for (const cdmm::OsProcessStats& p : r.processes) {
      table.AddRow({p.name, cdmm::StrCat(p.references), cdmm::StrCat(p.faults),
                    cdmm::FormatFixed(p.mean_held, 1), cdmm::StrCat(p.finished_at),
                    cdmm::StrCat(p.swapped_out), cdmm::StrCat(p.suspensions)});
    }
    table.Print(std::cout);
    std::cout << "makespan " << r.total_time << ", total faults " << r.total_faults
              << ", mean pool use " << cdmm::FormatFixed(r.mean_pool_used, 1) << "/" << frames
              << " frames, CPU utilisation "
              << cdmm::FormatFixed(r.cpu_utilisation * 100.0, 1) << "%, swaps " << r.swaps
              << "\n\n";
  }
  return 0;
}
