// Multiprogramming demo (§4): a job mix shares one frame pool under the CD
// memory manager — each process's ALLOCATE directives are resolved against
// live availability per the Figure 6 flowchart, with suspension/swapping on
// ungrantable PI=1 requests — versus a static equal-partition LRU baseline.
//
// Usage: multiprogramming [--jobs N] [TOTAL_FRAMES] [WORKLOAD...]
//        (default: 128 frames, mix HWSCRT TQL INIT, all cores)
//
// The job mix compiles concurrently and the two managers (CD, eq-LRU) run as
// parallel tasks over the same immutable traces; sections print in the fixed
// CD-then-LRU order.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/os/multiprog.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool);
  uint32_t frames = 128;
  std::vector<std::string> names = {"HWSCRT", "TQL", "INIT"};
  if (argc > 1) {
    frames = static_cast<uint32_t>(std::atoi(argv[1]));
    if (frames == 0) {
      std::cerr << "bad frame count '" << argv[1] << "'\n";
      return 1;
    }
  }
  if (argc > 2) {
    names.assign(argv + 2, argv + argc);
  }

  std::vector<std::shared_ptr<const cdmm::Trace>> traces = sched.Map<
      std::shared_ptr<const cdmm::Trace>>(names.size(), [&](size_t i) {
    auto cp = cdmm::CompiledProgram::FromSource(cdmm::FindWorkload(names[i]).source);
    if (!cp.ok()) {
      std::cerr << names[i] << ": " << cp.error().ToString() << "\n";
      return std::shared_ptr<const cdmm::Trace>();
    }
    return cp.value().shared_trace();
  });
  std::vector<cdmm::OsProcessSpec> specs;
  int priority = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    if (traces[i] == nullptr) {
      return 1;
    }
    // Later jobs get higher priority so the swapper has victims to consider.
    specs.push_back(cdmm::OsProcessSpec{names[i], traces[i].get(), priority++});
  }

  cdmm::OsOptions options;
  options.total_frames = frames;

  std::cout << "Job mix {" << cdmm::Join(names, ", ") << "} on " << frames << " frames\n\n";
  std::vector<std::string> errors(2);
  std::vector<std::string> sections = sched.Map<std::string>(2, [&](size_t i) {
    bool use_cd = i == 0;
    cdmm::Result<cdmm::OsRunResult> run =
        use_cd ? cdmm::RunMultiprogrammedCd(specs, options)
               : cdmm::RunEqualPartitionLru(specs, options);
    if (!run.ok()) {
      errors[i] = run.error().ToString();  // each task owns its own slot
      return std::string();
    }
    const cdmm::OsRunResult& r = run.value();
    std::ostringstream out;
    out << (use_cd ? "--- CD memory manager (Figure 6)" : "--- static equal-partition LRU")
        << " ---\n";
    cdmm::TextTable table(
        {"Process", "refs", "PF", "mean frames", "finished at", "swapped", "suspended"});
    for (const cdmm::OsProcessStats& p : r.processes) {
      table.AddRow({p.name, cdmm::StrCat(p.references), cdmm::StrCat(p.faults),
                    cdmm::FormatFixed(p.mean_held, 1), cdmm::StrCat(p.finished_at),
                    cdmm::StrCat(p.swapped_out), cdmm::StrCat(p.suspensions)});
    }
    table.Print(out);
    out << "makespan " << r.total_time << ", total faults " << r.total_faults
        << ", mean pool use " << cdmm::FormatFixed(r.mean_pool_used, 1) << "/" << frames
        << " frames, CPU utilisation "
        << cdmm::FormatFixed(r.cpu_utilisation * 100.0, 1) << "%, swaps " << r.swaps
        << "\n\n";
    return out.str();
  });
  for (const std::string& e : errors) {
    if (!e.empty()) {
      std::cerr << "error: " << e << "\n";
      return 1;
    }
  }
  for (const std::string& s : sections) {
    std::cout << s;
  }
  return 0;
}
