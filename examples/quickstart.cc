// Quickstart: the full CDMM pipeline on the paper's Figure 5 example.
//
//   source → parse/check → loop tree (Procedure 1 priority indexes)
//          → locality analysis (§2) → ALLOCATE/LOCK/UNLOCK insertion
//          (Algorithms 1 & 2) → reference trace → policy simulation.
//
// Prints the hierarchical locality report (Figure 1 style), the instrumented
// listing (Figure 5c style), and a CD vs LRU vs WS comparison. The five
// policy simulations run as parallel tasks over the shared trace (--jobs N,
// default all cores); rows print in the fixed policy order regardless.
#include <functional>
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/working_set.h"

namespace {

// A program shaped like the paper's Figure 5a: vectors referenced at several
// nest levels, a row-wise matrix (CC) and a column-wise matrix (DD).
constexpr char kFigure5[] = R"(
      PROGRAM FIG5
      PARAMETER (N = 100)
      DIMENSION A(N), B(N), C(N), D(N), E(N), F(N), CC(N,N), DD(N,N)
      DO 40 I = 1, N
        A(I) = B(I) + 1.0
        DO 20 J = 1, N
          C(J) = D(J) + CC(I,J)
          DD(J,I) = C(J)
   20   CONTINUE
        E(1) = F(1)
        DO 30 K = 1, N
          E(K) = F(K) * 2.0
          DO 10 L = 1, N
            F(L) = F(L) + E(K)
   10     CONTINUE
   30   CONTINUE
   40 CONTINUE
      END
)";

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool);
  auto compiled = cdmm::CompiledProgram::FromSource(kFigure5);
  if (!compiled.ok()) {
    std::cerr << "compile error: " << compiled.error().ToString() << "\n";
    return 1;
  }
  const cdmm::CompiledProgram& cp = compiled.value();

  std::cout << "=== Source (round-tripped through the parser) ===\n"
            << ProgramToString(cp.program()) << "\n";

  std::cout << "=== Locality analysis (paper §2) ===\n" << cp.locality().Report() << "\n";

  std::cout << "=== Instrumented program (paper Figure 5c) ===\n"
            << cp.Listing(/*compact=*/true) << "\n";

  const cdmm::Trace& trace = cp.trace();
  std::cout << "=== Trace ===\nR = " << trace.reference_count() << " references, V = "
            << trace.virtual_pages() << " pages, " << trace.directives().size()
            << " directives executed\n\n";

  std::cout << "=== Policies (fault service = 2000 references) ===\n";
  cdmm::TextTable table({"Policy", "PF", "MEM", "ST x1e6"});
  std::shared_ptr<const cdmm::Trace> refs = cp.shared_references();
  const std::vector<std::function<cdmm::SimResult()>> sims = {
      [&] {
        cdmm::CdOptions outer;
        outer.selection = cdmm::DirectiveSelection::kOutermost;
        return cdmm::SimulateCd(trace, outer);
      },
      [&] {
        cdmm::CdOptions inner;
        inner.selection = cdmm::DirectiveSelection::kInnermost;
        return cdmm::SimulateCd(trace, inner);
      },
      [&] { return cdmm::SimulateFixed(*refs, 8, cdmm::Replacement::kLru); },
      [&] { return cdmm::SimulateFixed(*refs, 8, cdmm::Replacement::kOpt); },
      [&] { return cdmm::SimulateWs(*refs, 1000); },
  };
  for (const cdmm::SimResult& r :
       sched.Map<cdmm::SimResult>(sims.size(), [&](size_t i) { return sims[i](); })) {
    table.AddRow({r.policy, cdmm::StrCat(r.faults), cdmm::FormatFixed(r.mean_memory, 2),
                  cdmm::FormatMillions(r.space_time)});
  }
  table.Print(std::cout);
  return 0;
}
