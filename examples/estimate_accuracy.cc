// Estimate-accuracy survey: for every built-in workload, compares the
// compile-time locality sizes (the ALLOCATE X arguments of §2) with measured
// per-execution page sets from the generated traces — is X a valid upper
// bound on the re-referenced locality, and how tight is it?
//
// Usage: estimate_accuracy [WORKLOAD]
#include <iostream>

#include "src/cdmm/pipeline.h"
#include "src/cdmm/validation.h"
#include "src/support/str.h"
#include "src/workloads/workloads.h"

namespace {

int Survey(const cdmm::Workload& w) {
  auto cp = cdmm::CompiledProgram::FromSource(w.source);
  if (!cp.ok()) {
    std::cerr << w.name << ": " << cp.error().ToString() << "\n";
    return 1;
  }
  auto rows = cdmm::ValidateLocalityEstimates(cp.value());
  std::cout << cdmm::ValidationReport(w.name, rows);
  int inadequate = 0;
  double overshoot_sum = 0.0;
  int overshoot_count = 0;
  for (const auto& v : rows) {
    inadequate += v.adequate() ? 0 : 1;
    if (v.max_rereferenced > 0) {
      overshoot_sum +=
          static_cast<double>(v.estimated_pages) / static_cast<double>(v.max_rereferenced);
      ++overshoot_count;
    }
  }
  std::cout << "  summary: " << rows.size() - static_cast<size_t>(inadequate) << "/" << rows.size()
            << " loops adequately covered";
  if (overshoot_count > 0) {
    std::cout << ", mean X / measured-locality ratio "
              << cdmm::FormatFixed(overshoot_sum / overshoot_count, 2);
  }
  std::cout << "\n\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    return Survey(cdmm::FindWorkload(argv[1]));
  }
  for (const cdmm::Workload& w : cdmm::AllWorkloads()) {
    if (int rc = Survey(w); rc != 0) {
      return rc;
    }
  }
  return 0;
}
