// Estimate-accuracy survey: for every built-in workload, compares the
// compile-time locality sizes (the ALLOCATE X arguments of §2) with measured
// per-execution page sets from the generated traces — is X a valid upper
// bound on the re-referenced locality, and how tight is it?
//
// Usage: estimate_accuracy [--jobs N] [WORKLOAD]
//
// In survey mode the workloads compile and validate concurrently over the
// --jobs pool; each report is buffered and printed in workload order.
#include <iostream>
#include <sstream>

#include "src/cdmm/pipeline.h"
#include "src/cdmm/validation.h"
#include "src/exec/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/workloads/workloads.h"

namespace {

struct SurveyResult {
  int rc = 0;
  std::string out;
  std::string err;
};

SurveyResult Survey(const cdmm::Workload& w) {
  SurveyResult result;
  auto cp = cdmm::CompiledProgram::FromSource(w.source);
  if (!cp.ok()) {
    result.rc = 1;
    result.err = cdmm::StrCat(w.name, ": ", cp.error().ToString(), "\n");
    return result;
  }
  auto rows = cdmm::ValidateLocalityEstimates(cp.value());
  std::ostringstream out;
  out << cdmm::ValidationReport(w.name, rows);
  int inadequate = 0;
  double overshoot_sum = 0.0;
  int overshoot_count = 0;
  for (const auto& v : rows) {
    inadequate += v.adequate() ? 0 : 1;
    if (v.max_rereferenced > 0) {
      overshoot_sum +=
          static_cast<double>(v.estimated_pages) / static_cast<double>(v.max_rereferenced);
      ++overshoot_count;
    }
  }
  out << "  summary: " << rows.size() - static_cast<size_t>(inadequate) << "/" << rows.size()
      << " loops adequately covered";
  if (overshoot_count > 0) {
    out << ", mean X / measured-locality ratio "
        << cdmm::FormatFixed(overshoot_sum / overshoot_count, 2);
  }
  out << "\n\n";
  result.out = out.str();
  return result;
}

int Emit(const SurveyResult& r) {
  std::cout << r.out;
  std::cerr << r.err;
  return r.rc;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  if (argc > 1) {
    return Emit(Survey(cdmm::FindWorkload(argv[1])));
  }
  cdmm::ThreadPool pool(jobs);
  cdmm::SweepScheduler sched(&pool);
  const std::vector<cdmm::Workload>& all = cdmm::AllWorkloads();
  std::vector<SurveyResult> results = sched.Map<SurveyResult>(
      all.size(), [&](size_t i) { return Survey(all[i]); });
  for (const SurveyResult& r : results) {
    if (int rc = Emit(r); rc != 0) {
      return rc;
    }
  }
  return 0;
}
