// Locality explorer: prints the loop-nest structure, Procedure-1 priority
// indexes (paper Figure 2), the per-loop locality estimates (§2) and the
// instrumented listing (Figure 5c style) for a built-in workload or a
// mini-FORTRAN file.
//
// Usage:
//   locality_explorer                 # explore every built-in workload
//   locality_explorer CONDUCT         # one built-in workload
//   locality_explorer path/to/f.f     # a mini-FORTRAN source file
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/cdmm/pipeline.h"
#include "src/workloads/workloads.h"

namespace {

int Explore(const std::string& label, const std::string& source) {
  auto compiled = cdmm::CompiledProgram::FromSource(source);
  if (!compiled.ok()) {
    std::cerr << label << ": compile error: " << compiled.error().ToString() << "\n";
    return 1;
  }
  const cdmm::CompiledProgram& cp = compiled.value();
  std::cout << "==================================================================\n"
            << cp.locality().Report() << "\nInstrumented skeleton:\n"
            << cp.Listing(/*compact=*/true) << "\n";
  return 0;
}

bool IsBuiltin(const std::string& name) {
  for (const cdmm::Workload& w : cdmm::AllWorkloads()) {
    if (w.name == name) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    for (const cdmm::Workload& w : cdmm::AllWorkloads()) {
      std::cout << "\n### " << w.name << " — " << w.description << "\n";
      if (int rc = Explore(w.name, w.source); rc != 0) {
        return rc;
      }
    }
    return 0;
  }
  std::string arg = argv[1];
  if (IsBuiltin(arg)) {
    const cdmm::Workload& w = cdmm::FindWorkload(arg);
    std::cout << "### " << w.name << " — " << w.description << "\n";
    return Explore(w.name, w.source);
  }
  std::ifstream file(arg);
  if (!file) {
    std::cerr << "cannot open " << arg << " (and it is not a built-in workload name)\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Explore(arg, buffer.str());
}
