// Locality explorer: prints the loop-nest structure, Procedure-1 priority
// indexes (paper Figure 2), the per-loop locality estimates (§2) and the
// instrumented listing (Figure 5c style) for a built-in workload or a
// mini-FORTRAN file.
//
// Usage:
//   locality_explorer                 # explore every built-in workload
//   locality_explorer CONDUCT         # one built-in workload
//   locality_explorer path/to/f.f     # a mini-FORTRAN source file
//   locality_explorer --jobs N        # explore-all compiles on N threads
//
// Explore-all mode compiles the workloads concurrently; sections buffer and
// print in workload order.
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/workloads/workloads.h"

namespace {

struct Section {
  int rc = 0;
  std::string out;
  std::string err;
};

Section Explore(const std::string& label, const std::string& source) {
  Section section;
  auto compiled = cdmm::CompiledProgram::FromSource(source);
  if (!compiled.ok()) {
    section.rc = 1;
    section.err = label + ": compile error: " + compiled.error().ToString() + "\n";
    return section;
  }
  const cdmm::CompiledProgram& cp = compiled.value();
  std::ostringstream out;
  out << "==================================================================\n"
      << cp.locality().Report() << "\nInstrumented skeleton:\n"
      << cp.Listing(/*compact=*/true) << "\n";
  section.out = out.str();
  return section;
}

int Emit(const Section& s) {
  std::cout << s.out;
  std::cerr << s.err;
  return s.rc;
}

bool IsBuiltin(const std::string& name) {
  for (const cdmm::Workload& w : cdmm::AllWorkloads()) {
    if (w.name == name) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);
  if (argc < 2) {
    cdmm::ThreadPool pool(jobs);
    cdmm::SweepScheduler sched(&pool);
    const std::vector<cdmm::Workload>& all = cdmm::AllWorkloads();
    std::vector<Section> sections = sched.Map<Section>(all.size(), [&](size_t i) {
      Section s = Explore(all[i].name, all[i].source);
      s.out = "\n### " + std::string(all[i].name) + " — " + all[i].description + "\n" + s.out;
      return s;
    });
    for (const Section& s : sections) {
      if (int rc = Emit(s); rc != 0) {
        return rc;
      }
    }
    return 0;
  }
  std::string arg = argv[1];
  if (IsBuiltin(arg)) {
    const cdmm::Workload& w = cdmm::FindWorkload(arg);
    std::cout << "### " << w.name << " — " << w.description << "\n";
    return Emit(Explore(w.name, w.source));
  }
  std::ifstream file(arg);
  if (!file) {
    std::cerr << "cannot open " << arg << " (and it is not a built-in workload name)\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Emit(Explore(arg, buffer.str()));
}
