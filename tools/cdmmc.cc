// cdmmc entry point. The full driver lives in src/cli so its exit-code
// contract (0 ok, 1 input error, 2 usage error, 3 partial results) is
// covered by in-process tests; see src/cli/cli.cc for the usage text.
#include <iostream>

#include "src/cli/cli.h"

int main(int argc, char** argv) {
  return cdmm::CdmmcMain(argc, argv, std::cout, std::cerr);
}
