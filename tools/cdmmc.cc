// cdmmc — the CDMM compiler/simulator driver.
//
// Compiles a mini-FORTRAN program (a file, or `builtin:NAME` for one of the
// paper's nine workloads), optionally prints the locality report and the
// instrumented listing, writes the directive-bearing reference trace, and
// simulates any of the implemented policies on it.
//
// Usage:
//   cdmmc [options] <source.f | builtin:NAME>
//
// Options:
//   --report               print the §2 locality analysis report
//   --listing              print the instrumented skeleton (Figure 5c style)
//   --listing-full         ... with the statements included
//   --source               print the round-tripped source
//   --trace-out FILE       write the generated trace to FILE
//   --trace-format FMT     text (default) or binary
//   --trace-in FILE        skip compilation: simulate a stored trace (either
//                          format; cd-* specs need a directive-bearing trace)
//   --simulate SPEC        run a policy (repeatable). SPEC is one of:
//                            cd-outer | cd-inner | cd-cap:N | cd-avail:FRAMES
//                            lru:M | fifo:M | opt:M | ws:TAU | sws:SIGMA
//                            vsws | pff:T | dws:TAU | vmin
//   --jobs N               simulate the --simulate specs on N threads
//                          (default: all cores; results print in spec order)
//   --page-size BYTES      page size (default 256)
//   --element-size BYTES   array element size (default 4)
//   --fault-service N      fault service time in references (default 2000)
//   --min-pages N          system-default minimum allocation (default 1)
//   --no-locks             do not insert LOCK/UNLOCK directives
//   --no-allocate          do not insert ALLOCATE directives
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/exec/sweep_scheduler.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/trace/trace_io.h"
#include "src/vm/policy_spec.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

struct CliOptions {
  std::string input;
  std::string trace_in;
  bool binary_format = false;
  bool report = false;
  bool listing = false;
  bool listing_full = false;
  bool source = false;
  std::string trace_out;
  std::vector<std::string> simulate;
  PipelineOptions pipeline;
  SimOptions sim;
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--report] [--listing|--listing-full] [--source]\n"
               "            [--trace-out FILE] [--trace-format text|binary]\n"
               "            [--trace-in FILE] [--simulate SPEC]...\n"
               "            [--page-size N] [--element-size N] [--fault-service N]\n"
               "            [--min-pages N] [--no-locks] [--no-allocate] [--jobs N]\n"
               "            <source.f | builtin:NAME>\n"
               "builtins: MAIN FDJAC TQL FIELD INIT APPROX HYBRJ CONDUCT HWSCRT\n"
               "policy specs: cd-outer cd-inner cd-cap:N cd-avail:FRAMES lru:M fifo:M\n"
               "              opt:M ws:TAU sws:SIGMA vsws pff:T dws:TAU vmin\n";
  return 2;
}

// Runs every --simulate spec as a task over the pool (all reading the shared
// immutable traces) and appends the results to `table` in spec order. On an
// unknown spec the table rows for the valid specs are still produced, but the
// error wins: prints the known forms and returns false.
bool RunPolicies(const std::vector<std::string>& specs, const Trace& full, const Trace& refs,
                 const SimOptions& sim, const SweepScheduler& sched, TextTable* table) {
  std::vector<std::optional<SimResult>> results = sched.Map<std::optional<SimResult>>(
      specs.size(), [&](size_t i) { return RunPolicySpec(specs[i], full, refs, sim); });
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!results[i].has_value()) {
      std::cerr << "unknown policy spec '" << specs[i] << "'; known forms:\n";
      for (const std::string& known : KnownPolicySpecs()) {
        std::cerr << "  " << known << "\n";
      }
      return false;
    }
    const SimResult& r = *results[i];
    table->AddRow({r.policy, StrCat(r.faults), FormatFixed(r.mean_memory, 2),
                   FormatMillions(r.space_time), StrCat(r.max_resident)});
  }
  return true;
}

// Simulation over a stored trace, bypassing the compiler.
int RunFromTrace(const CliOptions& cli, const SweepScheduler& sched) {
  std::ifstream in(cli.trace_in, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << cli.trace_in << "\n";
    return 1;
  }
  auto parsed = ReadAnyTrace(in);
  if (!parsed.ok()) {
    std::cerr << cli.trace_in << ": " << parsed.error().ToString() << "\n";
    return 1;
  }
  const Trace& full = parsed.value();
  Trace refs = full.ReferencesOnly();
  std::cout << "trace " << full.name() << ": R=" << refs.reference_count() << " references, V="
            << full.virtual_pages() << " pages, " << full.directives().size() << " directives\n";
  TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
  if (!RunPolicies(cli.simulate, full, refs, cli.sim, sched, &table)) {
    return 2;
  }
  if (!cli.simulate.empty()) {
    table.Print(std::cout);
  }
  return 0;
}

int Run(const CliOptions& cli, const SweepScheduler& sched) {
  std::string text;
  if (cli.input.rfind("builtin:", 0) == 0) {
    text = FindWorkload(cli.input.substr(8)).source;
  } else {
    std::ifstream file(cli.input);
    if (!file) {
      std::cerr << "cannot open " << cli.input << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  auto compiled = CompiledProgram::FromSource(text, cli.pipeline);
  if (!compiled.ok()) {
    std::cerr << cli.input << ": " << compiled.error().ToString() << "\n";
    return 1;
  }
  const CompiledProgram& cp = compiled.value();

  if (cli.source) {
    std::cout << ProgramToString(cp.program());
  }
  if (cli.report) {
    std::cout << cp.locality().Report();
  }
  if (cli.listing || cli.listing_full) {
    std::cout << cp.Listing(/*compact=*/!cli.listing_full);
  }
  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << cli.trace_out << "\n";
      return 1;
    }
    if (cli.binary_format) {
      WriteTraceBinary(cp.trace(), out);
    } else {
      WriteTrace(cp.trace(), out);
    }
    std::cout << "wrote " << cp.trace().reference_count() << " references to " << cli.trace_out
              << (cli.binary_format ? " (binary)" : " (text)") << "\n";
  }
  if (!cli.simulate.empty()) {
    std::shared_ptr<const Trace> full = cp.shared_trace();
    std::shared_ptr<const Trace> refs = cp.shared_references();
    std::cout << "R=" << refs->reference_count() << " references, V=" << refs->virtual_pages()
              << " pages, fault service " << cli.sim.fault_service_time << "\n";
    TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
    if (!RunPolicies(cli.simulate, *full, *refs, cli.sim, sched, &table)) {
      return 2;
    }
    table.Print(std::cout);
  }
  return 0;
}

int Main(int argc, char** argv) {
  unsigned jobs = ParseJobsFlag(&argc, argv);
  ThreadPool pool(jobs);
  SweepScheduler sched(&pool);
  CliOptions cli;
  cli.pipeline.locality.min_default_pages = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--report") {
      cli.report = true;
    } else if (arg == "--listing") {
      cli.listing = true;
    } else if (arg == "--listing-full") {
      cli.listing_full = true;
    } else if (arg == "--source") {
      cli.source = true;
    } else if (arg == "--trace-out") {
      cli.trace_out = next();
    } else if (arg == "--trace-in") {
      cli.trace_in = next();
    } else if (arg == "--trace-format") {
      std::string fmt = next();
      if (fmt != "text" && fmt != "binary") {
        std::cerr << "bad --trace-format '" << fmt << "'\n";
        return Usage(argv[0]);
      }
      cli.binary_format = fmt == "binary";
    } else if (arg == "--simulate") {
      cli.simulate.push_back(next());
    } else if (arg == "--page-size") {
      cli.pipeline.locality.geometry.page_size_bytes =
          static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--element-size") {
      cli.pipeline.locality.geometry.element_size_bytes =
          static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--fault-service") {
      cli.sim.fault_service_time = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--min-pages") {
      cli.pipeline.locality.min_default_pages = std::atoi(next());
    } else if (arg == "--no-locks") {
      cli.pipeline.directives.insert_locks = false;
    } else if (arg == "--no-allocate") {
      cli.pipeline.directives.insert_allocate = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return Usage(argv[0]);
    } else if (cli.input.empty()) {
      cli.input = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!cli.trace_in.empty()) {
    return RunFromTrace(cli, sched);
  }
  if (cli.input.empty()) {
    return Usage(argv[0]);
  }
  return Run(cli, sched);
}

}  // namespace
}  // namespace cdmm

int main(int argc, char** argv) { return cdmm::Main(argc, argv); }
