// cdmm-lint entry point; the driver lives in src/cli/lint_cli.cc so the exit
// contract is testable in-process.
#include <iostream>

#include "src/cli/lint_cli.h"

int main(int argc, char** argv) { return cdmm::LintMain(argc, argv, std::cout, std::cerr); }
