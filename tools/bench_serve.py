#!/usr/bin/env python3
"""Chaos-soak gate for the cdmm-serve engine.

Runs bench_serve three ways and enforces the PR's robustness acceptance
criteria:

  1. determinism: `--deterministic-only` output is byte-identical at
     --jobs 1, 4 and 8 (statuses, retries, breaker transitions and the
     response fingerprint are pure functions of the seed);
  2. resilience: the soak sheds under overload instead of crashing
     (shed > 0), survives injected faults with retries (retries > 0),
     opens at least one circuit breaker, and the recovery phase is clean
     (no sheds, no failures);
  3. throughput: the cached path sustains at least --min-rps requests/s
     (default 10000) with its p99 recorded.

Writes the full document (deterministic + runtime sections) to --out.
When --baseline is given, the deterministic section must equal the
baseline's — the cross-machine replay gate CI applies to the committed
BENCH_serve.json.

Usage:
  bench_serve.py --bench build/bench/bench_serve [--seed 7]
                 [--min-rps 10000] [--out BENCH_serve.json]
                 [--baseline BENCH_serve.json]

Exit: 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import sys

import bench_gate

run = bench_gate.run_checked


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench", required=True)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-rps", type=float, default=10000.0)
    parser.add_argument("--out", default=None)
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args()

    gates = bench_gate.Gate()
    gate = gates.check

    # 1. Determinism across thread counts.
    outputs = {}
    for jobs in (1, 4, 8):
        outputs[jobs] = run([args.bench, "--jobs", str(jobs), "--seed",
                             str(args.seed), "--deterministic-only"])
    gate(outputs[1] == outputs[4] == outputs[8],
         "deterministic soak is byte-identical at --jobs 1/4/8")

    # 2. Full soak with the runtime section.
    doc = json.loads(run([args.bench, "--jobs", "4", "--seed", str(args.seed)]))
    det = doc["deterministic"]
    phases = {p["phase"]: p for p in det["phases"]}

    gate(json.dumps(det, sort_keys=True) ==
         json.dumps(json.loads(outputs[4]), sort_keys=True),
         "full run's deterministic section matches the replay")
    gate(phases["overload"]["shed"] > 0, "overload phase sheds load")
    gate(phases["overload"]["received"] ==
         phases["overload"]["completed"] + phases["overload"]["shed"]
         + phases["overload"]["quarantined"] + phases["overload"]["timeouts"]
         + phases["overload"]["poisoned"] + phases["overload"]["errors"],
         "every overload request got a structured answer")
    soak = {k: sum(p[k] for p in det["phases"]) for k in
            ("retries", "breaker_opens", "timeouts", "poisoned")}
    gate(soak["retries"] > 0, "injected transient faults were retried")
    gate(soak["breaker_opens"] > 0, "a poisoning shape opened its breaker")
    recovery = phases["recovery"]
    gate(recovery["shed"] == 0 and recovery["errors"] == 0
         and recovery["timeouts"] == 0 and recovery["poisoned"] == 0,
         "recovery phase is back to nominal inside the soak window")

    runtime = doc["runtime"]
    rps = float(runtime["cached_rps"])
    gate(rps >= args.min_rps,
         f"cached path sustains {rps:.0f} req/s (gate {args.min_rps:.0f}), "
         f"p99 {runtime['p99_us']}us")
    p50 = float(runtime["p50_us"])
    p99 = float(runtime["p99_us"])
    p999 = float(runtime["p999_us"])
    gate(0 < p50 <= p99 <= p999,
         f"latency percentiles are ordered: p50 {p50}us <= p99 {p99}us "
         f"<= p999 {p999}us")
    hist = runtime["latency_histogram_us"]
    gate(len(hist) == 12 and sum(hist) == runtime["cached_requests"],
         "latency histogram covers every cached request")

    # 3. Optional replay diff against the committed baseline.
    bench_gate.check_baseline(gates, det, args.baseline)

    bench_gate.write_report(args.out, doc)
    return gates.finish()


if __name__ == "__main__":
    sys.exit(main())
