#!/usr/bin/env python3
"""Validate and compare cdmm metrics sidecars (tools/metrics_schema.json).

Usage:
  check_metrics.py validate FILE...
      Validate each sidecar against the schema. Exits 1 on the first
      violation, printing a JSON-pointer-ish path to the offending value.

  check_metrics.py compare-det FILE BASELINE
      Compare the deterministic ("det": true) metrics of two sidecars,
      ignoring the build envelope and every runtime metric. Exits 1 and
      prints a diff when they disagree — the cross---jobs determinism gate.

Self-contained: implements the subset of JSON Schema draft-07 the sidecar
schema uses (no jsonschema dependency, so it runs on a bare CI image).
"""

import json
import os
import re
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "metrics_schema.json")


class SchemaError(Exception):
    pass


def check(instance, schema, path):
    """Minimal draft-07 interpreter for the keywords metrics_schema.json uses."""
    t = schema.get("type")
    if t == "object":
        if not isinstance(instance, dict):
            raise SchemaError(f"{path}: expected object, got {type(instance).__name__}")
        for key in schema.get("required", []):
            if key not in instance:
                raise SchemaError(f"{path}: missing required property '{key}'")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            extra = set(instance) - set(props)
            if extra:
                raise SchemaError(f"{path}: unexpected properties {sorted(extra)}")
        for key, sub in props.items():
            if key in instance:
                check(instance[key], sub, f"{path}/{key}")
    elif t == "array":
        if not isinstance(instance, list):
            raise SchemaError(f"{path}: expected array, got {type(instance).__name__}")
        items = schema.get("items")
        if items:
            for i, element in enumerate(instance):
                check(element, items, f"{path}/{i}")
    elif t == "integer":
        if not isinstance(instance, int) or isinstance(instance, bool):
            raise SchemaError(f"{path}: expected integer, got {instance!r}")
        if "minimum" in schema and instance < schema["minimum"]:
            raise SchemaError(f"{path}: {instance} < minimum {schema['minimum']}")
        if "enum" in schema and instance not in schema["enum"]:
            raise SchemaError(f"{path}: {instance} not in {schema['enum']}")
    elif t == "string":
        if not isinstance(instance, str):
            raise SchemaError(f"{path}: expected string, got {type(instance).__name__}")
        if "minLength" in schema and len(instance) < schema["minLength"]:
            raise SchemaError(f"{path}: shorter than minLength {schema['minLength']}")
        if "pattern" in schema and not re.search(schema["pattern"], instance):
            raise SchemaError(f"{path}: '{instance}' does not match {schema['pattern']}")
    elif t == "boolean":
        if not isinstance(instance, bool):
            raise SchemaError(f"{path}: expected boolean, got {instance!r}")
    else:
        raise SchemaError(f"{path}: schema type '{t}' not supported by this checker")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate(paths):
    schema = load(SCHEMA_PATH)
    for path in paths:
        doc = load(path)
        try:
            check(doc, schema, "")
        except SchemaError as e:
            print(f"{path}: SCHEMA VIOLATION {e}", file=sys.stderr)
            return 1
        # Semantic checks the schema language cannot express.
        for hist in doc["histograms"]:
            name = hist["name"]
            if len(hist["counts"]) != len(hist["bounds"]):
                print(f"{path}: {name}: len(counts) != len(bounds)", file=sys.stderr)
                return 1
            if hist["bounds"] != sorted(hist["bounds"]):
                print(f"{path}: {name}: bounds not ascending", file=sys.stderr)
                return 1
            in_buckets = sum(hist["counts"]) + hist["underflow"] + hist["overflow"]
            if in_buckets != hist["count"]:
                print(f"{path}: {name}: bucket totals {in_buckets} != count {hist['count']}",
                      file=sys.stderr)
                return 1
            if hist["count"] == 0 and ("min" in hist or "max" in hist):
                print(f"{path}: {name}: empty histogram must omit min/max", file=sys.stderr)
                return 1
            if hist["count"] > 0 and ("min" not in hist or "max" not in hist):
                print(f"{path}: {name}: non-empty histogram must carry min/max", file=sys.stderr)
                return 1
        print(f"{path}: OK ({len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
              f"{len(doc['histograms'])} histograms)")
    return 0


def deterministic_view(doc):
    """The sidecar minus the build envelope and every runtime metric."""
    return {
        section: sorted(
            (m for m in doc[section] if m["det"]), key=lambda m: m["name"]
        )
        for section in ("counters", "gauges", "histograms")
    }


def compare_det(path_a, path_b):
    a = deterministic_view(load(path_a))
    b = deterministic_view(load(path_b))
    if a == b:
        n = sum(len(v) for v in a.values())
        print(f"deterministic metrics identical ({n} metrics)")
        return 0
    for section in ("counters", "gauges", "histograms"):
        names_a = {m["name"]: m for m in a[section]}
        names_b = {m["name"]: m for m in b[section]}
        for name in sorted(set(names_a) | set(names_b)):
            if name not in names_a:
                print(f"DIFF {section}/{name}: only in {path_b}", file=sys.stderr)
            elif name not in names_b:
                print(f"DIFF {section}/{name}: only in {path_a}", file=sys.stderr)
            elif names_a[name] != names_b[name]:
                print(f"DIFF {section}/{name}:\n  {path_a}: {names_a[name]}\n"
                      f"  {path_b}: {names_b[name]}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) >= 3 and argv[1] == "validate":
        return validate(argv[2:])
    if len(argv) == 4 and argv[1] == "compare-det":
        return compare_det(argv[2], argv[3])
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
