// cdmm-serve — the long-running simulation service.
//
// Accepts length-prefixed JSON frames (see src/serve/protocol.h and
// DESIGN.md §13) over a local AF_UNIX socket and multiplexes simulate /
// sweep / hierarchy-ladder requests onto the work-stealing thread pool,
// behind a content-addressed result cache, admission control with
// hysteresis, per-shape circuit breakers and bounded-exponential retry.
//
// Usage:
//   cdmm-serve --socket PATH [options]
//
// Options:
//   --socket PATH          AF_UNIX socket path to listen on (required)
//   --jobs N               thread-pool size (default: all cores; 1 = serial)
//   --budget N             virtual admission budget (default 32)
//   --breaker-threshold N  consecutive failures that open a shape's circuit
//                          breaker (default 3)
//   --breaker-cooldown N   quarantined requests before a half-open probe
//                          (default 8)
//   --max-attempts N       tries per request incl. retries (default 3)
//   --deadline-ms N        default per-request deadline (0 = none)
//   --inject-seed N        deterministic chaos injection seed (0 = off)
//   --inject-rate X        chaos intensity in [0,1] (default 0.5)
//   --once                 exit cleanly after one connection (smoke tests)
//   --max-connections N    exit cleanly after N connections (0 = forever)
//   --metrics[=text|json]  print the telemetry report on exit
//   --metrics-out FILE     write the JSON metrics sidecar on exit
//   --trace-spans FILE     write Chrome trace-event JSON on exit
//   --help                 this text
//
// Exit codes: 0 natural finish, 1 setup error, 2 usage, 130/143 after a
// graceful SIGINT/SIGTERM drain (telemetry sidecars are flushed first).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "src/exec/flags.h"
#include "src/exec/thread_pool.h"
#include "src/serve/daemon.h"
#include "src/serve/server.h"
#include "src/support/interrupt.h"
#include "src/support/str.h"
#include "src/telemetry/flags.h"

namespace {

void PrintHelp(std::ostream& out) {
  out << "usage: cdmm-serve --socket PATH [--jobs N] [--budget N]\n"
         "                  [--breaker-threshold N] [--breaker-cooldown N]\n"
         "                  [--max-attempts N] [--deadline-ms N]\n"
         "                  [--inject-seed N] [--inject-rate X]\n"
         "                  [--once | --max-connections N]\n"
         "                  [--metrics[=text|json]] [--metrics-out FILE]\n"
         "                  [--trace-spans FILE]\n"
         "\n"
         "Serves length-prefixed JSON simulation requests (protocol and\n"
         "failure semantics: DESIGN.md section 13) on an AF_UNIX socket.\n"
         "\n"
         "exit codes:\n"
         "  0        natural finish (--once / --max-connections reached)\n"
         "  1        setup error (socket bind/listen)\n"
         "  2        usage error\n"
         "  130/143  interrupted (128 + SIGINT/SIGTERM): graceful drain —\n"
         "           buffered requests are answered, new ones get status\n"
         "           \"draining\", telemetry sidecars are flushed\n";
}

uint64_t ParseU64(const char* flag, const std::string& value) {
  char* end = nullptr;
  unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    std::cerr << "bad " << flag << " value '" << value << "'\n";
    std::exit(2);
  }
  return n;
}

double ParseF64(const char* flag, const std::string& value) {
  char* end = nullptr;
  double d = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || d < 0.0 || d > 1.0) {
    std::cerr << "bad " << flag << " value '" << value << "' (want [0,1])\n";
    std::exit(2);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  cdmm::InstallInterruptHandlers();
  cdmm::telem::TelemetryFlags telemetry = cdmm::telem::ParseTelemetryFlags(&argc, argv);
  unsigned jobs = cdmm::ParseJobsFlag(&argc, argv);

  cdmm::DaemonOptions daemon_options;
  cdmm::ServeLimits limits;
  uint64_t inject_seed = 0;
  double inject_rate = 0.5;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintHelp(std::cout);
      return 0;
    } else if (arg == "--socket") {
      daemon_options.socket_path = value("--socket");
    } else if (arg == "--budget") {
      limits.admit_budget = ParseU64("--budget", value("--budget"));
    } else if (arg == "--breaker-threshold") {
      limits.breaker_threshold =
          static_cast<int>(ParseU64("--breaker-threshold", value("--breaker-threshold")));
    } else if (arg == "--breaker-cooldown") {
      limits.breaker_cooldown =
          ParseU64("--breaker-cooldown", value("--breaker-cooldown"));
    } else if (arg == "--max-attempts") {
      limits.max_attempts =
          static_cast<int>(ParseU64("--max-attempts", value("--max-attempts")));
    } else if (arg == "--deadline-ms") {
      limits.default_deadline_ms = ParseU64("--deadline-ms", value("--deadline-ms"));
    } else if (arg == "--inject-seed") {
      inject_seed = ParseU64("--inject-seed", value("--inject-seed"));
    } else if (arg == "--inject-rate") {
      inject_rate = ParseF64("--inject-rate", value("--inject-rate"));
    } else if (arg == "--once") {
      daemon_options.max_connections = 1;
    } else if (arg == "--max-connections") {
      daemon_options.max_connections =
          ParseU64("--max-connections", value("--max-connections"));
    } else {
      std::cerr << "unknown option '" << arg << "' (see --help)\n";
      return 2;
    }
  }
  if (daemon_options.socket_path.empty()) {
    std::cerr << "--socket PATH is required (see --help)\n";
    return 2;
  }
  if (inject_seed != 0) {
    limits.injection = cdmm::FaultInjectionConfig::AtIntensity(inject_seed, inject_rate);
  }

  cdmm::telem::ConfigureTelemetry(telemetry);

  std::unique_ptr<cdmm::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<cdmm::ThreadPool>(jobs);
  }
  cdmm::ServerCore core(pool.get(), limits);
  cdmm::ServeDaemon daemon(&core, daemon_options);
  int code = daemon.Run(std::cerr);

  if (!cdmm::telem::EmitTelemetry(telemetry, "cdmm-serve", std::cout, std::cerr) &&
      code == 0) {
    code = 1;
  }
  return code;
}
