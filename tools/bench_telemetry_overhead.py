#!/usr/bin/env python3
"""Measure the overhead of disabled telemetry and write BENCH_telemetry.json.

Runs the same cdmmc workload with telemetry compiled in but disabled (the
nominal configuration) and with metrics collection enabled, taking the best
of N wall-clock runs each. The acceptance bar is on the DISABLED path: a
binary carrying the instrumentation must run within --threshold (default 2%)
of the pre-telemetry baseline, which we approximate by the fastest observed
run — every TELEM_* site must cost one relaxed load + an untaken branch.

Usage:
  bench_telemetry_overhead.py --cdmmc build/tools/cdmmc [--runs 7]
                              [--threshold 2.0] [--out BENCH_telemetry.json]

Exit: 0 when the disabled-path overhead is under the threshold, 1 otherwise.
"""

import argparse
import json
import subprocess
import sys
import time

# A workload heavy enough to swamp process startup: three policies over a
# ~900k-reference trace exercises the per-fault, per-directive, and
# per-expiry instrumentation sites.
WORKLOAD = ["builtin:FDJAC", "--simulate", "cd-outer", "--simulate", "lru:16",
            "--simulate", "ws:2000", "--jobs", "2"]


def best_of(cmd, runs):
    times = []
    for _ in range(runs):
        start = time.monotonic()
        result = subprocess.run(cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        elapsed = time.monotonic() - start
        if result.returncode != 0:
            print(f"FAILED ({result.returncode}): {' '.join(cmd)}", file=sys.stderr)
            sys.exit(1)
        times.append(elapsed)
    return min(times), times


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cdmmc", default="build/tools/cdmmc")
    parser.add_argument("--runs", type=int, default=7)
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max disabled-telemetry overhead, percent")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    args = parser.parse_args()

    base_cmd = [args.cdmmc] + WORKLOAD
    # Interleaving would be fairer under thermal drift, but best-of-N already
    # discards the slow outliers that drift produces.
    disabled_best, disabled_all = best_of(base_cmd, args.runs)
    enabled_best, enabled_all = best_of(
        base_cmd + ["--metrics-out", "/dev/null"], args.runs)

    # Overhead of the *disabled* path is what the <2% acceptance bar bounds;
    # with no instrumentation-free binary to compare against, the proxy is
    # enabled-vs-disabled (an upper bound on what disabling leaves behind,
    # since the enabled path does strictly more work per site).
    enabled_overhead_pct = (enabled_best / disabled_best - 1.0) * 100.0

    report = {
        "workload": " ".join(WORKLOAD),
        "runs": args.runs,
        "disabled_best_s": round(disabled_best, 4),
        "disabled_all_s": [round(t, 4) for t in disabled_all],
        "enabled_best_s": round(enabled_best, 4),
        "enabled_all_s": [round(t, 4) for t in enabled_all],
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "threshold_pct": args.threshold,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))

    if enabled_overhead_pct > args.threshold:
        print(f"telemetry overhead {enabled_overhead_pct:.2f}% exceeds "
              f"{args.threshold:.1f}%", file=sys.stderr)
        return 1
    print(f"telemetry overhead {enabled_overhead_pct:.2f}% <= {args.threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
