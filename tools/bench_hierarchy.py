#!/usr/bin/env python3
"""Determinism gate + artifact refresh for bench_hierarchy.

Runs `bench_hierarchy` at --jobs 1, 4 and 8, checks the three stdouts are
byte-identical (the ladder cells are fanned over the thread pool, so any
divergence means a scheduling-order leak), and writes BENCH_hierarchy.json
from the --jobs 1 run. When --golden FILE is given, the --jobs 1 stdout must
also match that committed golden byte-for-byte.

Usage:
  bench_hierarchy.py --bench build/bench/bench_hierarchy
                     [--out BENCH_hierarchy.json] [--golden FILE]

Exit: 0 when every comparison agrees, 1 otherwise.
"""

import argparse
import sys
import tempfile
import os

import bench_gate


def run(bench, jobs, json_out=None):
    cmd = [bench, "--jobs", str(jobs)]
    if json_out:
        cmd += ["--json", json_out]
    return bench_gate.run_checked(cmd)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench", default="build/bench/bench_hierarchy")
    parser.add_argument("--out", default="BENCH_hierarchy.json")
    parser.add_argument("--golden", default=None,
                        help="committed golden stdout the --jobs 1 run must match")
    args = parser.parse_args()

    gates = bench_gate.Gate()
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json", delete=False) as tmp:
        tmp_json = tmp.name
    try:
        baseline = run(args.bench, 1, json_out=tmp_json)
        mismatched = [jobs for jobs in (4, 8) if run(args.bench, jobs) != baseline]
        gates.check(not mismatched,
                    "stdout byte-identical at --jobs 1/4/8"
                    + (f" (differs at --jobs {mismatched})" if mismatched else ""))

        if args.golden:
            with open(args.golden, encoding="utf-8") as f:
                golden = f.read()
            gates.check(baseline == golden,
                        f"stdout matches the committed golden {args.golden} "
                        f"(regenerate: {args.bench} --jobs 1 > {args.golden})")

        if not gates.failures:
            with open(tmp_json, encoding="utf-8") as f:
                report = f.read()
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(report)
            print(f"[gate] wrote {args.out}")
    finally:
        os.unlink(tmp_json)

    return gates.finish()


if __name__ == "__main__":
    sys.exit(main())
