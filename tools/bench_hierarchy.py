#!/usr/bin/env python3
"""Determinism gate + artifact refresh for bench_hierarchy.

Runs `bench_hierarchy` at --jobs 1, 4 and 8, checks the three stdouts are
byte-identical (the ladder cells are fanned over the thread pool, so any
divergence means a scheduling-order leak), and writes BENCH_hierarchy.json
from the --jobs 1 run. When --golden FILE is given, the --jobs 1 stdout must
also match that committed golden byte-for-byte.

Usage:
  bench_hierarchy.py --bench build/bench/bench_hierarchy
                     [--out BENCH_hierarchy.json] [--golden FILE]

Exit: 0 when every comparison agrees, 1 otherwise.
"""

import argparse
import subprocess
import sys
import tempfile
import os


def run(bench, jobs, json_out=None):
    cmd = [bench, "--jobs", str(jobs)]
    if json_out:
        cmd += ["--json", json_out]
    result = subprocess.run(cmd, capture_output=True, text=True)
    if result.returncode != 0:
        print(f"FAILED ({result.returncode}): {' '.join(cmd)}\n{result.stderr}",
              file=sys.stderr)
        sys.exit(1)
    return result.stdout


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench", default="build/bench/bench_hierarchy")
    parser.add_argument("--out", default="BENCH_hierarchy.json")
    parser.add_argument("--golden", default=None,
                        help="committed golden stdout the --jobs 1 run must match")
    args = parser.parse_args()

    with tempfile.NamedTemporaryFile(mode="r", suffix=".json", delete=False) as tmp:
        tmp_json = tmp.name
    try:
        baseline = run(args.bench, 1, json_out=tmp_json)
        mismatched = [jobs for jobs in (4, 8) if run(args.bench, jobs) != baseline]
        if mismatched:
            print(f"FAIL: stdout at --jobs {mismatched} differs from --jobs 1",
                  file=sys.stderr)
            return 1

        if args.golden:
            with open(args.golden, encoding="utf-8") as f:
                golden = f.read()
            if baseline != golden:
                print(f"FAIL: stdout differs from the committed golden {args.golden}; "
                      f"regenerate it with: {args.bench} --jobs 1 > {args.golden}",
                      file=sys.stderr)
                return 1

        with open(tmp_json, encoding="utf-8") as f:
            report = f.read()
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
    finally:
        os.unlink(tmp_json)

    golden_note = f", matches {args.golden}" if args.golden else ""
    print(f"PASS: bench_hierarchy stdout byte-identical at --jobs 1/4/8"
          f"{golden_note}; wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
