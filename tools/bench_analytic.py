#!/usr/bin/env python3
"""Scaling and exactness gate for the analytic locality engine.

Runs bench_analytic and cdmmc and enforces the analytic engine's acceptance
criteria:

  1. exactness: the smallest ladder rung's analytic curve fingerprints equal
     the one-pass oracle's (oracle_match), and `cdmmc --sweep both` stdout is
     byte-identical between --sweep-engine onepass and analytic on every
     oracle workload at --jobs 1, 4 and 8;
  2. scale: the top ladder rung expands to at least 1e9 references while the
     stored (compressed) representation stays under --max-stored pages;
  3. trace-length independence: sweep wall time on the top rung is at most
     --max-flatness times the bottom rung's (both floored at 0.5 ms so
     sub-millisecond noise cannot fail the gate), even though the top rung
     has 300000x the references.

Writes the full document to --out. When --baseline is given, the
deterministic section (reference counts, stored sizes, fingerprints) must
equal the baseline's — the replay gate CI applies to the committed
BENCH_analytic.json.

Usage:
  bench_analytic.py --bench build/bench/bench_analytic
                    [--cdmmc build/tools/cdmmc]
                    [--max-flatness 10.0] [--max-stored 100000]
                    [--out BENCH_analytic.json] [--baseline BENCH_analytic.json]

Exit: 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import sys

import bench_gate

run = bench_gate.run_checked

ORACLE_WORKLOADS = ["MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX",
                    "HYBRJ", "CONDUCT", "HWSCRT", "GATHER", "STENCILG"]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench", required=True)
    parser.add_argument("--cdmmc", default="build/tools/cdmmc")
    parser.add_argument("--max-flatness", type=float, default=10.0,
                        help="max top-rung/bottom-rung wall-time ratio")
    parser.add_argument("--max-stored", type=int, default=100000,
                        help="max stored (compressed) pages on the top rung")
    parser.add_argument("--out", default=None)
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args()

    gates = bench_gate.Gate()
    gate = gates.check

    doc = json.loads(run([args.bench]))
    det = doc["deterministic"]
    rungs = det["rungs"]
    wall = doc["runtime"]["rung_wall_ms"]

    # 1. Exactness against the one-pass oracle.
    gate(det["oracle_match"],
         "smallest-rung analytic fingerprints equal the one-pass oracle's")
    for workload in ORACLE_WORKLOADS:
        outs = set()
        for engine in ("onepass", "analytic"):
            for jobs in (1, 4, 8):
                outs.add(run([args.cdmmc, f"builtin:{workload}", "--sweep", "both",
                              "--sweep-engine", engine, "--jobs", str(jobs)]))
        gate(len(outs) == 1,
             f"{workload}: sweep stdout byte-identical across engines x jobs 1/4/8")

    # 2. Scale: the ladder reaches a billion references in bounded storage.
    top, bottom = rungs[-1], rungs[0]
    gate(top["refs"] >= 10**9,
         f"top rung expands to {top['refs']:.2e} references (>= 1e9)")
    gate(top["stored_pages"] <= args.max_stored,
         f"top rung stores {top['stored_pages']} pages (<= {args.max_stored})")

    # 3. Trace-length independence: wall time must not follow the reference
    # count. Floor both rungs at 0.5 ms so scheduler noise on sub-millisecond
    # runs cannot produce a spurious ratio.
    w_top, w_bottom = max(wall[-1], 0.5), max(wall[0], 0.5)
    ratio = w_top / w_bottom
    refs_ratio = top["refs"] / bottom["refs"]
    gate(ratio <= args.max_flatness,
         f"wall time flat across the ladder: {ratio:.2f}x over a "
         f"{refs_ratio:.0f}x reference-count range (gate {args.max_flatness}x)")

    # 4. Optional replay diff against the committed baseline.
    bench_gate.check_baseline(gates, det, args.baseline)

    bench_gate.write_report(args.out, doc)
    return gates.finish()


if __name__ == "__main__":
    sys.exit(main())
