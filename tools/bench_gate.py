#!/usr/bin/env python3
"""Shared plumbing for the tools/bench_*.py acceptance gates.

Every gate script follows the same shape: run a bench binary (failing loudly
if it does), accumulate named pass/fail gates, optionally diff the run's
deterministic section against a committed baseline JSON, and write the fresh
report. This module is that shape; the per-bench scripts keep only their own
gate conditions.

Not a script — import it:

    import bench_gate
    gates = bench_gate.Gate()
    doc = json.loads(bench_gate.run_checked([bench, "--jobs", "4"]))
    gates.check(doc["x"] > 0, "x is positive")
    bench_gate.check_baseline(gates, det, args.baseline)
    bench_gate.write_report(args.out, doc)
    return gates.finish()
"""

import json
import subprocess
import sys


def run_checked(cmd):
    """Run `cmd`, return its stdout; print stderr and exit(1) on failure."""
    result = subprocess.run(cmd, capture_output=True, text=True)
    if result.returncode != 0:
        print(f"FAILED ({result.returncode}): {' '.join(cmd)}\n{result.stderr}",
              file=sys.stderr)
        sys.exit(1)
    return result.stdout


class Gate:
    """Accumulates named pass/fail conditions and reports them uniformly."""

    def __init__(self):
        self.failures = []

    def check(self, cond, what):
        print(f"[gate] {'ok' if cond else 'FAIL'}: {what}")
        if not cond:
            self.failures.append(what)
        return cond

    def finish(self):
        """Final exit code: prints the verdict, 0 when every gate passed."""
        if self.failures:
            print(f"[gate] {len(self.failures)} gate(s) failed")
            return 1
        print("[gate] all gates passed")
        return 0


def same_json(a, b):
    """Structural equality, insensitive to key order and float formatting."""
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def check_baseline(gates, section, baseline_path, key="deterministic"):
    """Gate `section` against baseline_path[key] (no-op without a baseline).

    This is the cross-machine replay gate: the deterministic section of a
    bench run (counts, fingerprints — never wall times) must reproduce the
    committed baseline exactly on any hardware.
    """
    if not baseline_path:
        return
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    gates.check(same_json(section, baseline[key]),
                f"{key} section matches {baseline_path}")


def write_report(path, doc):
    """Write `doc` as indented JSON with a trailing newline (no-op on None)."""
    if not path:
        return
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"[gate] wrote {path}")
