#!/usr/bin/env python3
"""Benchmark the one-pass sweep engines against the naive oracle.

Runs `cdmmc builtin:<W> --sweep both` under both --sweep-engine values and
--jobs 1 and 8, parses the per-sweep wall times cdmmc reports on stderr
([sweep] input=... kind=... engine=... points=... wall_ms=...), checks that
stdout (points + fingerprints) is byte-identical between engines, and writes
BENCH_sweep.json.

Acceptance gate: the one-pass WS engine must be at least --min-speedup
(default 5x) faster than the naive per-tau sweep on CONDUCT at --jobs 1.

Usage:
  bench_sweep.py --cdmmc build/tools/cdmmc [--workloads CONDUCT,FDJAC,...]
                 [--min-speedup 5.0] [--out BENCH_sweep.json]

Exit: 0 when the gate passes (and all stdouts agree), 1 otherwise.
"""

import argparse
import json
import re
import subprocess
import sys

import bench_gate

ALL_WORKLOADS = ["MAIN", "FDJAC", "TQL", "FIELD", "INIT", "APPROX",
                 "HYBRJ", "CONDUCT", "HWSCRT"]

SWEEP_LINE = re.compile(
    r"\[sweep\] input=(?P<input>\S+) kind=(?P<kind>\w+) engine=(?P<engine>\w+) "
    r"points=(?P<points>\d+) wall_ms=(?P<wall_ms>[0-9.]+)")


def run_sweep(cdmmc, workload, engine, jobs):
    cmd = [cdmmc, f"builtin:{workload}", "--sweep", "both",
           "--sweep-engine", engine, "--jobs", str(jobs)]
    result = subprocess.run(cmd, capture_output=True, text=True)
    if result.returncode != 0:
        print(f"FAILED ({result.returncode}): {' '.join(cmd)}\n{result.stderr}",
              file=sys.stderr)
        sys.exit(1)
    wall = {}
    for line in result.stderr.splitlines():
        m = SWEEP_LINE.match(line)
        if m:
            wall[m.group("kind")] = float(m.group("wall_ms"))
    if set(wall) != {"ws", "opt"}:
        print(f"missing [sweep] stderr lines from: {' '.join(cmd)}", file=sys.stderr)
        sys.exit(1)
    return {"stdout": result.stdout, "wall_ms": wall}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cdmmc", default="build/tools/cdmmc")
    parser.add_argument("--workloads", default=",".join(ALL_WORKLOADS))
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required onepass-vs-naive WS speedup on CONDUCT at --jobs 1")
    parser.add_argument("--out", default="BENCH_sweep.json")
    args = parser.parse_args()
    workloads = [w for w in args.workloads.split(",") if w]

    rows = []
    mismatches = []
    for workload in workloads:
        for jobs in (1, 8):
            naive = run_sweep(args.cdmmc, workload, "naive", jobs)
            onepass = run_sweep(args.cdmmc, workload, "onepass", jobs)
            if naive["stdout"] != onepass["stdout"]:
                mismatches.append(f"{workload} --jobs {jobs}")
            row = {"workload": workload, "jobs": jobs}
            for kind in ("ws", "opt"):
                n, o = naive["wall_ms"][kind], onepass["wall_ms"][kind]
                row[f"{kind}_naive_ms"] = n
                row[f"{kind}_onepass_ms"] = o
                row[f"{kind}_speedup"] = round(n / o, 2) if o > 0 else float("inf")
            rows.append(row)
            print(f"{workload:>8} --jobs {jobs}: "
                  f"WS {row['ws_naive_ms']:.1f} -> {row['ws_onepass_ms']:.1f} ms "
                  f"({row['ws_speedup']}x), "
                  f"OPT {row['opt_naive_ms']:.1f} -> {row['opt_onepass_ms']:.1f} ms "
                  f"({row['opt_speedup']}x)")

    gate_row = next((r for r in rows if r["workload"] == "CONDUCT" and r["jobs"] == 1),
                    None)
    gate_speedup = gate_row["ws_speedup"] if gate_row else None
    gate_ok = (not mismatches and gate_row is not None
               and gate_speedup >= args.min_speedup)

    report = {
        "rows": rows,
        "stdout_mismatches": mismatches,
        "gate": {
            "workload": "CONDUCT",
            "kind": "ws",
            "jobs": 1,
            "min_speedup": args.min_speedup,
            "speedup": gate_speedup,
            "ok": gate_ok,
        },
    }
    bench_gate.write_report(args.out, report)

    gates = bench_gate.Gate()
    gates.check(not mismatches,
                f"stdout byte-identical between engines on {len(rows)} pairs"
                + (f" (differs: {mismatches})" if mismatches else ""))
    gates.check(gate_row is not None,
                "CONDUCT --jobs 1 is in the run set so the gate can be evaluated")
    if gate_row is not None:
        gates.check(gate_speedup >= args.min_speedup,
                    f"one-pass WS speedup on CONDUCT {gate_speedup}x "
                    f">= {args.min_speedup}x")
    return gates.finish()


if __name__ == "__main__":
    sys.exit(main())
