#!/usr/bin/env python3
"""Perf-ratchet gate for the hot-path policy kernels.

Runs bench_hotpath, which simulates every (policy x workload) cell through
both the preserved container-based legacy simulators and the flat SoA
kernels in one process, proves them bit-identical, and reports ns/ref for
each side. This script enforces:

  1. ratchet: the geometric-mean speedup over all cells is at least
     --min-speedup (default 1.5x). The ratio of two in-process timings is
     machine-independent, so the gate holds on any CI hardware;
  2. replay: when --baseline is given, every cell's deterministic fields
     (references, faults, elapsed, max_resident) must equal the committed
     BENCH_hotpath.json — the simulators may get faster but never different.

Writes the fresh report (timings included) to --out.

Usage:
  bench_hotpath.py --bench build/bench/bench_hotpath [--min-speedup 1.5]
                   [--reps 5] [--out BENCH_hotpath.json]
                   [--baseline BENCH_hotpath.json]

Exit: 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import os
import sys
import tempfile

import bench_gate

DETERMINISTIC_FIELDS = ("workload", "policy", "references", "faults",
                        "elapsed", "max_resident")


def deterministic_cells(doc):
    return [{k: cell[k] for k in DETERMINISTIC_FIELDS} for cell in doc["cells"]]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--bench", default="build/bench/bench_hotpath")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required geometric-mean legacy/hot ns-per-ref ratio")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--out", default=None)
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args()

    gates = bench_gate.Gate()

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_json = tmp.name
    try:
        stdout = bench_gate.run_checked(
            [args.bench, "--json", tmp_json, "--reps", str(args.reps)])
        sys.stdout.write(stdout)
        with open(tmp_json, encoding="utf-8") as f:
            doc = json.load(f)
    finally:
        os.unlink(tmp_json)

    # 1. The ratchet. The bench itself hard-fails on any legacy/hot result
    # divergence before timing, so reaching here means all cells verified.
    aggregate = float(doc["aggregate_speedup"])
    gates.check(aggregate >= args.min_speedup,
                f"aggregate hot-path speedup {aggregate:.2f}x "
                f">= {args.min_speedup}x over {len(doc['cells'])} cells")
    slowest = min(doc["cells"], key=lambda c: c["speedup"])
    print(f"[gate] note: slowest cell {slowest['workload']}/{slowest['policy']} "
          f"at {slowest['speedup']:.2f}x")

    # 2. Cross-machine replay of the deterministic section.
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        gates.check(
            bench_gate.same_json(deterministic_cells(doc),
                                 deterministic_cells(baseline)),
            f"simulation results match {args.baseline}")

    bench_gate.write_report(args.out, doc)
    return gates.finish()


if __name__ == "__main__":
    sys.exit(main())
