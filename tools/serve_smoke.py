#!/usr/bin/env python3
"""Protocol smoke test for cdmm-serve.

Usage: serve_smoke.py /path/to/cdmm-serve

Exercises the daemon end to end over its AF_UNIX socket:
  1. ping / simulate / sweep round-trips with status "ok";
  2. the content-addressed cache (a repeated request answers cached=true);
  3. structured errors for malformed JSON, unknown ops, unknown workloads
     and unknown policy specs (the daemon must keep serving afterwards);
  4. oversized-frame rejection (connection closed, daemon survives);
  5. graceful SIGTERM drain: exit code 143, a schema-valid --metrics-out
     sidecar flushed on the way down.

Self-contained (stdlib only) so it runs on a bare CI image.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time

CHECK = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_metrics.py")

failures = []


def expect(cond, what):
    tag = "ok" if cond else "FAIL"
    print(f"[smoke] {tag}: {what}")
    if not cond:
        failures.append(what)


def frame(payload: bytes) -> bytes:
    return struct.pack("<I", len(payload)) + payload


def send_request(sock, obj) -> dict:
    sock.sendall(frame(json.dumps(obj).encode()))
    return read_response(sock)


def read_response(sock) -> dict:
    header = recv_exact(sock, 4)
    (n,) = struct.unpack("<I", header)
    return json.loads(recv_exact(sock, n).decode())


def recv_exact(sock, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("daemon closed the connection")
        buf += chunk
    return buf


def connect(path: str, attempts: int = 100) -> socket.socket:
    for _ in range(attempts):
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(path)
            return sock
        except (FileNotFoundError, ConnectionRefusedError):
            time.sleep(0.05)
    raise TimeoutError(f"daemon never listened on {path}")


def start(binary: str, sock_path: str, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [binary, "--socket", sock_path, "--jobs", "2", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def phase_protocol(binary: str, tmp: str) -> None:
    sock_path = os.path.join(tmp, "serve.sock")
    daemon = start(binary, sock_path, "--once")
    try:
        sock = connect(sock_path)

        r = send_request(sock, {"op": "ping"})
        expect(r["status"] == "ok" and r["payload"]["pong"] is True, "ping answers pong")

        r = send_request(sock, {"op": "simulate", "workload": "FDJAC", "policy": "lru:16"})
        expect(r["status"] == "ok" and r["payload"]["faults"] > 0, "simulate runs lru:16")
        expect(r["cached"] is False, "first simulate is uncached")
        first_payload = r["payload"]

        r = send_request(sock, {"op": "simulate", "workload": "FDJAC", "policy": "lru:16"})
        expect(r["status"] == "ok" and r["cached"] is True, "repeat simulate is cached")
        expect(r["payload"] == first_payload, "cached payload is identical")

        r = send_request(sock, {"op": "sweep", "workload": "FDJAC", "kind": "ws"})
        expect(
            r["status"] == "ok" and r["payload"]["points"] > 0,
            "ws sweep returns a fingerprinted curve",
        )

        r = send_request(
            sock,
            {"op": "ladder", "workload": "FDJAC", "policy": "cd-outer", "penalty": 200},
        )
        expect(r["status"] == "ok" and r["payload"]["penalty"] == 200, "ladder cell runs")

        sock.sendall(frame(b"this is not json"))
        r = read_response(sock)
        expect(r["status"] == "error", "malformed JSON gets a structured error")

        r = send_request(sock, {"op": "frobnicate"})
        expect(r["status"] == "error", "unknown op gets a structured error")

        r = send_request(sock, {"op": "simulate", "workload": "NOSUCH", "policy": "lru:4"})
        expect(r["status"] == "error", "unknown workload gets a structured error")

        r = send_request(sock, {"op": "simulate", "workload": "FDJAC", "policy": "zap:9"})
        expect(r["status"] == "error", "unknown policy gets a structured error")

        r = send_request(sock, {"op": "stats"})
        expect(
            r["status"] == "ok" and r["payload"]["cache_hits"] >= 1,
            "stats reports the cache hit",
        )

        sock.close()
        code = daemon.wait(timeout=30)
        expect(code == 0, f"--once daemon exits 0 (got {code})")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def phase_oversized_frame(binary: str, tmp: str) -> None:
    sock_path = os.path.join(tmp, "serve2.sock")
    daemon = start(binary, sock_path, "--max-connections", "2")
    try:
        sock = connect(sock_path)
        sock.sendall(struct.pack("<I", 1 << 28))  # absurd length prefix
        closed = False
        try:
            if sock.recv(1) == b"":
                closed = True
        except ConnectionError:
            closed = True
        expect(closed, "oversized frame closes the connection")
        sock.close()

        sock = connect(sock_path)
        r = send_request(sock, {"op": "ping"})
        expect(r["status"] == "ok", "daemon keeps serving after an oversized frame")
        sock.close()
        code = daemon.wait(timeout=30)
        expect(code == 0, f"daemon exits 0 after max connections (got {code})")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def phase_sigterm_drain(binary: str, tmp: str) -> None:
    sock_path = os.path.join(tmp, "serve3.sock")
    metrics = os.path.join(tmp, "serve_metrics.json")
    daemon = start(binary, sock_path, "--metrics-out", metrics)
    try:
        sock = connect(sock_path)
        r = send_request(sock, {"op": "simulate", "workload": "TQL", "policy": "ws:500"})
        expect(r["status"] == "ok", "request served before SIGTERM")

        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=30)
        expect(code == 143, f"SIGTERM drain exits 143 (got {code})")
        expect(os.path.exists(metrics), "metrics sidecar flushed during drain")

        with open(metrics) as f:
            doc = json.load(f)
        names = [c["name"] for c in doc.get("counters", [])]
        expect(
            any(n.startswith("serve.") for n in names),
            "sidecar carries serve.* metrics",
        )
        rc = subprocess.run(
            [sys.executable, CHECK, "validate", metrics], capture_output=True, text=True
        )
        expect(rc.returncode == 0, f"sidecar is schema-valid ({rc.stdout.strip()})")
        sock.close()
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: serve_smoke.py /path/to/cdmm-serve", file=sys.stderr)
        return 2
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        phase_protocol(binary, tmp)
        phase_oversized_frame(binary, tmp)
        phase_sigterm_drain(binary, tmp)
    if failures:
        print(f"[smoke] {len(failures)} failure(s)")
        return 1
    print("[smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
