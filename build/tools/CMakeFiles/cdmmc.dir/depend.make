# Empty dependencies file for cdmmc.
# This may be replaced when dependencies are built.
