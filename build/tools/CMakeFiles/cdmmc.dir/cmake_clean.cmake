file(REMOVE_RECURSE
  "CMakeFiles/cdmmc.dir/cdmmc.cc.o"
  "CMakeFiles/cdmmc.dir/cdmmc.cc.o.d"
  "cdmmc"
  "cdmmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
