# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/trace_binary_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/loop_tree_test[1]_include.cmake")
include("/root/repo/build/tests/reference_class_test[1]_include.cmake")
include("/root/repo/build/tests/locality_test[1]_include.cmake")
include("/root/repo/build/tests/directives_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/vm_fixed_test[1]_include.cmake")
include("/root/repo/build/tests/vm_ws_test[1]_include.cmake")
include("/root/repo/build/tests/vm_pff_test[1]_include.cmake")
include("/root/repo/build/tests/vm_vmin_test[1]_include.cmake")
include("/root/repo/build/tests/vm_dws_test[1]_include.cmake")
include("/root/repo/build/tests/policy_spec_test[1]_include.cmake")
include("/root/repo/build/tests/curves_test[1]_include.cmake")
include("/root/repo/build/tests/stack_distance_test[1]_include.cmake")
include("/root/repo/build/tests/cd_core_test[1]_include.cmake")
include("/root/repo/build/tests/vm_cd_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/validation_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
