# Empty compiler generated dependencies file for vm_vmin_test.
# This may be replaced when dependencies are built.
