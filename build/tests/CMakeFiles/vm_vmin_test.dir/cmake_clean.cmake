file(REMOVE_RECURSE
  "CMakeFiles/vm_vmin_test.dir/vm_vmin_test.cc.o"
  "CMakeFiles/vm_vmin_test.dir/vm_vmin_test.cc.o.d"
  "vm_vmin_test"
  "vm_vmin_test.pdb"
  "vm_vmin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_vmin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
