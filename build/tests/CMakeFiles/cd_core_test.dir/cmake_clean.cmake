file(REMOVE_RECURSE
  "CMakeFiles/cd_core_test.dir/cd_core_test.cc.o"
  "CMakeFiles/cd_core_test.dir/cd_core_test.cc.o.d"
  "cd_core_test"
  "cd_core_test.pdb"
  "cd_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
