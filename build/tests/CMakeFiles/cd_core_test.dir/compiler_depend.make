# Empty compiler generated dependencies file for cd_core_test.
# This may be replaced when dependencies are built.
