file(REMOVE_RECURSE
  "CMakeFiles/vm_dws_test.dir/vm_dws_test.cc.o"
  "CMakeFiles/vm_dws_test.dir/vm_dws_test.cc.o.d"
  "vm_dws_test"
  "vm_dws_test.pdb"
  "vm_dws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_dws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
