file(REMOVE_RECURSE
  "CMakeFiles/vm_fixed_test.dir/vm_fixed_test.cc.o"
  "CMakeFiles/vm_fixed_test.dir/vm_fixed_test.cc.o.d"
  "vm_fixed_test"
  "vm_fixed_test.pdb"
  "vm_fixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_fixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
