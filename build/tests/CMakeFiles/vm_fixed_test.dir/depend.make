# Empty dependencies file for vm_fixed_test.
# This may be replaced when dependencies are built.
