# Empty dependencies file for directives_test.
# This may be replaced when dependencies are built.
