file(REMOVE_RECURSE
  "CMakeFiles/directives_test.dir/directives_test.cc.o"
  "CMakeFiles/directives_test.dir/directives_test.cc.o.d"
  "directives_test"
  "directives_test.pdb"
  "directives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
