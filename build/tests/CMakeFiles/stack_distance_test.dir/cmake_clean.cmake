file(REMOVE_RECURSE
  "CMakeFiles/stack_distance_test.dir/stack_distance_test.cc.o"
  "CMakeFiles/stack_distance_test.dir/stack_distance_test.cc.o.d"
  "stack_distance_test"
  "stack_distance_test.pdb"
  "stack_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
