file(REMOVE_RECURSE
  "CMakeFiles/vm_pff_test.dir/vm_pff_test.cc.o"
  "CMakeFiles/vm_pff_test.dir/vm_pff_test.cc.o.d"
  "vm_pff_test"
  "vm_pff_test.pdb"
  "vm_pff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_pff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
