# Empty compiler generated dependencies file for vm_pff_test.
# This may be replaced when dependencies are built.
