file(REMOVE_RECURSE
  "CMakeFiles/loop_tree_test.dir/loop_tree_test.cc.o"
  "CMakeFiles/loop_tree_test.dir/loop_tree_test.cc.o.d"
  "loop_tree_test"
  "loop_tree_test.pdb"
  "loop_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
