# Empty compiler generated dependencies file for loop_tree_test.
# This may be replaced when dependencies are built.
