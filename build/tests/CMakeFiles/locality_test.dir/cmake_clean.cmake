file(REMOVE_RECURSE
  "CMakeFiles/locality_test.dir/locality_test.cc.o"
  "CMakeFiles/locality_test.dir/locality_test.cc.o.d"
  "locality_test"
  "locality_test.pdb"
  "locality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
