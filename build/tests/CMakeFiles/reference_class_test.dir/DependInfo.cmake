
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reference_class_test.cc" "tests/CMakeFiles/reference_class_test.dir/reference_class_test.cc.o" "gcc" "tests/CMakeFiles/reference_class_test.dir/reference_class_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdmm/CMakeFiles/cdmm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cdmm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/cdmm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/directives/CMakeFiles/cdmm_directives.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cdmm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/cdmm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/cdmm_os.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cdmm_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cdmm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
