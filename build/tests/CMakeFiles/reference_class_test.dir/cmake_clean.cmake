file(REMOVE_RECURSE
  "CMakeFiles/reference_class_test.dir/reference_class_test.cc.o"
  "CMakeFiles/reference_class_test.dir/reference_class_test.cc.o.d"
  "reference_class_test"
  "reference_class_test.pdb"
  "reference_class_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
