# Empty dependencies file for reference_class_test.
# This may be replaced when dependencies are built.
