file(REMOVE_RECURSE
  "CMakeFiles/vm_ws_test.dir/vm_ws_test.cc.o"
  "CMakeFiles/vm_ws_test.dir/vm_ws_test.cc.o.d"
  "vm_ws_test"
  "vm_ws_test.pdb"
  "vm_ws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_ws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
