# Empty dependencies file for vm_ws_test.
# This may be replaced when dependencies are built.
