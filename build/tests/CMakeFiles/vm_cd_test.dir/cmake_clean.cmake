file(REMOVE_RECURSE
  "CMakeFiles/vm_cd_test.dir/vm_cd_test.cc.o"
  "CMakeFiles/vm_cd_test.dir/vm_cd_test.cc.o.d"
  "vm_cd_test"
  "vm_cd_test.pdb"
  "vm_cd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_cd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
