# Empty dependencies file for vm_cd_test.
# This may be replaced when dependencies are built.
