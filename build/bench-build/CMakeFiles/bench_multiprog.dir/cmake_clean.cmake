file(REMOVE_RECURSE
  "../bench/bench_multiprog"
  "../bench/bench_multiprog.pdb"
  "CMakeFiles/bench_multiprog.dir/bench_multiprog.cc.o"
  "CMakeFiles/bench_multiprog.dir/bench_multiprog.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
