file(REMOVE_RECURSE
  "../bench/bench_policies"
  "../bench/bench_policies.pdb"
  "CMakeFiles/bench_policies.dir/bench_policies.cc.o"
  "CMakeFiles/bench_policies.dir/bench_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
