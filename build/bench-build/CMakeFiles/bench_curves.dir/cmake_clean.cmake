file(REMOVE_RECURSE
  "../bench/bench_curves"
  "../bench/bench_curves.pdb"
  "CMakeFiles/bench_curves.dir/bench_curves.cc.o"
  "CMakeFiles/bench_curves.dir/bench_curves.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
