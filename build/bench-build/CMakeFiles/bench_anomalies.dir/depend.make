# Empty dependencies file for bench_anomalies.
# This may be replaced when dependencies are built.
