file(REMOVE_RECURSE
  "../bench/bench_anomalies"
  "../bench/bench_anomalies.pdb"
  "CMakeFiles/bench_anomalies.dir/bench_anomalies.cc.o"
  "CMakeFiles/bench_anomalies.dir/bench_anomalies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
