file(REMOVE_RECURSE
  "libcdmm_trace.a"
)
