# Empty dependencies file for cdmm_trace.
# This may be replaced when dependencies are built.
