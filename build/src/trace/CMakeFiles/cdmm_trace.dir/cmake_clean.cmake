file(REMOVE_RECURSE
  "CMakeFiles/cdmm_trace.dir/trace.cc.o"
  "CMakeFiles/cdmm_trace.dir/trace.cc.o.d"
  "CMakeFiles/cdmm_trace.dir/trace_io.cc.o"
  "CMakeFiles/cdmm_trace.dir/trace_io.cc.o.d"
  "libcdmm_trace.a"
  "libcdmm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
