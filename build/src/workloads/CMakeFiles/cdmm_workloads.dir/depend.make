# Empty dependencies file for cdmm_workloads.
# This may be replaced when dependencies are built.
