file(REMOVE_RECURSE
  "libcdmm_workloads.a"
)
