file(REMOVE_RECURSE
  "CMakeFiles/cdmm_workloads.dir/workloads.cc.o"
  "CMakeFiles/cdmm_workloads.dir/workloads.cc.o.d"
  "libcdmm_workloads.a"
  "libcdmm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
