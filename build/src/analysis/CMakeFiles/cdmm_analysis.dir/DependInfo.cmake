
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/locality.cc" "src/analysis/CMakeFiles/cdmm_analysis.dir/locality.cc.o" "gcc" "src/analysis/CMakeFiles/cdmm_analysis.dir/locality.cc.o.d"
  "/root/repo/src/analysis/loop_tree.cc" "src/analysis/CMakeFiles/cdmm_analysis.dir/loop_tree.cc.o" "gcc" "src/analysis/CMakeFiles/cdmm_analysis.dir/loop_tree.cc.o.d"
  "/root/repo/src/analysis/reference_class.cc" "src/analysis/CMakeFiles/cdmm_analysis.dir/reference_class.cc.o" "gcc" "src/analysis/CMakeFiles/cdmm_analysis.dir/reference_class.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/cdmm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
