# Empty compiler generated dependencies file for cdmm_analysis.
# This may be replaced when dependencies are built.
