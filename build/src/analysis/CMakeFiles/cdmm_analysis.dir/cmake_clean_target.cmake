file(REMOVE_RECURSE
  "libcdmm_analysis.a"
)
