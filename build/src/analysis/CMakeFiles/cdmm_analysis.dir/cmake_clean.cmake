file(REMOVE_RECURSE
  "CMakeFiles/cdmm_analysis.dir/locality.cc.o"
  "CMakeFiles/cdmm_analysis.dir/locality.cc.o.d"
  "CMakeFiles/cdmm_analysis.dir/loop_tree.cc.o"
  "CMakeFiles/cdmm_analysis.dir/loop_tree.cc.o.d"
  "CMakeFiles/cdmm_analysis.dir/reference_class.cc.o"
  "CMakeFiles/cdmm_analysis.dir/reference_class.cc.o.d"
  "libcdmm_analysis.a"
  "libcdmm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
