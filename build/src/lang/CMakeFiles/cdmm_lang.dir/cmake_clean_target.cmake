file(REMOVE_RECURSE
  "libcdmm_lang.a"
)
