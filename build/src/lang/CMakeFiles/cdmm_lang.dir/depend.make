# Empty dependencies file for cdmm_lang.
# This may be replaced when dependencies are built.
