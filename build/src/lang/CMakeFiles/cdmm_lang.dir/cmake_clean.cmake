file(REMOVE_RECURSE
  "CMakeFiles/cdmm_lang.dir/ast.cc.o"
  "CMakeFiles/cdmm_lang.dir/ast.cc.o.d"
  "CMakeFiles/cdmm_lang.dir/lexer.cc.o"
  "CMakeFiles/cdmm_lang.dir/lexer.cc.o.d"
  "CMakeFiles/cdmm_lang.dir/parser.cc.o"
  "CMakeFiles/cdmm_lang.dir/parser.cc.o.d"
  "CMakeFiles/cdmm_lang.dir/sema.cc.o"
  "CMakeFiles/cdmm_lang.dir/sema.cc.o.d"
  "CMakeFiles/cdmm_lang.dir/token.cc.o"
  "CMakeFiles/cdmm_lang.dir/token.cc.o.d"
  "libcdmm_lang.a"
  "libcdmm_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
