# Empty dependencies file for cdmm_interp.
# This may be replaced when dependencies are built.
