file(REMOVE_RECURSE
  "libcdmm_interp.a"
)
