file(REMOVE_RECURSE
  "CMakeFiles/cdmm_interp.dir/address_map.cc.o"
  "CMakeFiles/cdmm_interp.dir/address_map.cc.o.d"
  "CMakeFiles/cdmm_interp.dir/interpreter.cc.o"
  "CMakeFiles/cdmm_interp.dir/interpreter.cc.o.d"
  "libcdmm_interp.a"
  "libcdmm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
