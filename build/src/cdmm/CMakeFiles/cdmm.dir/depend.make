# Empty dependencies file for cdmm.
# This may be replaced when dependencies are built.
