file(REMOVE_RECURSE
  "CMakeFiles/cdmm.dir/experiments.cc.o"
  "CMakeFiles/cdmm.dir/experiments.cc.o.d"
  "CMakeFiles/cdmm.dir/pipeline.cc.o"
  "CMakeFiles/cdmm.dir/pipeline.cc.o.d"
  "CMakeFiles/cdmm.dir/validation.cc.o"
  "CMakeFiles/cdmm.dir/validation.cc.o.d"
  "libcdmm.a"
  "libcdmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
