file(REMOVE_RECURSE
  "libcdmm.a"
)
