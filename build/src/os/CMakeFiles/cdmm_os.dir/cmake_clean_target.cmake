file(REMOVE_RECURSE
  "libcdmm_os.a"
)
