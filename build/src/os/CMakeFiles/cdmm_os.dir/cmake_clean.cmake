file(REMOVE_RECURSE
  "CMakeFiles/cdmm_os.dir/multiprog.cc.o"
  "CMakeFiles/cdmm_os.dir/multiprog.cc.o.d"
  "libcdmm_os.a"
  "libcdmm_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
