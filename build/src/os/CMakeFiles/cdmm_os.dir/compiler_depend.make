# Empty compiler generated dependencies file for cdmm_os.
# This may be replaced when dependencies are built.
