file(REMOVE_RECURSE
  "CMakeFiles/cdmm_vm.dir/cd_core.cc.o"
  "CMakeFiles/cdmm_vm.dir/cd_core.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/cd_policy.cc.o"
  "CMakeFiles/cdmm_vm.dir/cd_policy.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/curves.cc.o"
  "CMakeFiles/cdmm_vm.dir/curves.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/damped_ws.cc.o"
  "CMakeFiles/cdmm_vm.dir/damped_ws.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/fixed_alloc.cc.o"
  "CMakeFiles/cdmm_vm.dir/fixed_alloc.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/pff.cc.o"
  "CMakeFiles/cdmm_vm.dir/pff.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/policy_spec.cc.o"
  "CMakeFiles/cdmm_vm.dir/policy_spec.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/stack_distance.cc.o"
  "CMakeFiles/cdmm_vm.dir/stack_distance.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/vmin.cc.o"
  "CMakeFiles/cdmm_vm.dir/vmin.cc.o.d"
  "CMakeFiles/cdmm_vm.dir/working_set.cc.o"
  "CMakeFiles/cdmm_vm.dir/working_set.cc.o.d"
  "libcdmm_vm.a"
  "libcdmm_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
