# Empty dependencies file for cdmm_vm.
# This may be replaced when dependencies are built.
