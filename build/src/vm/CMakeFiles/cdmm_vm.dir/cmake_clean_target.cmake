file(REMOVE_RECURSE
  "libcdmm_vm.a"
)
