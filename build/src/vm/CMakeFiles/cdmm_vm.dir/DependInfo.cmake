
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/cd_core.cc" "src/vm/CMakeFiles/cdmm_vm.dir/cd_core.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/cd_core.cc.o.d"
  "/root/repo/src/vm/cd_policy.cc" "src/vm/CMakeFiles/cdmm_vm.dir/cd_policy.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/cd_policy.cc.o.d"
  "/root/repo/src/vm/curves.cc" "src/vm/CMakeFiles/cdmm_vm.dir/curves.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/curves.cc.o.d"
  "/root/repo/src/vm/damped_ws.cc" "src/vm/CMakeFiles/cdmm_vm.dir/damped_ws.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/damped_ws.cc.o.d"
  "/root/repo/src/vm/fixed_alloc.cc" "src/vm/CMakeFiles/cdmm_vm.dir/fixed_alloc.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/fixed_alloc.cc.o.d"
  "/root/repo/src/vm/pff.cc" "src/vm/CMakeFiles/cdmm_vm.dir/pff.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/pff.cc.o.d"
  "/root/repo/src/vm/policy_spec.cc" "src/vm/CMakeFiles/cdmm_vm.dir/policy_spec.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/policy_spec.cc.o.d"
  "/root/repo/src/vm/stack_distance.cc" "src/vm/CMakeFiles/cdmm_vm.dir/stack_distance.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/stack_distance.cc.o.d"
  "/root/repo/src/vm/vmin.cc" "src/vm/CMakeFiles/cdmm_vm.dir/vmin.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/vmin.cc.o.d"
  "/root/repo/src/vm/working_set.cc" "src/vm/CMakeFiles/cdmm_vm.dir/working_set.cc.o" "gcc" "src/vm/CMakeFiles/cdmm_vm.dir/working_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/cdmm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cdmm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
