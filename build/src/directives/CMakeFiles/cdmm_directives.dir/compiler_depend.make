# Empty compiler generated dependencies file for cdmm_directives.
# This may be replaced when dependencies are built.
