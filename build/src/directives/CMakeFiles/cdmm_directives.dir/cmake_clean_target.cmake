file(REMOVE_RECURSE
  "libcdmm_directives.a"
)
