file(REMOVE_RECURSE
  "CMakeFiles/cdmm_directives.dir/plan.cc.o"
  "CMakeFiles/cdmm_directives.dir/plan.cc.o.d"
  "libcdmm_directives.a"
  "libcdmm_directives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_directives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
