file(REMOVE_RECURSE
  "CMakeFiles/cdmm_support.dir/ascii_plot.cc.o"
  "CMakeFiles/cdmm_support.dir/ascii_plot.cc.o.d"
  "CMakeFiles/cdmm_support.dir/check.cc.o"
  "CMakeFiles/cdmm_support.dir/check.cc.o.d"
  "CMakeFiles/cdmm_support.dir/result.cc.o"
  "CMakeFiles/cdmm_support.dir/result.cc.o.d"
  "CMakeFiles/cdmm_support.dir/source_location.cc.o"
  "CMakeFiles/cdmm_support.dir/source_location.cc.o.d"
  "CMakeFiles/cdmm_support.dir/stats.cc.o"
  "CMakeFiles/cdmm_support.dir/stats.cc.o.d"
  "CMakeFiles/cdmm_support.dir/str.cc.o"
  "CMakeFiles/cdmm_support.dir/str.cc.o.d"
  "CMakeFiles/cdmm_support.dir/table.cc.o"
  "CMakeFiles/cdmm_support.dir/table.cc.o.d"
  "libcdmm_support.a"
  "libcdmm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdmm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
