# Empty dependencies file for cdmm_support.
# This may be replaced when dependencies are built.
