file(REMOVE_RECURSE
  "libcdmm_support.a"
)
