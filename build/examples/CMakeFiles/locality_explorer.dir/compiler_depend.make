# Empty compiler generated dependencies file for locality_explorer.
# This may be replaced when dependencies are built.
