file(REMOVE_RECURSE
  "CMakeFiles/estimate_accuracy.dir/estimate_accuracy.cc.o"
  "CMakeFiles/estimate_accuracy.dir/estimate_accuracy.cc.o.d"
  "estimate_accuracy"
  "estimate_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
