# Empty compiler generated dependencies file for estimate_accuracy.
# This may be replaced when dependencies are built.
