#include "src/analysis/loop_tree.h"

#include <algorithm>

#include "src/support/check.h"

namespace cdmm {

int64_t LoopNode::TripCount() const {
  CDMM_CHECK(loop != nullptr);
  if (!loop->lower.IsStatic() || !loop->upper.IsStatic()) {
    return -1;  // triangular loop: trip count depends on outer loop state
  }
  int64_t lo = loop->lower.value;
  int64_t hi = loop->upper.value;
  int64_t step = loop->step;
  CDMM_CHECK(step != 0);
  if (step > 0) {
    return hi >= lo ? (hi - lo) / step + 1 : 0;
  }
  return lo >= hi ? (lo - hi) / (-step) + 1 : 0;
}

LoopTree::LoopTree(const Program& program) : program_(&program) {
  by_id_.resize(program.loop_count + 1, nullptr);
  for (const StmtPtr& s : program.body) {
    Build(*s, nullptr);
  }
  for (LoopNode* root : roots_) {
    max_depth_ = std::max(max_depth_, AssignPriority(*root));
  }
}

void LoopTree::Build(const Stmt& stmt, LoopNode* parent) {
  if (stmt.kind == Stmt::Kind::kAssign || stmt.kind == Stmt::Kind::kIf) {
    if (parent != nullptr) {
      parent->direct_assigns.push_back(&stmt);
      if (parent->segments.empty() || parent->segments.back().next_child != nullptr) {
        parent->segments.emplace_back();
      }
      parent->segments.back().assigns.push_back(&stmt);
    }
    return;
  }
  CDMM_CHECK(stmt.kind == Stmt::Kind::kDoLoop);
  auto node = std::make_unique<LoopNode>();
  node->loop = &stmt;
  node->loop_id = stmt.loop_id;
  node->parent = parent;
  node->level = parent == nullptr ? 1 : parent->level + 1;
  LoopNode* raw = node.get();
  nodes_.push_back(std::move(node));
  preorder_.push_back(raw);
  CDMM_CHECK_MSG(stmt.loop_id < by_id_.size() && by_id_[stmt.loop_id] == nullptr,
                 "duplicate or out-of-range loop id " << stmt.loop_id);
  by_id_[stmt.loop_id] = raw;
  if (parent == nullptr) {
    roots_.push_back(raw);
  } else {
    parent->children.push_back(raw);
    // Close the parent's current segment at this nested loop: a LOCK for the
    // preceding assignments would be inserted right before this loop.
    if (parent->segments.empty() || parent->segments.back().next_child != nullptr) {
      parent->segments.emplace_back();
    }
    parent->segments.back().next_child = raw;
  }
  for (const StmtPtr& s : stmt.body) {
    Build(*s, raw);
  }
}

// Procedure 1 of the paper assigns PI = 1 to every innermost loop and, moving
// outward, PI = max(child PI + 1, previously assigned PI). Evaluated over the
// whole nest this is exactly the subtree height, computed here bottom-up.
int LoopTree::AssignPriority(LoopNode& node) {
  int best = 0;
  for (LoopNode* child : node.children) {
    best = std::max(best, AssignPriority(*child));
  }
  node.priority_index = best + 1;
  return node.priority_index;
}

const LoopNode& LoopTree::node(uint32_t loop_id) const {
  CDMM_CHECK_MSG(loop_id < by_id_.size() && by_id_[loop_id] != nullptr,
                 "unknown loop id " << loop_id);
  return *by_id_[loop_id];
}

LoopNode& LoopTree::node(uint32_t loop_id) {
  CDMM_CHECK_MSG(loop_id < by_id_.size() && by_id_[loop_id] != nullptr,
                 "unknown loop id " << loop_id);
  return *by_id_[loop_id];
}

}  // namespace cdmm
