// Classification of array references relative to a loop: which subscripts
// vary where (the paper's Θ "order of reference" and Λ "level of reference"
// parameters, §2 items 4 and 5).
#ifndef CDMM_SRC_ANALYSIS_REFERENCE_CLASS_H_
#define CDMM_SRC_ANALYSIS_REFERENCE_CLASS_H_

#include <string>
#include <vector>

#include "src/analysis/loop_tree.h"
#include "src/lang/ast.h"

namespace cdmm {

// How one subscript behaves relative to a loop ℓ:
//   kConstant — literal subscript;
//   kOuter    — bound by a loop enclosing ℓ (fixed during one execution of ℓ);
//   kSelf     — bound by ℓ itself (advances once per ℓ iteration);
//   kInner    — bound by a loop nested inside ℓ (sweeps within one iteration).
enum class Variation : uint8_t { kConstant, kOuter, kSelf, kInner };

const char* VariationName(Variation v);

// The paper's Θ: traversal order of a reference at its own site (relative to
// the innermost loop that varies any of its subscripts).
enum class RefOrder : uint8_t {
  kVector,      // 1-D array
  kRowWise,     // column subscript varies fastest (strides across columns)
  kColumnWise,  // row subscript varies fastest (walks down a column)
  kDiagonal,    // both subscripts bound by the same (fastest) loop
  kInvariant,   // no subscript varies (all constant/outer at every level)
};

const char* RefOrderName(RefOrder order);

// A reference site: an ArrayRef together with the loop whose body directly
// contains it (nullptr when the statement is outside all loops).
struct RefSite {
  const ArrayRef* ref = nullptr;
  const LoopNode* site_loop = nullptr;
  const Stmt* stmt = nullptr;  // the assignment containing the reference
};

// Collects every reference site within `root`'s subtree (including `root`'s
// own direct assignments), in source order.
std::vector<RefSite> CollectRefSites(const LoopNode& root);

// Collects reference sites for the whole program (including statements
// outside any loop, with site_loop == nullptr).
std::vector<RefSite> CollectRefSites(const LoopTree& tree);

// Classifies subscript `index` of the reference at `site` relative to loop
// `relative_to`. `relative_to` must be `site.site_loop` or one of its
// ancestors. A subscript variable bound by a loop that encloses
// `relative_to` is kOuter; bound by `relative_to` is kSelf; bound by a loop
// on the chain strictly between `relative_to` and the site is kInner.
Variation ClassifySubscript(const IndexExpr& index, const RefSite& site,
                            const LoopNode& relative_to);

// Θ of a 2-D (or 1-D) reference at its own site: which subscript the
// innermost varying loop drives.
RefOrder ClassifyOrder(const RefSite& site);

// The loop on the site's enclosing chain binding `index`'s variable, or
// nullptr for constant subscripts. CHECK-fails if the variable is unbound
// (CheckProgram rejects such programs).
const LoopNode* SubscriptBinder(const IndexExpr& index, const RefSite& site);

}  // namespace cdmm

#endif  // CDMM_SRC_ANALYSIS_REFERENCE_CLASS_H_
