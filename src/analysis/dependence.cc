#include "src/analysis/dependence.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {

namespace {

// Brute-force cost ceiling: when the full iteration-pair space is at most
// this many points the solver verifies its analytic answer exhaustively,
// upgrading "assumed" to an exact answer (or to independence).
constexpr int64_t kBruteForceCap = 50000;

// Trip count of a DO loop: lo, lo+step, ... while headed toward hi.
int64_t TripCount(int64_t lo, int64_t hi, int64_t step) {
  CDMM_CHECK(step != 0);
  int64_t span = step > 0 ? hi - lo : lo - hi;
  if (span < 0) {
    return 0;
  }
  return span / (step > 0 ? step : -step) + 1;
}

int64_t Gcd(int64_t a, int64_t b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

struct Ival {
  int64_t lo = 0;
  int64_t hi = 0;
  bool empty() const { return lo > hi; }
};

// One term list of a dependence equation in normalized iteration space:
// sum(coef_i * inst_i) = rhs, at most two instances after merging.
struct Eq {
  // (instance id, coefficient) with distinct ids.
  std::vector<std::pair<int, int64_t>> terms;
  int64_t rhs = 0;
};

// min/max of a*x + b*y over the box [x.lo,x.hi] x [y.lo,y.hi], optionally
// intersected with the half-plane x <= y - 1 (coupled='<') or y <= x - 1
// (coupled='>'). All vertices of the clipped polygon have integer
// coordinates, so scanning candidate corner points is exact. Returns false
// when the region is empty.
bool MinMaxLinear(int64_t a, int64_t b, Ival x, Ival y, char coupled, int64_t* out_min,
                  int64_t* out_max) {
  if (x.empty() || y.empty()) {
    return false;
  }
  if (coupled == '>') {
    // Mirror to the '<' case.
    return MinMaxLinear(b, a, y, x, '<', out_min, out_max);
  }
  auto inside = [&](int64_t px, int64_t py) {
    if (px < x.lo || px > x.hi || py < y.lo || py > y.hi) {
      return false;
    }
    return coupled != '<' || px <= py - 1;
  };
  const int64_t cand[][2] = {
      {x.lo, y.lo},       {x.lo, y.hi},       {x.hi, y.lo},       {x.hi, y.hi},
      {x.lo, x.lo + 1},   {x.hi, x.hi + 1},   {y.lo - 1, y.lo},   {y.hi - 1, y.hi},
  };
  bool any = false;
  int64_t mn = 0;
  int64_t mx = 0;
  for (const auto& p : cand) {
    if (!inside(p[0], p[1])) {
      continue;
    }
    int64_t v = a * p[0] + b * p[1];
    if (!any || v < mn) {
      mn = v;
    }
    if (!any || v > mx) {
      mx = v;
    }
    any = true;
  }
  if (!any) {
    return false;
  }
  *out_min = mn;
  *out_max = mx;
  return true;
}

// Feasibility of one equation over instance intervals. `coupling[i]` pairs
// an instance with its partner under a strict direction ('<' or '>');
// 0 means uncoupled.
bool EqFeasible(const Eq& eq, const std::vector<Ival>& ivals,
                const std::vector<std::pair<int, char>>& coupling) {
  if (eq.terms.empty()) {
    return eq.rhs == 0;
  }
  if (eq.terms.size() == 1) {
    auto [xi, a] = eq.terms[0];
    if (a == 0) {
      return eq.rhs == 0;
    }
    if (eq.rhs % a != 0) {
      return false;
    }
    int64_t v = eq.rhs / a;
    return v >= ivals[xi].lo && v <= ivals[xi].hi;
  }
  CDMM_CHECK(eq.terms.size() == 2);
  auto [xi, a] = eq.terms[0];
  auto [yi, b] = eq.terms[1];
  int64_t g = Gcd(a, b);
  if (g != 0 && eq.rhs % g != 0) {
    return false;
  }
  char coupled = 0;
  if (coupling[xi].first == yi) {
    coupled = coupling[xi].second;
  }
  int64_t mn = 0;
  int64_t mx = 0;
  if (!MinMaxLinear(a, b, ivals[xi], ivals[yi], coupled, &mn, &mx)) {
    return false;
  }
  return eq.rhs >= mn && eq.rhs <= mx;
}

// Exhaustive inner oracle shared by BruteForceDirections and the solver's
// small-space refinement. Iterates every (src, dst) iteration pair, records
// the direction mask per common loop over pairs whose subscripts all match.
// `skip_all_equal` drops the identical-iteration pair (self dependence).
// When `carried_out` is non-null it receives, per common loop, whether some
// conflicting pair has its first non-'=' level there — the aggregated masks
// alone are not a product set, so carried levels cannot be re-derived from
// them afterwards.
std::optional<std::vector<uint8_t>> BruteForce(const DepProblem& p, bool skip_all_equal,
                                               std::vector<bool>* carried_out = nullptr) {
  size_t k = p.common.size();
  // Instance order: common src, common dst, src_only, dst_only.
  std::vector<const DepLoop*> loops;
  for (const DepLoop& l : p.common) {
    loops.push_back(&l);
  }
  for (const DepLoop& l : p.common) {
    loops.push_back(&l);
  }
  for (const DepLoop& l : p.src_only) {
    loops.push_back(&l);
  }
  for (const DepLoop& l : p.dst_only) {
    loops.push_back(&l);
  }
  for (const DepLoop* l : loops) {
    CDMM_CHECK(l->known);
  }
  std::vector<int64_t> iter(loops.size(), 0);  // iteration numbers
  std::vector<uint8_t> masks(k, 0);
  if (carried_out != nullptr) {
    carried_out->assign(k, false);
  }
  bool any = false;

  // Subscript evaluation: maps a variable to its instance's value.
  auto value_of = [&](const std::string& var, bool src_side) -> int64_t {
    for (size_t i = 0; i < k; ++i) {
      if (p.common[i].var == var) {
        const DepLoop& l = p.common[i];
        size_t inst = src_side ? i : k + i;
        return l.lo + iter[inst] * l.step;
      }
    }
    const std::vector<DepLoop>& side = src_side ? p.src_only : p.dst_only;
    size_t base = 2 * k + (src_side ? 0 : p.src_only.size());
    for (size_t i = 0; i < side.size(); ++i) {
      if (side[i].var == var) {
        return side[i].lo + iter[base + i] * side[i].step;
      }
    }
    CDMM_UNREACHABLE("unbound variable in dependence problem");
  };
  auto eval = [&](const LinExpr& e, bool src_side) {
    int64_t v = e.c;
    for (const LinTerm& t : e.terms) {
      v += t.coef * value_of(t.var, src_side);
    }
    return v;
  };

  auto visit = [&](auto&& self, size_t at) -> void {
    if (at == loops.size()) {
      bool all_eq_iter = true;
      for (size_t i = 0; i < k; ++i) {
        if (iter[i] != iter[k + i]) {
          all_eq_iter = false;
        }
      }
      if (skip_all_equal && all_eq_iter && p.src_only.empty() && p.dst_only.empty()) {
        return;
      }
      for (size_t d = 0; d < p.src_subs.size(); ++d) {
        if (eval(p.src_subs[d], true) != eval(p.dst_subs[d], false)) {
          return;
        }
      }
      any = true;
      for (size_t i = 0; i < k; ++i) {
        if (iter[i] < iter[k + i]) {
          masks[i] |= kDirLt;
        } else if (iter[i] == iter[k + i]) {
          masks[i] |= kDirEq;
        } else {
          masks[i] |= kDirGt;
        }
      }
      if (carried_out != nullptr) {
        for (size_t i = 0; i < k; ++i) {
          if (iter[i] != iter[k + i]) {
            (*carried_out)[i] = true;
            break;
          }
        }
      }
      return;
    }
    int64_t n = TripCount(loops[at]->lo, loops[at]->hi, loops[at]->step);
    for (int64_t i = 0; i < n; ++i) {
      iter[at] = i;
      self(self, at + 1);
    }
  };
  visit(visit, 0);
  if (!any) {
    return std::nullopt;
  }
  return masks;
}

// Total number of iteration pairs the brute-force oracle would visit, or -1
// on overflow / unknown bounds.
int64_t PairSpaceSize(const DepProblem& p) {
  int64_t total = 1;
  auto mul = [&](int64_t n) {
    if (total < 0 || n < 0) {
      total = -1;
      return;
    }
    if (n == 0) {
      total = 0;
      return;
    }
    if (total > kBruteForceCap / n + 1) {
      total = -1;
      return;
    }
    total *= n;
  };
  for (const DepLoop& l : p.common) {
    if (!l.known) {
      return -1;
    }
    int64_t n = TripCount(l.lo, l.hi, l.step);
    mul(n);
    mul(n);
  }
  for (const DepLoop& l : p.src_only) {
    if (!l.known) {
      return -1;
    }
    mul(TripCount(l.lo, l.hi, l.step));
  }
  for (const DepLoop& l : p.dst_only) {
    if (!l.known) {
      return -1;
    }
    mul(TripCount(l.lo, l.hi, l.step));
  }
  return total;
}

DepSolution AssumedAll(size_t k) {
  DepSolution s;
  s.result = DepResult::kAssumed;
  s.dir_masks.assign(k, kDirAll);
  s.carried.assign(k, true);
  s.test = "assumed";
  return s;
}

DepSolution IndependentSolution(const char* test) {
  DepSolution s;
  s.result = DepResult::kIndependent;
  s.test = test;
  return s;
}

// Derives carried levels from per-loop direction sets that are known to be
// a product set (each loop's directions independent): level p carries iff
// all outer levels admit '=' and level p admits a non-'=' direction.
std::vector<bool> CarriesFromProductMasks(const std::vector<uint8_t>& masks) {
  std::vector<bool> carried(masks.size(), false);
  bool outer_all_eq = true;
  for (size_t p = 0; p < masks.size(); ++p) {
    carried[p] = outer_all_eq && (masks[p] & (kDirLt | kDirGt)) != 0;
    outer_all_eq = outer_all_eq && (masks[p] & kDirEq) != 0;
  }
  return carried;
}

// The solver core; `self_pair` excludes the identical-iteration pair (a
// reference paired with itself).
DepSolution Solve(const DepProblem& p, bool self_pair) {
  const size_t k = p.common.size();
  const size_t dims = p.src_subs.size();
  CDMM_CHECK(dims == p.dst_subs.size());

  // Non-affine subscripts: the conservative edge.
  for (size_t d = 0; d < dims; ++d) {
    if (!p.src_subs[d].affine || !p.dst_subs[d].affine) {
      return AssumedAll(k);
    }
  }

  // A loop proven empty can never execute either reference.
  for (const DepLoop& l : p.common) {
    if (l.known && TripCount(l.lo, l.hi, l.step) == 0) {
      return IndependentSolution("ziv");
    }
  }
  for (const DepLoop& l : p.src_only) {
    if (l.known && TripCount(l.lo, l.hi, l.step) == 0) {
      return IndependentSolution("ziv");
    }
  }
  for (const DepLoop& l : p.dst_only) {
    if (l.known && TripCount(l.lo, l.hi, l.step) == 0) {
      return IndependentSolution("ziv");
    }
  }

  auto find_common = [&](const std::string& var) -> int {
    for (size_t i = 0; i < k; ++i) {
      if (p.common[i].var == var) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // ---- ZIV / strong-SIV pre-pass (value space; works for unknown bounds).
  // distance[i] = dst iteration - src iteration required by the subscripts,
  // when every dimension is ZIV or strong SIV on a common loop.
  bool pre_applies = true;
  bool any_siv = false;
  std::vector<bool> constrained(k, false);
  std::vector<int64_t> distance(k, 0);
  for (size_t d = 0; d < dims && pre_applies; ++d) {
    const LinExpr& s = p.src_subs[d];
    const LinExpr& t = p.dst_subs[d];
    if (s.terms.empty() && t.terms.empty()) {
      if (s.c != t.c) {
        return IndependentSolution("ziv");
      }
      continue;
    }
    if (s.terms.size() == 1 && t.terms.size() == 1 && s.terms[0].var == t.terms[0].var &&
        s.terms[0].coef == t.terms[0].coef && s.terms[0].coef != 0) {
      int ci = find_common(s.terms[0].var);
      if (ci < 0) {
        pre_applies = false;
        break;
      }
      // coef*(v - v') = t.c - s.c ; v - v' = step*(ksrc - kdst).
      int64_t num = t.c - s.c;
      int64_t coef = s.terms[0].coef;
      if (num % coef != 0) {
        return IndependentSolution("siv");
      }
      int64_t dv = num / coef;  // v_src - v_dst
      int64_t step = p.common[static_cast<size_t>(ci)].step;
      if (dv % step != 0) {
        return IndependentSolution("siv");
      }
      int64_t dist = -(dv / step);  // kdst - ksrc
      if (constrained[static_cast<size_t>(ci)] && distance[static_cast<size_t>(ci)] != dist) {
        return IndependentSolution("siv");
      }
      constrained[static_cast<size_t>(ci)] = true;
      distance[static_cast<size_t>(ci)] = dist;
      any_siv = true;
      continue;
    }
    pre_applies = false;
  }

  if (pre_applies) {
    DepSolution sol;
    sol.test = any_siv ? "siv" : "ziv";
    sol.dir_masks.assign(k, 0);
    bool exact = true;
    // A widened (exact=false) or symbolic side loop may execute zero
    // iterations, so the claimed witness pair need not exist; mirror the
    // space_exact check of the Banerjee refinement. (Known exact side loops
    // already passed the empty-trip check above, so they run at least once.)
    for (const DepLoop& l : p.src_only) {
      if (!l.known || !l.exact) {
        exact = false;
      }
    }
    for (const DepLoop& l : p.dst_only) {
      if (!l.known || !l.exact) {
        exact = false;
      }
    }
    for (size_t i = 0; i < k; ++i) {
      const DepLoop& l = p.common[i];
      int64_t n = l.known ? TripCount(l.lo, l.hi, l.step) : -1;
      if (!l.known || !l.exact) {
        exact = false;
      }
      if (constrained[i]) {
        int64_t d = distance[i];
        if (n >= 0 && (d > n - 1 || d < -(n - 1))) {
          return IndependentSolution(sol.test);
        }
        sol.dir_masks[i] = d > 0 ? kDirLt : d < 0 ? kDirGt : kDirEq;
      } else {
        sol.dir_masks[i] = kDirAll;
        if (n == 1) {
          sol.dir_masks[i] = kDirEq;
        }
      }
    }
    // A self pair needs some non-identical iteration pair to conflict.
    if (self_pair) {
      bool can_differ = false;
      for (size_t i = 0; i < k; ++i) {
        if ((sol.dir_masks[i] & (kDirLt | kDirGt)) != 0) {
          can_differ = true;
        }
      }
      if (!can_differ && p.src_only.empty() && p.dst_only.empty()) {
        return IndependentSolution(sol.test);
      }
    }
    sol.carried = CarriesFromProductMasks(sol.dir_masks);
    sol.has_distance = k > 0 && std::all_of(constrained.begin(), constrained.end(),
                                            [](bool b) { return b; });
    if (sol.has_distance) {
      sol.distances = distance;
    }
    sol.result = exact ? DepResult::kExact : DepResult::kAssumed;
    return sol;
  }

  // ---- General path: per-direction-vector GCD + Banerjee bounds over the
  // normalized iteration space. Requires known bounds on every loop.
  bool all_known = true;
  for (const DepLoop& l : p.common) {
    all_known = all_known && l.known;
  }
  for (const DepLoop& l : p.src_only) {
    all_known = all_known && l.known;
  }
  for (const DepLoop& l : p.dst_only) {
    all_known = all_known && l.known;
  }
  if (!all_known || k > 6) {
    return AssumedAll(k);
  }

  // Instance ids: common src = i, common dst = k+i, then src_only, dst_only.
  const size_t n_inst = 2 * k + p.src_only.size() + p.dst_only.size();
  std::vector<int64_t> trips(n_inst, 0);
  for (size_t i = 0; i < k; ++i) {
    trips[i] = trips[k + i] = TripCount(p.common[i].lo, p.common[i].hi, p.common[i].step);
  }
  for (size_t i = 0; i < p.src_only.size(); ++i) {
    trips[2 * k + i] = TripCount(p.src_only[i].lo, p.src_only[i].hi, p.src_only[i].step);
  }
  for (size_t i = 0; i < p.dst_only.size(); ++i) {
    trips[2 * k + p.src_only.size() + i] =
        TripCount(p.dst_only[i].lo, p.dst_only[i].hi, p.dst_only[i].step);
  }

  // Build per-dimension base equations over instance iteration numbers:
  // sum(coef * inst) = rhs, where a subscript term coef*var becomes
  // (coef*step)*inst and contributes coef*lo to the constant side.
  auto inst_of = [&](const std::string& var, bool src_side, int64_t* step,
                     int64_t* lo) -> int {
    int ci = find_common(var);
    if (ci >= 0) {
      *step = p.common[static_cast<size_t>(ci)].step;
      *lo = p.common[static_cast<size_t>(ci)].lo;
      return src_side ? ci : static_cast<int>(k) + ci;
    }
    const std::vector<DepLoop>& side = src_side ? p.src_only : p.dst_only;
    size_t base = 2 * k + (src_side ? 0 : p.src_only.size());
    for (size_t i = 0; i < side.size(); ++i) {
      if (side[i].var == var) {
        *step = side[i].step;
        *lo = side[i].lo;
        return static_cast<int>(base + i);
      }
    }
    return -1;
  };

  std::vector<Eq> base_eqs(dims);
  for (size_t d = 0; d < dims; ++d) {
    Eq& eq = base_eqs[d];
    eq.rhs = p.dst_subs[d].c - p.src_subs[d].c;
    bool ok = true;
    auto add_side = [&](const LinExpr& e, bool src_side, int64_t sign) {
      for (const LinTerm& t : e.terms) {
        int64_t step = 1;
        int64_t lo = 0;
        int inst = inst_of(t.var, src_side, &step, &lo);
        if (inst < 0) {
          ok = false;
          return;
        }
        eq.terms.emplace_back(inst, sign * t.coef * step);
        eq.rhs -= sign * t.coef * lo;
      }
    };
    add_side(p.src_subs[d], true, 1);
    add_side(p.dst_subs[d], false, -1);
    if (!ok) {
      return AssumedAll(k);  // a subscript var not bound by a listed loop
    }
  }

  // Enumerate direction vectors.
  std::vector<uint8_t> masks(k, 0);
  std::vector<bool> carried(k, false);
  bool any_feasible = false;
  std::vector<char> dirs(k, '<');
  const char kDirs[3] = {'<', '=', '>'};
  size_t combos = 1;
  for (size_t i = 0; i < k; ++i) {
    combos *= 3;
  }
  for (size_t c = 0; c < combos; ++c) {
    size_t rem = c;
    for (size_t i = 0; i < k; ++i) {
      dirs[i] = kDirs[rem % 3];
      rem /= 3;
    }
    if (self_pair && p.src_only.empty() && p.dst_only.empty() &&
        std::all_of(dirs.begin(), dirs.end(), [](char d) { return d == '='; })) {
      continue;
    }

    // Instance intervals (iteration numbers), tightened by the directions;
    // '=' merges the dst instance into the src instance.
    std::vector<Ival> ivals(n_inst);
    std::vector<int> remap(n_inst);
    std::vector<std::pair<int, char>> coupling(n_inst, {-1, 0});
    for (size_t i = 0; i < n_inst; ++i) {
      ivals[i] = Ival{0, trips[i] - 1};
      remap[i] = static_cast<int>(i);
    }
    bool region_empty = false;
    for (size_t i = 0; i < k; ++i) {
      int s = static_cast<int>(i);
      int t = static_cast<int>(k + i);
      if (dirs[i] == '=') {
        remap[static_cast<size_t>(t)] = s;
      } else if (dirs[i] == '<') {
        ivals[static_cast<size_t>(s)].hi = std::min(ivals[static_cast<size_t>(s)].hi,
                                                    ivals[static_cast<size_t>(t)].hi - 1);
        ivals[static_cast<size_t>(t)].lo = std::max(ivals[static_cast<size_t>(t)].lo,
                                                    ivals[static_cast<size_t>(s)].lo + 1);
        coupling[static_cast<size_t>(s)] = {t, '<'};
        coupling[static_cast<size_t>(t)] = {s, '>'};
      } else {
        ivals[static_cast<size_t>(s)].lo = std::max(ivals[static_cast<size_t>(s)].lo,
                                                    ivals[static_cast<size_t>(t)].lo + 1);
        ivals[static_cast<size_t>(t)].hi = std::min(ivals[static_cast<size_t>(t)].hi,
                                                    ivals[static_cast<size_t>(s)].hi - 1);
        coupling[static_cast<size_t>(s)] = {t, '>'};
        coupling[static_cast<size_t>(t)] = {s, '<'};
      }
      if (ivals[static_cast<size_t>(s)].empty() || ivals[static_cast<size_t>(t)].empty()) {
        region_empty = true;
      }
    }
    if (region_empty) {
      continue;
    }

    bool feasible = true;
    for (size_t d = 0; d < dims && feasible; ++d) {
      // Merge terms through the remap.
      Eq eq;
      eq.rhs = base_eqs[d].rhs;
      for (const auto& [inst, coef] : base_eqs[d].terms) {
        int m = remap[static_cast<size_t>(inst)];
        bool merged = false;
        for (auto& [mi, mc] : eq.terms) {
          if (mi == m) {
            mc += coef;
            merged = true;
          }
        }
        if (!merged) {
          eq.terms.emplace_back(m, coef);
        }
      }
      eq.terms.erase(std::remove_if(eq.terms.begin(), eq.terms.end(),
                                    [](const std::pair<int, int64_t>& t) {
                                      return t.second == 0;
                                    }),
                     eq.terms.end());
      feasible = EqFeasible(eq, ivals, coupling);
    }
    if (!feasible) {
      continue;
    }
    any_feasible = true;
    size_t first_neq = k;
    for (size_t i = 0; i < k; ++i) {
      masks[i] |= dirs[i] == '<' ? kDirLt : dirs[i] == '=' ? kDirEq : kDirGt;
      if (first_neq == k && dirs[i] != '=') {
        first_neq = i;
      }
    }
    if (first_neq < k) {
      carried[first_neq] = true;
    }
  }

  if (!any_feasible) {
    return IndependentSolution("banerjee");
  }

  DepSolution sol;
  sol.dir_masks = masks;
  sol.carried = carried;
  sol.test = "banerjee";
  sol.result = DepResult::kAssumed;

  // Small-space refinement: settle the answer exhaustively when cheap, which
  // also makes the analytic result bit-identical to the oracle.
  bool space_exact = true;
  for (const DepLoop& l : p.common) {
    space_exact = space_exact && l.exact;
  }
  for (const DepLoop& l : p.src_only) {
    space_exact = space_exact && l.exact;
  }
  for (const DepLoop& l : p.dst_only) {
    space_exact = space_exact && l.exact;
  }
  int64_t space = PairSpaceSize(p);
  if (space_exact && space >= 0 && space <= kBruteForceCap) {
    std::vector<bool> oracle_carried;
    auto oracle = BruteForce(p, self_pair, &oracle_carried);
    if (!oracle.has_value()) {
      return IndependentSolution("banerjee");
    }
    sol.dir_masks = *oracle;
    // Use the per-pair carried levels the oracle recorded: the aggregated
    // masks may combine several direction vectors (e.g. (<,>) and (=,=)),
    // so CarriesFromProductMasks would spuriously mark inner levels.
    sol.carried = oracle_carried;
    sol.result = DepResult::kExact;
  }
  return sol;
}

}  // namespace

int64_t LinExpr::CoefOf(const std::string& var) const {
  for (const LinTerm& t : terms) {
    if (t.var == var) {
      return t.coef;
    }
  }
  return 0;
}

std::string DirMaskToString(uint8_t mask) {
  if (mask == kDirAll) {
    return "*";
  }
  std::string out;
  if ((mask & kDirLt) != 0) {
    out += '<';
  }
  if ((mask & kDirEq) != 0) {
    out += '=';
  }
  if ((mask & kDirGt) != 0) {
    out += '>';
  }
  return out.empty() ? "none" : out;
}

DepSolution SolveDependence(const DepProblem& problem) {
  return Solve(problem, /*self_pair=*/false);
}

std::optional<std::vector<uint8_t>> BruteForceDirections(const DepProblem& problem) {
  return BruteForce(problem, /*skip_all_equal=*/false);
}

namespace {

// Value range of one loop's variable across a full execution, with
// triangular bounds resolved through ancestors (widened, exact=false).
struct VarRange {
  int64_t min = 0;
  int64_t max = 0;
  bool known = false;
  bool exact = false;
};

struct LoopInfo {
  VarRange values;   // the loop variable's value range
  int64_t lo = 0;    // (possibly widened) DO start value
  int64_t hi = 0;    // (possibly widened) DO limit value
  bool known = false;
  bool exact = false;
};

void ComputeLoopInfo(const LoopNode* node, std::map<uint32_t, LoopInfo>* out) {
  const Stmt& loop = *node->loop;
  auto resolve = [&](const LoopBound& b, bool pick_min, int64_t* v) -> bool {
    if (b.IsStatic()) {
      *v = b.value;
      return true;
    }
    for (const LoopNode* a = node->parent; a != nullptr; a = a->parent) {
      if (a->loop->loop_var == b.spelling) {
        const LoopInfo& ai = out->at(a->loop_id);
        if (!ai.values.known) {
          return false;
        }
        *v = pick_min ? ai.values.min : ai.values.max;
        return true;
      }
    }
    return false;
  };
  LoopInfo info;
  info.exact = loop.lower.IsStatic() && loop.upper.IsStatic();
  // Widen toward the larger iteration space: for a positive step take the
  // smallest possible start and largest possible limit (mirrored for
  // negative steps), so the range is a superset of the true one.
  bool fwd = loop.step > 0;
  int64_t lo = 0;
  int64_t hi = 0;
  bool lo_ok = resolve(loop.lower, /*pick_min=*/fwd, &lo);
  bool hi_ok = resolve(loop.upper, /*pick_min=*/!fwd, &hi);
  info.known = lo_ok && hi_ok;
  if (info.known) {
    info.lo = lo;
    info.hi = hi;
    int64_t n = TripCount(lo, hi, loop.step);
    if (n > 0) {
      int64_t last = lo + (n - 1) * loop.step;
      info.values = VarRange{std::min(lo, last), std::max(lo, last), true, info.exact};
    } else {
      info.values = VarRange{lo, lo - 1, true, info.exact};  // empty
    }
  }
  (*out)[node->loop_id] = info;
  for (const LoopNode* c : node->children) {
    ComputeLoopInfo(c, out);
  }
}

// Finds the loop in `stack` (ids, outermost first) binding `var`.
const LoopNode* BindingLoop(const LoopTree& tree, const std::vector<uint32_t>& stack,
                            const std::string& var) {
  for (uint32_t id : stack) {
    if (tree.node(id).loop->loop_var == var) {
      return &tree.node(id);
    }
  }
  return nullptr;
}

DepLoop MakeDepLoop(const LoopNode& node, const std::map<uint32_t, LoopInfo>& infos) {
  const LoopInfo& info = infos.at(node.loop_id);
  DepLoop l;
  l.var = node.loop->loop_var;
  l.step = node.loop->step;
  l.loop_id = node.loop_id;
  l.known = info.known;
  l.exact = info.exact;
  if (info.known) {
    l.lo = info.lo;
    l.hi = info.hi;
  }
  return l;
}

LinExpr MakeSubscript(const IndexExpr& ix, const std::vector<uint32_t>& stack,
                      const LoopTree& tree) {
  LinExpr e;
  if (ix.IsIndirect()) {
    e.affine = false;
    return e;
  }
  e.c = ix.offset;
  if (!ix.var.empty()) {
    if (BindingLoop(tree, stack, ix.var) == nullptr) {
      e.affine = false;  // unbound variable; be conservative
      return e;
    }
    e.terms.push_back(LinTerm{ix.var, 1});
  }
  return e;
}

const char* DepResultName(DepResult r) {
  switch (r) {
    case DepResult::kIndependent:
      return "independent";
    case DepResult::kExact:
      return "exact";
    case DepResult::kAssumed:
      return "assumed";
  }
  return "?";
}

}  // namespace

DependenceGraph DependenceGraph::Build(const Program& program, const LoopTree& tree) {
  TELEM_SPAN("graph_build", "dep");
  DependenceGraph g;
  g.program_ = &program;

  std::map<uint32_t, LoopInfo> infos;
  for (const LoopNode* root : tree.roots()) {
    ComputeLoopInfo(root, &infos);
  }

  // Collect reference sites in program order, with their loop stacks.
  std::vector<uint32_t> stack;
  auto walk = [&](const Stmt& stmt, auto&& self) -> void {
    if (stmt.kind == Stmt::Kind::kDoLoop) {
      stack.push_back(stmt.loop_id);
      for (const StmtPtr& c : stmt.body) {
        self(*c, self);
      }
      stack.pop_back();
      return;
    }
    if (stmt.kind != Stmt::Kind::kAssign && stmt.kind != Stmt::Kind::kIf) {
      return;
    }
    const Stmt& assign = stmt.kind == Stmt::Kind::kIf ? *stmt.if_then : stmt;
    const ArrayRef* write_ref =
        assign.lhs_array.has_value() ? &*assign.lhs_array : nullptr;
    for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
      DepSite site;
      site.ref = ref;
      site.access = ref == write_ref ? DepAccess::kWrite : DepAccess::kRead;
      site.loop_stack = stack;
      site.location = ref->location;
      site.array = ref->name;
      g.sites_.push_back(std::move(site));
    }
  };
  for (const StmtPtr& s : program.body) {
    walk(*s, walk);
  }

  // Test every same-array pair with at least one write and a shared loop.
  for (size_t i = 0; i < g.sites_.size(); ++i) {
    for (size_t j = i; j < g.sites_.size(); ++j) {
      const DepSite& a = g.sites_[i];
      const DepSite& b = g.sites_[j];
      if (a.array != b.array) {
        continue;
      }
      bool has_write = a.access == DepAccess::kWrite || b.access == DepAccess::kWrite;
      if (!has_write) {
        continue;
      }
      bool self_pair = i == j;
      if (self_pair && a.access != DepAccess::kWrite) {
        continue;
      }
      size_t prefix = 0;
      while (prefix < a.loop_stack.size() && prefix < b.loop_stack.size() &&
             a.loop_stack[prefix] == b.loop_stack[prefix]) {
        ++prefix;
      }
      if (prefix == 0) {
        continue;  // cross-nest ordering is the scheduler's concern
      }

      DepProblem problem;
      for (size_t l = 0; l < prefix; ++l) {
        problem.common.push_back(MakeDepLoop(tree.node(a.loop_stack[l]), infos));
      }
      for (size_t l = prefix; l < a.loop_stack.size(); ++l) {
        problem.src_only.push_back(MakeDepLoop(tree.node(a.loop_stack[l]), infos));
      }
      if (!self_pair) {
        for (size_t l = prefix; l < b.loop_stack.size(); ++l) {
          problem.dst_only.push_back(MakeDepLoop(tree.node(b.loop_stack[l]), infos));
        }
      }
      size_t dims = std::min(a.ref->indices.size(), b.ref->indices.size());
      for (size_t d = 0; d < dims; ++d) {
        problem.src_subs.push_back(MakeSubscript(a.ref->indices[d], a.loop_stack, tree));
        problem.dst_subs.push_back(MakeSubscript(b.ref->indices[d], b.loop_stack, tree));
      }

      DepSolution sol = Solve(problem, self_pair);
      g.problems_.emplace_back(i, j, problem);
      ++g.stats_.tests_run;
      switch (sol.result) {
        case DepResult::kIndependent:
          ++g.stats_.tests_independent;
          continue;
        case DepResult::kExact:
          ++g.stats_.tests_exact;
          break;
        case DepResult::kAssumed:
          ++g.stats_.tests_assumed;
          break;
      }
      DepEdge edge;
      edge.array = a.array;
      edge.src_site = i;
      edge.dst_site = j;
      edge.result = sol.result;
      edge.dir_masks = sol.dir_masks;
      edge.carried = sol.carried;
      for (size_t l = 0; l < prefix; ++l) {
        edge.common_loops.push_back(a.loop_stack[l]);
      }
      edge.has_distance = sol.has_distance;
      edge.distances = sol.distances;
      edge.test = sol.test;
      g.edges_.push_back(std::move(edge));
    }
  }
  TELEM_COUNT_N("dep.tests_run", g.stats_.tests_run);
  TELEM_COUNT_N("dep.tests_exact", g.stats_.tests_exact);
  TELEM_COUNT_N("dep.tests_assumed", g.stats_.tests_assumed);
  TELEM_COUNT_N("dep.tests_independent", g.stats_.tests_independent);
  TELEM_COUNT_N("dep.edges_added", g.edges_.size());

  // Per-(loop, array) access-range summaries.
  for (const DepSite& site : g.sites_) {
    const ArrayDecl* decl = program.FindArray(site.array);
    if (decl == nullptr) {
      continue;
    }
    size_t dims = site.ref->indices.size();
    for (uint32_t loop_id : site.loop_stack) {
      AccessRange& r = g.ranges_[loop_id][site.array];
      r.array = site.array;
      if (r.dims.size() < dims) {
        r.dims.resize(dims);
      }
      r.any_write = r.any_write || site.access == DepAccess::kWrite;
      for (size_t d = 0; d < dims; ++d) {
        const IndexExpr& ix = site.ref->indices[d];
        int64_t extent = d == 0 ? decl->rows : decl->cols;
        int64_t mn = 1;
        int64_t mx = extent;
        bool known = false;
        if (ix.IsConstant()) {
          mn = mx = ix.offset;
          known = true;
        } else if (!ix.IsIndirect()) {
          const LoopNode* bind = BindingLoop(tree, site.loop_stack, ix.var);
          if (bind != nullptr) {
            const LoopInfo& info = infos.at(bind->loop_id);
            if (info.values.known && info.values.min <= info.values.max) {
              mn = info.values.min + ix.offset;
              mx = info.values.max + ix.offset;
              known = true;
            }
          }
        }
        AccessRange::Dim& dim = r.dims[d];
        if (dim.known && known) {
          dim.min = std::min(dim.min, mn);
          dim.max = std::max(dim.max, mx);
        } else if (known && dim.min == 0 && dim.max == 0 && !dim.known) {
          // First touch of this dimension.
          dim.min = mn;
          dim.max = mx;
          dim.known = true;
        } else if (!known) {
          dim.min = 1;
          dim.max = extent;
          dim.known = false;
        } else if (!dim.known) {
          // Already widened to the whole extent; keep it.
          dim.min = std::min(dim.min, mn);
          dim.max = std::max(dim.max, mx);
        }
      }
    }
  }
  return g;
}

bool DependenceGraph::CanParallelize(uint32_t loop_id) const {
  return BlockingEdge(loop_id) == nullptr;
}

const DepEdge* DependenceGraph::BlockingEdge(uint32_t loop_id) const {
  for (const DepEdge& e : edges_) {
    for (size_t p = 0; p < e.common_loops.size(); ++p) {
      if (e.common_loops[p] == loop_id && p < e.carried.size() && e.carried[p]) {
        return &e;
      }
    }
  }
  return nullptr;
}

const std::map<std::string, AccessRange>* DependenceGraph::RangesFor(uint32_t loop_id) const {
  auto it = ranges_.find(loop_id);
  return it == ranges_.end() ? nullptr : &it->second;
}

std::string DependenceGraph::ToText() const {
  std::ostringstream os;
  os << "dependence graph: " << sites_.size() << " site(s), " << edges_.size() << " edge(s)\n";
  for (size_t i = 0; i < sites_.size(); ++i) {
    const DepSite& s = sites_[i];
    os << "site " << i << ": " << (s.access == DepAccess::kWrite ? "write " : "read  ")
       << s.ref->ToString() << " loops [";
    for (size_t l = 0; l < s.loop_stack.size(); ++l) {
      os << (l > 0 ? " " : "") << s.loop_stack[l];
    }
    os << "] at " << s.location.line << ":" << s.location.column << "\n";
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    const DepEdge& d = edges_[e];
    os << "edge " << e << ": " << d.array << " site " << d.src_site << " -> site " << d.dst_site
       << " " << DepResultName(d.result) << " test=" << d.test << " dirs (";
    for (size_t p = 0; p < d.dir_masks.size(); ++p) {
      os << (p > 0 ? "," : "") << DirMaskToString(d.dir_masks[p]);
    }
    os << ") carried (";
    for (size_t p = 0; p < d.carried.size(); ++p) {
      os << (p > 0 ? "," : "") << (d.carried[p] ? "yes" : "no");
    }
    os << ")";
    if (d.has_distance) {
      os << " dist (";
      for (size_t p = 0; p < d.distances.size(); ++p) {
        os << (p > 0 ? "," : "") << d.distances[p];
      }
      os << ")";
    }
    os << "\n";
  }
  if (program_ != nullptr) {
    for (uint32_t id = 1; id <= program_->loop_count; ++id) {
      const DepEdge* blocker = BlockingEdge(id);
      os << "loop " << id << ": parallelizable=" << (blocker == nullptr ? "yes" : "no");
      if (blocker != nullptr) {
        os << " (blocked by " << blocker->array << " site " << blocker->src_site << " -> site "
           << blocker->dst_site << ", " << DepResultName(blocker->result) << ")";
      }
      os << "\n";
    }
  }
  for (const auto& [loop_id, by_array] : ranges_) {
    for (const auto& [array, r] : by_array) {
      os << "range loop " << loop_id << " " << array << ":";
      for (size_t d = 0; d < r.dims.size(); ++d) {
        os << " dim" << d + 1 << "=";
        if (r.dims[d].known) {
          os << "[" << r.dims[d].min << "," << r.dims[d].max << "]";
        } else {
          os << "[?]";
        }
      }
      os << (r.any_write ? " write" : " read") << "\n";
    }
  }
  return os.str();
}

std::string DependenceGraph::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"sites\": [";
  for (size_t i = 0; i < sites_.size(); ++i) {
    const DepSite& s = sites_[i];
    os << (i > 0 ? "," : "") << "\n    {\"id\": " << i << ", \"array\": \"" << s.array
       << "\", \"access\": \"" << (s.access == DepAccess::kWrite ? "write" : "read")
       << "\", \"ref\": \"" << s.ref->ToString() << "\", \"line\": " << s.location.line
       << ", \"column\": " << s.location.column << ", \"loops\": [";
    for (size_t l = 0; l < s.loop_stack.size(); ++l) {
      os << (l > 0 ? ", " : "") << s.loop_stack[l];
    }
    os << "]}";
  }
  os << "\n  ],\n  \"edges\": [";
  for (size_t e = 0; e < edges_.size(); ++e) {
    const DepEdge& d = edges_[e];
    os << (e > 0 ? "," : "") << "\n    {\"array\": \"" << d.array << "\", \"src\": " << d.src_site
       << ", \"dst\": " << d.dst_site << ", \"result\": \"" << DepResultName(d.result)
       << "\", \"test\": \"" << d.test << "\", \"dirs\": [";
    for (size_t p = 0; p < d.dir_masks.size(); ++p) {
      os << (p > 0 ? ", " : "") << "\"" << DirMaskToString(d.dir_masks[p]) << "\"";
    }
    os << "], \"carried\": [";
    for (size_t p = 0; p < d.carried.size(); ++p) {
      os << (p > 0 ? ", " : "") << (d.carried[p] ? "true" : "false");
    }
    os << "], \"loops\": [";
    for (size_t p = 0; p < d.common_loops.size(); ++p) {
      os << (p > 0 ? ", " : "") << d.common_loops[p];
    }
    os << "]";
    if (d.has_distance) {
      os << ", \"distances\": [";
      for (size_t p = 0; p < d.distances.size(); ++p) {
        os << (p > 0 ? ", " : "") << d.distances[p];
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n  ],\n  \"loops\": [";
  if (program_ != nullptr) {
    for (uint32_t id = 1; id <= program_->loop_count; ++id) {
      os << (id > 1 ? "," : "") << "\n    {\"id\": " << id << ", \"parallelizable\": "
         << (CanParallelize(id) ? "true" : "false") << "}";
    }
  }
  os << "\n  ],\n  \"ranges\": [";
  bool first = true;
  for (const auto& [loop_id, by_array] : ranges_) {
    for (const auto& [array, r] : by_array) {
      os << (first ? "" : ",") << "\n    {\"loop\": " << loop_id << ", \"array\": \"" << array
         << "\", \"write\": " << (r.any_write ? "true" : "false") << ", \"dims\": [";
      for (size_t d = 0; d < r.dims.size(); ++d) {
        os << (d > 0 ? ", " : "");
        if (r.dims[d].known) {
          os << "[" << r.dims[d].min << ", " << r.dims[d].max << "]";
        } else {
          os << "null";
        }
      }
      os << "]}";
      first = false;
    }
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace cdmm
