// Loop-nest tree over a parsed program, with the paper's two per-loop
// parameters: the nest level Λ (1 = outermost) and the priority index PI
// assigned by Procedure 1 (Figure 2 of the paper).
#ifndef CDMM_SRC_ANALYSIS_LOOP_TREE_H_
#define CDMM_SRC_ANALYSIS_LOOP_TREE_H_

#include <memory>
#include <vector>

#include "src/lang/ast.h"

namespace cdmm {

// One DO loop in the nest structure.
struct LoopNode {
  const Stmt* loop = nullptr;  // the kDoLoop statement (owned by the Program)
  LoopNode* parent = nullptr;  // nullptr for top-level loops
  std::vector<LoopNode*> children;

  uint32_t loop_id = 0;   // == loop->loop_id
  int level = 0;          // Λ: 1 for outermost, increasing inward
  int priority_index = 0; // PI from Procedure 1: 1 for innermost loops,
                          // 1 + max(children PI) otherwise (subtree height)

  // Assignments appearing directly in this loop's body, in source order.
  std::vector<const Stmt*> direct_assigns;

  // Algorithm 2 (LOCK insertion) needs the body split at nested loops: each
  // segment holds the assignments between the previous child loop (or the
  // loop head) and `next_child`. The trailing segment (next_child == nullptr)
  // is followed by the loop exit, so Algorithm 2 skips its INSERT.
  struct BodySegment {
    std::vector<const Stmt*> assigns;
    LoopNode* next_child = nullptr;
  };
  std::vector<BodySegment> segments;

  bool IsInnermost() const { return children.empty(); }

  // Δ of the subtree rooted here: the maximum nest depth, which equals this
  // node's priority index under Procedure 1.
  int subtree_depth() const { return priority_index; }

  // Number of iterations (trip count) of this loop; 0 for a zero-trip loop,
  // -1 when a bound is an enclosing loop's variable (triangular loop).
  int64_t TripCount() const;
};

// Owning loop-nest tree. Nodes are stable (unique_ptr storage); traversal
// helpers visit in preorder (source order).
class LoopTree {
 public:
  // Builds the tree and runs Procedure 1. `program` must outlive the tree
  // and must have passed CheckProgram.
  explicit LoopTree(const Program& program);

  const std::vector<LoopNode*>& roots() const { return roots_; }
  const Program& program() const { return *program_; }

  // All nodes in preorder.
  const std::vector<LoopNode*>& preorder() const { return preorder_; }

  // Lookup by loop id; CHECK-fails for unknown ids.
  const LoopNode& node(uint32_t loop_id) const;
  LoopNode& node(uint32_t loop_id);

  // Maximum nest depth Δ over the whole program (0 if there are no loops).
  int max_depth() const { return max_depth_; }

 private:
  void Build(const Stmt& stmt, LoopNode* parent);
  static int AssignPriority(LoopNode& node);

  const Program* program_;
  std::vector<std::unique_ptr<LoopNode>> nodes_;
  std::vector<LoopNode*> roots_;
  std::vector<LoopNode*> preorder_;
  std::vector<LoopNode*> by_id_;  // index = loop_id (slot 0 unused)
  int max_depth_ = 0;
};

}  // namespace cdmm

#endif  // CDMM_SRC_ANALYSIS_LOOP_TREE_H_
