// Analytic locality engine: WS(τ) and OPT(m) sweep curves computed from a
// loop-RLE reference string without ever expanding it. For a folded block
// (repeat N) the engine processes two iterations explicitly, proves the
// per-iteration histogram delta is iteration-invariant, and multiplies —
// so a loop contributing a billion references costs the same as one
// contributing a hundred. The histograms are value-identical to what
// OnePassWsSweep / OnePassOptSweep build by scanning the flat trace, and
// both finishes share MakeWsSweepPoint/MakeOptSweepPoint, so the curves are
// bit-identical (the cross-validation suite in tests/analytic_test.cc pins
// this on every builtin workload and on randomized affine nests).
//
//  - WS: one streaming walk of the node tree maintaining last-use times.
//    Inside a fold, iteration 2's gap/cap increments land in a delta
//    histogram merged back ×(N-1): every reference in iterations 2..N finds
//    its previous use exactly one iteration back at the same offset, so the
//    deltas repeat (the fold verification in LoopRleBuilder is precisely
//    the guarantee that iterations emit identical sequences).
//  - OPT: a compressed Mattson stack simulation. Folds of repeat >= 4 emit
//    iterations 1, 2 and N plus snapshot/marker pseudo-steps; at the marker
//    the engine checks that the stack after iteration 2 equals the stack
//    after iteration 1 with in-loop next-use keys advanced one iteration.
//    If so, iterations 3..N-1 provably repeat iteration 2's stack-depth
//    increments (comparisons between shifted in-loop keys and unshifted
//    out-of-loop keys are order-invariant) and are folded in O(1); if not,
//    the marker replays iteration 2's steps per remaining iteration with
//    shifted positions — still exact, just not length-independent.
//
// Non-affine programs (indirect subscripts) still get exact curves — their
// loops simply don't fold, so cost degrades to O(R) like the one-pass
// engines — plus a cheap bounded-error OPT envelope (OptBoundsSweep) whose
// reported error bound the adversarial tests verify: OPT lies between the
// compulsory-miss floor and the streaming-LRU ceiling for every m.
#ifndef CDMM_SRC_ANALYSIS_ANALYTIC_LOCALITY_H_
#define CDMM_SRC_ANALYSIS_ANALYTIC_LOCALITY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/analysis/symbolic_histogram.h"
#include "src/trace/loop_rle.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {

class AnalyticLocality {
 public:
  // Builds both curve models (WS histograms and the OPT stack-depth
  // histogram) from a folded reference string, in time proportional to the
  // stored — not expanded — size for affine programs. shared_ptr so cdmmc,
  // the serve cache and the scheduler can share one immutable model.
  static std::shared_ptr<const AnalyticLocality> Build(LoopRleTrace rle);

  const LoopRleTrace& rle() const { return rle_; }
  const RleBuildStats& stats() const { return rle_.stats(); }
  bool affine() const { return rle_.stats().affine; }
  uint64_t total_refs() const { return rle_.total_refs(); }
  uint32_t virtual_pages() const { return rle_.virtual_pages(); }
  uint32_t distinct_pages() const { return rle_.distinct_pages(); }
  const WsHistogram& ws_histogram() const { return ws_; }

  // Bit-identical to OnePassWsSweep(expanded trace, taus, options).
  std::vector<SweepPoint> WsSweep(const std::vector<uint64_t>& taus,
                                  const SimOptions& options = {}) const;

  // Bit-identical to OnePassOptSweep(expanded trace, max_frames, options).
  std::vector<SweepPoint> OptSweep(uint32_t max_frames, const SimOptions& options = {}) const;

  // Bounded-error OPT envelope for consumers that prefer a cheap streaming
  // answer over the exact stack simulation: for every m, true OPT faults lie
  // in [lower_faults, upper[m].faults] (Belady optimality bounds OPT by LRU
  // from above and by compulsory misses from below). max_error is the worst
  // half-width actually reported, and what analytic.error_bound records.
  struct OptBounds {
    std::vector<SweepPoint> upper;  // streaming-LRU curve, m = 1..max_frames
    uint64_t lower_faults = 0;      // compulsory (cold) misses
    uint64_t max_error = 0;         // max over m of upper faults - lower
  };
  OptBounds OptBoundsSweep(uint32_t max_frames, const SimOptions& options = {}) const;

 private:
  AnalyticLocality() = default;

  LoopRleTrace rle_;
  WsHistogram ws_;
  std::vector<uint64_t> opt_depth_hist_;  // unclamped stack-depth histogram
  uint64_t opt_cold_ = 0;
};

// Free-function spellings for SweepScheduler symmetry with the other
// engines' entry points.
std::vector<SweepPoint> AnalyticWsSweep(const AnalyticLocality& model,
                                        const std::vector<uint64_t>& taus,
                                        const SimOptions& options = {});
std::vector<SweepPoint> AnalyticOptSweep(const AnalyticLocality& model, uint32_t max_frames,
                                         const SimOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_ANALYSIS_ANALYTIC_LOCALITY_H_
