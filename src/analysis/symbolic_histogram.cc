#include "src/analysis/symbolic_histogram.h"

#include <algorithm>
#include <numeric>

#include "src/support/check.h"
#include "src/vm/sweep_engines.h"

namespace cdmm {

std::vector<std::pair<uint64_t, uint64_t>> SymbolicHistogram::Sorted() const {
  std::vector<std::pair<uint64_t, uint64_t>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SweepPoint> EvaluateWsCurve(const WsHistogram& hist,
                                        const std::vector<uint64_t>& taus,
                                        const SimOptions& options) {
  const uint64_t r = hist.refs;
  const uint64_t cold = hist.cold;
  const uint64_t total_pairs = hist.gaps.total();
  const uint64_t total_caps = hist.caps.total();
  CDMM_CHECK_MSG(total_caps == r, "cap histogram must hold one interval per reference");

  std::vector<std::pair<uint64_t, uint64_t>> gaps = hist.gaps.Sorted();
  std::vector<std::pair<uint64_t, uint64_t>> caps = hist.caps.Sorted();

  std::vector<SweepPoint> points(taus.size());
  std::vector<size_t> order(taus.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return taus[a] < taus[b]; });

  // Sparse twin of OnePassWsSweep's merged cursor traversal: the dense
  // arrays are indexed 0..r, every sparse key is <= r, so "advance while
  // key <= τ" consumes exactly the entries the dense cursors would.
  size_t g_cursor = 0;
  uint64_t pairs_le = 0;
  size_t k_cursor = 0;
  uint64_t caps_le = 0;
  uint64_t weighted_caps_le = 0;
  for (size_t idx : order) {
    uint64_t tau = taus[idx];
    CDMM_CHECK(tau >= 1);
    for (; g_cursor < gaps.size() && gaps[g_cursor].first <= tau; ++g_cursor) {
      pairs_le += gaps[g_cursor].second;
    }
    for (; k_cursor < caps.size() && caps[k_cursor].first <= tau; ++k_cursor) {
      weighted_caps_le += caps[k_cursor].second * caps[k_cursor].first;
      caps_le += caps[k_cursor].second;
    }
    uint64_t faults = cold + (total_pairs - pairs_le);
    uint64_t occupancy = r + weighted_caps_le + tau * (total_caps - caps_le);
    points[idx] = MakeWsSweepPoint(tau, r, faults, occupancy, options);
  }
  return points;
}

std::vector<SweepPoint> EvaluateOptCurve(const std::vector<uint64_t>& depth_hist, uint64_t cold,
                                         uint64_t refs, uint32_t max_frames,
                                         const SimOptions& options) {
  CDMM_CHECK_MSG(max_frames >= 1, "fixed partition needs at least one frame");
  // faults(m) = cold + Σ_{d > m} depth_hist[d]; start the running suffix
  // with every depth beyond max_frames (the one-pass engine folds those
  // into its clamped max_frames + 1 bucket).
  uint64_t running = cold;
  for (size_t d = static_cast<size_t>(max_frames) + 1; d < depth_hist.size(); ++d) {
    running += depth_hist[d];
  }
  std::vector<uint64_t> faults_at(static_cast<size_t>(max_frames) + 1, 0);
  for (uint32_t m = max_frames; m >= 1; --m) {
    faults_at[m] = running;
    if (m < depth_hist.size()) {
      running += depth_hist[m];
    }
  }
  std::vector<SweepPoint> points;
  points.reserve(max_frames);
  for (uint32_t m = 1; m <= max_frames; ++m) {
    points.push_back(MakeOptSweepPoint(m, refs, faults_at[m], options));
  }
  return points;
}

}  // namespace cdmm
