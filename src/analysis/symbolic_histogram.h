// Sparse histograms over 64-bit keys plus the curve evaluators that turn
// them into sweep points. The analytic locality engine builds the same two
// Denning–Slutz histograms OnePassWsSweep scans a flat trace for — gaps
// (inter-reference intervals) and caps (occupancy saturation distances) —
// but keyed sparsely, since a folded loop contributes one (key, count) class
// per distinct reuse distance instead of one increment per reference. The
// evaluators mirror the one-pass finish arithmetic through the shared
// MakeWsSweepPoint/MakeOptSweepPoint makers, so identical histograms yield
// bit-identical SweepPoints by construction.
#ifndef CDMM_SRC_ANALYSIS_SYMBOLIC_HISTOGRAM_H_
#define CDMM_SRC_ANALYSIS_SYMBOLIC_HISTOGRAM_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {

class SymbolicHistogram {
 public:
  void Add(uint64_t key, uint64_t count = 1) {
    counts_[key] += count;
    total_ += count;
  }

  // this += other * scale; how a folded loop's per-iteration delta histogram
  // accounts for all remaining iterations at once.
  void MergeScaled(const SymbolicHistogram& other, uint64_t scale) {
    if (scale == 0) {
      return;
    }
    for (const auto& [key, count] : other.counts_) {
      counts_[key] += count * scale;
    }
    total_ += other.total_ * scale;
  }

  uint64_t total() const { return total_; }
  size_t classes() const { return counts_.size(); }

  // (key, count) pairs sorted by key, for cursor-style curve evaluation.
  std::vector<std::pair<uint64_t, uint64_t>> Sorted() const;

 private:
  std::unordered_map<uint64_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

// The full WS input: gap and cap histograms plus the two scalars the curve
// needs. Matches OnePassWsSweep's dense arrays value for value:
// gaps[g] = #consecutive-use pairs at distance g, caps[k] = #residency
// intervals saturating at min(k, τ) + 1 instants, cold = distinct pages.
struct WsHistogram {
  SymbolicHistogram gaps;
  SymbolicHistogram caps;
  uint64_t refs = 0;
  uint64_t cold = 0;
};

// Evaluates the WS characteristic at every τ in `taus` (each >= 1, any
// order, duplicates allowed); points[i] corresponds to taus[i] and is bit
// for bit what OnePassWsSweep produces from the same histograms.
std::vector<SweepPoint> EvaluateWsCurve(const WsHistogram& hist,
                                        const std::vector<uint64_t>& taus,
                                        const SimOptions& options = {});

// Evaluates faults(m) for m = 1..max_frames from an (unclamped) OPT stack
// depth histogram: depth_hist[d] = #references hitting at stack depth d,
// cold = compulsory misses. Bit for bit OnePassOptSweep's suffix-sum finish.
std::vector<SweepPoint> EvaluateOptCurve(const std::vector<uint64_t>& depth_hist, uint64_t cold,
                                         uint64_t refs, uint32_t max_frames,
                                         const SimOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_ANALYSIS_SYMBOLIC_HISTOGRAM_H_
