#include "src/analysis/analytic_locality.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/support/check.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace {

// ---------------------------------------------------------------------------
// WS: symbolic Denning–Slutz histograms by streaming the node tree.
//
// A reference at expanded time t to a page last used at u contributes
// gaps[t-u] and caps[t-u-1] (the one-pass engine attributes the pair at the
// earlier endpoint, this walk at the later one — same multiset). Inside a
// folded block the increments of iteration 2 are collected in a delta
// histogram and merged back scaled by repeat-1: every iteration k >= 2 sees
// its previous uses exactly one iteration back at the same offsets, so all
// of them contribute the same delta. Skipped iterations advance the clock
// and the touched pages' last-use times by (repeat-2) * iteration length.
// ---------------------------------------------------------------------------
class WsModelBuilder {
 public:
  explicit WsModelBuilder(const LoopRleTrace& rle) : rle_(rle) {}

  WsHistogram Build() {
    sinks_.emplace_back();
    for (uint32_t root : rle_.roots()) {
      ProcessNode(root);
    }
    CDMM_CHECK(sinks_.size() == 1);
    CDMM_CHECK_MSG(clock_ == rle_.total_refs(), "RLE ref accounting out of sync");

    WsHistogram hist;
    hist.gaps = std::move(sinks_.back().gaps);
    hist.caps = std::move(sinks_.back().caps);
    hist.refs = rle_.total_refs();
    hist.cold = last_use_.size();
    // Tail interval of each page's final use at time u: caps key R - 1 - u.
    for (const auto& [page, u] : last_use_) {
      (void)page;
      hist.caps.Add(rle_.total_refs() - 1 - u);
    }
    CDMM_CHECK(hist.caps.total() == hist.refs);
    return hist;
  }

 private:
  struct Sink {
    SymbolicHistogram gaps;
    SymbolicHistogram caps;
  };

  void Ref(PageId page) {
    uint64_t t = clock_++;
    auto [it, inserted] = last_use_.try_emplace(page, t);
    if (!inserted) {
      uint64_t gap = t - it->second;
      sinks_.back().gaps.Add(gap);
      sinks_.back().caps.Add(gap - 1);
      it->second = t;
    } else {
      // Iterations 2..N of a fold revisit iteration 1's pages, so a cold
      // touch can only happen outside any delta sink.
      CDMM_CHECK_MSG(sinks_.size() == 1, "cold reference inside a folded iteration");
    }
    if (!touched_.empty()) {
      touched_.back().insert(page);
    }
  }

  void EmitOnce(const LoopRleTrace::Node& node) {
    if (node.leaf) {
      for (uint32_t k = 0; k < node.count; ++k) {
        Ref(rle_.pages()[node.begin + k]);
      }
    } else {
      for (uint32_t k = 0; k < node.count; ++k) {
        ProcessNode(rle_.children()[node.begin + k]);
      }
    }
  }

  void ProcessNode(uint32_t id) {
    const LoopRleTrace::Node& node = rle_.nodes()[id];
    if (node.repeat == 1) {
      EmitOnce(node);
      return;
    }
    const uint64_t iter_len = node.refs / node.repeat;
    EmitOnce(node);  // iteration 1, into the enclosing sink
    sinks_.emplace_back();
    touched_.emplace_back();
    EmitOnce(node);  // iteration 2, into the delta sink
    Sink delta = std::move(sinks_.back());
    sinks_.pop_back();
    std::unordered_set<PageId> touched = std::move(touched_.back());
    touched_.pop_back();
    sinks_.back().gaps.MergeScaled(delta.gaps, node.repeat - 1);
    sinks_.back().caps.MergeScaled(delta.caps, node.repeat - 1);
    const uint64_t skip = (node.repeat - 2) * iter_len;
    clock_ += skip;
    for (PageId page : touched) {
      last_use_[page] += skip;
    }
  }

  const LoopRleTrace& rle_;
  uint64_t clock_ = 0;
  std::unordered_map<PageId, uint64_t> last_use_;
  std::vector<Sink> sinks_;
  // Pages referenced inside the innermost active fold's iteration 2 (outer
  // folds already saw the same pages during this fold's iteration 1).
  std::vector<std::unordered_set<PageId>> touched_;
};

// ---------------------------------------------------------------------------
// OPT: compressed Mattson stack simulation over a schedule of explicit
// iterations 1, 2 and N per fold, with snapshot/marker steps that fold
// iterations 3..N-1 once the iteration-2 stack transition is verified to be
// a pure one-iteration shift of in-loop next-use keys.
// ---------------------------------------------------------------------------
struct OptStep {
  enum class Kind : uint8_t { kRef, kSnapshot, kMarker };
  Kind kind = Kind::kRef;
  PageId page = 0;
  uint64_t pos = 0;       // kRef: expanded position; kMarker: loop base
  uint64_t next_use = 0;  // kRef: filled by the backward pass
  uint64_t iter_len = 0;  // kMarker
  uint64_t repeat = 0;    // kMarker
  uint32_t iter2_begin = 0;  // kMarker: schedule range of iteration 2
  uint32_t iter2_end = 0;
};

struct OptModel {
  std::vector<uint64_t> depth_hist;
  uint64_t cold = 0;
  uint64_t folds_verified = 0;
  uint64_t folds_replayed = 0;
};

class OptModelBuilder {
 public:
  explicit OptModelBuilder(const LoopRleTrace& rle) : rle_(rle), sentinel_(rle.total_refs()) {}

  OptModel Build() {
    uint64_t pos = 0;
    for (uint32_t root : rle_.roots()) {
      EmitNode(rle_.nodes()[root], pos);
    }
    CDMM_CHECK_MSG(pos == rle_.total_refs(), "RLE ref accounting out of sync");
    FillNextUses();
    Run(0, schedule_.size(), 0);
    CDMM_CHECK(snaps_.empty());

    OptModel model;
    model.depth_hist = std::move(hist_);
    model.cold = cold_;
    model.folds_verified = folds_verified_;
    model.folds_replayed = folds_replayed_;
    return model;
  }

 private:
  // A resident page's retention key: lexicographic (next use, page), the
  // same order as the one-pass engine's packed 64-bit key, but with a full
  // 64-bit next-use component so expanded positions beyond 2^32 still sort.
  struct Entry {
    uint64_t next_use = 0;
    PageId page = 0;
  };
  static bool EntryLess(const Entry& a, const Entry& b) {
    return a.next_use != b.next_use ? a.next_use < b.next_use : a.page < b.page;
  }

  struct Snap {
    std::vector<Entry> stack;
    std::vector<uint64_t> hist;
    uint64_t cold = 0;
  };

  void EmitOnce(const LoopRleTrace::Node& node, uint64_t& pos) {
    if (node.leaf) {
      for (uint32_t k = 0; k < node.count; ++k) {
        OptStep step;
        step.kind = OptStep::Kind::kRef;
        step.page = rle_.pages()[node.begin + k];
        step.pos = pos++;
        schedule_.push_back(step);
      }
    } else {
      for (uint32_t k = 0; k < node.count; ++k) {
        EmitNode(rle_.nodes()[rle_.children()[node.begin + k]], pos);
      }
    }
  }

  void EmitNode(const LoopRleTrace::Node& node, uint64_t& pos) {
    const uint64_t iter_len = node.refs / node.repeat;
    // Folding pays off only when at least one middle iteration is skipped;
    // repeats up to 3 are emitted in full (iterations 1, 2, N cover them).
    if (node.repeat <= 3 || iter_len == 0) {
      for (uint64_t rep = 0; rep < node.repeat; ++rep) {
        EmitOnce(node, pos);
      }
      return;
    }
    const uint64_t base = pos;
    EmitOnce(node, pos);  // iteration 1
    schedule_.push_back(OptStep{OptStep::Kind::kSnapshot, 0, 0, 0, 0, 0, 0, 0});
    uint32_t iter2_begin = static_cast<uint32_t>(schedule_.size());
    EmitOnce(node, pos);  // iteration 2
    OptStep marker;
    marker.kind = OptStep::Kind::kMarker;
    marker.pos = base;
    marker.iter_len = iter_len;
    marker.repeat = node.repeat;
    marker.iter2_begin = iter2_begin;
    marker.iter2_end = static_cast<uint32_t>(schedule_.size());
    schedule_.push_back(marker);
    pos = base + (node.repeat - 1) * iter_len;
    EmitOnce(node, pos);  // iteration N (its next uses leave the loop)
  }

  // Backward scan computing each reference's expanded next-use position.
  // `earliest` maps a page to its earliest known occurrence after the scan
  // point. Crossing a marker backward means the scan point moves from just
  // before iteration N to just after iteration 2, so occurrences inside
  // iteration N (only block pages can be there, and iteration N holds every
  // block page's earliest occurrence at that moment) translate back to
  // their iteration-3 positions.
  void FillNextUses() {
    std::unordered_map<PageId, uint64_t> earliest;
    for (size_t i = schedule_.size(); i-- > 0;) {
      OptStep& step = schedule_[i];
      if (step.kind == OptStep::Kind::kRef) {
        auto it = earliest.find(step.page);
        step.next_use = it == earliest.end() ? sentinel_ : it->second;
        earliest[step.page] = step.pos;
      } else if (step.kind == OptStep::Kind::kMarker) {
        const uint64_t last_lo = step.pos + (step.repeat - 1) * step.iter_len;
        const uint64_t last_hi = step.pos + step.repeat * step.iter_len;
        const uint64_t shift = (step.repeat - 3) * step.iter_len;
        for (auto& [page, at] : earliest) {
          (void)page;
          if (at >= last_lo && at < last_hi) {
            at -= shift;
          }
        }
      }
    }
  }

  void Bump(size_t depth) {
    if (hist_.size() <= depth) {
      hist_.resize(depth + 1, 0);
    }
    ++hist_[depth];
  }

  void ProcessRef(PageId page, uint64_t next_use) {
    Entry fresh{next_use, page};
    if (stack_.empty()) {
      stack_.push_back(fresh);
      ++cold_;
      return;
    }
    if (stack_[0].page == page) {
      stack_[0] = fresh;
      Bump(1);
      return;
    }
    Entry carry = stack_[0];
    stack_[0] = fresh;
    size_t j = 1;
    for (; j < stack_.size(); ++j) {
      if (stack_[j].page == page) {
        stack_[j] = carry;
        Bump(j + 1);
        break;
      }
      if (EntryLess(carry, stack_[j])) {
        std::swap(carry, stack_[j]);
      }
    }
    if (j == stack_.size()) {
      stack_.push_back(carry);
      ++cold_;
    }
  }

  // Executes schedule steps [begin, end) with every expanded coordinate
  // displaced by `offset` — 0 for the main pass, the iteration displacement
  // k * iter_len during marker replays.
  void Run(size_t begin, size_t end, uint64_t offset) {
    for (size_t i = begin; i < end; ++i) {
      const OptStep& step = schedule_[i];
      switch (step.kind) {
        case OptStep::Kind::kRef: {
          uint64_t next_use = step.next_use;
          if (next_use != sentinel_) {
            next_use += offset;
          }
          ProcessRef(step.page, next_use);
          break;
        }
        case OptStep::Kind::kSnapshot:
          snaps_.push_back(Snap{stack_, hist_, cold_});
          break;
        case OptStep::Kind::kMarker:
          RunMarker(step, offset);
          break;
      }
    }
  }

  void RunMarker(const OptStep& marker, uint64_t offset) {
    CDMM_CHECK(!snaps_.empty());
    Snap snap = std::move(snaps_.back());
    snaps_.pop_back();

    const uint64_t base = marker.pos + offset;
    const uint64_t iter_len = marker.iter_len;
    const uint64_t repeat = marker.repeat;
    const uint64_t loop_end = base + repeat * iter_len;
    auto in_loop = [&](uint64_t at) { return at >= base && at < loop_end; };

    // Iteration 2 must have transformed the stack into iteration 1's stack
    // with every in-loop retention key advanced exactly one iteration (and
    // no cold misses). Then, by induction, each of iterations 3..N-1 repeats
    // iteration 2's depth increments: comparisons among shifted in-loop
    // keys are translation-invariant, and in-loop keys stay below every
    // out-of-loop key before and after the shift.
    bool shiftable = stack_.size() == snap.stack.size() && cold_ == snap.cold;
    if (shiftable) {
      for (size_t d = 0; d < stack_.size(); ++d) {
        const Entry& now = stack_[d];
        const Entry& before = snap.stack[d];
        uint64_t expect =
            in_loop(before.next_use) ? before.next_use + iter_len : before.next_use;
        if (now.page != before.page || now.next_use != expect) {
          shiftable = false;
          break;
        }
      }
    }

    if (shiftable) {
      ++folds_verified_;
      if (snap.hist.size() < hist_.size()) {
        snap.hist.resize(hist_.size(), 0);
      }
      const uint64_t scale = repeat - 3;  // iterations 3..N-1
      for (size_t d = 0; d < hist_.size(); ++d) {
        hist_[d] += (hist_[d] - snap.hist[d]) * scale;
      }
      const uint64_t shift = scale * iter_len;
      for (Entry& entry : stack_) {
        if (in_loop(entry.next_use)) {
          entry.next_use += shift;
        }
      }
      return;
    }

    // Exact fallback: replay iteration 2's steps once per middle iteration,
    // displaced into place. All recorded next uses in the range point at
    // iterations 2/3, so the blanket displacement stays inside the loop.
    ++folds_replayed_;
    for (uint64_t k = 3; k + 1 <= repeat; ++k) {
      Run(marker.iter2_begin, marker.iter2_end, offset + (k - 2) * iter_len);
    }
  }

  const LoopRleTrace& rle_;
  const uint64_t sentinel_;
  std::vector<OptStep> schedule_;
  std::vector<Entry> stack_;
  std::vector<uint64_t> hist_;
  uint64_t cold_ = 0;
  std::vector<Snap> snaps_;
  uint64_t folds_verified_ = 0;
  uint64_t folds_replayed_ = 0;
};

}  // namespace

std::shared_ptr<const AnalyticLocality> AnalyticLocality::Build(LoopRleTrace rle) {
  auto model = std::shared_ptr<AnalyticLocality>(new AnalyticLocality());
  model->rle_ = std::move(rle);
  {
    TELEM_SPAN("analytic:histogram_build", "analytic");
    model->ws_ = WsModelBuilder(model->rle_).Build();
    OptModel opt = OptModelBuilder(model->rle_).Build();
    model->opt_depth_hist_ = std::move(opt.depth_hist);
    model->opt_cold_ = opt.cold;
    TELEM_COUNT_N("analytic.refs_modeled", model->rle_.total_refs());
    TELEM_COUNT_N("analytic.exact_classes", model->ws_.gaps.classes());
    TELEM_COUNT_N("analytic.fallback_classes", model->rle_.stats().unfoldable_loops);
    TELEM_COUNT_N("analytic.folds_applied", model->rle_.stats().folds_applied);
    TELEM_COUNT_N("analytic.opt_fold_verified", opt.folds_verified);
    TELEM_COUNT_N("analytic.opt_fold_replayed", opt.folds_replayed);
  }
  return model;
}

std::vector<SweepPoint> AnalyticLocality::WsSweep(const std::vector<uint64_t>& taus,
                                                  const SimOptions& options) const {
  return EvaluateWsCurve(ws_, taus, options);
}

std::vector<SweepPoint> AnalyticLocality::OptSweep(uint32_t max_frames,
                                                   const SimOptions& options) const {
  return EvaluateOptCurve(opt_depth_hist_, opt_cold_, rle_.total_refs(), max_frames, options);
}

AnalyticLocality::OptBounds AnalyticLocality::OptBoundsSweep(uint32_t max_frames,
                                                             const SimOptions& options) const {
  CDMM_CHECK(max_frames >= 1);
  // Streaming LRU stack distances over the (possibly chunk-streamed)
  // reference string: O(distinct pages) memory, never the flat trace.
  std::vector<PageId> lru;
  std::vector<uint64_t> hist;
  uint64_t cold = 0;
  rle_.ForEachRef([&](PageId page) {
    auto it = std::find(lru.begin(), lru.end(), page);
    if (it == lru.end()) {
      ++cold;
    } else {
      size_t depth = static_cast<size_t>(it - lru.begin()) + 1;
      if (hist.size() <= depth) {
        hist.resize(depth + 1, 0);
      }
      ++hist[depth];
      lru.erase(it);
    }
    lru.insert(lru.begin(), page);
  });

  OptBounds bounds;
  bounds.upper = EvaluateOptCurve(hist, cold, rle_.total_refs(), max_frames, options);
  bounds.lower_faults = cold;
  for (const SweepPoint& p : bounds.upper) {
    bounds.max_error = std::max(bounds.max_error, p.faults - cold);
  }
  TELEM_GAUGE_MAX("analytic.error_bound", bounds.max_error);
  return bounds;
}

std::vector<SweepPoint> AnalyticWsSweep(const AnalyticLocality& model,
                                        const std::vector<uint64_t>& taus,
                                        const SimOptions& options) {
  return model.WsSweep(taus, options);
}

std::vector<SweepPoint> AnalyticOptSweep(const AnalyticLocality& model, uint32_t max_frames,
                                         const SimOptions& options) {
  return model.OptSweep(max_frames, options);
}

}  // namespace cdmm
