#include "src/analysis/reference_class.h"

#include "src/support/check.h"

namespace cdmm {

const char* VariationName(Variation v) {
  switch (v) {
    case Variation::kConstant:
      return "constant";
    case Variation::kOuter:
      return "outer";
    case Variation::kSelf:
      return "self";
    case Variation::kInner:
      return "inner";
  }
  return "?";
}

const char* RefOrderName(RefOrder order) {
  switch (order) {
    case RefOrder::kVector:
      return "vector";
    case RefOrder::kRowWise:
      return "row-wise";
    case RefOrder::kColumnWise:
      return "column-wise";
    case RefOrder::kDiagonal:
      return "diagonal";
    case RefOrder::kInvariant:
      return "invariant";
  }
  return "?";
}

namespace {

void CollectFromNode(const LoopNode& node, std::vector<RefSite>* out) {
  for (const LoopNode::BodySegment& segment : node.segments) {
    for (const Stmt* stmt : segment.assigns) {
      for (const ArrayRef* ref : stmt->DirectArrayRefs()) {
        out->push_back(RefSite{ref, &node, stmt});
      }
    }
    if (segment.next_child != nullptr) {
      CollectFromNode(*segment.next_child, out);
    }
  }
}

// The subscript whose variable drives an index's variation: an indirect
// A(IDX(I)) varies exactly when the inner subscript I varies, so
// classification delegates to it (the *values* are unpredictable; only the
// variation pattern carries over).
const IndexExpr& Effective(const IndexExpr& index) {
  return index.IsIndirect() && index.indirect->indices.size() == 1 ? index.indirect->indices[0]
                                                                   : index;
}

// Finds the loop on the site's enclosing chain that binds `var`; nullptr if
// no enclosing loop binds it (CheckProgram rules this out for valid input).
const LoopNode* BindingLoop(const std::string& var, const LoopNode* site_loop) {
  for (const LoopNode* l = site_loop; l != nullptr; l = l->parent) {
    if (l->loop->loop_var == var) {
      return l;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<RefSite> CollectRefSites(const LoopNode& root) {
  std::vector<RefSite> sites;
  CollectFromNode(root, &sites);
  return sites;
}

std::vector<RefSite> CollectRefSites(const LoopTree& tree) {
  std::vector<RefSite> sites;
  tree.program().ForEachStmt([&](const Stmt& stmt) {
    if (stmt.kind != Stmt::Kind::kAssign && stmt.kind != Stmt::Kind::kIf) {
      return;
    }
    // Determine the directly-enclosing loop by scanning the tree: the
    // preorder nodes own their direct_assigns, so match by pointer.
    for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
      const LoopNode* site = nullptr;
      for (const LoopNode* node : tree.preorder()) {
        for (const Stmt* s : node->direct_assigns) {
          if (s == &stmt) {
            site = node;
            break;
          }
        }
        if (site != nullptr) {
          break;
        }
      }
      sites.push_back(RefSite{ref, site, &stmt});
    }
  });
  return sites;
}

const LoopNode* SubscriptBinder(const IndexExpr& raw_index, const RefSite& site) {
  const IndexExpr& index = Effective(raw_index);
  if (index.IsConstant()) {
    return nullptr;
  }
  const LoopNode* binder = BindingLoop(index.var, site.site_loop);
  CDMM_CHECK_MSG(binder != nullptr, "subscript variable " << index.var << " unbound at its site");
  return binder;
}

Variation ClassifySubscript(const IndexExpr& raw_index, const RefSite& site,
                            const LoopNode& relative_to) {
  const IndexExpr& index = Effective(raw_index);
  if (index.IsConstant()) {
    return Variation::kConstant;
  }
  const LoopNode* binder = BindingLoop(index.var, site.site_loop);
  CDMM_CHECK_MSG(binder != nullptr,
                 "subscript variable " << index.var << " unbound at its site");
  // An indirect subscript whose driver is the loop itself hops unpredictably
  // through the array rather than sliding: classify as kInner so locality
  // sizing charges the conservative full-extent contribution.
  if (raw_index.IsIndirect() && binder == &relative_to) {
    return Variation::kInner;
  }
  if (binder == &relative_to) {
    return Variation::kSelf;
  }
  // Walk up from `relative_to`: if we meet `binder`, it encloses ℓ => outer.
  for (const LoopNode* l = relative_to.parent; l != nullptr; l = l->parent) {
    if (l == binder) {
      return Variation::kOuter;
    }
  }
  // Otherwise the binder must lie strictly inside ℓ on the site's chain.
  for (const LoopNode* l = site.site_loop; l != nullptr && l != &relative_to; l = l->parent) {
    if (l == binder) {
      return Variation::kInner;
    }
  }
  CDMM_UNREACHABLE("subscript binder is neither inside nor outside the loop");
}

RefOrder ClassifyOrder(const RefSite& site) {
  const ArrayRef& ref = *site.ref;
  if (ref.indices.size() == 1) {
    return RefOrder::kVector;
  }
  CDMM_CHECK(ref.indices.size() == 2);
  const LoopNode* row_binder = SubscriptBinder(ref.indices[0], site);
  const LoopNode* col_binder = SubscriptBinder(ref.indices[1], site);
  if (row_binder == nullptr && col_binder == nullptr) {
    return RefOrder::kInvariant;
  }
  if (row_binder == nullptr) {
    return RefOrder::kRowWise;
  }
  if (col_binder == nullptr) {
    return RefOrder::kColumnWise;
  }
  if (row_binder == col_binder) {
    return RefOrder::kDiagonal;
  }
  // Deeper binder varies faster. Column-major storage: fastest-varying row
  // subscript means we walk down a column.
  return row_binder->level > col_binder->level ? RefOrder::kColumnWise : RefOrder::kRowWise;
}

}  // namespace cdmm
