#include "src/analysis/locality.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

// A bucket of references to one array that share the same variation pattern
// relative to the loop being analysed.
struct PatternGroup {
  Variation row = Variation::kConstant;
  Variation col = Variation::kConstant;  // unused for vectors
  bool is_vector = false;
  std::set<std::string> row_exprs;  // distinct canonical row subscripts (X_r)
  std::set<std::string> col_exprs;  // distinct canonical column subscripts (X_c)
  // Upper bounds on the number of distinct row/column index values the group
  // can take, from static binder-loop trip counts plus the offset spread of
  // the subscript expressions; -1 when a binder has a variable bound.
  int64_t row_span = 0;
  int64_t col_span = 0;
  // Offset spreads (max offset - min offset) of the non-constant subscript
  // expressions: the width of the sliding window a kSelf subscript keeps
  // live at any instant.
  int64_t row_spread = 0;
  int64_t col_spread = 0;

  friend bool operator<(const PatternGroup& a, const PatternGroup& b) {
    return std::tie(a.row, a.col, a.is_vector) < std::tie(b.row, b.col, b.is_vector);
  }
};

// Widens `span` to cover one more reference whose binder loop has trip count
// `trip` (-1 = unknown) and subscript offset `offset`.
void WidenSpan(int64_t* span, int64_t trip, int64_t spread) {
  if (*span < 0) {
    return;  // already unbounded
  }
  if (trip < 0) {
    *span = -1;
    return;
  }
  *span = std::max(*span, trip + spread);
}

// Pages spanned by `values` distinct consecutive index positions along a
// column (rows): the paper's CVS refined by the touched extent, plus the
// page-straddle allowance.
int64_t PagesForRows(int64_t values, int64_t rows, int64_t cvs, const PageGeometry& geometry) {
  if (values < 0 || values >= rows) {
    return cvs;
  }
  int64_t epp = geometry.ElementsPerPage();
  return std::min(cvs, (values + epp - 1) / epp + 1);
}

bool FixedDuringLoop(Variation v) {
  return v == Variation::kConstant || v == Variation::kOuter;
}
bool VariesAtOrBelow(Variation v) {
  return v == Variation::kSelf || v == Variation::kInner;
}

// The §2 case table. Returns the page contribution of one pattern group and
// whether the pages are re-referenced across iterations of the loop.
//
// Column-major layout throughout. "CVS" = pages of one column, "AVS" = pages
// of the whole array, "N" = number of columns. X_r / X_c are the distinct
// subscript-expression counts of the group (paper parameter X).
// Every partial-array matrix estimate gets one transition page of headroom:
// unaligned columns straddle page boundaries with both pages live, and even
// for aligned arrays an exact-fit allocation sits on the LRU cliff where one
// extra transient page makes the whole locality cycle — the paper's X is an
// upper bound, so the margin is faithful as well as necessary.
// Group contributions carry a "wants margin" flag instead of adding the
// page themselves: the margin is applied once per array (several reference
// patterns of one array share a single transition allowance).
struct GroupContribution {
  int64_t pages = 0;
  bool rereferenced = false;
  bool wants_margin = false;
};

GroupContribution ContributionForGroup(const PatternGroup& g, const ArrayDecl& decl,
                                       const PageGeometry& geometry) {
  int64_t avs = ArrayVirtualSize(decl, geometry);
  int64_t xr = std::min<int64_t>(static_cast<int64_t>(g.row_exprs.size()), decl.rows);
  if (g.is_vector) {
    switch (g.row) {
      case Variation::kInner: {
        // Entire touched extent spanned inside one iteration and re-spanned
        // every iteration (Figure 5: vectors C, D, E, F contribute full AVS;
        // a static trip count below the vector length tightens the bound).
        if (g.row_span >= 0 && g.row_span < decl.rows) {
          int64_t epp = geometry.ElementsPerPage();
          return {std::min((g.row_span + epp - 1) / epp + 1, avs), true, false};
        }
        return {avs, true, false};
      }
      case Variation::kSelf:
        // Sliding window: one page per distinct index expression; old pages
        // are not re-referenced (Figure 5: vectors A, B contribute 1 page).
        // The window still deserves the shared margin: at a page boundary
        // several sliding streams cross together and briefly co-reside.
        return {std::min<int64_t>(xr, avs), false, true};
      case Variation::kOuter:
      case Variation::kConstant:
        // The active page(s) are re-referenced on every iteration.
        return {std::min<int64_t>(std::max<int64_t>(xr, 1), avs), true, false};
    }
    CDMM_UNREACHABLE("bad vector variation");
  }

  int64_t cvs = ColumnVirtualSize(decl, geometry);
  int64_t xc = std::min<int64_t>(static_cast<int64_t>(g.col_exprs.size()), decl.cols);
  xr = std::max<int64_t>(xr, 1);
  xc = std::max<int64_t>(xc, 1);

  // Both subscripts sweep inside one iteration: whole array per iteration,
  // re-swept on every iteration (§2 rule 5: "the entire virtual space of a
  // column-wise referenced array contributes to localities formed at least
  // two levels higher").
  if (g.row == Variation::kInner && g.col == Variation::kInner) {
    int64_t cols = g.col_span < 0 ? decl.cols : std::min(g.col_span, decl.cols);
    int64_t per_col = PagesForRows(g.row_span, decl.rows, cvs, geometry);
    return {std::min(cols * per_col, avs), true, true};
  }
  // Column traversal re-swept inside one iteration with the column selector
  // fixed during the loop — Figure 1's loop 30 locality {G_I, H_I}: the
  // whole touched column extent is the locality.
  if (g.row == Variation::kInner && FixedDuringLoop(g.col)) {
    int64_t per_col = PagesForRows(g.row_span, decl.rows, cvs, geometry);
    return {std::min(xc * per_col, avs), true, true};
  }
  // The loop itself walks down the column(s): successive iterations share a
  // page (elements-per-page of them), so the live set is the sliding window
  // of the subscript offsets (plus the straddle page), not the full column.
  // (Figure 1 describes the column as the conceptual locality; for the
  // ALLOCATE argument the paper's own Figure 5 sizing — "one active page" —
  // is the allocation-accurate reading, which this follows.)
  if (g.row == Variation::kSelf && FixedDuringLoop(g.col)) {
    int64_t epp = geometry.ElementsPerPage();
    // Page-aligned columns (rows divisible by the page capacity) never
    // straddle: the live window is exactly the offset spread. Unaligned
    // columns keep both pages of the straddle live.
    bool aligned = decl.rows % epp == 0;
    int64_t window = aligned ? std::max<int64_t>((g.row_spread + epp) / epp, 1)
                             : (g.row_spread + epp) / epp + 1;
    return {std::min(xc * std::min(window, cvs + 1), avs), true, true};
  }
  // Column traversal with the loop itself advancing the column (Figure 5's
  // DD): each iteration streams one fresh column whose full page span flows
  // through the allocation (it sits between other arrays' re-uses in LRU
  // order), so the footprint is the column span — and with a column-offset
  // spread (a strided stencil like A(I,J-2)+A(I,J+2)) the live window is
  // spread+1 columns, which ARE re-used as the loop advances across them.
  if (g.row == Variation::kInner && g.col == Variation::kSelf) {
    int64_t cols_live = std::min<int64_t>(g.col_spread + 1, decl.cols);
    int64_t per_col = PagesForRows(g.row_span, decl.rows, cvs, geometry);
    return {std::min(cols_live * per_col, avs), g.col_spread > 0, true};
  }
  // Row sweep inside one iteration (Figure 5's CC): one iteration touches
  // X_r × N pages, and successive iterations re-touch the same pages while
  // the row subscript stays within a page-block — the paper's "row-wise
  // referenced arrays form localities at higher levels".
  if (FixedDuringLoop(g.row) || g.row == Variation::kSelf) {
    if (g.col == Variation::kInner) {
      int64_t cols = g.col_span < 0 ? decl.cols : std::min(g.col_span, decl.cols);
      return {std::min(xr * cols, avs), true, true};
    }
  }
  // Row-wise at the loop's own level (Figure 1's loop 20): the loop strides
  // across columns, pages are abandoned as it goes — no locality here
  // unless a column-offset spread makes the window re-use its columns.
  if (FixedDuringLoop(g.row) && g.col == Variation::kSelf) {
    if (g.col_spread > 0) {
      int64_t cols_live = std::min<int64_t>(g.col_spread + 1, decl.cols);
      return {std::min(xr * cols_live, avs), true, true};
    }
    return {std::min(xr * xc, avs), false, false};
  }
  // Diagonal walk driven by the loop itself.
  if (g.row == Variation::kSelf && g.col == Variation::kSelf) {
    return {std::min(xr * xc, avs), false, false};
  }
  // Fully invariant element(s): re-referenced every iteration.
  if (FixedDuringLoop(g.row) && FixedDuringLoop(g.col)) {
    return {std::min(xr * xc, avs), true, false};
  }
  // Remaining combination: row kSelf with col kInner handled above; row
  // kSelf col kSelf handled; row kInner col kSelf handled. This arm is
  // row kSelf + col kOuter/kConstant, already handled by the column
  // traversal case.
  CDMM_UNREACHABLE(StrCat("unhandled variation pattern row=", VariationName(g.row),
                          " col=", VariationName(g.col)));
}

}  // namespace

LocalityAnalysis::LocalityAnalysis(const Program& program, const LoopTree& tree,
                                   const LocalityOptions& options)
    : program_(&program), tree_(&tree), options_(options) {
  for (const ArrayDecl& decl : program.arrays) {
    total_virtual_pages_ += ArrayVirtualSize(decl, options_.geometry);
  }
  for (const LoopNode* node : tree.preorder()) {
    index_by_loop_id_[node->loop_id] = localities_.size();
    localities_.push_back(Analyze(*node));
  }
  // Enforce the ALLOCATE chain invariant X_parent >= X_child bottom-up
  // (iterate preorder in reverse: children precede parents that way).
  for (auto it = tree.preorder().rbegin(); it != tree.preorder().rend(); ++it) {
    const LoopNode* node = *it;
    if (node->parent == nullptr) {
      continue;
    }
    LoopLocality& child = localities_[index_by_loop_id_.at(node->loop_id)];
    LoopLocality& parent = localities_[index_by_loop_id_.at(node->parent->loop_id)];
    parent.pages = std::max(parent.pages, child.pages);
  }
}

LoopLocality LocalityAnalysis::Analyze(const LoopNode& node) const {
  LoopLocality result;
  result.loop_id = node.loop_id;
  result.level = node.level;
  result.priority_index = node.priority_index;

  // Bucket every reference in the subtree by (array, variation pattern).
  std::map<std::string, std::map<PatternGroup, PatternGroup>> buckets;
  for (const RefSite& site : CollectRefSites(node)) {
    const ArrayDecl* decl = program_->FindArray(site.ref->name);
    CDMM_CHECK_MSG(decl != nullptr, "undeclared array " << site.ref->name);
    PatternGroup key;
    key.is_vector = decl->IsVector();
    key.row = ClassifySubscript(site.ref->indices[0], site, node);
    if (!key.is_vector) {
      key.col = ClassifySubscript(site.ref->indices[1], site, node);
    }
    PatternGroup& group = buckets[decl->name].emplace(key, key).first->second;
    group.row_exprs.insert(site.ref->indices[0].Canonical());
    if (!key.is_vector) {
      group.col_exprs.insert(site.ref->indices[1].Canonical());
    }
    // Refine the touched-extent bounds from the binder loops' static trip
    // counts (paper parameters: loop bounds are visible in the source).
    auto widen = [&](const IndexExpr& ix, int64_t* span, int64_t* spread) {
      if (ix.IsIndirect()) {
        // Indirect values can land anywhere in the dimension: unbounded span.
        WidenSpan(span, -1, 0);
        return;
      }
      if (ix.IsConstant()) {
        WidenSpan(span, 1, 0);
        return;
      }
      const LoopNode* binder = SubscriptBinder(ix, site);
      WidenSpan(span, binder->TripCount(), std::abs(ix.offset));
      *spread = std::max(*spread, 2 * std::abs(ix.offset));
    };
    widen(site.ref->indices[0], &group.row_span, &group.row_spread);
    if (!key.is_vector) {
      widen(site.ref->indices[1], &group.col_span, &group.col_spread);
    }
  }

  for (const auto& [array_name, groups] : buckets) {
    const ArrayDecl* decl = program_->FindArray(array_name);
    int64_t avs = ArrayVirtualSize(*decl, options_.geometry);
    int64_t pages = 0;
    bool rereferenced = false;
    bool wants_margin = false;
    for (const auto& [key, group] : groups) {
      GroupContribution c = ContributionForGroup(group, *decl, options_.geometry);
      pages += c.pages;
      rereferenced = rereferenced || c.rereferenced;
      wants_margin = wants_margin || c.wants_margin;
    }
    if (wants_margin) {
      // One transition page per array: a sweeping subscript straddles a page
      // boundary (or sits exactly on the LRU cliff) while both the old and
      // the new page are live. The paper's X is an upper bound, so the
      // allowance is faithful as well as necessary.
      pages += 1;
    }
    pages = std::min(pages, avs);  // union of patterns cannot exceed the array
    result.contributions.push_back(ArrayContribution{array_name, pages, rereferenced});
    result.raw_pages += pages;
    result.forms_locality = result.forms_locality || rereferenced;
  }

  result.pages = std::max(result.raw_pages, options_.min_default_pages);
  return result;
}

const LoopLocality& LocalityAnalysis::loop(uint32_t loop_id) const {
  auto it = index_by_loop_id_.find(loop_id);
  CDMM_CHECK_MSG(it != index_by_loop_id_.end(), "no locality info for loop " << loop_id);
  return localities_[it->second];
}

std::string LocalityAnalysis::Report() const {
  std::ostringstream os;
  os << "Locality structure of " << program_->name << " (page=" << options_.geometry.page_size_bytes
     << "B, element=" << options_.geometry.element_size_bytes
     << "B, V=" << total_virtual_pages_ << " pages)\n";
  for (const LoopLocality& ll : localities_) {
    const LoopNode& node = tree_->node(ll.loop_id);
    std::string indent(static_cast<size_t>(ll.level - 1) * 2, ' ');
    os << indent << "loop " << node.loop->label << " [id " << ll.loop_id << "] Λ=" << ll.level
       << " PI=" << ll.priority_index << " X=" << ll.pages
       << (ll.forms_locality ? "" : " (no locality; default minimum)") << "\n";
    for (const ArrayContribution& c : ll.contributions) {
      os << indent << "  " << c.array << ": " << c.pages << " page(s)"
         << (c.rereferenced ? " re-referenced" : " transient") << "\n";
    }
  }
  return os.str();
}

}  // namespace cdmm
