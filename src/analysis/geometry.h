// Page geometry shared by the locality analysis (AVS/CVS computations) and
// the interpreter's array-to-page address mapping. The paper's experimental
// setup is 256-byte pages; REALs are 4 bytes, giving 64 elements per page.
#ifndef CDMM_SRC_ANALYSIS_GEOMETRY_H_
#define CDMM_SRC_ANALYSIS_GEOMETRY_H_

#include <cstdint>

#include "src/lang/ast.h"
#include "src/support/check.h"

namespace cdmm {

struct PageGeometry {
  uint32_t page_size_bytes = 256;
  uint32_t element_size_bytes = 4;

  uint32_t ElementsPerPage() const {
    CDMM_CHECK(element_size_bytes != 0 && page_size_bytes >= element_size_bytes);
    return page_size_bytes / element_size_bytes;
  }

  friend bool operator==(const PageGeometry&, const PageGeometry&) = default;
};

// AVS: virtual size of the whole array in pages (ceil(M*N / elements/page)).
// Arrays are page-aligned: each array starts on a fresh page.
inline int64_t ArrayVirtualSize(const ArrayDecl& decl, const PageGeometry& geometry) {
  int64_t epp = geometry.ElementsPerPage();
  return (decl.element_count() + epp - 1) / epp;
}

// CVS: virtual size of one column in pages (ceil(M / elements/page)). For the
// locality rules a column is treated as the unit of contiguous storage
// (column-major layout); note columns are not individually page-aligned, so
// CVS is the paper's estimate, not always the exact page span of a column.
inline int64_t ColumnVirtualSize(const ArrayDecl& decl, const PageGeometry& geometry) {
  int64_t epp = geometry.ElementsPerPage();
  return (decl.rows + epp - 1) / epp;
}

}  // namespace cdmm

#endif  // CDMM_SRC_ANALYSIS_GEOMETRY_H_
