// Per-loop locality-size estimation: computes the X argument of each
// ALLOCATE directive from the paper's six parameters — page size P, array
// size Σ, nest depth Δ, distinct index count X, reference order Θ, and
// reference level Λ (§2). The per-case rules are reconstructed from the
// paper's worked examples (Figure 1, Figure 5 and the §2 prose); see
// ContributionForGroup in locality.cc for the case table.
#ifndef CDMM_SRC_ANALYSIS_LOCALITY_H_
#define CDMM_SRC_ANALYSIS_LOCALITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/geometry.h"
#include "src/analysis/loop_tree.h"
#include "src/analysis/reference_class.h"

namespace cdmm {

struct LocalityOptions {
  PageGeometry geometry;
  // X substituted when a loop forms no locality ("the minimum number of
  // pages which a program is allocated by system default", Algorithm 1).
  int64_t min_default_pages = 2;
};

// One array's contribution to a loop's locality.
struct ArrayContribution {
  std::string array;
  int64_t pages = 0;
  // True when these pages are genuinely re-referenced across iterations of
  // the loop (they form a locality); false for pure sliding-window actives.
  bool rereferenced = false;
};

// The locality estimate for one loop.
struct LoopLocality {
  uint32_t loop_id = 0;
  int level = 0;           // Λ
  int priority_index = 0;  // PI (Procedure 1)
  // X: estimated virtual size of the locality formed by this loop, already
  // floored at min_default_pages and made monotone (X ≥ every child's X,
  // the ALLOCATE chain invariant X_1 ≥ X_2 ≥ ...).
  int64_t pages = 0;
  // Raw sum of contributions before flooring/monotonising.
  int64_t raw_pages = 0;
  bool forms_locality = false;
  std::vector<ArrayContribution> contributions;
};

// Runs the full §2 analysis over a program.
class LocalityAnalysis {
 public:
  LocalityAnalysis(const Program& program, const LoopTree& tree, const LocalityOptions& options);

  const LoopLocality& loop(uint32_t loop_id) const;
  const std::vector<LoopLocality>& all() const { return localities_; }  // preorder
  const LocalityOptions& options() const { return options_; }
  const LoopTree& tree() const { return *tree_; }

  // Upper bound on the program's memory requirement: Σ AVS over all arrays.
  int64_t total_virtual_pages() const { return total_virtual_pages_; }

  // Figure-1-style textual report of the hierarchical locality structure.
  std::string Report() const;

 private:
  LoopLocality Analyze(const LoopNode& node) const;

  const Program* program_;
  const LoopTree* tree_;
  LocalityOptions options_;
  std::vector<LoopLocality> localities_;           // preorder
  std::map<uint32_t, size_t> index_by_loop_id_;
  int64_t total_virtual_pages_ = 0;
};

}  // namespace cdmm

#endif  // CDMM_SRC_ANALYSIS_LOCALITY_H_
