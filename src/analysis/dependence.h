// Data-dependence analysis over affine subscripts.
//
// For every pair of array references in a loop nest that touch the same
// array (with at least one write), the analyzer decides whether two distinct
// iterations can touch the same element, and in which direction:
//
//   ZIV   — both subscripts loop-invariant: exact equality test.
//   SIV   — one index variable: exact strong/weak single-variable test.
//   MIV   — several variables: GCD test, then Banerjee-style bounds
//           evaluated per direction vector with exact integer vertex
//           enumeration of the constrained iteration polyhedron.
//
// Subscripts the framework cannot model (indirect IDX(I) accesses) produce
// conservative "assumed" edges: the dependence is presumed to exist in every
// direction. Soundness contract: an edge is only *omitted* when the tests
// prove no two iterations conflict, and a `kExact` result is only reported
// when a witness iteration pair exists; "assumed" edges may be false
// positives but never false negatives.
#ifndef CDMM_SRC_ANALYSIS_DEPENDENCE_H_
#define CDMM_SRC_ANALYSIS_DEPENDENCE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/analysis/loop_tree.h"
#include "src/lang/ast.h"

namespace cdmm {

// Direction of a dependence with respect to one common loop, encoded as a
// bitmask so a single edge can carry several feasible directions.
enum DepDirection : uint8_t {
  kDirLt = 1 << 0,  // source iteration earlier  ('<')
  kDirEq = 1 << 1,  // same iteration            ('=')
  kDirGt = 1 << 2,  // source iteration later    ('>')
  kDirAll = kDirLt | kDirEq | kDirGt,
};

// "<", "=", ">", or "*" composites, e.g. "<=" for kDirLt|kDirEq.
std::string DirMaskToString(uint8_t mask);

// One loop of the common nest surrounding a reference pair, normalized for
// the tests. When `known` is false the bounds are symbolic (runtime values)
// and the tests fall back to conservative, unbounded reasoning. `exact`
// means [lo, hi] is the loop's true rectangular range; a triangular loop
// widened to its enclosing interval has known = true but exact = false, so
// independence proofs remain sound while witness claims are suppressed.
struct DepLoop {
  std::string var;
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t step = 1;
  bool known = false;
  bool exact = false;
  uint32_t loop_id = 0;
};

// Canonical linear form of one subscript: sum(coef_i * var_i) + c.
// Our dialect's subscripts are `var + offset`, so each dimension has at most
// one variable with coefficient derived from the loop step normalization.
struct LinTerm {
  std::string var;
  int64_t coef = 0;
};

struct LinExpr {
  std::vector<LinTerm> terms;
  int64_t c = 0;
  bool affine = true;  // false => indirect/unanalyzable subscript

  // Coefficient of `var` (0 when absent).
  int64_t CoefOf(const std::string& var) const;
};

// A dependence-test problem: the common loops (shared by source and sink),
// loops enclosing only one side, and per-dimension subscript pairs.
struct DepProblem {
  std::vector<DepLoop> common;
  std::vector<DepLoop> src_only;
  std::vector<DepLoop> dst_only;
  std::vector<LinExpr> src_subs;
  std::vector<LinExpr> dst_subs;
};

enum class DepResult : uint8_t {
  kIndependent,  // proven: no two iterations conflict
  kExact,        // proven: a conflicting iteration pair exists
  kAssumed,      // cannot decide; dependence assumed (sound over-approximation)
};

struct DepSolution {
  DepResult result = DepResult::kAssumed;
  // Per-common-loop bitmask of feasible directions; meaningful unless
  // kIndependent. For kAssumed every direction is feasible.
  std::vector<uint8_t> dir_masks;
  // carried[p]: a feasible direction vector exists with '=' at every level
  // outer than p and a non-'=' direction at p — the dependence is carried by
  // the loop at position p of the common nest.
  std::vector<bool> carried;
  // Constant dependence distance (dst iteration - src iteration) per common
  // loop when one is proven (strong-SIV); empty otherwise.
  std::vector<int64_t> distances;
  bool has_distance = false;
  const char* test = "";  // "ziv", "siv", "banerjee", "assumed"
};

// Decides dependence between two subscripted references. Public so the
// brute-force oracle in tests can compare against it directly.
DepSolution SolveDependence(const DepProblem& problem);

// Exhaustively enumerates iteration pairs of `problem` (all loop bounds must
// be known) and returns the observed direction mask per common loop, or
// std::nullopt when no conflicting pair exists. Test oracle; exponential.
std::optional<std::vector<uint8_t>> BruteForceDirections(const DepProblem& problem);

// Kinds of access for an edge endpoint.
enum class DepAccess : uint8_t { kRead, kWrite };

// One dependence edge between two reference sites on the same array.
struct DepEdge {
  std::string array;
  // Positions index into DependenceGraph::sites().
  size_t src_site = 0;
  size_t dst_site = 0;
  DepResult result = DepResult::kAssumed;
  std::vector<uint8_t> dir_masks;      // per common loop, outermost first
  std::vector<bool> carried;           // per common loop (see DepSolution)
  std::vector<uint32_t> common_loops;  // loop ids, outermost first
  bool has_distance = false;
  std::vector<int64_t> distances;
  const char* test = "";
};

// A reference site: one static array reference with its access kind and the
// stack of enclosing loops.
struct DepSite {
  const ArrayRef* ref = nullptr;
  DepAccess access = DepAccess::kRead;
  std::vector<uint32_t> loop_stack;  // loop ids, outermost first
  SourceLocation location;
  std::string array;
};

// Per-(loop, array) symbolic access-range summary: the min/max element index
// touched per dimension across one full execution of the loop
// (PtrRangeAnalysis-style). `known` is false when a bound could not be
// derived (symbolic/indirect), in which case the whole dimension extent must
// be assumed.
struct AccessRange {
  struct Dim {
    int64_t min = 0;
    int64_t max = 0;
    bool known = false;
  };
  std::string array;
  std::vector<Dim> dims;  // size 1 or 2
  bool any_write = false;
};

// Dependence graph for one program: all edges between same-array reference
// pairs with at least one write, plus parallelization queries and per-loop
// access-range summaries.
class DependenceGraph {
 public:
  // `tree` must outlive the graph (sites point into the program's AST).
  static DependenceGraph Build(const Program& program, const LoopTree& tree);

  const std::vector<DepSite>& sites() const { return sites_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

  // True when no edge with a write endpoint is carried by `loop_id`: every
  // iteration of the loop may run concurrently. Assumed edges block
  // parallelization (soundness).
  bool CanParallelize(uint32_t loop_id) const;

  // For a blocked loop, one blocking edge (for diagnostics); nullptr when
  // CanParallelize(loop_id) is true.
  const DepEdge* BlockingEdge(uint32_t loop_id) const;

  // Access-range summaries for one loop, keyed by array name. Arrays
  // referenced under the loop always have an entry.
  const std::map<std::string, AccessRange>* RangesFor(uint32_t loop_id) const;

  // Human-readable and JSON dumps (stable field order).
  std::string ToText() const;
  std::string ToJson() const;

  // Statistics collected while building (telemetry mirrors these).
  struct Stats {
    uint64_t tests_run = 0;
    uint64_t tests_exact = 0;
    uint64_t tests_assumed = 0;
    uint64_t tests_independent = 0;
  };
  const Stats& stats() const { return stats_; }

  // Every dependence problem the builder solved, as (src site, dst site,
  // problem). Lets the oracle tests re-run BruteForceDirections against the
  // exact problems a real workload produced.
  const std::vector<std::tuple<size_t, size_t, DepProblem>>& tested_problems() const {
    return problems_;
  }

 private:
  std::vector<DepSite> sites_;
  std::vector<DepEdge> edges_;
  std::map<uint32_t, std::map<std::string, AccessRange>> ranges_;
  std::vector<std::tuple<size_t, size_t, DepProblem>> problems_;
  Stats stats_;
  const Program* program_ = nullptr;
};

}  // namespace cdmm

#endif  // CDMM_SRC_ANALYSIS_DEPENDENCE_H_
