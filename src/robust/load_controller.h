// The thrashing/load-control hysteresis extracted from the multiprogrammed
// OS (src/os/multiprog.cc) into a standalone, unit-testable decision engine,
// reused verbatim by the cdmm-serve admission controller.
//
// The controller watches a scalar "health" signal (OS: windowed CPU
// utilisation; serve: free admission-budget fraction) plus a "pressure"
// signal (OS: faults per executed reference; serve: backlog/budget) and
// answers one question per evaluation: shed load, readmit, or do nothing.
// Hysteresis lives in the gap between the two health watermarks — shedding
// starts only below `health_low` (with pressure above `pressure_high`),
// readmission only above `health_high` — so a signal oscillating inside the
// band never flaps.
//
// Decisions are pure functions of the fed totals: same feed, same decisions,
// regardless of thread count or wall-clock, which is what keeps the OS
// simulation and the serve chaos soak deterministic.
#ifndef CDMM_SRC_ROBUST_LOAD_CONTROLLER_H_
#define CDMM_SRC_ROBUST_LOAD_CONTROLLER_H_

#include <cstdint>

namespace cdmm {

enum class LoadAction : uint8_t { kNone, kShed, kReadmit };

struct LoadControllerConfig {
  // Minimum ticks between windowed evaluations (EvaluateTotals). 0 means
  // every sample is evaluated (the serve admission path).
  uint64_t window = 4096;
  // Shed when health < health_low AND pressure > pressure_high.
  double health_low = 0.40;
  // Readmit when health > health_high. The (health_low, health_high] band is
  // the hysteresis: inside it the controller holds its last state.
  double health_high = 0.60;
  double pressure_high = 0.002;
};

class LoadController {
 public:
  LoadController() = default;
  explicit LoadController(const LoadControllerConfig& config) : config_(config) {}

  const LoadControllerConfig& config() const { return config_; }

  // Direct form: evaluates one (health, pressure) sample immediately.
  LoadAction Evaluate(double health, double pressure);

  // Outcome of a windowed evaluation: `evaluated` distinguishes "between
  // window boundaries" from "evaluated, nothing to do" (the OS counts
  // evaluated windows in telemetry).
  struct WindowDecision {
    bool evaluated = false;
    LoadAction action = LoadAction::kNone;
  };

  // Windowed cumulative-counter form — the OS thrashing detector. `clock`,
  // `executed_total` and `pressure_total` are monotone run totals; between
  // window boundaries nothing is evaluated. At a boundary the deltas since
  // the previous evaluation become health = executed/span and pressure =
  // faulted/executed (1.0 when nothing executed: a fully stalled window is
  // maximal pressure), and the snapshot advances.
  WindowDecision EvaluateTotals(uint64_t clock, uint64_t executed_total,
                                uint64_t pressure_total);

  // Sticky view of the last state change: true from the last kShed until the
  // next kReadmit. The serve admission controller gates on this.
  bool shedding() const { return shedding_; }

 private:
  LoadControllerConfig config_;
  bool shedding_ = false;
  uint64_t window_start_ = 0;
  uint64_t executed_start_ = 0;
  uint64_t pressure_start_ = 0;
};

}  // namespace cdmm

#endif  // CDMM_SRC_ROBUST_LOAD_CONTROLLER_H_
