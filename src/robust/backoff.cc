#include "src/robust/backoff.h"

#include <algorithm>

#include "src/support/rng.h"

namespace cdmm {
namespace {

// Distinct from every FaultInjector site constant (0x51..0x59) so a serve
// retry schedule never correlates with injected fault decisions.
constexpr uint64_t kSiteBackoffJitter = 0x5a;

// Same construction as FaultInjector::UnitAt: one SplitMix64 step per mixed
// word, integer arithmetic only, identical across platforms and threads.
double UnitAt(uint64_t seed, uint64_t site, uint64_t a, uint64_t b) {
  SplitMix64 rng(seed ^ (site * 0x9e3779b97f4a7c15ULL));
  rng.Next();
  SplitMix64 mixed(rng.Next() ^ (a * 0xbf58476d1ce4e5b9ULL) ^ (b * 0x94d049bb133111ebULL));
  mixed.Next();
  return mixed.NextDouble();
}

}  // namespace

BackoffPolicy BackoffPolicy::FromInjectorConfig(const FaultInjectionConfig& config) {
  BackoffPolicy policy;
  policy.base = std::max<uint64_t>(config.swap_backoff_base, 1);
  policy.max_retries = std::max(config.max_swap_retries, 0);
  int last = policy.max_retries > 0 ? policy.max_retries - 1 : 0;
  // Avoid the shift overflowing for absurd retry budgets.
  policy.cap = last >= 63 ? UINT64_MAX : policy.base << last;
  policy.seed = config.seed;
  return policy;
}

uint64_t BackoffPolicy::Delay(uint64_t stream, int attempt) const {
  if (attempt < 0 || attempt >= max_retries || base == 0) {
    return 0;
  }
  // Unjittered doubling, clamped: min(base << attempt, cap).
  uint64_t step = attempt >= 63 ? cap : std::min<uint64_t>(base << attempt, cap);
  if (seed == 0) {
    return step;
  }
  // Jitter widens the step by up to one whole step, then re-clamps to the
  // cap. Monotonicity survives: below the cap the jittered value stays under
  // the next doubling (step * (1 + u) < 2 * step <= next step), and once any
  // value reaches the cap every later one is exactly the cap.
  double u = UnitAt(seed, kSiteBackoffJitter, stream, static_cast<uint64_t>(attempt));
  uint64_t widened = step + static_cast<uint64_t>(u * static_cast<double>(step));
  return std::min(widened, cap);
}

uint64_t BackoffPolicy::TotalDelay(uint64_t stream) const {
  uint64_t total = 0;
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    total += Delay(stream, attempt);
  }
  return total;
}

uint64_t BackoffPolicy::WorstCase() const {
  return static_cast<uint64_t>(std::max(max_retries, 0)) * cap;
}

}  // namespace cdmm
