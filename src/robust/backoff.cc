#include "src/robust/backoff.h"

#include <algorithm>

#include "src/support/rng.h"

namespace cdmm {
namespace {

// Distinct from every FaultInjector site constant (0x51..0x59) so a serve
// retry schedule never correlates with injected fault decisions.
constexpr uint64_t kSiteBackoffJitter = 0x5a;

// Same construction as FaultInjector::UnitAt: one SplitMix64 step per mixed
// word, integer arithmetic only, identical across platforms and threads.
double UnitAt(uint64_t seed, uint64_t site, uint64_t a, uint64_t b) {
  SplitMix64 rng(seed ^ (site * 0x9e3779b97f4a7c15ULL));
  rng.Next();
  SplitMix64 mixed(rng.Next() ^ (a * 0xbf58476d1ce4e5b9ULL) ^ (b * 0x94d049bb133111ebULL));
  mixed.Next();
  return mixed.NextDouble();
}

}  // namespace

BackoffPolicy BackoffPolicy::FromInjectorConfig(const FaultInjectionConfig& config) {
  BackoffPolicy policy;
  policy.base = std::max<uint64_t>(config.swap_backoff_base, 1);
  policy.max_retries = std::max(config.max_swap_retries, 0);
  int last = policy.max_retries > 0 ? policy.max_retries - 1 : 0;
  // Saturate instead of letting the shift wrap, for absurd retry budgets
  // (last >= 64) as well as absurd bases (base << last would overflow).
  policy.cap = (last >= 63 || policy.base > (UINT64_MAX >> last))
                   ? UINT64_MAX
                   : policy.base << last;
  policy.seed = config.seed;
  return policy;
}

uint64_t BackoffPolicy::Delay(uint64_t stream, int attempt) const {
  if (attempt < 0 || attempt >= max_retries || base == 0) {
    return 0;
  }
  // Unjittered doubling, clamped: min(base << attempt, cap) — with the shift
  // saturating to cap whenever base << attempt would wrap (base <= cap >>
  // attempt guarantees base << attempt <= cap and cannot overflow).
  uint64_t step =
      (attempt >= 63 || base > (cap >> attempt)) ? cap : base << attempt;
  if (seed == 0) {
    return step;
  }
  // Jitter widens the step by up to one whole step, then re-clamps to the
  // cap. Monotonicity survives: below the cap the jittered value stays under
  // the next doubling (step * (1 + u) < 2 * step <= next step), and once any
  // value reaches the cap every later one is exactly the cap. The add
  // saturates too: step near UINT64_MAX must clamp, not wrap to a tiny delay.
  double u = UnitAt(seed, kSiteBackoffJitter, stream, static_cast<uint64_t>(attempt));
  uint64_t extra = static_cast<uint64_t>(u * static_cast<double>(step));
  return extra > cap - step ? cap : step + extra;
}

uint64_t BackoffPolicy::TotalDelay(uint64_t stream) const {
  uint64_t total = 0;
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    uint64_t delay = Delay(stream, attempt);
    total = delay > UINT64_MAX - total ? UINT64_MAX : total + delay;
  }
  return total;
}

uint64_t BackoffPolicy::WorstCase() const {
  uint64_t retries = static_cast<uint64_t>(std::max(max_retries, 0));
  if (cap != 0 && retries > UINT64_MAX / cap) {
    return UINT64_MAX;
  }
  return retries * cap;
}

}  // namespace cdmm
