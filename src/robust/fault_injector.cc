#include "src/robust/fault_injector.h"

#include <algorithm>

#include "src/support/rng.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace {

// Distinct site constants keep the decision streams independent: the n-th
// swap attempt and the n-th sweep item see unrelated randomness.
enum Site : uint64_t {
  kSiteServiceJitter = 0x51,
  kSiteServiceTailGate = 0x52,
  kSiteServiceTailScale = 0x53,
  kSiteSwapFailure = 0x54,
  kSitePressureGate = 0x55,
  kSitePressureSize = 0x56,
  kSiteStall = 0x57,
  kSitePoison = 0x58,
  kSiteMigration = 0x59,
};

}  // namespace

FaultInjectionConfig FaultInjectionConfig::AtIntensity(uint64_t seed, double intensity) {
  intensity = std::clamp(intensity, 0.0, 1.0);
  FaultInjectionConfig config;
  config.seed = intensity == 0.0 ? 0 : seed;
  config.service_jitter = 0.5 * intensity;
  config.service_tail_rate = 0.2 * intensity;
  config.service_tail_scale = 8.0 + 24.0 * intensity;
  config.swap_failure_rate = 0.5 * intensity;
  config.pressure_rate = 0.6 * intensity;
  config.pressure_max_fraction = 0.3 * intensity;
  config.stall_rate = 0.1 * intensity;
  config.poison_rate = 0.1 * intensity;
  config.migration_failure_rate = 0.25 * intensity;
  return config;
}

double FaultInjector::UnitAt(uint64_t site, uint64_t a, uint64_t b) const {
  // One SplitMix64 step per mixed-in word; the final Next() decorrelates
  // neighbouring (a, b) pairs. All integer arithmetic + one exact division,
  // so the stream is identical across platforms and thread counts.
  SplitMix64 rng(config_.seed ^ (site * 0x9e3779b97f4a7c15ULL));
  rng.Next();
  SplitMix64 mixed(rng.Next() ^ (a * 0xbf58476d1ce4e5b9ULL) ^ (b * 0x94d049bb133111ebULL));
  mixed.Next();
  return mixed.NextDouble();
}

uint64_t FaultInjector::FaultServiceTime(uint64_t stream, uint64_t fault_index,
                                         uint64_t base) const {
  if (!enabled()) {
    return base;
  }
  double factor = 1.0;
  if (config_.service_jitter > 0.0) {
    double u = UnitAt(kSiteServiceJitter, stream, fault_index);
    factor *= 1.0 + config_.service_jitter * (2.0 * u - 1.0);
    TELEM_COUNT("robust.service_perturbed");
  }
  if (config_.service_tail_rate > 0.0 &&
      UnitAt(kSiteServiceTailGate, stream, fault_index) < config_.service_tail_rate) {
    double u = UnitAt(kSiteServiceTailScale, stream, fault_index);
    factor *= 1.0 + u * (config_.service_tail_scale - 1.0);
    TELEM_COUNT("robust.service_tail_landed");
  }
  double scaled = static_cast<double>(base) * factor;
  if (scaled < 1.0) {
    return 1;
  }
  return static_cast<uint64_t>(scaled);
}

uint64_t FaultInjector::TotalFaultServiceTime(uint64_t stream, uint64_t faults,
                                              uint64_t base) const {
  if (!enabled()) {
    return faults * base;
  }
  uint64_t total = 0;
  for (uint64_t i = 0; i < faults; ++i) {
    total += FaultServiceTime(stream, i, base);
  }
  return total;
}

bool FaultInjector::SwapAttemptFails(uint64_t attempt) const {
  if (!enabled() || config_.swap_failure_rate <= 0.0) {
    return false;
  }
  return UnitAt(kSiteSwapFailure, attempt, 0) < config_.swap_failure_rate;
}

uint32_t FaultInjector::PhantomFrames(uint64_t clock, uint32_t total_frames) const {
  if (!enabled() || config_.pressure_rate <= 0.0 || config_.pressure_epoch == 0) {
    return 0;
  }
  uint64_t epoch = clock / config_.pressure_epoch;
  if (UnitAt(kSitePressureGate, epoch, 0) >= config_.pressure_rate) {
    return 0;
  }
  double fraction = UnitAt(kSitePressureSize, epoch, 0) * config_.pressure_max_fraction;
  return static_cast<uint32_t>(static_cast<double>(total_frames) * fraction);
}

uint64_t FaultInjector::NextPhantomChange(uint64_t clock) const {
  if (!enabled() || config_.pressure_rate <= 0.0 || config_.pressure_epoch == 0) {
    return UINT64_MAX;
  }
  return (clock / config_.pressure_epoch + 1) * config_.pressure_epoch;
}

bool FaultInjector::StallsSweepItem(uint64_t index) const {
  if (!enabled() || config_.stall_rate <= 0.0) {
    return false;
  }
  bool stalls = UnitAt(kSiteStall, index, 0) < config_.stall_rate;
  if (stalls) TELEM_COUNT("robust.sweep_stall_injected");
  return stalls;
}

bool FaultInjector::PoisonsSweepItem(uint64_t index) const {
  if (!enabled() || config_.poison_rate <= 0.0) {
    return false;
  }
  bool poisons = UnitAt(kSitePoison, index, 0) < config_.poison_rate;
  if (poisons) TELEM_COUNT("robust.sweep_poison_injected");
  return poisons;
}

bool FaultInjector::MigrationAttemptFails(uint64_t attempt) const {
  if (!enabled() || config_.migration_failure_rate <= 0.0) {
    return false;
  }
  bool fails = UnitAt(kSiteMigration, attempt, 0) < config_.migration_failure_rate;
  if (fails) TELEM_COUNT("robust.migration_attempt_failed");
  return fails;
}

}  // namespace cdmm
