#include "src/robust/load_controller.h"

namespace cdmm {

LoadAction LoadController::Evaluate(double health, double pressure) {
  if (health < config_.health_low && pressure > config_.pressure_high) {
    shedding_ = true;
    return LoadAction::kShed;
  }
  if (health > config_.health_high) {
    shedding_ = false;
    return LoadAction::kReadmit;
  }
  return LoadAction::kNone;
}

LoadController::WindowDecision LoadController::EvaluateTotals(uint64_t clock,
                                                              uint64_t executed_total,
                                                              uint64_t pressure_total) {
  uint64_t span = clock - window_start_;
  if (span < config_.window || span == 0) {
    return {};
  }
  uint64_t executed = executed_total - executed_start_;
  uint64_t pressured = pressure_total - pressure_start_;
  double health = static_cast<double>(executed) / static_cast<double>(span);
  double pressure = executed == 0
                        ? 1.0
                        : static_cast<double>(pressured) / static_cast<double>(executed);
  window_start_ = clock;
  executed_start_ = executed_total;
  pressure_start_ = pressure_total;
  return {true, Evaluate(health, pressure)};
}

}  // namespace cdmm
