// Bounded-exponential retry backoff with deterministic jitter — the
// FaultInjector backoff discipline (swap_backoff_base doubled per attempt,
// bounded by max_swap_retries) packaged as a pure schedule that cdmm-serve
// uses for transiently failed request attempts.
//
// Guarantees, proven by the property tests in tests/robust_test.cc and
// tests/property_test.cc:
//  - purity: Delay(stream, attempt) is a pure function of
//    (seed, stream, attempt) — bit-identical for equal seeds at any --jobs,
//    in any call order;
//  - bounded: every delay <= cap, so a full retry budget waits at most
//    max_retries * cap;
//  - monotone: for a fixed stream, delays never decrease with the attempt
//    number, jitter included (jitter widens a step but never past the next
//    doubling or the cap).
#ifndef CDMM_SRC_ROBUST_BACKOFF_H_
#define CDMM_SRC_ROBUST_BACKOFF_H_

#include <cstdint>

#include "src/robust/fault_injector.h"

namespace cdmm {

struct BackoffPolicy {
  uint64_t base = 250;  // delay before the first retry (ticks)
  uint64_t cap = 4000;  // per-attempt clamp; also the monotone ceiling
  int max_retries = 4;  // attempts after the first try
  uint64_t seed = 0;    // 0 = deterministic unjittered doubling

  // The same knobs the OS swap-retry path reads from the injector config:
  // base = swap_backoff_base, retry budget = max_swap_retries, cap = the
  // budget's final unjittered doubling (so jitter never exceeds the
  // schedule the OS would have waited out).
  static BackoffPolicy FromInjectorConfig(const FaultInjectionConfig& config);

  // Delay in ticks before retry `attempt` (0-based) of `stream`. Attempts
  // at or beyond max_retries return 0: the retry budget is exhausted and no
  // further wait is scheduled.
  uint64_t Delay(uint64_t stream, int attempt) const;

  // Sum of every delay a fully failing stream waits out; <= WorstCase().
  uint64_t TotalDelay(uint64_t stream) const;

  // The bound the property tests assert: max_retries * cap.
  uint64_t WorstCase() const;
};

}  // namespace cdmm

#endif  // CDMM_SRC_ROBUST_BACKOFF_H_
