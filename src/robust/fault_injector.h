// Deterministic fault injection for the simulators, the multiprogrammed OS
// and the sweep engine. Every decision is a pure function of
// (seed, site, stream, index): there is no internal mutable state, so the
// injected schedule is identical regardless of thread count, scheduling
// order, or how many other consumers share the injector. Consumers hold a
// `const FaultInjector*` (null or a disabled injector means "nominal
// behaviour, bit-identical to a build without injection").
//
// Injected adversities (each gated by its own rate knob):
//  - perturbed / heavy-tailed page-fault service times,
//  - transient swap-device failures (the OS retries with exponential
//    backoff, bounded by max_swap_retries),
//  - frame-pool pressure spikes: a phantom process reserves part of the pool
//    for whole epochs,
//  - stalled or poisoned sweep items (the sweep scheduler turns these into
//    per-item timeout/error entries of a partial-result report).
#ifndef CDMM_SRC_ROBUST_FAULT_INJECTOR_H_
#define CDMM_SRC_ROBUST_FAULT_INJECTOR_H_

#include <cstdint>

namespace cdmm {

struct FaultInjectionConfig {
  // 0 disables every injection point; any other value seeds the schedule.
  uint64_t seed = 0;

  // Page-fault service time: each fault's service is scaled by a factor in
  // [1 - service_jitter, 1 + service_jitter]; with probability
  // service_tail_rate the fault additionally lands in a heavy tail and is
  // multiplied by up to service_tail_scale.
  double service_jitter = 0.25;
  double service_tail_rate = 0.05;
  double service_tail_scale = 16.0;

  // Probability that one swap-device attempt fails transiently. The OS
  // retries up to max_swap_retries times, waiting swap_backoff_base ticks
  // doubled per attempt; if every retry fails the swap is abandoned.
  double swap_failure_rate = 0.0;
  int max_swap_retries = 4;
  uint64_t swap_backoff_base = 250;

  // Frame-pool pressure: time is cut into epochs of pressure_epoch ticks;
  // with probability pressure_rate an epoch carries a phantom reservation of
  // up to pressure_max_fraction of the pool.
  double pressure_rate = 0.0;
  uint64_t pressure_epoch = 16384;
  double pressure_max_fraction = 0.25;

  // Sweep-item pathologies, keyed by sweep index.
  double stall_rate = 0.0;
  double poison_rate = 0.0;

  // Probability that one hierarchy migration attempt (a promotion retry gate
  // or a demotion into an intermediate level) fails transiently. A failed
  // promotion re-pays the servicing level's latency, up to
  // max_migration_retries extra rounds; a failed demotion drops the page one
  // level further toward the backing store (which never fails). Only
  // consulted when a HierarchySpec with intermediate levels is active, so
  // legacy runs are untouched by these knobs.
  double migration_failure_rate = 0.0;
  int max_migration_retries = 3;

  bool enabled() const { return seed != 0; }

  // A config whose rates all scale with `intensity` in [0, 1] — the knob
  // bench_faults sweeps to draw degradation curves. intensity == 0 yields a
  // disabled config.
  static FaultInjectionConfig AtIntensity(uint64_t seed, double intensity);
};

class FaultInjector {
 public:
  FaultInjector() = default;  // disabled
  explicit FaultInjector(const FaultInjectionConfig& config) : config_(config) {}

  bool enabled() const { return config_.enabled(); }
  const FaultInjectionConfig& config() const { return config_; }

  // Perturbed service time for the `fault_index`-th fault of `stream`
  // (stream = process index, or 0 for a uniprogrammed simulation). Returns
  // `base` unchanged when disabled; never returns 0.
  uint64_t FaultServiceTime(uint64_t stream, uint64_t fault_index, uint64_t base) const;

  // Sum of FaultServiceTime(stream, i, base) for i in [0, faults) — for
  // policies that derive elapsed/space-time from a fault count.
  uint64_t TotalFaultServiceTime(uint64_t stream, uint64_t faults, uint64_t base) const;

  // Whether the `attempt`-th swap-device attempt (a global per-run sequence
  // number) fails transiently.
  bool SwapAttemptFails(uint64_t attempt) const;

  // Frames the phantom process holds at `clock` out of a pool of
  // `total_frames`. Piecewise-constant per epoch; 0 when disabled.
  uint32_t PhantomFrames(uint64_t clock, uint32_t total_frames) const;

  // First tick strictly after `clock` at which PhantomFrames may change.
  uint64_t NextPhantomChange(uint64_t clock) const;

  // Sweep-item pathologies.
  bool StallsSweepItem(uint64_t index) const;
  bool PoisonsSweepItem(uint64_t index) const;

  // Whether the `attempt`-th hierarchy migration attempt (a per-engine
  // sequence number) fails transiently.
  bool MigrationAttemptFails(uint64_t attempt) const;

 private:
  // Uniform double in [0, 1), fully determined by (seed, site, a, b).
  double UnitAt(uint64_t site, uint64_t a, uint64_t b) const;

  FaultInjectionConfig config_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_ROBUST_FAULT_INJECTOR_H_
