#include "src/os/multiprog.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>

#include "src/support/check.h"
#include "src/vm/cd_core.h"
#include "src/vm/cd_policy.h"

namespace cdmm {
namespace {

enum class ProcState : uint8_t { kReady, kPageWait, kSuspended, kDone };

enum class OsPolicyMode : uint8_t { kCd, kEqualPartitionLru, kWorkingSet };

// Per-process working-set state for the kWorkingSet mode: membership is
// W(t, τ) over the process's own virtual time.
struct WsState {
  uint64_t tau = 2000;
  uint64_t vtime = 0;
  std::unordered_map<PageId, uint64_t> last_ref;
  std::deque<std::pair<uint64_t, PageId>> window;
  uint32_t size = 0;

  // Expires pages that left the window; returns how many frames freed.
  uint32_t Expire() {
    uint32_t freed = 0;
    while (!window.empty() && window.front().first + tau < vtime + 1) {
      auto [when, page] = window.front();
      window.pop_front();
      auto it = last_ref.find(page);
      if (it != last_ref.end() && it->second == when) {
        last_ref.erase(it);
        --size;
        ++freed;
      }
    }
    return freed;
  }

  bool InSet(PageId page) const { return last_ref.find(page) != last_ref.end(); }

  // Records the reference (the page must already be admitted).
  void Record(PageId page) {
    ++vtime;
    auto [it, inserted] = last_ref.try_emplace(page, vtime);
    if (inserted) {
      ++size;
    } else {
      it->second = vtime;
    }
    window.emplace_back(vtime, page);
  }

  void DropAll() {
    last_ref.clear();
    window.clear();
    size = 0;
  }
};

struct Proc {
  const OsProcessSpec* spec = nullptr;
  std::unique_ptr<CdCore> core;   // kCd / kEqualPartitionLru
  std::unique_ptr<WsState> ws;    // kWorkingSet
  size_t cursor = 0;  // next event in the trace
  ProcState state = ProcState::kReady;
  uint64_t wake_at = 0;         // kPageWait: global time to resume
  bool awaiting_memory = false; // kSuspended at an ALLOCATE (re-process on wake)
  bool force_grant = false;     // deadlock breaker: clamp the next ALLOCATE
  bool started = false;
  uint32_t resume_grant = 0;    // grant to re-reserve when woken after swap-out
  OsProcessStats stats;

  // Pool-accounting shadow of core->held(): frames currently reserved.
  uint32_t reserved = 0;
  // Lazy time-weighted integral of `reserved`.
  double held_integral = 0.0;
  uint64_t held_since = 0;
};

class OsSimulator {
 public:
  OsSimulator(const std::vector<OsProcessSpec>& specs, const OsOptions& options,
              OsPolicyMode mode, uint64_t ws_tau = 0)
      : options_(options), mode_(mode), pool_free_(options.total_frames) {
    CDMM_CHECK(!specs.empty());
    uint32_t partition =
        std::max<uint32_t>(1, options.total_frames / static_cast<uint32_t>(specs.size()));
    for (const OsProcessSpec& spec : specs) {
      CDMM_CHECK(spec.trace != nullptr);
      auto p = std::make_unique<Proc>();
      p->spec = &spec;
      p->stats.name = spec.name;
      if (mode == OsPolicyMode::kWorkingSet) {
        p->ws = std::make_unique<WsState>();
        p->ws->tau = std::max<uint64_t>(ws_tau, 1);
        p->reserved = 0;
      } else {
        bool cd = mode == OsPolicyMode::kCd;
        uint32_t grant = cd ? std::max<uint32_t>(options.initial_allocation, 1) : partition;
        p->core = std::make_unique<CdCore>(grant, cd && options.honor_locks);
        CDMM_CHECK_MSG(grant <= pool_free_, "initial allocations exceed the frame pool");
        p->reserved = p->core->held();
        pool_free_ -= p->reserved;
      }
      procs_.push_back(std::move(p));
    }
  }

  OsRunResult Run() {
    while (!AllDone()) {
      Proc* p = NextReady();
      if (p == nullptr) {
        AdvanceIdle();
        continue;
      }
      RunSlice(*p);
    }
    OsRunResult result;
    result.total_time = clock_;
    result.swaps = swaps_;
    IntegratePool();
    result.mean_pool_used =
        clock_ == 0 ? 0.0 : pool_integral_ / static_cast<double>(clock_);
    result.cpu_utilisation =
        clock_ == 0 ? 0.0 : static_cast<double>(executed_ticks_) / static_cast<double>(clock_);
    for (auto& p : procs_) {
      uint64_t lifetime = p->stats.finished_at - p->stats.started_at;
      p->stats.mean_held =
          lifetime == 0 ? 0.0 : p->held_integral / static_cast<double>(lifetime);
      result.total_faults += p->stats.faults;
      result.processes.push_back(p->stats);
    }
    return result;
  }

 private:
  bool AllDone() const {
    for (const auto& p : procs_) {
      if (p->state != ProcState::kDone) {
        return false;
      }
    }
    return true;
  }

  Proc* NextReady() {
    for (size_t i = 0; i < procs_.size(); ++i) {
      Proc* p = procs_[(rr_next_ + i) % procs_.size()].get();
      if (p->state == ProcState::kReady) {
        rr_next_ = (rr_next_ + i + 1) % procs_.size();
        return p;
      }
    }
    return nullptr;
  }

  // No process is ready: jump the clock to the earliest page-wait wake-up,
  // or break a pure memory deadlock by force-waking a suspended process.
  void AdvanceIdle() {
    // A slice can end (completion, suspension) without checking the page-wait
    // queue; expire anything already due before jumping the clock.
    WakeExpired();
    for (const auto& p : procs_) {
      if (p->state == ProcState::kReady) {
        return;
      }
    }
    uint64_t next = std::numeric_limits<uint64_t>::max();
    for (const auto& p : procs_) {
      if (p->state == ProcState::kPageWait) {
        next = std::min(next, p->wake_at);
      }
    }
    if (next != std::numeric_limits<uint64_t>::max()) {
      SetClock(std::max(next, clock_));
      WakeExpired();
      return;
    }
    // Only suspended processes remain: wake the first, clamping its demand
    // to whatever is free (the workload does not fit; progress beats hang).
    for (auto& p : procs_) {
      if (p->state == ProcState::kSuspended) {
        p->state = ProcState::kReady;
        if (p->awaiting_memory) {
          p->force_grant = true;
        } else if (p->core != nullptr) {
          Reserve(*p, std::max<uint32_t>(std::min(p->resume_grant, pool_free_), 1));
        }
        return;
      }
    }
    CDMM_UNREACHABLE("idle with no waiters");
  }

  void WakeExpired() {
    for (auto& p : procs_) {
      if (p->state == ProcState::kPageWait && p->wake_at <= clock_) {
        p->state = ProcState::kReady;
      }
    }
  }

  void SetClock(uint64_t t) {
    CDMM_CHECK(t >= clock_);
    clock_ = t;
  }

  void IntegratePool() {
    pool_integral_ += static_cast<double>(options_.total_frames - pool_free_) *
                      static_cast<double>(clock_ - pool_since_);
    pool_since_ = clock_;
  }

  void IntegrateHeld(Proc& p) {
    p.held_integral += static_cast<double>(p.reserved) * static_cast<double>(clock_ - p.held_since);
    p.held_since = clock_;
  }

  // Adjusts a process's pool reservation to `target` frames.
  void Reserve(Proc& p, uint32_t target) {
    IntegratePool();
    IntegrateHeld(p);
    if (target > p.reserved) {
      uint32_t delta = target - p.reserved;
      CDMM_CHECK_MSG(delta <= pool_free_, "pool overcommit");
      pool_free_ -= delta;
    } else {
      pool_free_ += p.reserved - target;
    }
    p.reserved = target;
  }

  // Reconciles the reservation with the core's actual held() after a core
  // mutation, clawing frames back from the process itself if the pool is
  // short (soft-release locks, then shrink the grant).
  void SyncHeld(Proc& p) {
    uint32_t want = p.core->held();
    while (want > p.reserved && want - p.reserved > pool_free_) {
      if (p.core->SoftReleaseLock()) {
        ++p.stats.lock_releases;
        want = p.core->held();
        continue;
      }
      uint32_t deficit = (want - p.reserved) - pool_free_;
      uint32_t new_grant = p.core->grant() > deficit ? p.core->grant() - deficit : 1;
      p.core->SetGrant(new_grant);
      want = p.core->held();
      break;
    }
    Reserve(p, want);
  }

  // Swap out the best victim with strictly lower job priority than `asker`;
  // returns false if none exists.
  bool SwapOutVictim(const Proc& asker) {
    Proc* victim = nullptr;
    for (auto& p : procs_) {
      if (p.get() == &asker || p->state == ProcState::kDone ||
          p->state == ProcState::kSuspended) {
        continue;
      }
      if (p->spec->job_priority >= asker.spec->job_priority) {
        continue;
      }
      if (victim == nullptr || p->reserved > victim->reserved) {
        victim = p.get();
      }
    }
    if (victim == nullptr || victim->reserved == 0) {
      return false;
    }
    if (victim->core != nullptr) {
      victim->core->DropAll();
      victim->resume_grant = victim->core->grant();
    } else {
      victim->resume_grant = std::max<uint32_t>(victim->ws->size, 1);
      victim->ws->DropAll();
    }
    Reserve(*victim, 0);
    victim->state = ProcState::kSuspended;
    victim->awaiting_memory = false;
    ++victim->stats.swapped_out;
    ++swaps_;
    return true;
  }

  // Processes an ALLOCATE directive for `p`. Returns false if the process
  // suspended (cursor must stay at the directive).
  bool ProcessAllocate(Proc& p, const DirectiveRecord& d) {
    CDMM_CHECK(!d.requests.empty());
    // A minimal (PI=1) request larger than the whole machine can never be
    // granted: run the process inside whatever fits rather than hang
    // (equivalent to the deadlock-breaker path).
    if (d.requests.back().priority == 1 && d.requests.back().pages > options_.total_frames) {
      p.force_grant = true;
    }
    while (true) {
      // Frames this process could marshal for a new grant: the pool plus its
      // own returnable grant (its reservation minus unreturnable pins).
      uint32_t returnable =
          p.reserved > p.core->locked_resident() ? p.reserved - p.core->locked_resident() : 0;
      uint32_t budget = pool_free_ + returnable;
      int idx = SelectCdRequest(d.requests, DirectiveSelection::kAvailability, 0, budget);
      if (idx >= 0) {
        p.core->SetGrant(d.requests[static_cast<size_t>(idx)].pages);
        SyncHeld(p);
        return true;
      }
      // Figure 6: nothing fits. PI > 1 → keep running with the current
      // allocation; PI = 1 → swap a lower-priority job or suspend.
      if (d.requests.back().priority != 1) {
        return true;
      }
      if (SwapOutVictim(p)) {
        continue;  // retry with the freed frames
      }
      if (p.force_grant) {
        // Deadlock breaker: run inside whatever is physically free.
        p.force_grant = false;
        p.core->SetGrant(std::max<uint32_t>(std::min<uint32_t>(
                             d.requests.back().pages, pool_free_ + returnable), 1));
        SyncHeld(p);
        return true;
      }
      p.core->DropAll();
      Reserve(p, 0);
      p.state = ProcState::kSuspended;
      p.awaiting_memory = true;
      ++p.stats.suspensions;
      return false;
    }
  }

  void ProcessDirective(Proc& p, const DirectiveRecord& d, bool* suspended) {
    *suspended = false;
    if (mode_ != OsPolicyMode::kCd) {
      return;  // the baselines ignore directives
    }
    switch (d.kind) {
      case DirectiveRecord::Kind::kAllocate:
        if (!ProcessAllocate(p, d)) {
          *suspended = true;
        }
        break;
      case DirectiveRecord::Kind::kLock:
        p.core->Lock(d.pages, d.lock_priority);
        SyncHeld(p);
        break;
      case DirectiveRecord::Kind::kUnlock:
        p.core->Unlock(d.pages);
        SyncHeld(p);
        break;
    }
  }

  void Finish(Proc& p) {
    if (p.core != nullptr) {
      p.core->DropAll();
    } else {
      p.ws->DropAll();
    }
    Reserve(p, 0);
    p.state = ProcState::kDone;
    p.stats.finished_at = clock_;
    WakeSuspendedForMemory();
  }

  // Frames were released: wake suspended processes whose demand now fits.
  void WakeSuspendedForMemory() {
    for (auto& p : procs_) {
      if (p->state != ProcState::kSuspended) {
        continue;
      }
      if (p->awaiting_memory) {
        // It will re-process its ALLOCATE; wake it if even the minimal
        // request could fit now.
        const TraceEvent& e = p->spec->trace->events()[p->cursor];
        const DirectiveRecord& d = p->spec->trace->directive(e.value);
        if (d.requests.back().pages <= pool_free_) {
          p->state = ProcState::kReady;
        }
      } else if (p->resume_grant <= pool_free_) {
        if (p->core != nullptr) {
          Reserve(*p, std::max<uint32_t>(p->resume_grant, 1));
        }
        p->state = ProcState::kReady;
      }
    }
  }

  // One reference under the working-set policy. Returns false when the
  // process stopped (suspended waiting for a frame, or page-waiting after a
  // fault); the cursor is only advanced when the reference executed.
  bool ExecuteWsRef(Proc& p, PageId page, uint64_t* executed) {
    uint32_t freed = p.ws->Expire();
    if (freed > 0) {
      Reserve(p, p.reserved - std::min(freed, p.reserved));
    }
    bool fault = !p.ws->InSet(page);
    if (fault && pool_free_ == 0) {
      // Load control: free a frame by swapping a lower-priority process;
      // otherwise deactivate this one until memory frees.
      if (!SwapOutVictim(p)) {
        // Deactivate: a swapped-out working set releases all its frames and
        // rebuilds on reactivation.
        p.resume_grant = std::max<uint32_t>(p.ws->size / 2, 1);
        p.ws->DropAll();
        Reserve(p, 0);
        p.state = ProcState::kSuspended;
        p.awaiting_memory = false;
        ++p.stats.suspensions;
        return false;
      }
    }
    if (fault) {
      Reserve(p, p.reserved + 1);
    }
    p.ws->Record(page);
    SetClock(clock_ + 1);
    ++executed_ticks_;
    ++(*executed);
    ++p.cursor;
    ++p.stats.references;
    if (fault) {
      ++p.stats.faults;
      p.state = ProcState::kPageWait;
      p.wake_at = clock_ + options_.fault_service_time;
      WakeExpired();
      return false;
    }
    return true;
  }

  void RunSlice(Proc& p) {
    if (!p.started) {
      p.started = true;
      p.stats.started_at = clock_;
      p.held_since = clock_;
    }
    const std::vector<TraceEvent>& events = p.spec->trace->events();
    uint64_t executed = 0;
    while (executed < options_.quantum) {
      if (p.cursor >= events.size()) {
        Finish(p);
        return;
      }
      const TraceEvent& e = events[p.cursor];
      switch (e.kind) {
        case TraceEvent::Kind::kDirective: {
          bool suspended = false;
          ProcessDirective(p, p.spec->trace->directive(e.value), &suspended);
          if (suspended) {
            return;  // cursor stays at the ALLOCATE
          }
          ++p.cursor;
          break;
        }
        case TraceEvent::Kind::kLoopEnter:
        case TraceEvent::Kind::kLoopExit:
          ++p.cursor;
          break;
        case TraceEvent::Kind::kRef: {
          if (p.ws != nullptr && !ExecuteWsRef(p, e.value, &executed)) {
            return;  // suspended or page-waiting; cursor handled inside
          }
          if (p.ws != nullptr) {
            if (p.state != ProcState::kReady) {
              return;
            }
            break;
          }
          bool fault = p.core->Touch(e.value);
          SetClock(clock_ + 1);
          ++executed_ticks_;
          ++executed;
          ++p.cursor;
          ++p.stats.references;
          if (fault) {
            ++p.stats.faults;
            SyncHeld(p);  // a pre-locked page may have faulted in
            p.state = ProcState::kPageWait;
            p.wake_at = clock_ + options_.fault_service_time;
            WakeExpired();
            return;
          }
          break;
        }
      }
    }
    WakeExpired();
  }

  OsOptions options_;
  OsPolicyMode mode_;
  std::vector<std::unique_ptr<Proc>> procs_;
  uint32_t pool_free_;
  uint64_t clock_ = 0;
  uint64_t executed_ticks_ = 0;
  size_t rr_next_ = 0;
  uint64_t swaps_ = 0;
  double pool_integral_ = 0.0;
  uint64_t pool_since_ = 0;
};

}  // namespace

OsRunResult RunMultiprogrammedCd(const std::vector<OsProcessSpec>& specs,
                                 const OsOptions& options) {
  return OsSimulator(specs, options, OsPolicyMode::kCd).Run();
}

OsRunResult RunEqualPartitionLru(const std::vector<OsProcessSpec>& specs,
                                 const OsOptions& options) {
  return OsSimulator(specs, options, OsPolicyMode::kEqualPartitionLru).Run();
}

OsRunResult RunMultiprogrammedWs(const std::vector<OsProcessSpec>& specs,
                                 const OsOptions& options, uint64_t tau) {
  return OsSimulator(specs, options, OsPolicyMode::kWorkingSet, tau).Run();
}

}  // namespace cdmm
