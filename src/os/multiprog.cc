#include "src/os/multiprog.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>

#include "src/robust/load_controller.h"
#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/cd_core.h"
#include "src/vm/cd_policy.h"
#include "src/vm/hierarchy.h"

namespace cdmm {
namespace {

enum class ProcState : uint8_t { kReady, kPageWait, kSuspended, kDone };

enum class OsPolicyMode : uint8_t { kCd, kEqualPartitionLru, kWorkingSet };

// Per-process working-set state for the kWorkingSet mode: membership is
// W(t, τ) over the process's own virtual time.
//
// Flat storage, mirroring the uniprogrammed WS kernel (src/vm/working_set.cc):
// the last-reference map is a per-page column where 0 = not in the set (vtime
// is 1-based and the column entry is cleared the moment the expiry cursor
// passes the page's last reference, exactly when the map version erased it,
// so membership stays pure presence). The dense window deque is a ring of
// min(tau, refs) + 2 page slots indexed by vtime % capacity — position t only
// ever overwrites position t - capacity, which the cursor has already walked
// (or which DropAll skipped past). Expire() is idempotent across repeated
// calls at the same vtime: the cursor just has nothing new to walk.
struct WsState {
  uint64_t tau = 2000;
  uint64_t vtime = 0;
  uint32_t size = 0;
  std::vector<uint64_t> last_when;  // per page; 0 = not in the working set
  std::vector<PageId> ring;         // window entry for vtime t at t % ring.size()
  uint64_t expire_next = 1;         // oldest window position not yet expired

  // Sizes the flat tables once, from the process's own page space and trace
  // length (vtime never exceeds the trace's reference count).
  void Init(uint64_t tau_in, uint32_t page_bound, uint64_t max_refs) {
    tau = std::max<uint64_t>(tau_in, 1);
    last_when.assign(std::max<uint32_t>(page_bound, 1), 0);
    ring.resize(std::min<uint64_t>(tau, max_refs) + 2);
  }

  // Expires pages that left the window; returns how many frames freed. When
  // `victims` is non-null, the expired pages are appended (hierarchy demotion).
  uint32_t Expire(std::vector<PageId>* victims = nullptr) {
    uint32_t freed = 0;
    while (expire_next + tau < vtime + 1) {
      const PageId page = ring[expire_next % ring.size()];
      if (last_when[page] == expire_next) {
        last_when[page] = 0;
        --size;
        ++freed;
        if (victims != nullptr) {
          victims->push_back(page);
        }
      }
      ++expire_next;
    }
    return freed;
  }

  bool InSet(PageId page) const { return last_when[page] != 0; }

  // Records the reference (the page must already be admitted).
  void Record(PageId page) {
    ++vtime;
    if (last_when[page] == 0) {
      ++size;
    }
    last_when[page] = vtime;
    ring[vtime % ring.size()] = page;
  }

  void DropAll() {
    std::fill(last_when.begin(), last_when.end(), 0);
    size = 0;
    // Skip the cursor past everything pushed so far; the skipped ring
    // entries point at cleared column slots, so they can never mis-expire.
    expire_next = vtime + 1;
  }
};

// Page-index bound for a process's flat tables: the declared virtual-page
// count when known, else one prescan for the max referenced page.
uint32_t TracePageBound(const Trace& trace) {
  uint32_t bound = trace.virtual_pages();
  if (bound == 0) {
    for (const TraceEvent& e : trace.events()) {
      if (e.kind == TraceEvent::Kind::kRef) {
        bound = std::max<uint32_t>(bound, static_cast<uint32_t>(e.value) + 1);
      }
    }
  }
  return std::max<uint32_t>(bound, 1);
}

struct Proc {
  const OsProcessSpec* spec = nullptr;
  size_t index = 0;               // spec order; injection stream id
  std::unique_ptr<CdCore> core;   // kCd / kEqualPartitionLru
  std::unique_ptr<WsState> ws;    // kWorkingSet
  size_t cursor = 0;  // next event in the trace
  ProcState state = ProcState::kReady;
  uint64_t wake_at = 0;         // kPageWait: global time to resume
  bool awaiting_memory = false; // kSuspended at an ALLOCATE (re-process on wake)
  bool force_grant = false;     // deadlock breaker: clamp the next ALLOCATE
  bool lc_suspended = false;    // parked by the thrashing detector
  bool started = false;
  uint32_t resume_grant = 0;    // grant to re-reserve when woken after swap-out
  OsProcessStats stats;

  // Pages the core/ws evicted since the last drain, awaiting demotion into
  // the shared hierarchy (unused when no hierarchy is configured).
  std::vector<PageId> evictions;

  // Pool-accounting shadow of core->held(): frames currently reserved.
  uint32_t reserved = 0;
  // Lazy time-weighted integral of `reserved`.
  double held_integral = 0.0;
  uint64_t held_since = 0;
};

class OsSimulator {
 public:
  OsSimulator(const std::vector<OsProcessSpec>& specs, const OsOptions& options,
              OsPolicyMode mode, uint64_t ws_tau = 0)
      : options_(options), mode_(mode), injector_(options.injector),
        pool_free_(options.total_frames),
        load_controller_(LoadControllerConfig{options.thrash_window,
                                              options.thrash_cpu_low,
                                              options.thrash_cpu_high,
                                              options.thrash_fault_rate}) {
    if (injector_ != nullptr && !injector_->enabled()) {
      injector_ = nullptr;
    }
    if (options.hierarchy != nullptr) {
      hier_ = std::make_unique<HierarchyEngine>(*options.hierarchy, injector_);
    }
    uint32_t partition =
        std::max<uint32_t>(1, options.total_frames / static_cast<uint32_t>(specs.size()));
    for (const OsProcessSpec& spec : specs) {
      auto p = std::make_unique<Proc>();
      p->spec = &spec;
      p->index = procs_.size();
      p->stats.name = spec.name;
      if (mode == OsPolicyMode::kWorkingSet) {
        p->ws = std::make_unique<WsState>();
        p->ws->Init(ws_tau, TracePageBound(*spec.trace), spec.trace->reference_count());
        p->reserved = 0;
      } else {
        bool cd = mode == OsPolicyMode::kCd;
        uint32_t grant = cd ? std::max<uint32_t>(options.initial_allocation, 1) : partition;
        p->core = std::make_unique<CdCore>(grant, cd && options.honor_locks,
                                           spec.trace->virtual_pages());
        if (hier_ != nullptr) {
          p->core->set_eviction_sink(&p->evictions);
        }
        CDMM_CHECK_MSG(grant <= pool_free_, "initial allocations exceed the frame pool");
        p->reserved = p->core->held();
        pool_free_ -= p->reserved;
      }
      procs_.push_back(std::move(p));
    }
  }

  OsRunResult Run() {
    while (!AllDone()) {
      Proc* p = NextReady();
      if (p == nullptr) {
        AdvanceIdle();
        continue;
      }
      RunSlice(*p);
    }
    OsRunResult result;
    result.total_time = clock_;
    result.swaps = swaps_;
    result.load_control_suspensions = lc_suspensions_;
    result.swap_device_failures = swap_device_failures_;
    result.swap_retries_exhausted = swap_retries_exhausted_;
    result.phantom_peak_frames = phantom_peak_;
    IntegratePool();
    result.mean_pool_used =
        clock_ == 0 ? 0.0 : pool_integral_ / static_cast<double>(clock_);
    result.cpu_utilisation =
        clock_ == 0 ? 0.0 : static_cast<double>(executed_ticks_) / static_cast<double>(clock_);
    for (auto& p : procs_) {
      uint64_t lifetime = p->stats.finished_at - p->stats.started_at;
      p->stats.mean_held =
          lifetime == 0 ? 0.0 : p->held_integral / static_cast<double>(lifetime);
      result.total_faults += p->stats.faults;
      if (!p->stats.completed) {
        ++result.failed_processes;
      }
      result.processes.push_back(p->stats);
    }
    if (hier_ != nullptr) {
      result.hierarchy_levels = hier_->Traffic();
    }
    return result;
  }

 private:
  bool AllDone() const {
    for (const auto& p : procs_) {
      if (p->state != ProcState::kDone) {
        return false;
      }
    }
    return true;
  }

  Proc* NextReady() {
    for (size_t i = 0; i < procs_.size(); ++i) {
      Proc* p = procs_[(rr_next_ + i) % procs_.size()].get();
      if (p->state == ProcState::kReady) {
        rr_next_ = (rr_next_ + i + 1) % procs_.size();
        return p;
      }
    }
    return nullptr;
  }

  // No process is ready: jump the clock to the earliest page-wait wake-up,
  // or break a pure memory deadlock by force-waking a suspended process.
  void AdvanceIdle() {
    // A slice can end (completion, suspension) without checking the page-wait
    // queue; expire anything already due before jumping the clock.
    WakeExpired();
    for (const auto& p : procs_) {
      if (p->state == ProcState::kReady) {
        return;
      }
    }
    uint64_t next = std::numeric_limits<uint64_t>::max();
    for (const auto& p : procs_) {
      if (p->state == ProcState::kPageWait) {
        next = std::min(next, p->wake_at);
      }
    }
    if (next != std::numeric_limits<uint64_t>::max()) {
      SetClock(std::max(next, clock_));
      UpdatePhantom();
      WakeExpired();
      return;
    }
    // Only suspended processes remain. If an injected pressure spike is
    // holding frames, evict the phantom first — real processes outrank
    // injected adversity — and retry the memory-based wake-up.
    if (phantom_reserved_ > 0) {
      ReleasePhantom(/*suppress=*/true);
      WakeSuspendedForMemory();
      for (const auto& p : procs_) {
        if (p->state == ProcState::kReady) {
          return;
        }
      }
    }
    // Wake the first suspended process, clamping its demand to whatever is
    // free (the workload does not fit; progress beats hang).
    for (auto& p : procs_) {
      if (p->state == ProcState::kSuspended) {
        p->state = ProcState::kReady;
        p->lc_suspended = false;
        if (p->awaiting_memory) {
          p->force_grant = true;
        } else if (p->core != nullptr) {
          Reserve(*p, std::max<uint32_t>(std::min(p->resume_grant, pool_free_), 1));
        }
        return;
      }
    }
    CDMM_UNREACHABLE("idle with no waiters");
  }

  void WakeExpired() {
    for (auto& p : procs_) {
      if (p->state == ProcState::kPageWait && p->wake_at <= clock_) {
        p->state = ProcState::kReady;
      }
    }
  }

  void SetClock(uint64_t t) {
    CDMM_CHECK(t >= clock_);
    clock_ = t;
  }

  void IntegratePool() {
    pool_integral_ += static_cast<double>(options_.total_frames - pool_free_) *
                      static_cast<double>(clock_ - pool_since_);
    pool_since_ = clock_;
  }

  void IntegrateHeld(Proc& p) {
    p.held_integral += static_cast<double>(p.reserved) * static_cast<double>(clock_ - p.held_since);
    p.held_since = clock_;
  }

  // Adjusts a process's pool reservation to `target` frames.
  void Reserve(Proc& p, uint32_t target) {
    IntegratePool();
    IntegrateHeld(p);
    if (target > p.reserved) {
      uint32_t delta = target - p.reserved;
      CDMM_CHECK_MSG(delta <= pool_free_, "pool overcommit");
      pool_free_ -= delta;
    } else {
      pool_free_ += p.reserved - target;
    }
    p.reserved = target;
  }

  // Hierarchy key for a process's page: processes never share virtual pages,
  // so pack the spec-order index above the 32-bit page id.
  static uint64_t HierKey(const Proc& p, PageId page) {
    return (static_cast<uint64_t>(p.index) << 32) | static_cast<uint64_t>(page);
  }

  // Per-fault service time, perturbed by the injector when one is attached.
  // With a hierarchy configured, the engine resolves the fault (promoting the
  // page out of whatever level holds it) and its level latencies replace the
  // flat `fault_service_time`.
  uint64_t ServiceTime(const Proc& p, PageId page) {
    // stats.faults was already incremented for the current fault.
    if (hier_ != nullptr) {
      return hier_->OnFault(HierKey(p, page), p.index, p.stats.faults - 1);
    }
    uint64_t base = options_.fault_service_time;
    if (injector_ == nullptr) {
      return base;
    }
    return injector_->FaultServiceTime(p.index, p.stats.faults - 1, base);
  }

  // Demotes pages the process's core/ws released since the last drain into
  // the shared hierarchy. No-op (and `evictions` stays empty) without one.
  void DrainEvictions(Proc& p) {
    if (hier_ == nullptr || p.evictions.empty()) {
      return;
    }
    for (PageId page : p.evictions) {
      hier_->OnEvict(HierKey(p, page));
    }
    p.evictions.clear();
  }

  // ---- Injected frame-pool pressure: a phantom process that reserves part
  // of the pool for whole epochs. Piecewise-constant and derived purely from
  // (seed, epoch), so the spike schedule is identical across runs.

  void ReleasePhantom(bool suppress) {
    if (phantom_reserved_ == 0) {
      if (suppress && injector_ != nullptr) {
        phantom_suppressed_until_ = injector_->NextPhantomChange(clock_);
      }
      return;
    }
    IntegratePool();
    pool_free_ += phantom_reserved_;
    phantom_reserved_ = 0;
    if (suppress && injector_ != nullptr) {
      phantom_suppressed_until_ = injector_->NextPhantomChange(clock_);
    }
  }

  void UpdatePhantom() {
    if (injector_ == nullptr) {
      return;
    }
    if (clock_ < phantom_next_check_) {
      return;
    }
    phantom_next_check_ = injector_->NextPhantomChange(clock_);
    uint32_t desired = clock_ < phantom_suppressed_until_
                           ? 0
                           : injector_->PhantomFrames(clock_, options_.total_frames);
    if (desired > phantom_reserved_) {
      uint32_t take = std::min<uint32_t>(desired - phantom_reserved_, pool_free_);
      if (take > 0) {
        IntegratePool();
        pool_free_ -= take;
        phantom_reserved_ += take;
        phantom_peak_ = std::max(phantom_peak_, phantom_reserved_);
        TELEM_GAUGE_MAX("os.phantom_frames_peak", phantom_peak_);
      }
    } else if (desired < phantom_reserved_) {
      IntegratePool();
      pool_free_ += phantom_reserved_ - desired;
      phantom_reserved_ = desired;
      WakeSuspendedForMemory();
    }
  }

  // ---- Thrashing detector: windowed CPU utilisation + fault rate with
  // hysteresis, driving suspend (load shedding) and readmit. The window
  // arithmetic and watermark comparison live in the shared LoadController
  // (src/robust/load_controller.h), which the serve admission path reuses.

  void MaybeLoadControl() {
    if (!options_.load_control) {
      return;
    }
    LoadController::WindowDecision decision =
        load_controller_.EvaluateTotals(clock_, executed_ticks_, faults_total_);
    if (!decision.evaluated) {
      return;
    }
    TELEM_COUNT("os.thrash_window_evaluated");
    if (decision.action == LoadAction::kShed) {
      SuspendForLoadControl();
    } else if (decision.action == LoadAction::kReadmit) {
      ReadmitForLoadControl();
    }
  }

  void SuspendForLoadControl() {
    // Shed the lowest-priority active process (largest reservation breaking
    // ties), but never shrink the multiprogramming level below one.
    Proc* victim = nullptr;
    int active = 0;
    for (auto& p : procs_) {
      if (p->state != ProcState::kReady && p->state != ProcState::kPageWait) {
        continue;
      }
      ++active;
      if (victim == nullptr ||
          p->spec->job_priority < victim->spec->job_priority ||
          (p->spec->job_priority == victim->spec->job_priority &&
           p->reserved > victim->reserved)) {
        victim = p.get();
      }
    }
    if (victim == nullptr || active < 2) {
      return;
    }
    if (victim->core != nullptr) {
      victim->core->DropAll();
      victim->resume_grant = victim->core->grant();
    } else {
      victim->resume_grant = std::max<uint32_t>(victim->ws->size / 2, 1);
      victim->ws->DropAll();
    }
    Reserve(*victim, 0);
    victim->state = ProcState::kSuspended;
    victim->awaiting_memory = false;
    victim->lc_suspended = true;
    ++victim->stats.suspensions;
    ++lc_suspensions_;
    TELEM_COUNT("os.load_control_suspended");
  }

  void ReadmitForLoadControl() {
    // Utilisation recovered: readmit the highest-priority parked process.
    Proc* best = nullptr;
    for (auto& p : procs_) {
      if (p->state != ProcState::kSuspended || !p->lc_suspended) {
        continue;
      }
      if (best == nullptr || p->spec->job_priority > best->spec->job_priority) {
        best = p.get();
      }
    }
    if (best == nullptr || pool_free_ == 0) {
      return;
    }
    best->state = ProcState::kReady;
    best->lc_suspended = false;
    TELEM_COUNT("os.load_control_readmitted");
    if (best->core != nullptr) {
      Reserve(*best, std::max<uint32_t>(std::min(best->resume_grant, pool_free_), 1));
    }
  }

  // Terminates `p` with a structured failure reason; its frames return to
  // the pool and the rest of the mix keeps running.
  void FailProcess(Proc& p, std::string reason) {
    TELEM_COUNT("os.process_failed");
    p.stats.failure = std::move(reason);
    p.stats.completed = false;
    if (p.core != nullptr) {
      p.core->DropAll();
    } else if (p.ws != nullptr) {
      p.ws->DropAll();
    }
    Reserve(p, 0);
    p.state = ProcState::kDone;
    p.stats.finished_at = clock_;
    WakeSuspendedForMemory();
  }

  // Swap out the best victim with strictly lower job priority than `asker`;
  // returns false if none exists or the swap device stayed down through
  // every backoff retry.
  bool SwapOutVictim(const Proc& asker) {
    Proc* victim = nullptr;
    for (auto& p : procs_) {
      if (p.get() == &asker || p->state == ProcState::kDone ||
          p->state == ProcState::kSuspended) {
        continue;
      }
      if (p->spec->job_priority >= asker.spec->job_priority) {
        continue;
      }
      if (victim == nullptr || p->reserved > victim->reserved) {
        victim = p.get();
      }
    }
    if (victim == nullptr || victim->reserved == 0) {
      return false;
    }
    // Injected transient swap-device failures: retry with exponential
    // backoff (the asker waits out the delay on the global clock); abandon
    // the swap once the retry budget is exhausted.
    if (injector_ != nullptr) {
      bool ok = false;
      uint64_t delay = 0;
      int attempts = std::max(injector_->config().max_swap_retries, 0) + 1;
      for (int a = 0; a < attempts; ++a) {
        if (!injector_->SwapAttemptFails(swap_attempt_seq_++)) {
          ok = true;
          break;
        }
        ++swap_device_failures_;
        TELEM_COUNT("os.swap_attempt_failed");
        delay += injector_->config().swap_backoff_base << a;
      }
      if (delay > 0) {
        SetClock(clock_ + delay);
        TELEM_COUNT_N("os.swap_backoff_waited_ticks", delay);
      }
      if (!ok) {
        ++swap_retries_exhausted_;
        TELEM_COUNT("os.swap_retries_exhausted");
        return false;
      }
    }
    if (victim->core != nullptr) {
      victim->core->DropAll();
      victim->resume_grant = victim->core->grant();
    } else {
      victim->resume_grant = std::max<uint32_t>(victim->ws->size, 1);
      victim->ws->DropAll();
    }
    Reserve(*victim, 0);
    victim->state = ProcState::kSuspended;
    victim->awaiting_memory = false;
    ++victim->stats.swapped_out;
    ++swaps_;
    TELEM_COUNT("os.swap_completed");
    return true;
  }

  // Reconciles the reservation with the core's actual held() after a core
  // mutation, clawing frames back from the process itself if the pool is
  // short (soft-release locks, then shrink the grant).
  void SyncHeld(Proc& p) {
    uint32_t want = p.core->held();
    while (want > p.reserved && want - p.reserved > pool_free_) {
      if (p.core->SoftReleaseLock()) {
        ++p.stats.lock_releases;
        want = p.core->held();
        continue;
      }
      uint32_t deficit = (want - p.reserved) - pool_free_;
      uint32_t new_grant = p.core->grant() > deficit ? p.core->grant() - deficit : 1;
      p.core->SetGrant(new_grant);
      want = p.core->held();
      break;
    }
    Reserve(p, want);
    DrainEvictions(p);
  }

  // Processes an ALLOCATE directive for `p`. Returns false if the process
  // stopped (suspended, or failed under fail_unfittable) — the cursor must
  // stay at the directive for suspension.
  bool ProcessAllocate(Proc& p, const DirectiveRecord& d) {
    CDMM_CHECK(!d.requests.empty());
    // A minimal (PI=1) request larger than the whole machine can never be
    // granted. Graceful degradation decides between a structured per-process
    // failure (fail_unfittable) and running the process inside whatever fits
    // (the deadlock-breaker path, the default).
    if (d.requests.back().priority == 1 && d.requests.back().pages > options_.total_frames) {
      if (options_.fail_unfittable) {
        FailProcess(p, StrCat("PI=1 request of ", d.requests.back().pages,
                              " pages can never fit the ", options_.total_frames,
                              "-frame machine"));
        return false;
      }
      p.force_grant = true;
    }
    while (true) {
      // Frames this process could marshal for a new grant: the pool plus its
      // own returnable grant (its reservation minus unreturnable pins).
      uint32_t returnable =
          p.reserved > p.core->locked_resident() ? p.reserved - p.core->locked_resident() : 0;
      uint32_t budget = pool_free_ + returnable;
      int idx = SelectCdRequest(d.requests, DirectiveSelection::kAvailability, 0, budget);
      if (idx >= 0) {
        p.core->SetGrant(d.requests[static_cast<size_t>(idx)].pages);
        SyncHeld(p);
        return true;
      }
      // Figure 6: nothing fits. PI > 1 → keep running with the current
      // allocation; PI = 1 → swap a lower-priority job or suspend.
      if (d.requests.back().priority != 1) {
        return true;
      }
      if (SwapOutVictim(p)) {
        continue;  // retry with the freed frames
      }
      if (p.force_grant) {
        // Deadlock breaker: run inside whatever is physically free.
        p.force_grant = false;
        p.core->SetGrant(std::max<uint32_t>(std::min<uint32_t>(
                             d.requests.back().pages, pool_free_ + returnable), 1));
        SyncHeld(p);
        return true;
      }
      p.core->DropAll();
      Reserve(p, 0);
      p.state = ProcState::kSuspended;
      p.awaiting_memory = true;
      ++p.stats.suspensions;
      TELEM_COUNT("os.process_suspended");
      return false;
    }
  }

  void ProcessDirective(Proc& p, const DirectiveRecord& d, bool* stopped) {
    *stopped = false;
    if (mode_ != OsPolicyMode::kCd) {
      return;  // the baselines ignore directives
    }
    switch (d.kind) {
      case DirectiveRecord::Kind::kAllocate:
        if (!ProcessAllocate(p, d)) {
          *stopped = true;
        }
        break;
      case DirectiveRecord::Kind::kLock:
        p.core->Lock(d.pages, d.lock_priority);
        SyncHeld(p);
        break;
      case DirectiveRecord::Kind::kUnlock:
        p.core->Unlock(d.pages);
        SyncHeld(p);
        break;
    }
  }

  void Finish(Proc& p) {
    if (p.core != nullptr) {
      p.core->DropAll();
    } else {
      p.ws->DropAll();
    }
    Reserve(p, 0);
    p.state = ProcState::kDone;
    p.stats.finished_at = clock_;
    TELEM_COUNT("os.process_finished");
    WakeSuspendedForMemory();
  }

  // Frames were released: wake suspended processes whose demand now fits.
  void WakeSuspendedForMemory() {
    for (auto& p : procs_) {
      if (p->state != ProcState::kSuspended) {
        continue;
      }
      if (p->awaiting_memory) {
        // It will re-process its ALLOCATE; wake it if even the minimal
        // request could fit now.
        const TraceEvent& e = p->spec->trace->events()[p->cursor];
        const DirectiveRecord& d = p->spec->trace->directive(e.value);
        if (d.requests.back().pages <= pool_free_) {
          p->state = ProcState::kReady;
        }
      } else if (p->resume_grant <= pool_free_) {
        if (p->core != nullptr) {
          Reserve(*p, std::max<uint32_t>(p->resume_grant, 1));
        }
        p->state = ProcState::kReady;
        p->lc_suspended = false;
      }
    }
  }

  // One reference under the working-set policy. Returns false when the
  // process stopped (suspended waiting for a frame, or page-waiting after a
  // fault); the cursor is only advanced when the reference executed.
  bool ExecuteWsRef(Proc& p, PageId page, uint64_t* executed) {
    uint32_t freed = p.ws->Expire(hier_ != nullptr ? &p.evictions : nullptr);
    if (freed > 0) {
      Reserve(p, p.reserved - std::min(freed, p.reserved));
    }
    DrainEvictions(p);
    bool fault = !p.ws->InSet(page);
    if (fault && pool_free_ == 0) {
      // Load control: free a frame by swapping a lower-priority process;
      // otherwise deactivate this one until memory frees.
      if (!SwapOutVictim(p)) {
        // Deactivate: a swapped-out working set releases all its frames and
        // rebuilds on reactivation.
        p.resume_grant = std::max<uint32_t>(p.ws->size / 2, 1);
        p.ws->DropAll();
        Reserve(p, 0);
        p.state = ProcState::kSuspended;
        p.awaiting_memory = false;
        ++p.stats.suspensions;
        TELEM_COUNT("os.process_suspended");
        return false;
      }
    }
    if (fault) {
      Reserve(p, p.reserved + 1);
    }
    p.ws->Record(page);
    SetClock(clock_ + 1);
    ++executed_ticks_;
    ++(*executed);
    ++p.cursor;
    ++p.stats.references;
    if (fault) {
      ++p.stats.faults;
      ++faults_total_;
      p.state = ProcState::kPageWait;
      p.wake_at = clock_ + ServiceTime(p, page);
      WakeExpired();
      return false;
    }
    return true;
  }

  void RunSlice(Proc& p) {
    UpdatePhantom();
    MaybeLoadControl();
    if (p.state != ProcState::kReady) {
      return;  // load control parked this process before its slice began
    }
    if (!p.started) {
      p.started = true;
      p.stats.started_at = clock_;
      p.held_since = clock_;
    }
    const std::vector<TraceEvent>& events = p.spec->trace->events();
    uint64_t executed = 0;
    TELEM_SPAN_VAR(quantum_span, "os.quantum", "os");
    quantum_span.AddArg("process", p.stats.name);
    // Records however the slice exits (completion, fault, suspension).
    struct QuantumTelem {
      const uint64_t* executed;
      ~QuantumTelem() {
        TELEM_COUNT("os.quantum_executed");
        TELEM_HIST("os.quantum_refs_executed", telem::BucketSpec::PowersOfTwo(12),
                   *executed);
      }
    } quantum_telem{&executed};
    while (executed < options_.quantum) {
      if (p.cursor >= events.size()) {
        Finish(p);
        return;
      }
      const TraceEvent& e = events[p.cursor];
      switch (e.kind) {
        case TraceEvent::Kind::kDirective: {
          bool stopped = false;
          ProcessDirective(p, p.spec->trace->directive(e.value), &stopped);
          if (stopped) {
            return;  // cursor stays at the ALLOCATE (or the process failed)
          }
          ++p.cursor;
          break;
        }
        case TraceEvent::Kind::kLoopEnter:
        case TraceEvent::Kind::kLoopExit:
          ++p.cursor;
          break;
        case TraceEvent::Kind::kRef: {
          if (p.ws != nullptr && !ExecuteWsRef(p, e.value, &executed)) {
            return;  // suspended or page-waiting; cursor handled inside
          }
          if (p.ws != nullptr) {
            if (p.state != ProcState::kReady) {
              return;
            }
            break;
          }
          bool fault = p.core->Touch(e.value);
          SetClock(clock_ + 1);
          ++executed_ticks_;
          ++executed;
          ++p.cursor;
          ++p.stats.references;
          if (fault) {
            ++p.stats.faults;
            ++faults_total_;
            SyncHeld(p);  // a pre-locked page may have faulted in
            p.state = ProcState::kPageWait;
            p.wake_at = clock_ + ServiceTime(p, e.value);
            WakeExpired();
            return;
          }
          break;
        }
      }
    }
    WakeExpired();
  }

  OsOptions options_;
  OsPolicyMode mode_;
  const FaultInjector* injector_;
  std::unique_ptr<HierarchyEngine> hier_;  // shared by all processes
  std::vector<std::unique_ptr<Proc>> procs_;
  uint32_t pool_free_;
  uint64_t clock_ = 0;
  uint64_t executed_ticks_ = 0;
  size_t rr_next_ = 0;
  uint64_t swaps_ = 0;
  double pool_integral_ = 0.0;
  uint64_t pool_since_ = 0;

  // Degradation accounting.
  uint64_t faults_total_ = 0;
  uint64_t swap_attempt_seq_ = 0;
  uint64_t swap_device_failures_ = 0;
  uint64_t swap_retries_exhausted_ = 0;
  uint64_t lc_suspensions_ = 0;
  LoadController load_controller_;
  uint32_t phantom_reserved_ = 0;
  uint32_t phantom_peak_ = 0;
  uint64_t phantom_next_check_ = 0;
  uint64_t phantom_suppressed_until_ = 0;
};

// Input validation shared by the three entry points: everything that used to
// CHECK-fail for a workload that can never fit now surfaces as an Error.
std::optional<Error> ValidateRun(const std::vector<OsProcessSpec>& specs,
                                 const OsOptions& options, OsPolicyMode mode) {
  if (specs.empty()) {
    return Error{"no processes to run", {}};
  }
  if (options.total_frames == 0) {
    return Error{"total_frames must be at least 1", {}};
  }
  for (const OsProcessSpec& spec : specs) {
    if (spec.trace == nullptr) {
      return Error{StrCat("process '", spec.name, "' has no trace"), {}};
    }
  }
  uint64_t n = specs.size();
  if (mode == OsPolicyMode::kCd) {
    uint64_t grant = std::max<uint32_t>(options.initial_allocation, 1);
    if (n * grant > options.total_frames) {
      return Error{StrCat("workload can never fit: ", n, " processes x ", grant,
                          " initial frames exceed the ", options.total_frames,
                          "-frame pool"),
                   {}};
    }
  } else if (mode == OsPolicyMode::kEqualPartitionLru && n > options.total_frames) {
    return Error{StrCat("workload can never fit: ", n,
                        " processes cannot share an equal partition of ",
                        options.total_frames, " frames"),
                 {}};
  }
  return std::nullopt;
}

}  // namespace

Result<OsRunResult> RunMultiprogrammedCd(const std::vector<OsProcessSpec>& specs,
                                         const OsOptions& options) {
  if (auto error = ValidateRun(specs, options, OsPolicyMode::kCd)) {
    return *std::move(error);
  }
  return OsSimulator(specs, options, OsPolicyMode::kCd).Run();
}

Result<OsRunResult> RunEqualPartitionLru(const std::vector<OsProcessSpec>& specs,
                                         const OsOptions& options) {
  if (auto error = ValidateRun(specs, options, OsPolicyMode::kEqualPartitionLru)) {
    return *std::move(error);
  }
  return OsSimulator(specs, options, OsPolicyMode::kEqualPartitionLru).Run();
}

Result<OsRunResult> RunMultiprogrammedWs(const std::vector<OsProcessSpec>& specs,
                                         const OsOptions& options, uint64_t tau) {
  if (auto error = ValidateRun(specs, options, OsPolicyMode::kWorkingSet)) {
    return *std::move(error);
  }
  return OsSimulator(specs, options, OsPolicyMode::kWorkingSet, tau).Run();
}

}  // namespace cdmm
