// Multiprogrammed CD memory management (§4 / Figure 6 of the paper): several
// directive-bearing traces share one CPU and one physical frame pool. The OS
// processes each ALLOCATE against the live pool (kAvailability semantics),
// suspends or swaps on ungrantable PI=1 requests, honours soft LOCKs, and
// overlaps one process's page-fault service with another's execution.
//
// Time model: one global clock tick per executed reference; a faulting
// process enters page-wait for `fault_service_time` ticks while others run;
// the clock jumps forward when no process is ready.
#ifndef CDMM_SRC_OS_MULTIPROG_H_
#define CDMM_SRC_OS_MULTIPROG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace cdmm {

struct OsProcessSpec {
  std::string name;
  const Trace* trace = nullptr;  // must outlive the run
  int job_priority = 0;          // larger = more important (swapper input)
};

struct OsOptions {
  uint32_t total_frames = 128;
  uint64_t fault_service_time = 2000;
  uint64_t quantum = 5000;  // references per scheduling slice
  uint32_t initial_allocation = 2;
  bool honor_locks = true;
};

struct OsProcessStats {
  std::string name;
  uint64_t references = 0;
  uint64_t faults = 0;
  uint64_t started_at = 0;    // global time of first instruction
  uint64_t finished_at = 0;   // global time of completion
  double mean_held = 0.0;     // time-weighted frames held over its lifetime
  uint64_t swapped_out = 0;   // times this process was chosen as swap victim
  uint64_t suspensions = 0;   // times it blocked waiting for memory
  uint64_t lock_releases = 0; // soft lock releases forced on it
};

struct OsRunResult {
  std::vector<OsProcessStats> processes;
  uint64_t total_time = 0;     // makespan
  uint64_t total_faults = 0;
  uint64_t swaps = 0;          // swapper invocations that found a victim
  double mean_pool_used = 0.0; // time-weighted frames reserved
  double cpu_utilisation = 0.0;  // fraction of ticks spent executing refs
};

// Runs the CD-managed multiprogramming simulation to completion of every
// process. CHECK-fails if a process's minimal (PI=1) request can never fit
// even in an empty pool — the workload does not fit the machine.
OsRunResult RunMultiprogrammedCd(const std::vector<OsProcessSpec>& specs,
                                 const OsOptions& options);

// Baseline: the same processes under a static equal partition with local
// LRU replacement (directives ignored), same CPU/time model.
OsRunResult RunEqualPartitionLru(const std::vector<OsProcessSpec>& specs,
                                 const OsOptions& options);

// Baseline: multiprogrammed Working Set with the classic load control the
// paper's §4 contrasts CD against — each process holds W(t, τ); when a
// fault would overcommit the pool the OS swaps out a lower-priority process
// (or suspends the requester), reactivating it when its last working-set
// size fits again. Denning's WS dispatcher provides no per-request
// information, so the victim choice is size-based, exactly the gap the
// paper's PI mechanism fills.
OsRunResult RunMultiprogrammedWs(const std::vector<OsProcessSpec>& specs,
                                 const OsOptions& options, uint64_t tau);

}  // namespace cdmm

#endif  // CDMM_SRC_OS_MULTIPROG_H_
