// Multiprogrammed CD memory management (§4 / Figure 6 of the paper): several
// directive-bearing traces share one CPU and one physical frame pool. The OS
// processes each ALLOCATE against the live pool (kAvailability semantics),
// suspends or swaps on ungrantable PI=1 requests, honours soft LOCKs, and
// overlaps one process's page-fault service with another's execution.
//
// Time model: one global clock tick per executed reference; a faulting
// process enters page-wait for `fault_service_time` ticks while others run;
// the clock jumps forward when no process is ready.
//
// Robustness: the entry points return Result<OsRunResult> — a workload that
// can never fit the machine surfaces as a structured Error, and per-process
// failures (OsProcessStats::failure) degrade the run instead of aborting the
// process. An optional deterministic FaultInjector perturbs fault-service
// times, makes swap-device attempts fail transiently (the OS retries with
// bounded exponential backoff), and steals frames through phantom pressure
// spikes; an optional thrashing detector (CPU-utilisation + fault-rate
// hysteresis) drives load control by suspending and readmitting processes.
#ifndef CDMM_SRC_OS_MULTIPROG_H_
#define CDMM_SRC_OS_MULTIPROG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/robust/fault_injector.h"
#include "src/support/result.h"
#include "src/trace/trace.h"
#include "src/vm/sim_result.h"

namespace cdmm {

class HierarchySpec;

struct OsProcessSpec {
  std::string name;
  const Trace* trace = nullptr;  // must outlive the run
  int job_priority = 0;          // larger = more important (swapper input)
};

struct OsOptions {
  uint32_t total_frames = 128;
  uint64_t fault_service_time = 2000;
  uint64_t quantum = 5000;  // references per scheduling slice
  uint32_t initial_allocation = 2;
  bool honor_locks = true;

  // When true, a PI=1 ALLOCATE request larger than the whole machine marks
  // the process failed (structured reason in OsProcessStats::failure) and the
  // rest of the mix keeps running. When false (default, the paper's
  // behaviour), the process runs clamped to whatever physically fits.
  bool fail_unfittable = false;

  // Optional deterministic fault injection (null = nominal behaviour).
  const FaultInjector* injector = nullptr;

  // Optional N-level hierarchy below the frame pool (null = the classic flat
  // `fault_service_time` backing store). When set, the spec's level latencies
  // are authoritative for fault service and `fault_service_time` is ignored;
  // all processes share one hierarchy, keyed by (process, page), with each
  // process's spec-order index as its injection stream. Must outlive the run.
  const HierarchySpec* hierarchy = nullptr;

  // Thrashing detector + load control. Evaluated on windows of
  // `thrash_window` ticks: when CPU utilisation falls below `thrash_cpu_low`
  // AND the per-executed-reference fault rate exceeds `thrash_fault_rate`,
  // the lowest-priority active process is suspended; a suspended-for-load
  // process is readmitted when utilisation recovers above `thrash_cpu_high`
  // (hysteresis) or when memory frees up.
  bool load_control = false;
  uint64_t thrash_window = 4096;
  double thrash_cpu_low = 0.40;
  double thrash_cpu_high = 0.60;
  double thrash_fault_rate = 0.002;  // faults per executed reference
};

struct OsProcessStats {
  std::string name;
  uint64_t references = 0;
  uint64_t faults = 0;
  uint64_t started_at = 0;    // global time of first instruction
  uint64_t finished_at = 0;   // global time of completion
  double mean_held = 0.0;     // time-weighted frames held over its lifetime
  uint64_t swapped_out = 0;   // times this process was chosen as swap victim
  uint64_t suspensions = 0;   // times it blocked waiting for memory
  uint64_t lock_releases = 0; // soft lock releases forced on it

  // Graceful degradation: empty when the process ran to completion,
  // otherwise a structured reason ("PI=1 request of N pages can never fit
  // the M-frame machine", ...). A failed process's counters cover the work
  // it did before failing.
  std::string failure;
  bool completed = true;
};

struct OsRunResult {
  std::vector<OsProcessStats> processes;
  uint64_t total_time = 0;     // makespan
  uint64_t total_faults = 0;
  uint64_t swaps = 0;          // swapper invocations that found a victim
  double mean_pool_used = 0.0; // time-weighted frames reserved
  double cpu_utilisation = 0.0;  // fraction of ticks spent executing refs

  // Degradation accounting (all zero in a nominal run).
  uint64_t failed_processes = 0;
  uint64_t load_control_suspensions = 0;
  uint64_t swap_device_failures = 0;   // transient attempts that failed
  uint64_t swap_retries_exhausted = 0; // swaps abandoned after max retries
  uint32_t phantom_peak_frames = 0;    // largest injected pressure spike

  // Per-level traffic for the shared hierarchy; empty when OsOptions::hierarchy
  // is null.
  std::vector<HierarchyLevelTraffic> hierarchy_levels;
};

// Runs the CD-managed multiprogramming simulation to completion of every
// process. Returns a structured Error (instead of aborting) when the
// workload can never fit the machine: no processes, a null trace, or initial
// allocations exceeding the frame pool.
Result<OsRunResult> RunMultiprogrammedCd(const std::vector<OsProcessSpec>& specs,
                                         const OsOptions& options);

// Baseline: the same processes under a static equal partition with local
// LRU replacement (directives ignored), same CPU/time model.
Result<OsRunResult> RunEqualPartitionLru(const std::vector<OsProcessSpec>& specs,
                                         const OsOptions& options);

// Baseline: multiprogrammed Working Set with the classic load control the
// paper's §4 contrasts CD against — each process holds W(t, τ); when a
// fault would overcommit the pool the OS swaps out a lower-priority process
// (or suspends the requester), reactivating it when its last working-set
// size fits again. Denning's WS dispatcher provides no per-request
// information, so the victim choice is size-based, exactly the gap the
// paper's PI mechanism fills.
Result<OsRunResult> RunMultiprogrammedWs(const std::vector<OsProcessSpec>& specs,
                                         const OsOptions& options, uint64_t tau);

}  // namespace cdmm

#endif  // CDMM_SRC_OS_MULTIPROG_H_
