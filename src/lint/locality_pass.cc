// locality-consistency: cross-verifies the reference-classification layer
// (Variation / RefOrder, §2's Θ and Λ parameters) against the raw subscript
// structure, and the locality analysis against actual array usage. These
// diagnostics never fire on a healthy toolchain — they exist to catch
// regressions in the analysis stack before they silently skew every X
// estimate downstream.
//   C001 — ClassifyOrder's Θ disagrees with the subscript binders' nesting.
//   C002 — a subscript's Variation along the enclosing chain is not the
//          Outer* Self Inner* sequence its binder dictates.
//   C003 — a loop's locality contribution names an array the loop's subtree
//          never references.
#include "src/analysis/reference_class.h"
#include "src/lint/lint.h"
#include "src/lint/pass_util.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

using lint_internal::ArraysReferencedIn;

constexpr char kPass[] = "locality-consistency";

class LocalityConsistencyPassImpl final : public LintPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const LintContext& ctx) const override {
    for (const RefSite& site : CollectRefSites(*ctx.tree)) {
      CheckOrder(ctx, site);
      CheckVariationChain(ctx, site);
    }
    for (const LoopLocality& ll : ctx.locality->all()) {
      const LoopNode& node = ctx.tree->node(ll.loop_id);
      std::set<std::string> referenced = ArraysReferencedIn(node);
      for (const ArrayContribution& c : ll.contributions) {
        if (referenced.count(c.array) == 0) {
          ctx.diags->Report(Severity::kError, "C003", kPass, node.loop->location,
                            StrCat("loop ", node.loop->label, " carries a locality contribution",
                                   " of ", c.pages, " page(s) for ", c.array,
                                   ", which its body never references"));
        }
      }
    }
  }

 private:
  // Re-derives Θ from the binder nesting alone and compares it with
  // ClassifyOrder's answer.
  static void CheckOrder(const LintContext& ctx, const RefSite& site) {
    RefOrder order = ClassifyOrder(site);
    const std::vector<IndexExpr>& ix = site.ref->indices;
    RefOrder expected;
    if (ix.size() == 1) {
      expected = RefOrder::kVector;
    } else {
      const LoopNode* row = SubscriptBinder(ix[0], site);
      const LoopNode* col = SubscriptBinder(ix[1], site);
      if (row == nullptr && col == nullptr) {
        expected = RefOrder::kInvariant;
      } else if (row == nullptr) {
        expected = RefOrder::kRowWise;
      } else if (col == nullptr) {
        expected = RefOrder::kColumnWise;
      } else if (row == col) {
        expected = RefOrder::kDiagonal;
      } else {
        expected = row->level > col->level ? RefOrder::kColumnWise : RefOrder::kRowWise;
      }
    }
    if (order != expected) {
      ctx.diags->Report(Severity::kError, "C001", kPass, site.ref->location,
                        StrCat("reference ", site.ref->ToString(), " classifies as ",
                               RefOrderName(order), " but its subscript binders imply ",
                               RefOrderName(expected)));
    }
  }

  // Walking the enclosing chain from the reference site outward, a subscript
  // must read kOuter while strictly inside its binder, kSelf at the binder
  // (kInner there when the subscript is indirect), and kInner above it; a
  // constant subscript must read kConstant throughout.
  static void CheckVariationChain(const LintContext& ctx, const RefSite& site) {
    if (site.site_loop == nullptr) {
      return;  // no enclosing chain to classify against
    }
    for (size_t d = 0; d < site.ref->indices.size(); ++d) {
      const IndexExpr& ix = site.ref->indices[d];
      const LoopNode* binder = SubscriptBinder(ix, site);
      bool above_binder = false;
      for (const LoopNode* l = site.site_loop; l != nullptr; l = l->parent) {
        Variation v = ClassifySubscript(ix, site, *l);
        Variation expected;
        if (binder == nullptr) {
          expected = Variation::kConstant;
        } else if (l == binder) {
          // An indirect subscript hops unpredictably within the driving
          // loop, so the classifier conservatively reports kInner (full
          // extent) even at the binder itself.
          expected = ix.IsIndirect() ? Variation::kInner : Variation::kSelf;
          above_binder = true;
        } else {
          expected = above_binder ? Variation::kInner : Variation::kOuter;
        }
        if (v != expected) {
          ctx.diags->Report(
              Severity::kError, "C002", kPass, ix.location,
              StrCat("subscript ", d + 1, " of ", site.ref->ToString(), " classifies as ",
                     VariationName(v), " relative to loop ", l->loop->label, " but its binder",
                     " dictates ", VariationName(expected)));
        }
      }
    }
  }
};

}  // namespace

const LintPass& LocalityConsistencyPass() {
  static const LocalityConsistencyPassImpl pass;
  return pass;
}

}  // namespace cdmm
