#include "src/lint/lint.h"

#include <memory>
#include <utility>

#include "src/lang/parser.h"
#include "src/lang/sema.h"

namespace cdmm {

const std::vector<const LintPass*>& AllLintPasses() {
  static const std::vector<const LintPass*> passes = {
      &SubscriptBoundsPass(),      &DirectiveVerifierPass(),     &DeadDirectivePass(),
      &LocalityConsistencyPass(),  &HygienePass(),               &ParallelIndependencePass(),
      &AccessRangePass()};
  return passes;
}

std::vector<Diagnostic> LintProgram(const Program& program, const LintOptions& options) {
  DiagnosticEngine engine;
  std::vector<Diagnostic> sema = CheckProgramAll(program);
  bool sema_clean = sema.empty();
  for (Diagnostic& d : sema) {
    engine.Add(std::move(d));
  }

  // The analyses CHECK on invariants sema establishes; build them only for
  // sema-clean programs and restrict broken ones to AST-level passes.
  std::unique_ptr<LoopTree> tree;
  std::unique_ptr<LocalityAnalysis> locality;
  std::unique_ptr<DependenceGraph> deps;
  DirectivePlan plan;
  LintContext ctx;
  ctx.program = &program;
  ctx.diags = &engine;
  if (sema_clean) {
    tree = std::make_unique<LoopTree>(program);
    locality = std::make_unique<LocalityAnalysis>(program, *tree, options.locality);
    plan = BuildDirectivePlan(*tree, *locality, options.directives);
    deps = std::make_unique<DependenceGraph>(DependenceGraph::Build(program, *tree));
    ctx.tree = tree.get();
    ctx.locality = locality.get();
    ctx.plan = &plan;
    ctx.deps = deps.get();
  }
  for (const LintPass* pass : AllLintPasses()) {
    if (pass->needs_analysis() && !sema_clean) {
      continue;
    }
    pass->Run(ctx);
  }
  engine.SortBySource();
  return engine.Take();
}

std::vector<Diagnostic> LintSource(std::string_view source, const LintOptions& options) {
  auto program = Parse(source);
  if (!program.ok()) {
    Diagnostic d;
    d.code = "F001";
    d.severity = Severity::kError;
    d.pass = "parse";
    d.message = program.error().message;
    d.location = program.error().location;
    return {std::move(d)};
  }
  return LintProgram(program.value(), options);
}

}  // namespace cdmm
