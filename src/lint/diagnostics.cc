#include "src/lint/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/support/str.h"

namespace cdmm {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  if (location.IsValid()) {
    os << location.line << ":" << location.column << ": ";
  }
  os << SeverityName(severity) << ": " << message << " [" << pass << "/" << code << "]";
  if (!fixit.empty()) {
    os << "\n  fix-it: " << fixit;
  }
  return os.str();
}

Diagnostic& DiagnosticEngine::Report(Severity severity, std::string code, std::string pass,
                                     SourceLocation location, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.code = std::move(code);
  d.pass = std::move(pass);
  d.location = location;
  d.message = std::move(message);
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

void DiagnosticEngine::Add(Diagnostic diagnostic) { diagnostics_.push_back(std::move(diagnostic)); }

size_t DiagnosticEngine::count(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) {
      ++n;
    }
  }
  return n;
}

void DiagnosticEngine::SortBySource() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.location.line != b.location.line) {
                       return a.location.line < b.location.line;
                     }
                     if (a.location.column != b.location.column) {
                       return a.location.column < b.location.column;
                     }
                     return a.code < b.code;
                   });
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics, std::string_view source_name) {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    if (!source_name.empty()) {
      os << source_name << ":";
    }
    os << d.ToString() << "\n";
  }
  return os.str();
}

namespace {

// JSON string escaping for the few characters our messages can contain.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderJson(const std::vector<Diagnostic>& diagnostics, std::string_view source_name) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "  {\"file\": \"" << JsonEscape(source_name) << "\", \"line\": " << d.location.line
       << ", \"column\": " << d.location.column << ", \"severity\": \"" << SeverityName(d.severity)
       << "\", \"pass\": \"" << JsonEscape(d.pass) << "\", \"code\": \"" << JsonEscape(d.code)
       << "\", \"message\": \"" << JsonEscape(d.message) << "\"";
    if (!d.fixit.empty()) {
      os << ", \"fixit\": \"" << JsonEscape(d.fixit) << "\"";
    }
    os << "}";
  }
  os << (diagnostics.empty() ? "]\n" : "\n]\n");
  return os.str();
}

std::string SummaryLine(const std::vector<Diagnostic>& diagnostics) {
  size_t errors = 0;
  size_t warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    errors += d.severity == Severity::kError ? 1 : 0;
    warnings += d.severity == Severity::kWarning ? 1 : 0;
  }
  if (errors == 0 && warnings == 0) {
    return "";
  }
  return StrCat(errors, " error(s), ", warnings, " warning(s)");
}

}  // namespace cdmm
