// access-range: cross-checks every placed ALLOCATE's claimed footprint X
// against the dependence analysis' per-loop access-range summaries.
//   R001 — X is smaller than the number of arrays the loop references: the
//          grant cannot even keep one page per array resident, so the loop
//          would fault on every array transition (error).
//   R002 — X exceeds a generous upper bound on what the loop can ever touch
//          (the whole-run range footprint plus one alignment and one
//          transition page per array): the allocation over-claims memory
//          other processes could use (warning).
// Both are consistency checks between two independent derivations — the
// locality analysis' X and the range analysis' footprint — and fire only on
// stale or hand-edited plans, never on a freshly computed one.
#include <algorithm>
#include <set>
#include <string>

#include "src/lint/lint.h"
#include "src/lint/pass_util.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

using lint_internal::ArraysReferencedIn;
using lint_internal::FindNode;

constexpr char kPass[] = "access-range";

class AccessRangePassImpl final : public LintPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const LintContext& ctx) const override {
    const PageGeometry& geometry = ctx.locality->options().geometry;
    int64_t epp = geometry.ElementsPerPage();
    for (const auto& [loop_id, ap] : ctx.plan->allocate_before_loop) {
      const LoopNode* node = FindNode(*ctx.tree, loop_id);
      if (node == nullptr || ap.chain.empty()) {
        continue;  // directive-verifier reports D004/D005
      }
      std::set<std::string> arrays = ArraysReferencedIn(*node);
      if (arrays.empty()) {
        continue;  // dead-directive reports X001
      }
      int64_t claimed = ap.chain.back().pages;
      int64_t n_arrays = static_cast<int64_t>(arrays.size());

      if (claimed < n_arrays) {
        Diagnostic& d = ctx.diags->Report(
            Severity::kError, "R001", kPass, node->loop->location,
            StrCat("ALLOCATE before loop ", node->loop->label, " claims ", claimed,
                   " page(s) for ", n_arrays,
                   " referenced array(s); the loop cannot hold one resident page per array"));
        d.fixit = StrCat("raise X to at least ", n_arrays, " pages");
        continue;
      }

      int64_t bound = FootprintUpperBound(ctx, loop_id, arrays, epp);
      bound = std::max(bound, ctx.locality->options().min_default_pages);
      if (claimed > bound) {
        Diagnostic& d = ctx.diags->Report(
            Severity::kWarning, "R002", kPass, node->loop->location,
            StrCat("ALLOCATE before loop ", node->loop->label, " claims ", claimed,
                   " page(s) but the loop's whole access-range footprint is at most ", bound,
                   " page(s)"));
        d.fixit = StrCat("lower X to ", bound, " pages or less");
      }
    }
  }

 private:
  // Sum over the loop's arrays of an upper bound on the pages one full
  // execution can touch: the flat column-major span of the access range
  // (whole array when a bound is unknown), plus one page of alignment slack
  // and one transition page per array.
  static int64_t FootprintUpperBound(const LintContext& ctx, uint32_t loop_id,
                                     const std::set<std::string>& arrays, int64_t epp) {
    const auto* ranges = ctx.deps->RangesFor(loop_id);
    int64_t total = 0;
    for (const std::string& array : arrays) {
      const ArrayDecl* decl = ctx.program->FindArray(array);
      if (decl == nullptr) {
        continue;  // sema reports S003
      }
      int64_t span = decl->element_count();
      const AccessRange* range = nullptr;
      if (ranges != nullptr) {
        auto it = ranges->find(array);
        if (it != ranges->end()) {
          range = &it->second;
        }
      }
      if (range != nullptr && !range->dims.empty()) {
        bool all_known = true;
        for (const AccessRange::Dim& dim : range->dims) {
          all_known = all_known && dim.known;
        }
        if (all_known) {
          const AccessRange::Dim& rows = range->dims[0];
          if (range->dims.size() == 1) {
            span = rows.max - rows.min + 1;
          } else {
            const AccessRange::Dim& cols = range->dims[1];
            span = (cols.max - cols.min) * decl->rows + (rows.max - rows.min) + 1;
          }
        }
      }
      total += (span + epp - 1) / epp + 2;
    }
    return total;
  }
};

}  // namespace

const LintPass& AccessRangePass() {
  static const AccessRangePassImpl pass;
  return pass;
}

}  // namespace cdmm
