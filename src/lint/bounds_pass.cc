// subscript-bounds: affine interval analysis of every array reference
// against its DIMENSION bounds. Each subscript is `var + offset` or a
// constant; the reachable values of `var` follow from the binding DO loop's
// bounds (resolved through enclosing loops for triangular nests), so the
// subscript's reachable interval is exact for static bounds and an
// endpoint-tight over-approximation for triangular ones. References inside a
// logical IF are first narrowed by the conjuncts of the guard that compare
// the subscript variable against a constant, so a guarded stencil like
// `IF (I .GT. 1 .AND. I .LT. N) A(I) = B(I-1) + B(I+1)` checks the interval
// the guard actually admits. Any interval escaping [1, extent] is a
// reference the program will actually make out of bounds for some iteration.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "src/analysis/reference_class.h"
#include "src/lint/lint.h"
#include "src/lint/pass_util.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

using lint_internal::Interval;
using lint_internal::LoopVarInterval;

constexpr char kPass[] = "subscript-bounds";

class BoundsPass final : public LintPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const LintContext& ctx) const override {
    for (const RefSite& site : CollectRefSites(*ctx.tree)) {
      const ArrayDecl* decl = ctx.program->FindArray(site.ref->name);
      if (decl == nullptr) {
        continue;  // sema would have rejected; be safe anyway
      }
      for (size_t d = 0; d < site.ref->indices.size(); ++d) {
        CheckSubscript(ctx, site, *decl, d);
      }
    }
  }

 private:
  // Evaluates a guard operand to a compile-time integer: a literal or a
  // PARAMETER name (possibly negated). Anything else is not a constant.
  static std::optional<int64_t> ConstOperand(const LintContext& ctx, const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNumber: {
        int64_t v = static_cast<int64_t>(e.number);
        if (static_cast<double>(v) != e.number) {
          return std::nullopt;
        }
        return v;
      }
      case Expr::Kind::kScalar: {
        auto it = ctx.program->parameters.find(e.scalar);
        if (it == ctx.program->parameters.end()) {
          return std::nullopt;
        }
        return it->second;
      }
      case Expr::Kind::kNegate: {
        std::optional<int64_t> v = ConstOperand(ctx, *e.lhs);
        if (!v.has_value()) {
          return std::nullopt;
        }
        return -*v;
      }
      default:
        return std::nullopt;
    }
  }

  // Tightens `values` with one comparison `var RELOP c`.
  static void ApplyBound(RelOp rel, int64_t c, Interval* values) {
    switch (rel) {
      case RelOp::kGt: values->lo = std::max(values->lo, c + 1); break;
      case RelOp::kGe: values->lo = std::max(values->lo, c); break;
      case RelOp::kLt: values->hi = std::min(values->hi, c - 1); break;
      case RelOp::kLe: values->hi = std::min(values->hi, c); break;
      case RelOp::kEq:
        values->lo = std::max(values->lo, c);
        values->hi = std::min(values->hi, c);
        break;
      case RelOp::kNe: break;  // punctures the interval; no sound narrowing
    }
  }

  // Narrows `values` (the reachable interval of `var`) by the constraints a
  // guarding IF condition imposes. Only conjuncts comparing `var` itself
  // against a compile-time constant narrow; everything else (disjunctions,
  // other variables, array operands) is skipped, so the result stays an
  // over-approximation of the iterations the guard admits.
  static void NarrowByGuard(const LintContext& ctx, const Expr& cond, const std::string& var,
                            Interval* values) {
    if (cond.kind == Expr::Kind::kAnd) {
      NarrowByGuard(ctx, *cond.lhs, var, values);
      NarrowByGuard(ctx, *cond.rhs, var, values);
      return;
    }
    if (cond.kind != Expr::Kind::kCompare) {
      return;
    }
    if (cond.lhs->kind == Expr::Kind::kScalar && cond.lhs->scalar == var) {
      std::optional<int64_t> c = ConstOperand(ctx, *cond.rhs);
      if (c.has_value()) {
        ApplyBound(cond.rel, *c, values);
      }
    } else if (cond.rhs->kind == Expr::Kind::kScalar && cond.rhs->scalar == var) {
      std::optional<int64_t> c = ConstOperand(ctx, *cond.lhs);
      if (c.has_value()) {
        // `c RELOP var` mirrors to `var RELOP' c`.
        RelOp flipped;
        switch (cond.rel) {
          case RelOp::kGt: flipped = RelOp::kLt; break;
          case RelOp::kGe: flipped = RelOp::kLe; break;
          case RelOp::kLt: flipped = RelOp::kGt; break;
          case RelOp::kLe: flipped = RelOp::kGe; break;
          default: flipped = cond.rel; break;  // kEq / kNe are symmetric
        }
        ApplyBound(flipped, *c, values);
      }
    }
  }

  static void CheckSubscript(const LintContext& ctx, const RefSite& site, const ArrayDecl& decl,
                             size_t dim) {
    const IndexExpr& ix = site.ref->indices[dim];
    if (ix.IsIndirect()) {
      return;  // values are data-dependent; nothing provable statically
    }
    Interval values;
    if (ix.IsConstant()) {
      values = Interval::Exact(ix.offset);
    } else {
      const LoopNode* binder = SubscriptBinder(ix, site);
      Interval var_values = LoopVarInterval(*binder);
      if (site.stmt != nullptr && site.stmt->kind == Stmt::Kind::kIf &&
          site.stmt->if_cond != nullptr) {
        NarrowByGuard(ctx, *site.stmt->if_cond, ix.var, &var_values);
      }
      values = var_values.Shifted(ix.offset);
    }
    if (!values.known || values.empty()) {
      return;  // unresolvable or never executed: nothing provable
    }
    int64_t extent = dim == 0 ? decl.rows : decl.cols;
    std::string spelling = ix.Canonical();
    if (values.lo < 1) {
      Diagnostic& diag = ctx.diags->Report(
          Severity::kError, "B001", kPass, ix.location,
          StrCat("subscript ", dim + 1, " of ", site.ref->ToString(), " reaches ", values.lo,
                 ", below the lower bound 1 (", spelling, " ranges over [", values.lo, ", ",
                 values.hi, "])"));
      diag.fixit = StrCat("start the enclosing DO range so that ", spelling, " stays >= 1");
    }
    if (values.hi > extent) {
      Diagnostic& diag = ctx.diags->Report(
          Severity::kError, "B002", kPass, ix.location,
          StrCat("subscript ", dim + 1, " of ", site.ref->ToString(), " reaches ", values.hi,
                 " but ", decl.name, " has extent ", extent, " in dimension ", dim + 1, " (",
                 spelling, " ranges over [", values.lo, ", ", values.hi, "])"));
      diag.fixit =
          StrCat("widen DIMENSION ", decl.name, " or shrink the enclosing DO range");
    }
  }
};

}  // namespace

const LintPass& SubscriptBoundsPass() {
  static const BoundsPass pass;
  return pass;
}

}  // namespace cdmm
