// subscript-bounds: affine interval analysis of every array reference
// against its DIMENSION bounds. Each subscript is `var + offset` or a
// constant; the reachable values of `var` follow from the binding DO loop's
// bounds (resolved through enclosing loops for triangular nests), so the
// subscript's reachable interval is exact for static bounds and an
// endpoint-tight over-approximation for triangular ones. Any interval
// escaping [1, extent] is a reference the program will actually make out of
// bounds for some iteration.
#include <cstdint>

#include "src/analysis/reference_class.h"
#include "src/lint/lint.h"
#include "src/lint/pass_util.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

using lint_internal::Interval;
using lint_internal::LoopVarInterval;

constexpr char kPass[] = "subscript-bounds";

class BoundsPass final : public LintPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const LintContext& ctx) const override {
    for (const RefSite& site : CollectRefSites(*ctx.tree)) {
      const ArrayDecl* decl = ctx.program->FindArray(site.ref->name);
      if (decl == nullptr) {
        continue;  // sema would have rejected; be safe anyway
      }
      for (size_t d = 0; d < site.ref->indices.size(); ++d) {
        CheckSubscript(ctx, site, *decl, d);
      }
    }
  }

 private:
  static void CheckSubscript(const LintContext& ctx, const RefSite& site, const ArrayDecl& decl,
                             size_t dim) {
    const IndexExpr& ix = site.ref->indices[dim];
    Interval values;
    if (ix.IsConstant()) {
      values = Interval::Exact(ix.offset);
    } else {
      const LoopNode* binder = SubscriptBinder(ix, site);
      values = LoopVarInterval(*binder).Shifted(ix.offset);
    }
    if (!values.known || values.empty()) {
      return;  // unresolvable or never executed: nothing provable
    }
    int64_t extent = dim == 0 ? decl.rows : decl.cols;
    std::string spelling = ix.Canonical();
    if (values.lo < 1) {
      Diagnostic& diag = ctx.diags->Report(
          Severity::kError, "B001", kPass, ix.location,
          StrCat("subscript ", dim + 1, " of ", site.ref->ToString(), " reaches ", values.lo,
                 ", below the lower bound 1 (", spelling, " ranges over [", values.lo, ", ",
                 values.hi, "])"));
      diag.fixit = StrCat("start the enclosing DO range so that ", spelling, " stays >= 1");
    }
    if (values.hi > extent) {
      Diagnostic& diag = ctx.diags->Report(
          Severity::kError, "B002", kPass, ix.location,
          StrCat("subscript ", dim + 1, " of ", site.ref->ToString(), " reaches ", values.hi,
                 " but ", decl.name, " has extent ", extent, " in dimension ", dim + 1, " (",
                 spelling, " ranges over [", values.lo, ", ", values.hi, "])"));
      diag.fixit =
          StrCat("widen DIMENSION ", decl.name, " or shrink the enclosing DO range");
    }
  }
};

}  // namespace

const LintPass& SubscriptBoundsPass() {
  static const BoundsPass pass;
  return pass;
}

}  // namespace cdmm
