// dead-directive: directives that are well-formed but useless.
//   X001 — an ALLOCATE before a loop whose subtree references no arrays
//          (nothing to hold resident; the grant is dead weight).
//   X002 — an UNLOCK releasing arrays no LOCK in its subtree ever pinned.
//   X003 — a LOCK pinning an array the preceding body segment never touches
//          (Algorithm 2 locks exactly the segment's arrays; anything else is
//          a stale or hand-edited directive).
#include <set>
#include <string>

#include "src/lint/lint.h"
#include "src/lint/pass_util.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

using lint_internal::ArraysReferencedIn;
using lint_internal::FindNode;

constexpr char kPass[] = "dead-directive";

class DeadDirectivePassImpl final : public LintPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const LintContext& ctx) const override {
    for (const auto& [loop_id, ap] : ctx.plan->allocate_before_loop) {
      (void)ap;
      const LoopNode* node = FindNode(*ctx.tree, loop_id);
      if (node == nullptr) {
        continue;  // directive-verifier reports D005
      }
      if (ArraysReferencedIn(*node).empty()) {
        Diagnostic& d = ctx.diags->Report(
            Severity::kWarning, "X001", kPass, node->loop->location,
            StrCat("ALLOCATE before loop ", node->loop->label,
                   ", but the loop references no arrays and forms no locality"));
        d.fixit = StrCat("remove the ALLOCATE before loop ", node->loop->label);
      }
    }

    for (const auto& [loop_id, unlock] : ctx.plan->unlock_after_loop) {
      const LoopNode* node = FindNode(*ctx.tree, loop_id);
      if (node == nullptr) {
        ctx.diags->Report(Severity::kError, "X002", kPass, SourceLocation{},
                          StrCat("UNLOCK attached to unknown loop id ", loop_id));
        continue;
      }
      std::set<std::string> locked = LockedInSubtree(ctx, *node);
      for (const std::string& array : unlock.arrays) {
        if (locked.count(array) == 0) {
          Diagnostic& d = ctx.diags->Report(
              Severity::kWarning, "X002", kPass, node->loop->location,
              StrCat("UNLOCK after loop ", node->loop->label, " releases ", array,
                     ", which no LOCK inside the loop ever pinned"));
          d.fixit = StrCat("drop ", array, " from the UNLOCK after loop ", node->loop->label);
        }
      }
    }

    for (const LockPlan& lock : ctx.plan->locks) {
      const LoopNode* host = FindNode(*ctx.tree, lock.host_loop_id);
      const LoopNode* child = FindNode(*ctx.tree, lock.before_child_loop_id);
      if (host == nullptr || child == nullptr) {
        continue;  // directive-verifier reports D005
      }
      // The segment whose trailing nested loop is `child`: Algorithm 2 locks
      // the arrays its assignments touch.
      std::set<std::string> touched;
      for (const LoopNode::BodySegment& segment : host->segments) {
        if (segment.next_child == child) {
          for (const Stmt* stmt : segment.assigns) {
            for (const ArrayRef* ref : stmt->DirectArrayRefs()) {
              touched.insert(ref->name);
            }
          }
        }
      }
      for (const std::string& array : lock.arrays) {
        if (touched.count(array) == 0) {
          Diagnostic& d = ctx.diags->Report(
              Severity::kWarning, "X003", kPass, child->loop->location,
              StrCat("LOCK before loop ", child->loop->label, " pins ", array,
                     " but the preceding statements of loop ", host->loop->label,
                     " never reference it"));
          d.fixit = StrCat("drop ", array, " from the LOCK before loop ", child->loop->label);
        }
      }
    }
  }

 private:
  static std::set<std::string> LockedInSubtree(const LintContext& ctx, const LoopNode& root) {
    std::set<uint32_t> ids;
    CollectIds(root, &ids);
    std::set<std::string> locked;
    for (const LockPlan& lock : ctx.plan->locks) {
      if (ids.count(lock.host_loop_id) != 0) {
        locked.insert(lock.arrays.begin(), lock.arrays.end());
      }
    }
    return locked;
  }

  static void CollectIds(const LoopNode& node, std::set<uint32_t>* ids) {
    ids->insert(node.loop_id);
    for (const LoopNode* child : node.children) {
      CollectIds(*child, ids);
    }
  }
};

}  // namespace

const LintPass& DeadDirectivePass() {
  static const DeadDirectivePassImpl pass;
  return pass;
}

}  // namespace cdmm
