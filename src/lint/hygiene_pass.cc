// hygiene: program-text lints that need no analysis products.
//   H001 — an array is declared but never referenced; it still inflates the
//          address-space estimate (AVS) every policy pays for.
//   H002 — a DO index shadows a PARAMETER of the same name; subscripts read
//          the loop variable while bounds read the constant, a classic
//          source of silently wrong ranges.
// Runs even when sema reports errors (pure AST walk).
#include <set>
#include <string>

#include "src/lint/lint.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

constexpr char kPass[] = "hygiene";

class HygienePassImpl final : public LintPass {
 public:
  const char* name() const override { return kPass; }
  bool needs_analysis() const override { return false; }

  void Run(const LintContext& ctx) const override {
    const Program& program = *ctx.program;

    std::set<std::string> used;
    program.ForEachStmt([&](const Stmt& stmt) {
      for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
        used.insert(ref->name);
      }
    });
    for (const ArrayDecl& decl : program.arrays) {
      if (used.count(decl.name) == 0) {
        Diagnostic& d = ctx.diags->Report(
            Severity::kWarning, "H001", kPass, decl.location,
            StrCat("array ", decl.name, " (", decl.element_count(),
                   " elements) is declared but never referenced"));
        d.fixit = StrCat("remove ", decl.name, " from its DIMENSION statement");
      }
    }

    program.ForEachStmt([&](const Stmt& stmt) {
      if (stmt.kind != Stmt::Kind::kDoLoop) {
        return;
      }
      auto it = program.parameters.find(stmt.loop_var);
      if (it == program.parameters.end()) {
        return;
      }
      SourceLocation loc =
          stmt.loop_var_location.IsValid() ? stmt.loop_var_location : stmt.location;
      std::string declared;
      auto decl_it = program.parameter_locations.find(stmt.loop_var);
      if (decl_it != program.parameter_locations.end() && decl_it->second.IsValid()) {
        declared = StrCat(", declared at ", decl_it->second.line, ":", decl_it->second.column);
      }
      Diagnostic& d = ctx.diags->Report(
          Severity::kWarning, "H002", kPass, loc,
          StrCat("DO index ", stmt.loop_var, " shadows PARAMETER ", stmt.loop_var, " (= ",
                 it->second, declared, ")"));
      d.fixit = StrCat("rename the loop index of DO ", stmt.label);
    });
  }
};

}  // namespace

const LintPass& HygienePass() {
  static const HygienePassImpl pass;
  return pass;
}

}  // namespace cdmm
