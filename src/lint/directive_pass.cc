// directive-verifier: checks the Algorithm 1-2 postconditions on a
// DirectivePlan before it ever reaches the simulator.
//   - Every ALLOCATE chain lists one (PI, X) pair per enclosing loop,
//     outermost-first, with strictly decreasing priorities, non-increasing
//     page grants, and values matching the locality analysis (D004/D005).
//   - Every LOCK is hosted by the parent of the loop it precedes, carries the
//     host's priority index, and is preceded by a covering ALLOCATE whose
//     final entry grants pages at that priority (D001/D005).
//   - LOCK/UNLOCK pairs balance on every loop-exit path: any array locked
//     inside a top-level nest must be released by the UNLOCK that follows it
//     (D002).
//   - The pages a host's LOCKs pin in one iteration (at least one per
//     distinct array) never exceed the host's allocation X (D003).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lint/lint.h"
#include "src/lint/pass_util.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

using lint_internal::FindNode;

constexpr char kPass[] = "directive-verifier";

class DirectiveVerifierPassImpl final : public LintPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const LintContext& ctx) const override {
    CheckAllocates(ctx);
    CheckLocks(ctx);
    CheckBalance(ctx);
    CheckLockedTotals(ctx);
  }

 private:
  static void CheckAllocates(const LintContext& ctx) {
    for (const auto& [loop_id, ap] : ctx.plan->allocate_before_loop) {
      const LoopNode* node = FindNode(*ctx.tree, loop_id);
      if (node == nullptr || ap.loop_id != loop_id) {
        ctx.diags->Report(Severity::kError, "D005", kPass, SourceLocation{},
                          StrCat("ALLOCATE attached to unknown loop id ", loop_id));
        continue;
      }
      SourceLocation loc = node->loop->location;
      int64_t label = node->loop->label;
      if (ap.chain.size() != static_cast<size_t>(node->level)) {
        ctx.diags->Report(Severity::kError, "D004", kPass, loc,
                          StrCat("ALLOCATE before loop ", label, " has ", ap.chain.size(),
                                 " chain entries; Algorithm 1 emits one per enclosing loop (",
                                 node->level, ")"));
      }
      for (size_t i = 1; i < ap.chain.size(); ++i) {
        if (ap.chain[i].priority >= ap.chain[i - 1].priority) {
          ctx.diags->Report(
              Severity::kError, "D004", kPass, loc,
              StrCat("ALLOCATE before loop ", label, " has priorities ", ap.chain[i - 1].priority,
                     " -> ", ap.chain[i].priority, "; the chain must strictly decrease inward"));
        }
        if (ap.chain[i].pages > ap.chain[i - 1].pages) {
          ctx.diags->Report(
              Severity::kError, "D004", kPass, loc,
              StrCat("ALLOCATE before loop ", label, " grants X=", ap.chain[i - 1].pages,
                     " then X=", ap.chain[i].pages,
                     "; page grants must be non-increasing inward (X_1 >= X_2 >= ...)"));
        }
      }
      if (!ap.chain.empty() && ap.chain.back().priority != node->priority_index) {
        ctx.diags->Report(
            Severity::kError, "D004", kPass, loc,
            StrCat("ALLOCATE before loop ", label, " ends at priority ",
                   ap.chain.back().priority, " but the loop's priority index is ",
                   node->priority_index));
      }
      // Cross-check the chain values against Algorithm 1's inputs: the
      // ancestor chain outermost-first, each with its own (PI, X).
      std::vector<const LoopNode*> chain;
      for (const LoopNode* l = node; l != nullptr; l = l->parent) {
        chain.insert(chain.begin(), l);
      }
      if (ap.chain.size() == chain.size()) {
        for (size_t i = 0; i < chain.size(); ++i) {
          const LoopLocality& ll = ctx.locality->loop(chain[i]->loop_id);
          if (ap.chain[i].priority != ll.priority_index ||
              ap.chain[i].pages != static_cast<uint32_t>(ll.pages)) {
            ctx.diags->Report(
                Severity::kError, "D004", kPass, loc,
                StrCat("ALLOCATE before loop ", label, " entry ", i + 1, " is (",
                       ap.chain[i].priority, ",", ap.chain[i].pages,
                       ") but the locality analysis computes (", ll.priority_index, ",",
                       ll.pages, ") for loop ", chain[i]->loop->label));
          }
        }
      }
    }
  }

  static void CheckLocks(const LintContext& ctx) {
    for (const LockPlan& lock : ctx.plan->locks) {
      const LoopNode* host = FindNode(*ctx.tree, lock.host_loop_id);
      const LoopNode* child = FindNode(*ctx.tree, lock.before_child_loop_id);
      if (host == nullptr || child == nullptr) {
        ctx.diags->Report(Severity::kError, "D005", kPass, SourceLocation{},
                          StrCat("LOCK references unknown loop id ",
                                 host == nullptr ? lock.host_loop_id : lock.before_child_loop_id));
        continue;
      }
      SourceLocation loc = child->loop->location;
      if (child->parent != host) {
        ctx.diags->Report(Severity::kError, "D005", kPass, loc,
                          StrCat("LOCK before loop ", child->loop->label,
                                 " claims host loop ", host->loop->label,
                                 ", which is not its parent"));
      }
      if (lock.pj != host->priority_index) {
        ctx.diags->Report(Severity::kError, "D005", kPass, loc,
                          StrCat("LOCK before loop ", child->loop->label, " carries priority ",
                                 lock.pj, " but host loop ", host->loop->label,
                                 " has priority index ", host->priority_index));
      }
      for (const std::string& array : lock.arrays) {
        if (ctx.program->FindArray(array) == nullptr) {
          ctx.diags->Report(Severity::kError, "D005", kPass, loc,
                            StrCat("LOCK names undeclared array ", array));
        }
      }
      // Covering ALLOCATE: the host's own ALLOCATE (executed at its head,
      // hence before any LOCK it hosts) must grant pages at the LOCK's
      // priority.
      auto it = ctx.plan->allocate_before_loop.find(host->loop_id);
      bool covered = it != ctx.plan->allocate_before_loop.end() && !it->second.chain.empty() &&
                     it->second.chain.back().priority == lock.pj &&
                     it->second.chain.back().pages > 0;
      if (!covered) {
        Diagnostic& d = ctx.diags->Report(
            Severity::kError, "D001", kPass, loc,
            StrCat("LOCK (", lock.pj, ",", Join(lock.arrays, ","), ") inside loop ",
                   host->loop->label, " is not preceded by a covering ALLOCATE at priority ",
                   lock.pj));
        d.fixit = StrCat("run Algorithm 1 (ALLOCATE insertion) for loop ", host->loop->label,
                         " or drop the LOCK");
      }
    }
  }

  static void CheckBalance(const LintContext& ctx) {
    for (const LoopNode* root : ctx.tree->roots()) {
      std::set<std::string> locked = LockedInSubtree(ctx, *root);
      if (locked.empty()) {
        continue;
      }
      auto it = ctx.plan->unlock_after_loop.find(root->loop_id);
      for (const std::string& array : locked) {
        bool released = it != ctx.plan->unlock_after_loop.end() &&
                        std::find(it->second.arrays.begin(), it->second.arrays.end(), array) !=
                            it->second.arrays.end();
        if (!released) {
          Diagnostic& d = ctx.diags->Report(
              Severity::kError, "D002", kPass, root->loop->location,
              StrCat("array ", array, " is locked inside loop ", root->loop->label,
                     " but never unlocked on the loop's exit path"));
          d.fixit = StrCat("add ", array, " to the UNLOCK after loop ", root->loop->label);
        }
      }
    }
  }

  // Each distinct array a host's LOCKs pin holds at least one page for the
  // rest of the enclosing nest; those pages draw from the host's allocation.
  static void CheckLockedTotals(const LintContext& ctx) {
    std::map<uint32_t, std::set<std::string>> per_host;
    for (const LockPlan& lock : ctx.plan->locks) {
      per_host[lock.host_loop_id].insert(lock.arrays.begin(), lock.arrays.end());
    }
    for (const auto& [host_id, arrays] : per_host) {
      const LoopNode* host = FindNode(*ctx.tree, host_id);
      if (host == nullptr) {
        continue;  // D005 already reported
      }
      int64_t granted = ctx.locality->loop(host_id).pages;
      auto it = ctx.plan->allocate_before_loop.find(host_id);
      if (it != ctx.plan->allocate_before_loop.end() && !it->second.chain.empty()) {
        granted = it->second.chain.back().pages;
      }
      if (static_cast<int64_t>(arrays.size()) > granted) {
        ctx.diags->Report(
            Severity::kError, "D003", kPass, host->loop->location,
            StrCat("LOCKs hosted by loop ", host->loop->label, " pin at least ", arrays.size(),
                   " page(s) per iteration (arrays ",
                   Join(std::vector<std::string>(arrays.begin(), arrays.end()), ","),
                   ") but its ALLOCATE grants only X=", granted));
      }
    }
  }

  static std::set<std::string> LockedInSubtree(const LintContext& ctx, const LoopNode& root) {
    std::set<uint32_t> ids;
    CollectIds(root, &ids);
    std::set<std::string> locked;
    for (const LockPlan& lock : ctx.plan->locks) {
      if (ids.count(lock.host_loop_id) != 0) {
        locked.insert(lock.arrays.begin(), lock.arrays.end());
      }
    }
    return locked;
  }

  static void CollectIds(const LoopNode& node, std::set<uint32_t>* ids) {
    ids->insert(node.loop_id);
    for (const LoopNode* child : node.children) {
      CollectIds(*child, ids);
    }
  }
};

}  // namespace

const LintPass& DirectiveVerifierPass() {
  static const DirectiveVerifierPassImpl pass;
  return pass;
}

}  // namespace cdmm
