// Structured diagnostics: the common currency of the front end (sema), the
// lint pass framework, and the directive-plan verifiers. A Diagnostic carries
// a stable code ("B002"), a severity, the pass that produced it, a source
// span, and an optional fix-it; the engine accumulates, sorts, counts, and
// renders them as text or JSON. Unlike Result<T>/Error (which short-circuits
// on the first problem), a DiagnosticEngine keeps going so one run reports
// everything it can find.
#ifndef CDMM_SRC_LINT_DIAGNOSTICS_H_
#define CDMM_SRC_LINT_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/result.h"
#include "src/support/source_location.h"

namespace cdmm {

enum class Severity : uint8_t { kNote, kWarning, kError };

const char* SeverityName(Severity severity);

struct Diagnostic {
  std::string code;      // stable short identifier, e.g. "S003", "B002"
  Severity severity = Severity::kError;
  std::string pass;      // producing pass, e.g. "sema", "subscript-bounds"
  std::string message;
  SourceLocation location;  // may be invalid for plan-level findings
  std::string fixit;     // optional suggested remedy ("" = none)

  // Renders "line:col: severity: message [pass/code]".
  std::string ToString() const;

  // The Result<T>/Error view of this diagnostic (drops code/pass/fixit).
  Error ToError() const { return Error{message, location}; }
};

// Accumulates diagnostics across passes. Not thread-safe; each lint run owns
// one engine.
class DiagnosticEngine {
 public:
  // Appends a diagnostic and returns it for optional fix-it attachment.
  Diagnostic& Report(Severity severity, std::string code, std::string pass,
                     SourceLocation location, std::string message);
  void Add(Diagnostic diagnostic);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t count(Severity severity) const;
  size_t error_count() const { return count(Severity::kError); }
  size_t warning_count() const { return count(Severity::kWarning); }

  // Stable-sorts by (line, column, code): file order first, discovery order
  // as the tie-break, so renderings are deterministic across pass order.
  void SortBySource();

  std::vector<Diagnostic> Take() { return std::move(diagnostics_); }

 private:
  std::vector<Diagnostic> diagnostics_;
};

// Renders one diagnostic per line, prefixed by `source_name` when non-empty:
//   "prog.f:4:12: error: subscript 1 of A spans [1, 11] ... [subscript-bounds/B002]"
std::string RenderText(const std::vector<Diagnostic>& diagnostics, std::string_view source_name);

// Renders a JSON array of {file, line, column, severity, pass, code, message,
// fixit} objects (fixit omitted when empty), followed by a newline.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics, std::string_view source_name);

// One-line "N error(s), M warning(s)" summary ("" when there is nothing to
// summarise).
std::string SummaryLine(const std::vector<Diagnostic>& diagnostics);

}  // namespace cdmm

#endif  // CDMM_SRC_LINT_DIAGNOSTICS_H_
