// telemetry-names: H003 — telemetry metric names must follow the
// "subsystem.noun_verb" convention enforced across src/telemetry call sites:
//
//   <subsystem>.<component>_<component>[_<component>...]
//
// where the subsystem and every component are lowercase [a-z][a-z0-9]*,
// exactly one '.' separates subsystem from the rest, and the part after the
// dot has at least two '_'-joined components (a noun and a verb/qualifier,
// e.g. "vm.fault_serviced", "os.swap_retries_exhausted").
//
// Unlike the program-text passes this lint runs over the metric names a live
// MetricsRegistry registered, not over mini-FORTRAN source; cdmm-lint
// --telemetry exercises the pipeline and simulators to populate the registry
// first. Diagnostics carry an invalid SourceLocation (there is no source
// span to point at) and pass name "telemetry-names".
#ifndef CDMM_SRC_LINT_TELEMETRY_NAMES_H_
#define CDMM_SRC_LINT_TELEMETRY_NAMES_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/lint/diagnostics.h"

namespace cdmm {

// Returns "" when `name` follows the convention, otherwise a short
// human-readable reason ("missing '.' separator", ...).
std::string TelemetryNameViolation(std::string_view name);

// One H003 warning per malformed name, in input order.
std::vector<Diagnostic> LintTelemetryNames(const std::vector<std::string>& names);

}  // namespace cdmm

#endif  // CDMM_SRC_LINT_TELEMETRY_NAMES_H_
