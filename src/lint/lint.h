// cdmm-lint: a multi-pass static checker over the mini-FORTRAN front end and
// the directive plans produced by Algorithms 1-2. Each pass walks the parsed
// Program, the LoopTree, and (when analysis is possible) the LocalityAnalysis
// and DirectivePlan, reporting structured diagnostics. The paper's premise is
// that the compiler can see the reference pattern before the program runs;
// this module turns that visibility into compile-time verification.
//
// Diagnostic codes (stable; asserted by tests and documented in DESIGN.md):
//   parse:  F001 unparseable source
//   sema:   S001 duplicate array, S002 array/PARAMETER collision,
//           S003 undeclared array, S004 wrong subscript count,
//           S005 unbound subscript variable, S006 loop variable reused,
//           S007 loop variable collides with array, S008 unresolvable bound,
//           S009 array used without subscripts
//   subscript-bounds:     B001 below lower bound, B002 exceeds extent
//   directive-verifier:   D001 LOCK without covering ALLOCATE,
//                         D002 locked array not released on exit,
//                         D003 locked pages exceed the allocation,
//                         D004 malformed ALLOCATE chain,
//                         D005 directive names unknown loop/array/structure
//   dead-directive:       X001 ALLOCATE for a loop referencing no arrays,
//                         X002 UNLOCK of arrays never locked,
//                         X003 LOCK of an array the segment never touches
//   locality-consistency: C001 RefOrder disagrees with subscript binders,
//                         C002 Variation chain not Outer*-Self-Inner*,
//                         C003 contribution for an unreferenced array
//   hygiene:              H001 unused array, H002 DO index shadows PARAMETER
//   parallel-independence: P001 loop marked INDEPENDENT but a loop-carried
//                          dependence is proven, P002 provably independent
//                          loop not marked (note; only when the program uses
//                          marks at all), P003 mark downgraded because an
//                          assumed (unprovable) dependence blocks it
//   access-range:         R001 ALLOCATE claims fewer pages than arrays the
//                         loop references, R002 ALLOCATE claims more pages
//                         than the loop's whole access-range footprint
//   telemetry-names:      H003 telemetry metric name violates the
//                         subsystem.noun_verb convention (registry-level
//                         check behind `cdmm-lint --telemetry`; see
//                         src/lint/telemetry_names.h — not a LintPass)
#ifndef CDMM_SRC_LINT_LINT_H_
#define CDMM_SRC_LINT_LINT_H_

#include <string_view>
#include <vector>

#include "src/analysis/dependence.h"
#include "src/analysis/locality.h"
#include "src/analysis/loop_tree.h"
#include "src/directives/plan.h"
#include "src/lang/ast.h"
#include "src/lint/diagnostics.h"

namespace cdmm {

struct LintOptions {
  LocalityOptions locality;         // geometry + system-default minimum
  DirectivePlanOptions directives;  // which directives the plan carries
};

// Everything a pass may inspect. `tree`, `locality`, and `plan` are null when
// sema found errors (the analyses CHECK on invariants sema establishes); a
// pass that needs them must declare so via needs_analysis().
struct LintContext {
  const Program* program = nullptr;
  const LoopTree* tree = nullptr;
  const LocalityAnalysis* locality = nullptr;
  const DirectivePlan* plan = nullptr;
  const DependenceGraph* deps = nullptr;
  DiagnosticEngine* diags = nullptr;
};

class LintPass {
 public:
  virtual ~LintPass() = default;
  virtual const char* name() const = 0;
  // Passes that inspect the loop tree / locality / plan only run on
  // sema-clean programs.
  virtual bool needs_analysis() const { return true; }
  virtual void Run(const LintContext& ctx) const = 0;
};

// The built-in passes, each a stateless singleton.
const LintPass& SubscriptBoundsPass();
const LintPass& DirectiveVerifierPass();
const LintPass& DeadDirectivePass();
const LintPass& LocalityConsistencyPass();
const LintPass& HygienePass();
const LintPass& ParallelIndependencePass();
const LintPass& AccessRangePass();

// All built-in passes in their canonical run order.
const std::vector<const LintPass*>& AllLintPasses();

// Runs sema (accumulating, S0xx) and then every pass over `program`,
// returning the diagnostics sorted by source position. When sema reported
// errors, only passes with !needs_analysis() run.
std::vector<Diagnostic> LintProgram(const Program& program, const LintOptions& options = {});

// Parse + LintProgram. A parse failure yields a single F001 error.
std::vector<Diagnostic> LintSource(std::string_view source, const LintOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_LINT_LINT_H_
