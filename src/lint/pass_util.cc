#include "src/lint/pass_util.h"

#include "src/analysis/reference_class.h"

namespace cdmm {
namespace lint_internal {
namespace {

Interval BoundInterval(const LoopBound& bound, const LoopNode& node) {
  if (bound.IsStatic()) {
    return Interval::Exact(bound.value);
  }
  for (const LoopNode* a = node.parent; a != nullptr; a = a->parent) {
    if (a->loop->loop_var == bound.spelling) {
      return LoopVarInterval(*a);
    }
  }
  return Interval::Unknown();
}

}  // namespace

Interval LoopVarInterval(const LoopNode& node) {
  Interval lower = BoundInterval(node.loop->lower, node);
  Interval upper = BoundInterval(node.loop->upper, node);
  if (!lower.known || !upper.known) {
    return Interval::Unknown();
  }
  int64_t step = node.loop->step;
  Interval out;
  out.known = true;
  bool tight = lower.lo == lower.hi && upper.lo == upper.hi;
  if (step > 0) {
    out.lo = lower.lo;
    // With exact bounds the last reachable value is lo + floor((hi-lo)/step)
    // * step (empty when the loop never trips); with triangular bounds the
    // outer endpoint is still reachable for some outer iteration.
    out.hi = tight ? (upper.hi >= lower.lo ? lower.lo + ((upper.hi - lower.lo) / step) * step
                                           : lower.lo - 1)
                   : upper.hi;
  } else {
    out.hi = lower.hi;
    out.lo = tight ? (lower.hi >= upper.lo ? lower.hi - ((lower.hi - upper.lo) / -step) * -step
                                           : lower.hi + 1)
                   : upper.lo;
  }
  return out;
}

const LoopNode* FindNode(const LoopTree& tree, uint32_t loop_id) {
  for (const LoopNode* node : tree.preorder()) {
    if (node->loop_id == loop_id) {
      return node;
    }
  }
  return nullptr;
}

std::set<std::string> ArraysReferencedIn(const LoopNode& node) {
  std::set<std::string> names;
  for (const RefSite& site : CollectRefSites(node)) {
    names.insert(site.ref->name);
  }
  return names;
}

}  // namespace lint_internal
}  // namespace cdmm
