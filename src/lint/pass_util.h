// Shared helpers for the lint passes: affine interval analysis of DO-loop
// variables, safe (non-CHECKing) loop lookup, and per-subtree array-usage
// summaries. Internal to src/lint.
#ifndef CDMM_SRC_LINT_PASS_UTIL_H_
#define CDMM_SRC_LINT_PASS_UTIL_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/analysis/loop_tree.h"

namespace cdmm {
namespace lint_internal {

// A closed integer interval. Exact for loops with static bounds (the last
// reachable value accounts for the step); an endpoint over-approximation for
// triangular bounds, where each endpoint is still reachable for some outer
// iteration.
struct Interval {
  int64_t lo = 0;
  int64_t hi = -1;
  bool known = false;  // false: a bound could not be resolved

  bool empty() const { return hi < lo; }

  Interval Shifted(int64_t offset) const { return Interval{lo + offset, hi + offset, known}; }

  static Interval Exact(int64_t value) { return Interval{value, value, true}; }
  static Interval Unknown() { return Interval{}; }
};

// Reachable values of `node`'s loop variable over all executions, resolving
// triangular bounds through the enclosing loops' intervals.
Interval LoopVarInterval(const LoopNode& node);

// Lookup by id without CHECK-failing: nullptr for ids the tree does not hold.
const LoopNode* FindNode(const LoopTree& tree, uint32_t loop_id);

// Names of all arrays referenced anywhere in `node`'s subtree.
std::set<std::string> ArraysReferencedIn(const LoopNode& node);

}  // namespace lint_internal
}  // namespace cdmm

#endif  // CDMM_SRC_LINT_PASS_UTIL_H_
