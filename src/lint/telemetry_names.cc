#include "src/lint/telemetry_names.h"

#include <utility>

#include "src/support/str.h"

namespace cdmm {
namespace {

constexpr char kPass[] = "telemetry-names";

bool IsLowerWord(std::string_view word) {
  if (word.empty() || word[0] < 'a' || word[0] > 'z') {
    return false;
  }
  for (char c : word) {
    bool lower = c >= 'a' && c <= 'z';
    bool digit = c >= '0' && c <= '9';
    if (!lower && !digit) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TelemetryNameViolation(std::string_view name) {
  size_t dot = name.find('.');
  if (dot == std::string_view::npos) {
    return "missing '.' between subsystem and metric";
  }
  if (name.find('.', dot + 1) != std::string_view::npos) {
    return "more than one '.' separator";
  }
  std::string_view subsystem = name.substr(0, dot);
  if (!IsLowerWord(subsystem)) {
    return "subsystem must be lowercase [a-z][a-z0-9]*";
  }
  std::string_view rest = name.substr(dot + 1);
  size_t components = 0;
  while (true) {
    size_t underscore = rest.find('_');
    std::string_view component = rest.substr(0, underscore);
    if (!IsLowerWord(component)) {
      return "metric components must be lowercase [a-z][a-z0-9]* joined by '_'";
    }
    ++components;
    if (underscore == std::string_view::npos) {
      break;
    }
    rest = rest.substr(underscore + 1);
  }
  if (components < 2) {
    return "metric needs at least two '_'-joined components (noun_verb)";
  }
  return "";
}

std::vector<Diagnostic> LintTelemetryNames(const std::vector<std::string>& names) {
  std::vector<Diagnostic> diags;
  for (const std::string& name : names) {
    std::string reason = TelemetryNameViolation(name);
    if (reason.empty()) {
      continue;
    }
    Diagnostic d;
    d.code = "H003";
    d.severity = Severity::kWarning;
    d.pass = kPass;
    d.message = StrCat("telemetry metric '", name, "' does not follow subsystem.noun_verb: ",
                       reason);
    d.fixit = StrCat("rename to <subsystem>.<noun>_<verb>, e.g. vm.fault_serviced");
    diags.push_back(std::move(d));
  }
  return diags;
}

}  // namespace cdmm
