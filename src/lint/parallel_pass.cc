// parallel-independence: checks `!$CDMM INDEPENDENT` marks against the
// dependence graph.
//   P001 — a marked loop provably carries a dependence (the mark is wrong;
//          parallel execution would be unsound).
//   P002 — a program that uses marks leaves a provably independent top-level
//          loop unmarked (missed parallelism; note only).
//   P003 — a mark cannot be honoured because an *assumed* dependence (an
//          indirect or otherwise unanalyzable subscript pair) blocks the
//          loop; the mark is downgraded, with the blocking reference pair in
//          the fix-it so the author can refute or restructure it.
#include "src/lint/lint.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

constexpr char kPass[] = "parallel-independence";

std::string DescribeSite(const DepSite& site) {
  return StrCat(site.array, " at ", site.location.line, ":", site.location.column);
}

class ParallelIndependencePassImpl final : public LintPass {
 public:
  const char* name() const override { return kPass; }

  void Run(const LintContext& ctx) const override {
    bool any_marked = false;
    ctx.program->ForEachStmt([&](const Stmt& stmt) {
      any_marked = any_marked ||
                   (stmt.kind == Stmt::Kind::kDoLoop && stmt.marked_independent);
    });

    ctx.program->ForEachStmt([&](const Stmt& stmt) {
      if (stmt.kind != Stmt::Kind::kDoLoop) {
        return;
      }
      const DepEdge* blocker = ctx.deps->BlockingEdge(stmt.loop_id);
      if (stmt.marked_independent && blocker != nullptr) {
        const DepSite& src = ctx.deps->sites()[blocker->src_site];
        const DepSite& dst = ctx.deps->sites()[blocker->dst_site];
        if (blocker->result == DepResult::kExact) {
          Diagnostic& d = ctx.diags->Report(
              Severity::kError, "P001", kPass, stmt.location,
              StrCat("loop ", stmt.label, " is marked INDEPENDENT but carries a proven ",
                     "dependence on ", blocker->array, " (", blocker->test, " test)"));
          d.fixit = StrCat("remove the mark; blocking pair: ", DescribeSite(src), " -> ",
                           DescribeSite(dst));
        } else {
          Diagnostic& d = ctx.diags->Report(
              Severity::kWarning, "P003", kPass, stmt.location,
              StrCat("INDEPENDENT mark on loop ", stmt.label, " is downgraded: a dependence ",
                     "on ", blocker->array, " is assumed because the subscript pair cannot ",
                     "be analyzed"));
          d.fixit = StrCat("blocking pair: ", DescribeSite(src), " -> ", DescribeSite(dst));
        }
      }
      // Missed-parallelism note: only for programs that opted into marks, and
      // only at the top level (inner loops are run sequentially per outer
      // iteration anyway; marking them buys nothing today).
      if (any_marked && !stmt.marked_independent &&
          ctx.tree->node(stmt.loop_id).parent == nullptr &&
          ctx.deps->CanParallelize(stmt.loop_id)) {
        Diagnostic& d = ctx.diags->Report(
            Severity::kNote, "P002", kPass, stmt.location,
            StrCat("loop ", stmt.label,
                   " is provably free of carried dependences but not marked INDEPENDENT"));
        d.fixit = StrCat("add `!$CDMM INDEPENDENT` before loop ", stmt.label);
      }
    });
  }
};

}  // namespace

const LintPass& ParallelIndependencePass() {
  static const ParallelIndependencePassImpl pass;
  return pass;
}

}  // namespace cdmm
