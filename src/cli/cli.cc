// cdmmc — the CDMM compiler/simulator driver.
//
// Compiles a mini-FORTRAN program (a file, or `builtin:NAME` for one of the
// paper's nine workloads), optionally prints the locality report and the
// instrumented listing, writes the directive-bearing reference trace, and
// simulates any of the implemented policies on it.
//
// Usage:
//   cdmmc [options] <source.f | builtin:NAME>
//
// Options:
//   --report               print the §2 locality analysis report
//   --listing              print the instrumented skeleton (Figure 5c style)
//   --listing-full         ... with the statements included
//   --source               print the round-tripped source
//   --lint[=json]          run the cdmm-lint static checker instead of
//                          compiling: prints diagnostics (text or JSON) and
//                          exits 0 (clean), 4 (diagnostics), or 1 (parse)
//   --deps[=json]          print the dependence graph (sites, edges,
//                          per-loop parallelizability, access ranges)
//   --parallel-nests       generate the trace with provably independent
//                          top-level nests run concurrently (merged output
//                          is byte-identical to sequential at any --jobs)
//   --trace-out FILE       write the generated trace to FILE
//   --trace-format FMT     text (default) or binary
//   --trace-in FILE        skip compilation: simulate a stored trace (either
//                          format; cd-* specs need a directive-bearing trace)
//   --simulate SPEC        run a policy (repeatable). SPEC is one of:
//                            cd-outer | cd-inner | cd-cap:N | cd-avail:FRAMES
//                            lru:M | fifo:M | opt:M | ws:TAU | sws:SIGMA
//                            vsws | pff:T | dws:TAU | vmin
//   --sweep KIND           run the full WS(τ)/OPT(m) parameter sweep(s):
//                          KIND = ws | opt | both. Prints a deterministic
//                          digest (point count + FNV fingerprint) to stdout
//                          and "[sweep] ... wall_ms=..." timing to stderr
//   --sweep-engine E       naive (re-simulate per point) or onepass (whole
//                          curve in one scan; default). Same stdout either way
//   --jobs N               simulate the --simulate specs on N threads
//                          (default: all cores; results print in spec order)
//   --page-size BYTES      page size (default 256)
//   --element-size BYTES   array element size (default 4)
//   --fault-service N      fault service time in references (default 2000)
//   --hierarchy SPEC       simulate against an N-level hierarchy below RAM:
//                          a preset (legacy | dram-disk | dram-nvm-disk |
//                          dram-nvm-ssd-disk) or comma-separated levels of
//                          name:capacity:latency[:policy], last capacity '*'
//                          (unbounded backing store). Overrides
//                          --fault-service; incompatible with --sweep
//   --min-pages N          system-default minimum allocation (default 1)
//   --no-locks             do not insert LOCK/UNLOCK directives
//   --no-allocate          do not insert ALLOCATE directives
//   --inject-seed N        enable deterministic fault injection (0 = off);
//                          the same seed gives the same schedule at any --jobs
//   --inject-rate X        injection intensity in [0,1] (default 0.5)
//   --deadline MS          wall-clock budget for the --simulate sweep;
//                          overrunning specs become partial-result failures
//   --metrics[=text|json]  print the telemetry metrics report after the run
//   --metrics-out FILE     write the JSON metrics sidecar to FILE
//   --trace-spans FILE     write Chrome trace-event JSON (Perfetto) to FILE
//   --version              print the one-line build identification and exit
//   --build-info           print the full build provenance and exit
//   --help                 print the full help (including the exit-code
//                          contract, which lives in PrintHelp below) and exit
#include "src/cli/cli.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analytic_locality.h"
#include "src/cdmm/pipeline.h"
#include "src/exec/flags.h"
#include "src/interp/rle_generator.h"
#include "src/exec/nest_parallel.h"
#include "src/lint/lint.h"
#include "src/exec/sweep_scheduler.h"
#include "src/robust/fault_injector.h"
#include "src/support/build_info.h"
#include "src/support/interrupt.h"
#include "src/support/str.h"
#include "src/support/table.h"
#include "src/telemetry/flags.h"
#include "src/trace/trace_io.h"
#include "src/vm/hierarchy.h"
#include "src/vm/policy_spec.h"
#include "src/vm/sweep_engines.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

struct CliOptions {
  std::string input;
  std::string trace_in;
  bool binary_format = false;
  bool report = false;
  bool listing = false;
  bool listing_full = false;
  bool source = false;
  bool lint = false;
  bool lint_json = false;
  bool deps = false;
  bool deps_json = false;
  bool parallel_nests = false;
  std::string trace_out;
  std::vector<std::string> simulate;
  std::string sweep;  // "", "ws", "opt", or "both"
  std::string hierarchy_spec;
  PipelineOptions pipeline;
  SimOptions sim;

  // Robustness knobs (all off by default: the nominal path is untouched).
  uint64_t inject_seed = 0;
  double inject_rate = 0.5;
  uint64_t deadline_ms = 0;
  const FaultInjector* injector = nullptr;  // non-null iff inject_seed != 0
};

void PrintUsageLines(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " [--report] [--listing|--listing-full] [--source] [--lint[=json]]\n"
        "            [--deps[=json]] [--parallel-nests]\n"
        "            [--trace-out FILE] [--trace-format text|binary]\n"
        "            [--trace-in FILE] [--simulate SPEC]...\n"
        "            [--sweep ws|opt|both] [--sweep-engine naive|onepass|analytic]\n"
        "            [--page-size N] [--element-size N] [--fault-service N]\n"
        "            [--hierarchy SPEC]\n"
        "            [--min-pages N] [--no-locks] [--no-allocate] [--jobs N]\n"
        "            [--inject-seed N] [--inject-rate X] [--deadline MS]\n"
        "            [--metrics[=text|json]] [--metrics-out FILE]\n"
        "            [--trace-spans FILE] [--version] [--build-info] [--help]\n"
        "            <source.f | builtin:NAME>\n"
        "builtins: MAIN FDJAC TQL FIELD INIT APPROX HYBRJ CONDUCT HWSCRT\n"
        "policy specs: cd-outer cd-inner cd-cap:N cd-avail:FRAMES lru:M fifo:M\n"
        "              opt:M ws:TAU sws:SIGMA vsws pff:T dws:TAU vmin\n";
}

int Usage(const char* argv0, std::ostream& err) {
  PrintUsageLines(argv0, err);
  err << "run '" << argv0 << " --help' for the full option and exit-code reference\n";
  return 2;
}

// The single authoritative statement of the cdmmc exit-code contract
// (asserted verbatim by cli_test); src/cli/cli.h points here.
int PrintHelp(const char* argv0, std::ostream& out) {
  PrintUsageLines(argv0, out);
  out << "\n"
         "sweeps:\n"
         "  --sweep ws|opt|both    run the full WS(t)/OPT(m) parameter sweep(s) and\n"
         "                         print a deterministic digest (points + fingerprint)\n"
         "                         to stdout; per-sweep wall_ms timing goes to stderr\n"
         "  --sweep-engine ENGINE  naive = re-simulate per parameter point (the\n"
         "                         cross-validation oracle), onepass = whole curve\n"
         "                         from one scan (default), analytic = symbolic\n"
         "                         curves from the loop structure without\n"
         "                         materializing the trace (needs program source,\n"
         "                         not --trace-in). stdout is byte-identical under\n"
         "                         every engine at any --jobs\n"
         "\n"
         "hierarchy:\n"
         "  --hierarchy SPEC       run --simulate policies against an N-level memory\n"
         "                         hierarchy below the policy-managed frames. SPEC is a\n"
         "                         preset (legacy, dram-disk, dram-nvm-disk,\n"
         "                         dram-nvm-ssd-disk) or comma-separated levels of\n"
         "                         name:capacity:latency[:lru|fifo]; the last level's\n"
         "                         capacity must be '*' (unbounded backing store).\n"
         "                         Level latencies replace --fault-service. Cannot be\n"
         "                         combined with --sweep\n"
         "\n"
         "dependence analysis:\n"
         "  --deps[=json]          print the dependence graph: reference sites, edges\n"
         "                         with direction vectors, per-loop parallelizability,\n"
         "                         and per-(loop, array) access-range summaries\n"
         "  --parallel-nests       run provably independent top-level loop nests\n"
         "                         concurrently during trace generation; the merged\n"
         "                         trace is byte-identical to the sequential one at\n"
         "                         any --jobs\n"
         "\n"
         "telemetry:\n"
         "  --metrics[=text|json]  print the metrics report to stdout after the run\n"
         "  --metrics-out FILE     write the JSON metrics sidecar to FILE\n"
         "  --trace-spans FILE     write Chrome trace-event JSON (load in Perfetto)\n"
         "\n"
         "exit codes:\n"
         "  0  success (compilation, simulation, or a clean --lint run)\n"
         "  1  input error: unreadable file, parse/semantic failure, bad trace\n"
         "  2  usage error: unknown option, unknown policy spec, malformed value\n"
         "  3  partial results: some --simulate items timed out or failed\n"
         "  4  lint diagnostics reported (--lint on a source with findings)\n"
         "  130/143  interrupted (128 + SIGINT/SIGTERM): remaining stages are\n"
         "           skipped, completed rows stay printed, and --metrics-out /\n"
         "           --trace-spans sidecars are flushed before exiting\n";
  return 0;
}

void PrintUnknownSpec(const std::string& spec, std::ostream& err) {
  err << "unknown policy spec '" << spec << "'; known forms:\n";
  for (const std::string& known : KnownPolicySpecs()) {
    err << "  " << known << "\n";
  }
}

void AddResultRow(const SimResult& r, TextTable* table) {
  table->AddRow({r.policy, StrCat(r.faults), FormatFixed(r.mean_memory, 2),
                 FormatMillions(r.space_time), StrCat(r.max_resident)});
}

// Runs every --simulate spec as a task over the pool (all reading the shared
// immutable traces) and appends the results to `table` in spec order.
// Returns the exit code for the simulation stage: 0 all rows produced,
// 2 unknown spec (the valid rows are still produced, but the error wins),
// 3 partial results under --deadline / fault injection.
int RunPolicies(const CliOptions& cli, const Trace& full, const Trace& refs,
                const SweepScheduler& sched, TextTable* table, std::ostream& err) {
  const std::vector<std::string>& specs = cli.simulate;
  if (InterruptRequested()) {
    err << "interrupted: skipping " << specs.size() << " --simulate spec(s)\n";
    return 3;
  }
  if (cli.injector == nullptr && cli.deadline_ms == 0) {
    // Nominal strict path, bit-identical to the pre-robustness driver.
    std::vector<std::optional<SimResult>> results = sched.Map<std::optional<SimResult>>(
        specs.size(), [&](size_t i) { return RunPolicySpec(specs[i], full, refs, cli.sim); });
    for (size_t i = 0; i < specs.size(); ++i) {
      if (!results[i].has_value()) {
        PrintUnknownSpec(specs[i], err);
        return 2;
      }
      AddResultRow(*results[i], table);
    }
    return 0;
  }
  // Degraded mode: per-item deadlines and injected stalls/poison become
  // structured failures; the completed rows are still reported in spec order.
  PartialMapOptions pm;
  pm.deadline_ms = cli.deadline_ms;
  pm.injector = cli.injector;
  PartialSweep<std::optional<SimResult>> partial =
      sched.MapPartial<std::optional<SimResult>>(
          specs.size(),
          [&](size_t i, const CancelToken&) {
            return RunPolicySpec(specs[i], full, refs, cli.sim);
          },
          pm);
  for (size_t k = 0; k < partial.results.size(); ++k) {
    if (!partial.results[k].has_value()) {
      PrintUnknownSpec(specs[partial.indices[k]], err);
      return 2;
    }
    AddResultRow(*partial.results[k], table);
  }
  for (const SweepItemFailure& f : partial.failures) {
    err << "policy '" << specs[f.index] << "' "
        << (f.kind == SweepItemFailure::Kind::kTimeout ? "timed out" : "failed") << ": "
        << f.message << "\n";
  }
  return partial.complete() ? 0 : 3;
}

// cdmmc --sweep: runs the requested parameter sweeps over the reference
// string and prints one deterministic digest line per sweep. The digest
// (point count, fault extremes, FNV fingerprint over every SweepPoint field)
// is engine- and jobs-independent by the determinism contract; the wall_ms
// line on stderr is the timing probe tools/bench_sweep.py parses.
int RunSweeps(const CliOptions& cli, const SweepScheduler& sched,
              const std::function<std::shared_ptr<const Trace>()>& ref_trace,
              const Program* program, std::ostream& out, std::ostream& err) {
  const bool want_ws = cli.sweep == "ws" || cli.sweep == "both";
  const bool want_opt = cli.sweep == "opt" || cli.sweep == "both";
  struct Kind {
    const char* name;
    bool wanted;
  };
  // Under --sweep-engine=analytic the curves come out of the symbolic model
  // and the flat trace is never materialized; the digest lines are
  // byte-identical to the other engines' by the bit-identity contract.
  std::shared_ptr<const AnalyticLocality> model;
  std::shared_ptr<const Trace> refs;
  uint64_t ref_count = 0;
  uint32_t virtual_pages = 0;
  if (sched.engine() == SweepEngine::kAnalytic) {
    if (program == nullptr) {
      err << "--sweep-engine analytic derives curves from loop structure and needs "
             "program source; it cannot run from --trace-in\n";
      return 2;
    }
    InterpOptions iopt;
    iopt.geometry = cli.pipeline.locality.geometry;
    model = AnalyticLocality::Build(GenerateLoopRle(*program, iopt));
    ref_count = model->total_refs();
    virtual_pages = model->virtual_pages();
  } else {
    refs = ref_trace();
    ref_count = refs->reference_count();
    virtual_pages = refs->virtual_pages();
  }
  uint64_t max_tau = std::max<uint64_t>(ref_count, 1);
  for (const Kind& kind : {Kind{"ws", want_ws}, Kind{"opt", want_opt}}) {
    if (!kind.wanted) {
      continue;
    }
    if (InterruptRequested()) {
      err << "interrupted: skipping sweep " << kind.name << "\n";
      return 3;
    }
    auto start = std::chrono::steady_clock::now();
    std::vector<SweepPoint> points;
    if (model != nullptr) {
      points = kind.name[0] == 'w'
                   ? sched.AnalyticWs(*model, DefaultTauGrid(max_tau, 12), cli.sim)
                   : sched.AnalyticOpt(*model, std::max<uint32_t>(virtual_pages, 1), cli.sim);
    } else {
      points = kind.name[0] == 'w'
                   ? sched.Ws(refs, DefaultTauGrid(max_tau, 12), cli.sim)
                   : sched.Opt(refs, std::max<uint32_t>(virtual_pages, 1), cli.sim);
    }
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    uint64_t min_faults = points.empty() ? 0 : points.back().faults;
    uint64_t max_faults = points.empty() ? 0 : points.front().faults;
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(FingerprintSweep(points)));
    out << "sweep " << kind.name << ": points=" << points.size() << " faults=" << max_faults
        << ".." << min_faults << " fingerprint=" << digest << "\n";
    err << "[sweep] input=" << (cli.input.empty() ? cli.trace_in : cli.input)
        << " kind=" << kind.name
        << " engine=" << SweepEngineName(sched.engine()) << " points=" << points.size()
        << " wall_ms=" << FormatFixed(wall_ms, 3) << "\n";
  }
  return 0;
}

// Simulation over a stored trace, bypassing the compiler.
int RunFromTrace(const CliOptions& cli, const SweepScheduler& sched, std::ostream& out,
                 std::ostream& err) {
  std::ifstream in(cli.trace_in, std::ios::binary);
  if (!in) {
    err << "cannot open " << cli.trace_in << "\n";
    return 1;
  }
  auto parsed = ReadAnyTrace(in);
  if (!parsed.ok()) {
    err << cli.trace_in << ": " << parsed.error().ToString() << "\n";
    return 1;
  }
  const Trace& full = parsed.value();
  Trace refs = full.ReferencesOnly();
  out << "trace " << full.name() << ": R=" << refs.reference_count() << " references, V="
      << full.virtual_pages() << " pages, " << full.directives().size() << " directives\n";
  if (cli.sim.hierarchy != nullptr) {
    out << "hierarchy: " << cli.sim.hierarchy->ToString() << "\n";
  }
  if (!cli.sweep.empty()) {
    auto shared_refs = std::make_shared<const Trace>(refs);
    int code = RunSweeps(
        cli, sched, [&] { return shared_refs; }, /*program=*/nullptr, out, err);
    if (code != 0 || cli.simulate.empty()) {
      return code;
    }
  }
  TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
  int code = RunPolicies(cli, full, refs, sched, &table, err);
  if (code == 2) {
    return 2;
  }
  if (!cli.simulate.empty()) {
    table.Print(out);
  }
  return code;
}

// cdmmc --lint[=json]: runs the static checker instead of compiling.
// Exit: 0 clean, 1 the source did not parse, 4 diagnostics reported.
int RunLint(const CliOptions& cli, const std::string& text, std::ostream& out) {
  LintOptions options;
  options.locality = cli.pipeline.locality;
  options.directives = cli.pipeline.directives;
  std::vector<Diagnostic> diags = LintSource(text, options);
  out << (cli.lint_json ? RenderJson(diags, cli.input) : RenderText(diags, cli.input));
  if (!diags.empty() && diags.front().pass == "parse") {
    return 1;
  }
  return diags.empty() ? 0 : 4;
}

int Run(const CliOptions& cli, const SweepScheduler& sched, std::ostream& out,
        std::ostream& err) {
  std::string text;
  if (cli.input.rfind("builtin:", 0) == 0) {
    text = FindWorkload(cli.input.substr(8)).source;
  } else {
    std::ifstream file(cli.input);
    if (!file) {
      err << "cannot open " << cli.input << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  if (cli.lint) {
    return RunLint(cli, text, out);
  }

  auto compiled = CompiledProgram::FromSource(text, cli.pipeline);
  if (!compiled.ok()) {
    err << cli.input << ": " << compiled.error().ToString() << "\n";
    return 1;
  }
  const CompiledProgram& cp = compiled.value();

  if (cli.source) {
    out << ProgramToString(cp.program());
  }
  if (cli.report) {
    out << cp.locality().Report();
  }
  if (cli.listing || cli.listing_full) {
    out << cp.Listing(/*compact=*/!cli.listing_full);
  }
  if (cli.deps) {
    out << (cli.deps_json ? cp.deps().ToJson() : cp.deps().ToText());
  }

  // Under --parallel-nests the trace comes from the concurrent generator;
  // every downstream consumer (--trace-out, --sweep, --simulate) sees the
  // merged trace, which is byte-identical to the sequential one.
  std::shared_ptr<const Trace> full_override;
  std::shared_ptr<const Trace> refs_override;
  if (cli.parallel_nests) {
    InterpOptions iopt;
    iopt.geometry = cli.pipeline.locality.geometry;
    iopt.emit_loop_markers = cli.pipeline.emit_loop_markers;
    NestParallelResult np = GenerateTraceParallelNests(cp.program(), cp.tree(), cp.deps(),
                                                       &cp.dep_plan(), iopt, sched);
    out << "parallel-nests: units=" << np.total_units << " groups=" << np.groups.size()
        << " concurrent=" << np.concurrent_units << "\n";
    full_override = std::make_shared<const Trace>(std::move(np.trace));
    refs_override = std::make_shared<const Trace>(full_override->ReferencesOnly());
  }
  auto full_trace = [&] { return full_override != nullptr ? full_override : cp.shared_trace(); };
  auto ref_trace = [&] {
    return refs_override != nullptr ? refs_override : cp.shared_references();
  };

  if (!cli.trace_out.empty()) {
    std::ofstream fout(cli.trace_out, std::ios::binary);
    if (!fout) {
      err << "cannot write " << cli.trace_out << "\n";
      return 1;
    }
    if (cli.binary_format) {
      WriteTraceBinary(*full_trace(), fout);
    } else {
      WriteTrace(*full_trace(), fout);
    }
    out << "wrote " << full_trace()->reference_count() << " references to " << cli.trace_out
        << (cli.binary_format ? " (binary)" : " (text)") << "\n";
  }
  if (!cli.sweep.empty()) {
    int code = RunSweeps(cli, sched, ref_trace, &cp.program(), out, err);
    if (code != 0) {
      return code;
    }
  }
  if (!cli.simulate.empty()) {
    std::shared_ptr<const Trace> full = full_trace();
    std::shared_ptr<const Trace> refs = ref_trace();
    out << "R=" << refs->reference_count() << " references, V=" << refs->virtual_pages()
        << " pages, fault service " << cli.sim.fault_service_time << "\n";
    if (cli.sim.hierarchy != nullptr) {
      out << "hierarchy: " << cli.sim.hierarchy->ToString() << "\n";
    }
    TextTable table({"Policy", "PF", "MEM", "ST x1e6", "max resident"});
    int code = RunPolicies(cli, *full, *refs, sched, &table, err);
    if (code == 2) {
      return 2;
    }
    table.Print(out);
    return code;
  }
  return 0;
}

}  // namespace

int CdmmcMain(int argc, char** argv, std::ostream& out, std::ostream& err) {
  InstallInterruptHandlers();
  unsigned jobs = ParseJobsFlag(&argc, argv);
  SweepEngine engine = ParseSweepEngineFlag(&argc, argv);
  telem::TelemetryFlags tflags = telem::ParseTelemetryFlags(&argc, argv);
  ThreadPool pool(jobs);
  SweepScheduler sched(&pool, engine);
  CliOptions cli;
  cli.pipeline.locality.min_default_pages = 1;
  bool missing_argument = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        err << arg << " needs an argument\n";
        missing_argument = true;
        return "";
      }
      return argv[++i];
    };
    if (arg == "--help") {
      return PrintHelp(argv[0], out);
    } else if (arg == "--version") {
      out << BuildInfoLine() << "\n";
      return 0;
    } else if (arg == "--build-info") {
      const BuildInfo& info = GetBuildInfo();
      out << "git: " << info.git_describe << "\n"
          << "compiler: " << info.compiler_id << " " << info.compiler_version << "\n"
          << "build type: " << info.build_type << "\n"
          << "C++ standard: " << info.cxx_standard << "\n";
      return 0;
    } else if (arg == "--report") {
      cli.report = true;
    } else if (arg == "--listing") {
      cli.listing = true;
    } else if (arg == "--listing-full") {
      cli.listing_full = true;
    } else if (arg == "--source") {
      cli.source = true;
    } else if (arg == "--lint") {
      cli.lint = true;
    } else if (arg == "--lint=json") {
      cli.lint = true;
      cli.lint_json = true;
    } else if (arg == "--deps") {
      cli.deps = true;
    } else if (arg == "--deps=json") {
      cli.deps = true;
      cli.deps_json = true;
    } else if (arg == "--parallel-nests") {
      cli.parallel_nests = true;
    } else if (arg == "--trace-out") {
      cli.trace_out = next();
    } else if (arg == "--trace-in") {
      cli.trace_in = next();
    } else if (arg == "--trace-format") {
      std::string fmt = next();
      if (missing_argument) {
        return 2;
      }
      if (fmt != "text" && fmt != "binary") {
        err << "bad --trace-format '" << fmt << "'\n";
        return Usage(argv[0], err);
      }
      cli.binary_format = fmt == "binary";
    } else if (arg == "--simulate") {
      cli.simulate.push_back(next());
    } else if (arg == "--sweep") {
      std::string kind = next();
      if (missing_argument) {
        return 2;
      }
      if (kind != "ws" && kind != "opt" && kind != "both") {
        err << "bad --sweep '" << kind << "' (want ws, opt, or both)\n";
        return Usage(argv[0], err);
      }
      cli.sweep = kind;
    } else if (arg == "--page-size") {
      cli.pipeline.locality.geometry.page_size_bytes =
          static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--element-size") {
      cli.pipeline.locality.geometry.element_size_bytes =
          static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--fault-service") {
      cli.sim.fault_service_time = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--hierarchy") {
      cli.hierarchy_spec = next();
    } else if (arg == "--min-pages") {
      cli.pipeline.locality.min_default_pages = std::atoi(next());
    } else if (arg == "--no-locks") {
      cli.pipeline.directives.insert_locks = false;
    } else if (arg == "--no-allocate") {
      cli.pipeline.directives.insert_allocate = false;
    } else if (arg == "--inject-seed") {
      cli.inject_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--inject-rate") {
      cli.inject_rate = std::strtod(next(), nullptr);
    } else if (arg == "--deadline") {
      cli.deadline_ms = std::strtoull(next(), nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option " << arg << "\n";
      return Usage(argv[0], err);
    } else if (cli.input.empty()) {
      cli.input = arg;
    } else {
      return Usage(argv[0], err);
    }
    if (missing_argument) {
      return 2;
    }
  }
  FaultInjector injector(FaultInjectionConfig::AtIntensity(cli.inject_seed, cli.inject_rate));
  if (injector.enabled()) {
    cli.injector = &injector;
    cli.sim.injector = &injector;
  }
  // The parsed hierarchy spec lives here (same ownership pattern as the
  // injector above); cli.sim carries only a pointer.
  HierarchySpec hierarchy;
  if (!cli.hierarchy_spec.empty()) {
    if (!cli.sweep.empty()) {
      err << "--hierarchy cannot be combined with --sweep\n";
      return Usage(argv[0], err);
    }
    auto parsed = HierarchySpec::Parse(cli.hierarchy_spec);
    if (!parsed.ok()) {
      err << "bad --hierarchy '" << cli.hierarchy_spec
          << "': " << parsed.error().message << "\n";
      return Usage(argv[0], err);
    }
    hierarchy = std::move(parsed).value();
    cli.sim.hierarchy = &hierarchy;
  }
  if (cli.trace_in.empty() && cli.input.empty()) {
    return Usage(argv[0], err);
  }
  // Explicitly set both states every invocation so repeated in-process calls
  // (tests, benches) never inherit a previous run's telemetry configuration.
  telem::ConfigureTelemetry(tflags);
  int code = cli.trace_in.empty() ? Run(cli, sched, out, err)
                                  : RunFromTrace(cli, sched, out, err);
  // The sidecars flush before the signal translates into the exit code, so a
  // SIGTERM'd run still leaves schema-valid metrics behind.
  if (tflags.any() && !telem::EmitTelemetry(tflags, "cdmmc", out, err) && code == 0) {
    code = 1;
  }
  if (int signo = InterruptSignal(); signo != 0) {
    err << "interrupted by signal " << signo << "; telemetry flushed\n";
    code = 128 + signo;
  }
  return code;
}

}  // namespace cdmm
