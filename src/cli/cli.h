// The cdmmc driver as a library, so the exit-code contract is testable
// in-process: tools/cdmmc.cc is a thin main() around CdmmcMain.
//
// Exit codes:
//   0  success
//   1  input error (missing file, parse/trace failure) — the diagnostic is
//      printed to `err` with the Error's source position when it has one
//   2  usage error (unknown option/spec, missing argument)
//   3  partial results: at least one --simulate spec timed out or failed
//      under --deadline / --inject-*, but the completed rows were printed
//   4  lint diagnostics: --lint reported at least one warning or error
//      (parse failures under --lint still exit 1; see src/cli/lint_cli.h
//      for the standalone cdmm-lint tool sharing this contract)
//   128+signo  interrupted: a SIGINT (130) or SIGTERM (143) arrived mid-run;
//      remaining stages are skipped, completed output stays printed, and the
//      --metrics-out/--trace-spans sidecars are flushed before exiting
#ifndef CDMM_SRC_CLI_CLI_H_
#define CDMM_SRC_CLI_CLI_H_

#include <iosfwd>

namespace cdmm {

// Runs the cdmmc command line. `out` receives the normal output, `err` the
// diagnostics. Never calls std::exit and never aborts on bad input.
int CdmmcMain(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace cdmm

#endif  // CDMM_SRC_CLI_CLI_H_
