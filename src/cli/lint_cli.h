// The cdmm-lint driver as a library (tools/cdmm_lint.cc is a thin main), so
// the exit contract is testable in-process.
//
// Exit codes (extending the cdmmc scheme, see src/cli/cli.h):
//   0  every input linted clean
//   1  input error: a file could not be read, a builtin name is unknown, or
//      a source failed to parse (P001)
//   2  usage error (unknown option, missing operand)
//   4  at least one diagnostic (warning or error) was reported
// When both input errors and diagnostics occur across a multi-file run, the
// input error wins (1): the run did not fully inspect its inputs.
#ifndef CDMM_SRC_CLI_LINT_CLI_H_
#define CDMM_SRC_CLI_LINT_CLI_H_

#include <iosfwd>

namespace cdmm {

// Runs the cdmm-lint command line. `out` receives diagnostics and reports,
// `err` usage/summary lines. Never calls std::exit and never aborts on bad
// input.
int LintMain(int argc, char** argv, std::ostream& out, std::ostream& err);

}  // namespace cdmm

#endif  // CDMM_SRC_CLI_LINT_CLI_H_
