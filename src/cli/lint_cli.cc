// cdmm-lint — the standalone multi-pass static checker and directive
// verifier for mini-FORTRAN programs.
//
// Usage:
//   cdmm-lint [options] <source.f | builtin:NAME>...
//
// Options:
//   --json                 render diagnostics as a JSON array
//   --validate             also replay the trace and report V001 warnings
//                          where the §2 estimate under-covers the measured
//                          per-loop need (sema-clean programs only)
//   --page-size BYTES      page size used by the analyses (default 256)
//   --element-size BYTES   array element size (default 4)
//   --min-pages N          system-default minimum allocation (default 1)
//   --no-locks             lint a plan without LOCK/UNLOCK directives
//   --no-allocate          lint a plan without ALLOCATE directives
//   --telemetry            exercise the pipeline/simulators with telemetry
//                          enabled and lint every registered metric name
//                          against subsystem.noun_verb (H003); takes no
//                          source inputs
#include "src/cli/lint_cli.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analytic_locality.h"
#include "src/cdmm/pipeline.h"
#include "src/cdmm/validation.h"
#include "src/interp/rle_generator.h"
#include "src/exec/sweep_scheduler.h"
#include "src/exec/thread_pool.h"
#include "src/lint/lint.h"
#include "src/lint/telemetry_names.h"
#include "src/os/multiprog.h"
#include "src/robust/fault_injector.h"
#include "src/serve/server.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/policy_spec.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

int Usage(const char* argv0, std::ostream& err) {
  err << "usage: " << argv0
      << " [--json] [--validate] [--page-size N] [--element-size N]\n"
         "                 [--min-pages N] [--no-locks] [--no-allocate]\n"
         "                 [--telemetry | <source.f | builtin:NAME>...]\n"
         "exit: 0 clean, 1 input error, 2 usage error, 4 diagnostics reported\n";
  return 2;
}

// Graceful builtin lookup (FindWorkload CHECK-fails on unknown names).
const Workload* TryFindWorkload(const std::string& name) {
  for (const auto* list : {&AllWorkloads(), &ExtendedWorkloads()}) {
    for (const Workload& w : *list) {
      if (w.name == name) {
        return &w;
      }
    }
  }
  return nullptr;
}

struct LintCliOptions {
  bool json = false;
  bool validate = false;
  LintOptions lint;
};

// Lints one input; returns 0 clean, 1 input error, 4 diagnostics.
int LintOneInput(const std::string& input, const LintCliOptions& opt, std::ostream& out,
                 std::ostream& err) {
  std::string text;
  if (input.rfind("builtin:", 0) == 0) {
    const Workload* w = TryFindWorkload(input.substr(8));
    if (w == nullptr) {
      err << input << ": unknown builtin workload\n";
      return 1;
    }
    text = w->source;
  } else {
    std::ifstream file(input);
    if (!file) {
      err << "cannot open " << input << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  std::vector<Diagnostic> diags = LintSource(text, opt.lint);
  bool parse_failed = !diags.empty() && diags.front().pass == "parse";
  bool sema_clean = true;
  for (const Diagnostic& d : diags) {
    sema_clean = sema_clean && d.pass != "sema" && d.pass != "parse";
  }
  if (opt.validate && sema_clean) {
    PipelineOptions po;
    po.locality = opt.lint.locality;
    po.directives = opt.lint.directives;
    auto compiled = CompiledProgram::FromSource(text, po);
    if (compiled.ok()) {
      std::vector<LoopValidation> rows = ValidateLocalityEstimates(compiled.value());
      for (Diagnostic& d : ValidationDiagnostics(compiled.value(), rows)) {
        diags.push_back(std::move(d));
      }
    }
  }
  out << (opt.json ? RenderJson(diags, input) : RenderText(diags, input));
  if (parse_failed) {
    return 1;
  }
  return diags.empty() ? 0 : 4;
}

// --telemetry: populate the global metrics registry by exercising every
// subsystem that registers metrics (pipeline, all policy simulators, the
// sweep scheduler, the multiprogrammed OS with load control and fault
// injection), then lint the registered names. Registration is lazy — a site
// that never executes never registers — so the exercise aims for breadth,
// not realistic workloads.
int LintTelemetryRegistry(const LintCliOptions& opt, std::ostream& out, std::ostream& err) {
  telem::SetTelemetryEnabled(true);
  telem::GlobalMetrics().ResetValues();

  PipelineOptions po;
  po.locality = opt.lint.locality;
  po.directives = opt.lint.directives;
  auto cp = CompiledProgram::FromSource(FindWorkload("FDJAC").source, po);
  if (!cp.ok()) {
    err << "builtin:FDJAC failed to compile: " << cp.error().ToString() << "\n";
    return 1;
  }
  std::shared_ptr<const Trace> full = cp.value().shared_trace();
  std::shared_ptr<const Trace> refs = cp.value().shared_references();

  SimOptions sim;
  for (const std::string& spec : KnownPolicySpecs()) {
    RunPolicySpec(spec, *full, *refs, sim);
  }

  // A multi-level run with migration injection, so every hierarchy.* name
  // (fault routing, promotion/demotion, retries and drops) reaches the H003
  // check below.
  HierarchySpec hierarchy = HierarchySpec::Parse("nvm:16:60,ssd:32:400,disk:*:2000").value();
  FaultInjectionConfig migration_config;
  migration_config.seed = 7;
  migration_config.migration_failure_rate = 0.5;
  FaultInjector migration_injector(migration_config);
  SimOptions hier_sim;
  hier_sim.hierarchy = &hierarchy;
  hier_sim.injector = &migration_injector;
  RunPolicySpec("lru:16", *full, *refs, hier_sim);
  RunPolicySpec("cd-outer", *full, *refs, hier_sim);

  ThreadPool pool(2);
  SweepScheduler sched(&pool);
  sched.Lru(refs, cp.value().virtual_pages(), sim);
  // Both sweep engines, so the sweep.* names the one-pass engines register
  // (and the naive per-point paths) all reach the H003 check.
  std::shared_ptr<const PreparedTrace> prepared = PreparedTrace::BuildShared(*refs);
  std::vector<uint64_t> taus = {1, 64, 4096};
  sched.Ws(refs, taus, sim, prepared);
  sched.Opt(refs, cp.value().virtual_pages(), sim, prepared);
  SweepScheduler naive(&pool, SweepEngine::kNaive);
  naive.Ws(refs, taus, sim);
  naive.Opt(refs, std::min(cp.value().virtual_pages(), 8u), sim);

  // The analytic engine: model build (histogram-build span, fold and class
  // counters), both symbolic sweeps, and the bounded-error OPT envelope so
  // every analytic.* name reaches the H003 check.
  {
    SweepScheduler analytic_sched(&pool, SweepEngine::kAnalytic);
    std::shared_ptr<const AnalyticLocality> model =
        AnalyticLocality::Build(GenerateLoopRle(cp.value().program()));
    analytic_sched.AnalyticWs(*model, taus, sim);
    analytic_sched.AnalyticOpt(*model, std::min(cp.value().virtual_pages(), 8u), sim);
    model->OptBoundsSweep(std::min(cp.value().virtual_pages(), 8u), sim);
    // A non-affine model exercises the fallback-class counter.
    AnalyticLocality::Build(GenerateLoopRle(ParseWorkload(FindWorkload("GATHER"))));
  }

  FaultInjector injector(FaultInjectionConfig::AtIntensity(7, 1.0));
  injector.TotalFaultServiceTime(0, 32, 100);
  for (uint64_t i = 0; i < 64; ++i) {
    injector.StallsSweepItem(i);
    injector.PoisonsSweepItem(i);
  }
  OsOptions os;
  os.total_frames = 32;
  os.quantum = 512;
  os.load_control = true;
  os.injector = &injector;
  std::vector<OsProcessSpec> specs = {{"A", full.get(), 1}, {"B", full.get(), 0}};
  RunMultiprogrammedCd(specs, os);

  // The serve engine: drive the cache, admission, breaker and drain paths so
  // the serve.* names reach the H003 check.
  {
    ServeLimits limits;
    limits.admit_budget = 4;
    limits.drain_per_request = 0;
    limits.breaker_threshold = 1;
    limits.breaker_cooldown = 1;
    ServerCore serve(&pool, limits);
    auto simulate = [](const char* policy) {
      ServeRequest r;
      r.op = ServeOp::kSimulate;
      r.workload = "FDJAC";
      r.policy = policy;
      return r;
    };
    serve.Handle(simulate("lru:16"));          // compile, cache miss, completed
    serve.Handle(simulate("lru:16"));          // cache hit
    serve.Handle(simulate("no-such-policy"));  // failure opens the breaker
    serve.Handle(simulate("no-such-policy"));  // quarantined
    serve.Handle(simulate("no-such-policy"));  // half-open probe, fails again
    serve.HandleBatch({simulate("lru:8"), simulate("lru:9"),
                       simulate("lru:10")});   // backlog over budget: shed
    serve.HandleBatchRaw({"not json"});        // rejected
    serve.BeginDrain();
    serve.Handle(simulate("lru:16"));          // drained
  }
  {
    // Injected fates: a stalling core (timeout path) and a poisoned-then-
    // clean core whose recovered probe closes its breaker.
    ServeRequest request;
    request.op = ServeOp::kSimulate;
    request.workload = "FDJAC";
    request.policy = "lru:16";

    ServeLimits stall;
    stall.injection.seed = 7;
    stall.injection.stall_rate = 1.0;
    ServerCore stalled(&pool, stall);
    stalled.Handle(request);

    ServeLimits always;
    always.max_attempts = 2;
    always.injection.seed = 7;
    always.injection.poison_rate = 1.0;
    ServerCore poisoned(&pool, always);
    poisoned.Handle(request);  // retry scheduled, then kPoisoned

    FaultInjectionConfig transient;
    transient.poison_rate = 0.5;
    uint64_t seed = 0;
    for (uint64_t s = 1; s < 10000 && seed == 0; ++s) {
      transient.seed = s;
      FaultInjector probe(transient);
      if (probe.PoisonsSweepItem(0) && !probe.PoisonsSweepItem(16)) seed = s;
    }
    if (seed != 0) {
      ServeLimits recover;
      recover.breaker_threshold = 1;
      recover.breaker_cooldown = 1;
      recover.max_attempts = 1;
      recover.injection = transient;
      recover.injection.seed = seed;
      ServerCore recovering(&pool, recover);
      recovering.Handle(request);  // poisoned: breaker opens
      recovering.Handle(request);  // quarantined
      recovering.Handle(request);  // clean probe: breaker closes
    }
  }

  std::vector<std::string> names = telem::GlobalMetrics().Names();
  std::vector<Diagnostic> diags = LintTelemetryNames(names);
  out << (opt.json ? RenderJson(diags, "telemetry") : RenderText(diags, "telemetry"));
  if (!opt.json) {
    out << names.size() << " telemetry metric name(s) checked, " << diags.size()
        << " violation(s)\n";
  }
  telem::SetTelemetryEnabled(false);
  return diags.empty() ? 0 : 4;
}

}  // namespace

int LintMain(int argc, char** argv, std::ostream& out, std::ostream& err) {
  LintCliOptions opt;
  opt.lint.locality.min_default_pages = 1;  // match the cdmmc driver default
  std::vector<std::string> inputs;
  bool telemetry = false;
  bool missing_argument = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        err << arg << " needs an argument\n";
        missing_argument = true;
        return "";
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--validate") {
      opt.validate = true;
    } else if (arg == "--page-size") {
      opt.lint.locality.geometry.page_size_bytes = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--element-size") {
      opt.lint.locality.geometry.element_size_bytes = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--min-pages") {
      opt.lint.locality.min_default_pages = std::atoi(next());
    } else if (arg == "--no-locks") {
      opt.lint.directives.insert_locks = false;
    } else if (arg == "--no-allocate") {
      opt.lint.directives.insert_allocate = false;
    } else if (arg == "--telemetry") {
      telemetry = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option " << arg << "\n";
      return Usage(argv[0], err);
    } else {
      inputs.push_back(arg);
    }
    if (missing_argument) {
      return 2;
    }
  }
  if (telemetry) {
    if (!inputs.empty()) {
      err << "--telemetry takes no source inputs\n";
      return Usage(argv[0], err);
    }
    return LintTelemetryRegistry(opt, out, err);
  }
  if (inputs.empty()) {
    return Usage(argv[0], err);
  }
  bool any_input_error = false;
  bool any_diagnostic = false;
  for (const std::string& input : inputs) {
    int code = LintOneInput(input, opt, out, err);
    any_input_error = any_input_error || code == 1;
    any_diagnostic = any_diagnostic || code == 4;
  }
  if (any_input_error) {
    return 1;
  }
  return any_diagnostic ? 4 : 0;
}

}  // namespace cdmm
