// cdmm-lint — the standalone multi-pass static checker and directive
// verifier for mini-FORTRAN programs.
//
// Usage:
//   cdmm-lint [options] <source.f | builtin:NAME>...
//
// Options:
//   --json                 render diagnostics as a JSON array
//   --validate             also replay the trace and report V001 warnings
//                          where the §2 estimate under-covers the measured
//                          per-loop need (sema-clean programs only)
//   --page-size BYTES      page size used by the analyses (default 256)
//   --element-size BYTES   array element size (default 4)
//   --min-pages N          system-default minimum allocation (default 1)
//   --no-locks             lint a plan without LOCK/UNLOCK directives
//   --no-allocate          lint a plan without ALLOCATE directives
#include "src/cli/lint_cli.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/cdmm/validation.h"
#include "src/lint/lint.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

int Usage(const char* argv0, std::ostream& err) {
  err << "usage: " << argv0
      << " [--json] [--validate] [--page-size N] [--element-size N]\n"
         "                 [--min-pages N] [--no-locks] [--no-allocate]\n"
         "                 <source.f | builtin:NAME>...\n"
         "exit: 0 clean, 1 input error, 2 usage error, 4 diagnostics reported\n";
  return 2;
}

// Graceful builtin lookup (FindWorkload CHECK-fails on unknown names).
const Workload* TryFindWorkload(const std::string& name) {
  for (const auto* list : {&AllWorkloads(), &ExtendedWorkloads()}) {
    for (const Workload& w : *list) {
      if (w.name == name) {
        return &w;
      }
    }
  }
  return nullptr;
}

struct LintCliOptions {
  bool json = false;
  bool validate = false;
  LintOptions lint;
};

// Lints one input; returns 0 clean, 1 input error, 4 diagnostics.
int LintOneInput(const std::string& input, const LintCliOptions& opt, std::ostream& out,
                 std::ostream& err) {
  std::string text;
  if (input.rfind("builtin:", 0) == 0) {
    const Workload* w = TryFindWorkload(input.substr(8));
    if (w == nullptr) {
      err << input << ": unknown builtin workload\n";
      return 1;
    }
    text = w->source;
  } else {
    std::ifstream file(input);
    if (!file) {
      err << "cannot open " << input << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  std::vector<Diagnostic> diags = LintSource(text, opt.lint);
  bool parse_failed = !diags.empty() && diags.front().pass == "parse";
  bool sema_clean = true;
  for (const Diagnostic& d : diags) {
    sema_clean = sema_clean && d.pass != "sema" && d.pass != "parse";
  }
  if (opt.validate && sema_clean) {
    PipelineOptions po;
    po.locality = opt.lint.locality;
    po.directives = opt.lint.directives;
    auto compiled = CompiledProgram::FromSource(text, po);
    if (compiled.ok()) {
      std::vector<LoopValidation> rows = ValidateLocalityEstimates(compiled.value());
      for (Diagnostic& d : ValidationDiagnostics(compiled.value(), rows)) {
        diags.push_back(std::move(d));
      }
    }
  }
  out << (opt.json ? RenderJson(diags, input) : RenderText(diags, input));
  if (parse_failed) {
    return 1;
  }
  return diags.empty() ? 0 : 4;
}

}  // namespace

int LintMain(int argc, char** argv, std::ostream& out, std::ostream& err) {
  LintCliOptions opt;
  opt.lint.locality.min_default_pages = 1;  // match the cdmmc driver default
  std::vector<std::string> inputs;
  bool missing_argument = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        err << arg << " needs an argument\n";
        missing_argument = true;
        return "";
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--validate") {
      opt.validate = true;
    } else if (arg == "--page-size") {
      opt.lint.locality.geometry.page_size_bytes = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--element-size") {
      opt.lint.locality.geometry.element_size_bytes = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--min-pages") {
      opt.lint.locality.min_default_pages = std::atoi(next());
    } else if (arg == "--no-locks") {
      opt.lint.directives.insert_locks = false;
    } else if (arg == "--no-allocate") {
      opt.lint.directives.insert_allocate = false;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option " << arg << "\n";
      return Usage(argv[0], err);
    } else {
      inputs.push_back(arg);
    }
    if (missing_argument) {
      return 2;
    }
  }
  if (inputs.empty()) {
    return Usage(argv[0], err);
  }
  bool any_input_error = false;
  bool any_diagnostic = false;
  for (const std::string& input : inputs) {
    int code = LintOneInput(input, opt, out, err);
    any_input_error = any_input_error || code == 1;
    any_diagnostic = any_diagnostic || code == 4;
  }
  if (any_input_error) {
    return 1;
  }
  return any_diagnostic ? 4 : 0;
}

}  // namespace cdmm
