#include "src/serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/support/str.h"

namespace cdmm {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Number(uint64_t u) { return Number(static_cast<double>(u)); }
JsonValue JsonValue::Number(int64_t i) { return Number(static_cast<double>(i)); }

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

uint64_t JsonValue::AsU64() const {
  if (!(number_ > 0.0)) {  // negatives, zero, and NaN
    return 0;
  }
  // 2^64 is the smallest double no uint64_t can represent; casting a value
  // at or above it (client-supplied 1e300, say) is undefined behavior.
  if (number_ >= 18446744073709551616.0) {
    return UINT64_MAX;
  }
  return static_cast<uint64_t>(number_);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

uint64_t JsonValue::GetU64(const std::string& key, uint64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsU64() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

void JsonValue::Append(JsonValue v) {
  CDMM_CHECK(kind_ == Kind::kArray);
  items_.push_back(std::move(v));
}

void JsonValue::Set(std::string key, JsonValue v) {
  CDMM_CHECK(kind_ == Kind::kObject);
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double d, std::string* out) {
  // Integral values (the overwhelming majority of protocol numbers) print
  // exactly; everything else gets round-trippable %.17g.
  if (d >= 0 && d <= 9.007199254740992e15 && d == std::floor(d)) {
    *out += StrCat(static_cast<uint64_t>(d));
    return;
  }
  if (d < 0 && d >= -9.007199254740992e15 && d == std::floor(d)) {
    *out += StrCat(static_cast<int64_t>(d));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void DumpInto(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: *out += "null"; break;
    case JsonValue::Kind::kBool: *out += v.AsBool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: NumberInto(v.AsDouble(), out); break;
    case JsonValue::Kind::kString: EscapeInto(v.AsString(), out); break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.Items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.Members()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        DumpInto(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipSpace();
    JsonValue v;
    if (auto err = ParseValue(&v, 0)) {
      return *err;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Error Fail(const std::string& message) const {
    return Error{StrCat("json: ", message, " at byte ", pos_), {}};
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  // Returns an error, or nullopt on success (value in *out).
  std::optional<Error> ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      std::string s;
      if (auto err = ParseString(&s)) {
        return err;
      }
      *out = JsonValue::Str(std::move(s));
      return std::nullopt;
    }
    if (ConsumeWord("null")) {
      *out = JsonValue::Null();
      return std::nullopt;
    }
    if (ConsumeWord("true")) {
      *out = JsonValue::Bool(true);
      return std::nullopt;
    }
    if (ConsumeWord("false")) {
      *out = JsonValue::Bool(false);
      return std::nullopt;
    }
    return ParseNumber(out);
  }

  std::optional<Error> ParseObject(JsonValue* out, int depth) {
    Consume('{');
    *out = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) {
      return std::nullopt;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (auto err = ParseString(&key)) {
        return err;
      }
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      JsonValue value;
      if (auto err = ParseValue(&value, depth + 1)) {
        return err;
      }
      out->Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return std::nullopt;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  std::optional<Error> ParseArray(JsonValue* out, int depth) {
    Consume('[');
    *out = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) {
      return std::nullopt;
    }
    while (true) {
      JsonValue value;
      if (auto err = ParseValue(&value, depth + 1)) {
        return err;
      }
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return std::nullopt;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  std::optional<Error> ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return std::nullopt;
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return Fail("unescaped control character in string");
        }
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are beyond
          // the protocol's needs; a lone surrogate passes through as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  std::optional<Error> ParseNumber(JsonValue* out) {
    size_t start = pos_;
    Consume('-');
    // JSON numbers start with a digit after the optional minus; strtod is
    // laxer (leading '+', "inf", "nan"), so gate on the grammar here.
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected a value");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    // strtod overflow (1e999 ...) yields +/-inf; a JsonValue must never hold
    // a non-finite number, matching the grammar's inf/nan rejection above.
    if (!std::isfinite(d)) {
      return Fail("number out of range");
    }
    *out = JsonValue::Number(d);
    return std::nullopt;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpInto(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace cdmm
