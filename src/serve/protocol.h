// The cdmm-serve wire protocol: length-prefixed JSON frames carrying
// simulation requests and structured responses.
//
// A frame is a 4-byte little-endian payload length followed by that many
// bytes of UTF-8 JSON. Requests are objects with an "op" discriminator:
//
//   {"op":"ping"}
//   {"op":"stats"}
//   {"op":"simulate","workload":"MAIN","policy":"lru:32"}
//   {"op":"sweep","workload":"FDJAC","kind":"ws"}            (kind: ws|opt)
//   {"op":"ladder","workload":"TQL","policy":"cd-outer",
//    "hierarchy":"dram-nvm-disk","penalty":200}
//
// plus an optional "deadline_ms" on any op. Responses are envelopes
//
//   {"status":"ok","cached":false,"retries":0,"retry_delay":0,"payload":{...}}
//   {"status":"shed","error":"admission: ..."}
//
// with status one of ok | shed | quarantined | timeout | poisoned | error |
// draining (see DESIGN.md §13 for which failures map to which status and
// which are retried). Every malformed or unserviceable request produces a
// structured non-ok envelope — the daemon never aborts on client input.
#ifndef CDMM_SRC_SERVE_PROTOCOL_H_
#define CDMM_SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/serve/json.h"
#include "src/support/result.h"

namespace cdmm {

enum class ServeOp : uint8_t { kPing, kStats, kSimulate, kSweepWs, kSweepOpt, kLadderCell };

const char* ServeOpName(ServeOp op);

struct ServeRequest {
  ServeOp op = ServeOp::kPing;
  std::string workload;             // builtin workload name (simulate/sweep/ladder)
  std::string policy;               // RunPolicySpec spec (simulate/ladder)
  std::string hierarchy = "dram-nvm-disk";  // ladder shape (preset or level spec)
  uint64_t penalty = 2000;          // ladder backing-store latency
  uint64_t deadline_ms = 0;         // 0 = no per-request deadline

  friend bool operator==(const ServeRequest&, const ServeRequest&) = default;
};

// Parses one request payload. Unknown ops, missing required fields and
// malformed JSON come back as Errors (the server turns them into status
// "error" envelopes, they are never fatal).
Result<ServeRequest> ParseServeRequest(const std::string& payload);

// Content-addressed cache key: order-sensitive FNV-1a over every semantic
// field (op, workload, policy, hierarchy, penalty). The deadline is
// excluded — a result is the same result however long the caller was
// prepared to wait for it.
uint64_t FingerprintRequest(const ServeRequest& request);

// Engine-tagged variant used for sweep results: the tag (e.g. "analytic",
// "onepass") is mixed length-prefixed when non-empty, so cache entries
// record which engine produced them and a server restarted under a
// different sweep engine never aliases the old entries — even though the
// payloads are bit-identical by the engines' determinism contract.
uint64_t FingerprintRequest(const ServeRequest& request, const std::string& engine_tag);

// The circuit-breaker grouping: requests of the same shape (op + workload +
// policy) share one breaker, so a poisoning shape is quarantined without
// penalising the rest of the mix.
std::string RequestShapeKey(const ServeRequest& request);

// Virtual admission cost in abstract service units — a pure function of the
// request shape, so admission decisions replay identically at any --jobs.
// Pings and stats cost 0 (they are answered inline, never queued).
uint64_t EstimatedCost(const ServeRequest& request);

enum class ServeStatus : uint8_t {
  kOk,
  kShed,         // admission control refused: server over budget
  kQuarantined,  // circuit breaker open for this request shape
  kTimeout,      // deadline expired (or injected stall) mid-flight
  kPoisoned,     // every retry of a transiently failing request failed
  kError,        // structured failure (bad request, unknown policy, ...)
  kDraining,     // server is shutting down; request not accepted
};

const char* ServeStatusName(ServeStatus status);

struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  std::string payload;     // JSON object text; empty unless status == kOk
  std::string error;       // human-readable cause; empty when kOk
  bool cached = false;     // served from the content-addressed result cache
  int retries = 0;         // transient-failure retries spent
  uint64_t retry_delay = 0;  // total backoff ticks scheduled (virtual time)

  bool ok() const { return status == ServeStatus::kOk; }

  // The response envelope, compact JSON. Deterministic: fixed member order,
  // payload spliced in verbatim.
  std::string ToJson() const;
};

// ---- Framing ----

// Frames larger than this are refused at both ends: a corrupt or adversarial
// length prefix must not make the daemon allocate gigabytes.
inline constexpr size_t kMaxFramePayload = 1 << 20;

// payload -> 4-byte little-endian length + payload.
std::string EncodeFrame(const std::string& payload);

// Takes one complete frame off `buffer` starting at *pos, advancing *pos
// past it. Returns nullopt when the buffer holds only a partial frame (read
// more and retry), an Error when the length prefix exceeds kMaxFramePayload.
Result<std::optional<std::string>> DecodeFrame(const std::string& buffer, size_t* pos);

}  // namespace cdmm

#endif  // CDMM_SRC_SERVE_PROTOCOL_H_
