#include "src/serve/protocol.h"

#include "src/support/str.h"

namespace cdmm {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(uint64_t* h, const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

void FnvMixString(uint64_t* h, const std::string& s) {
  uint64_t n = s.size();
  FnvMix(h, &n, sizeof(n));  // length-prefixed: "ab","c" != "a","bc"
  FnvMix(h, s.data(), s.size());
}

void FnvMixU64(uint64_t* h, uint64_t v) { FnvMix(h, &v, sizeof(v)); }

}  // namespace

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kPing: return "ping";
    case ServeOp::kStats: return "stats";
    case ServeOp::kSimulate: return "simulate";
    case ServeOp::kSweepWs: return "sweep-ws";
    case ServeOp::kSweepOpt: return "sweep-opt";
    case ServeOp::kLadderCell: return "ladder";
  }
  return "?";
}

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kQuarantined: return "quarantined";
    case ServeStatus::kTimeout: return "timeout";
    case ServeStatus::kPoisoned: return "poisoned";
    case ServeStatus::kError: return "error";
    case ServeStatus::kDraining: return "draining";
  }
  return "?";
}

Result<ServeRequest> ParseServeRequest(const std::string& payload) {
  Result<JsonValue> parsed = ParseJson(payload);
  if (!parsed.ok()) {
    return parsed.error();
  }
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    return Error{"request must be a JSON object", {}};
  }
  ServeRequest request;
  std::string op = doc.GetString("op");
  if (op == "ping") {
    request.op = ServeOp::kPing;
  } else if (op == "stats") {
    request.op = ServeOp::kStats;
  } else if (op == "simulate") {
    request.op = ServeOp::kSimulate;
  } else if (op == "sweep") {
    std::string kind = doc.GetString("kind", "ws");
    if (kind == "ws") {
      request.op = ServeOp::kSweepWs;
    } else if (kind == "opt") {
      request.op = ServeOp::kSweepOpt;
    } else {
      return Error{StrCat("unknown sweep kind \"", kind, "\" (want ws|opt)"), {}};
    }
  } else if (op == "ladder") {
    request.op = ServeOp::kLadderCell;
  } else if (op.empty()) {
    return Error{"request is missing \"op\"", {}};
  } else {
    return Error{StrCat("unknown op \"", op, "\""), {}};
  }

  request.workload = doc.GetString("workload");
  request.policy = doc.GetString("policy");
  request.hierarchy = doc.GetString("hierarchy", request.hierarchy);
  request.penalty = doc.GetU64("penalty", request.penalty);
  request.deadline_ms = doc.GetU64("deadline_ms", 0);

  switch (request.op) {
    case ServeOp::kPing:
    case ServeOp::kStats:
      break;
    case ServeOp::kSimulate:
    case ServeOp::kLadderCell:
      if (request.workload.empty()) {
        return Error{StrCat(ServeOpName(request.op), " needs \"workload\""), {}};
      }
      if (request.policy.empty()) {
        return Error{StrCat(ServeOpName(request.op), " needs \"policy\""), {}};
      }
      break;
    case ServeOp::kSweepWs:
    case ServeOp::kSweepOpt:
      if (request.workload.empty()) {
        return Error{"sweep needs \"workload\"", {}};
      }
      break;
  }
  return request;
}

uint64_t FingerprintRequest(const ServeRequest& request) {
  return FingerprintRequest(request, std::string());
}

uint64_t FingerprintRequest(const ServeRequest& request, const std::string& engine_tag) {
  uint64_t h = kFnvOffset;
  FnvMixU64(&h, static_cast<uint64_t>(request.op));
  FnvMixString(&h, request.workload);
  FnvMixString(&h, request.policy);
  FnvMixString(&h, request.hierarchy);
  FnvMixU64(&h, request.penalty);
  if (!engine_tag.empty()) {
    // Length prefix keeps the tagged key space disjoint from the untagged
    // one ("" vs "x" cannot collide by concatenation).
    FnvMixU64(&h, engine_tag.size());
    FnvMixString(&h, engine_tag);
  }
  return h;
}

std::string RequestShapeKey(const ServeRequest& request) {
  return StrCat(ServeOpName(request.op), "/", request.workload, "/", request.policy);
}

uint64_t EstimatedCost(const ServeRequest& request) {
  switch (request.op) {
    case ServeOp::kPing:
    case ServeOp::kStats:
      return 0;
    case ServeOp::kSimulate:
      return 2;
    case ServeOp::kLadderCell:
      return 3;
    case ServeOp::kSweepWs:
    case ServeOp::kSweepOpt:
      return 4;
  }
  return 1;
}

std::string ServeResponse::ToJson() const {
  std::string out = StrCat("{\"status\":\"", ServeStatusName(status), "\"");
  if (!error.empty()) {
    JsonValue escaped = JsonValue::Str(error);
    out += StrCat(",\"error\":", escaped.Dump());
  }
  out += StrCat(",\"cached\":", cached ? "true" : "false", ",\"retries\":", retries,
                ",\"retry_delay\":", retry_delay);
  if (!payload.empty()) {
    out += StrCat(",\"payload\":", payload);
  }
  out += "}";
  return out;
}

std::string EncodeFrame(const std::string& payload) {
  CDMM_CHECK(payload.size() <= kMaxFramePayload);
  uint32_t n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>(n & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out += payload;
  return out;
}

Result<std::optional<std::string>> DecodeFrame(const std::string& buffer, size_t* pos) {
  if (buffer.size() - *pos < 4) {
    return std::optional<std::string>(std::nullopt);
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buffer.data() + *pos);
  uint32_t n = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  if (n > kMaxFramePayload) {
    return Error{StrCat("frame payload of ", n, " bytes exceeds the ", kMaxFramePayload,
                        "-byte limit"),
                 {}};
  }
  if (buffer.size() - *pos - 4 < n) {
    return std::optional<std::string>(std::nullopt);
  }
  std::string payload = buffer.substr(*pos + 4, n);
  *pos += 4 + static_cast<size_t>(n);
  return std::optional<std::string>(std::move(payload));
}

}  // namespace cdmm
