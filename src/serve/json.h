// A minimal JSON value, parser and writer for the cdmm-serve request
// protocol. The rest of the codebase only ever *emits* JSON (telemetry
// sidecars, lint diagnostics) with hand-rolled printers; the serve daemon is
// the first consumer that must *parse* untrusted bytes, so parsing returns
// Result<> and never throws or aborts on malformed input.
//
// Scope is deliberately small: UTF-8 pass-through strings with the standard
// escapes, 64-bit unsigned/signed integers and doubles, objects as ordered
// key/value vectors (preserving insertion order keeps serialized output
// deterministic). Good enough for the request protocol; not a general
// library.
#ifndef CDMM_SRC_SERVE_JSON_H_
#define CDMM_SRC_SERVE_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/support/result.h"

namespace cdmm {

class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Number(uint64_t u);
  static JsonValue Number(int64_t i);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  uint64_t AsU64() const;  // clamped to [0, UINT64_MAX]; NaN -> 0
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& Items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& Members() const { return members_; }

  // Object lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed convenience getters with defaults, for protocol parsing.
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  uint64_t GetU64(const std::string& key, uint64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  // Mutators (builder style).
  void Append(JsonValue v);                      // arrays
  void Set(std::string key, JsonValue v);        // objects (append; no dedup)

  // Compact serialization (no whitespace). Deterministic: members print in
  // insertion order, doubles via %.17g trimmed of a trailing ".0" ambiguity.
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses one JSON document (surrounding whitespace allowed, trailing bytes
// rejected). Depth-limited to keep adversarial inputs from overflowing the
// stack.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace cdmm

#endif  // CDMM_SRC_SERVE_JSON_H_
