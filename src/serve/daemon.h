// ServeDaemon: the AF_UNIX transport in front of ServerCore. A poll-driven
// accept loop reads length-prefixed JSON frames (src/serve/protocol.h) from
// any number of concurrent clients, hands each client's complete frames to
// ServerCore::HandleBatchRaw (which fans them out over the thread pool), and
// writes the response frames back in request order.
//
// Robustness contract:
//  - malformed frames (oversized length prefix, bad JSON, unknown ops) are
//    answered with structured "error" envelopes or, for unparseable framing,
//    by closing that one connection — never by exiting;
//  - SIGINT/SIGTERM (the src/support/interrupt latch) triggers a graceful
//    drain: the listener closes, frames already read are answered, new
//    frames get status "draining", and Run returns 128+signo so the caller
//    can flush telemetry sidecars before exiting with the cdmmc-style
//    interrupt code;
//  - a client disconnecting mid-batch only drops that client's responses.
#ifndef CDMM_SRC_SERVE_DAEMON_H_
#define CDMM_SRC_SERVE_DAEMON_H_

#include <iosfwd>
#include <string>

#include "src/serve/server.h"
#include "src/support/result.h"

namespace cdmm {

struct DaemonOptions {
  std::string socket_path;
  // Exit after serving this many connections (0 = run until interrupted).
  // The smoke tests use --once (= 1) to get a clean natural exit.
  uint64_t max_connections = 0;
};

class ServeDaemon {
 public:
  ServeDaemon(ServerCore* core, DaemonOptions options);

  // Binds, listens and serves until interrupted (or until max_connections
  // have disconnected). Returns the process exit code: 0 for a natural
  // finish, 1 for setup failures (bind/listen), 128+signo after a drain.
  // Progress and errors go to `err`.
  int Run(std::ostream& err);

 private:
  ServerCore* core_;
  DaemonOptions options_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_SERVE_DAEMON_H_
