// ServerCore: the hardened request-execution engine behind cdmm-serve (the
// daemon) and bench_serve (the chaos-soak harness). It multiplexes simulate /
// sweep / hierarchy-ladder requests onto the work-stealing ThreadPool via
// SweepScheduler::MapPartial, in front of:
//
//  - a content-addressed result cache keyed by FNV-1a request fingerprints
//    (FingerprintRequest): repeated requests are answered without admission,
//    execution or injection — the >=10k req/s path bench_serve gates on;
//    bounded at cache_capacity entries with LRU eviction so a long-running
//    daemon cannot be grown without bound by unique request shapes;
//  - admission control with hysteresis (LoadController, the same decision
//    engine as the OS thrashing detector): every admitted request deposits
//    its EstimatedCost into a virtual backlog that drains at a fixed
//    virtual service rate; when backlog exceeds the budget the controller
//    sheds (status "shed", structured error) until the backlog falls below
//    half the budget;
//  - a per-shape circuit breaker: `breaker_threshold` consecutive failures
//    of one request shape open the breaker, the next `breaker_cooldown`
//    requests of that shape are quarantined without running, then one
//    half-open probe decides between closing and re-opening;
//  - bounded-exponential retry with deterministic jitter (BackoffPolicy) for
//    transiently failing (injected-poison) attempts; injected stalls become
//    deterministic timeouts without retry, exactly like MapPartial's
//    stall-to-timeout discipline. Retry delays are charged in virtual ticks
//    (recorded in the response), never slept, so the chaos soak is fast and
//    bit-identical at any --jobs.
//
// Determinism contract: for a fixed request sequence, fixed ServeLimits and
// fixed injection seed, every response (status, payload, retries,
// retry_delay, cached) is byte-identical at any thread count. The engine
// runs in three phases per batch — serial admission in request order,
// parallel execution, serial post-processing (breaker + cache updates) in
// request order — so no decision ever depends on completion order.
// Wall-clock deadlines (deadline_ms) are the one escape hatch: a real
// timeout is inherently racy, which is why the chaos harness drives
// timeouts through injected stalls instead.
//
// Thread-safety: one HandleBatch call at a time (the daemon's accept loop
// and the bench are single callers); concurrency happens inside the batch.
#ifndef CDMM_SRC_SERVE_SERVER_H_
#define CDMM_SRC_SERVE_SERVER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/memo.h"
#include "src/exec/sweep_scheduler.h"
#include "src/robust/backoff.h"
#include "src/robust/fault_injector.h"
#include "src/robust/load_controller.h"
#include "src/serve/protocol.h"
#include "src/trace/prepared_trace.h"
#include "src/trace/trace.h"

namespace cdmm {

struct ServeLimits {
  // Admission: virtual backlog capacity and the per-request virtual drain
  // (abstract service units; see EstimatedCost).
  uint64_t admit_budget = 32;
  uint64_t drain_per_request = 1;

  // Circuit breaker: consecutive failures that open one shape's breaker,
  // and how many subsequent requests of that shape are quarantined before a
  // half-open probe is admitted.
  int breaker_threshold = 3;
  uint64_t breaker_cooldown = 8;

  // Retry budget per request: total attempts = 1 + retries. Transient
  // (poisoned) attempts retry with `backoff` delays; stalls never retry.
  int max_attempts = 3;
  BackoffPolicy backoff;

  // Deterministic chaos: seed 0 = nominal. stall_rate/poison_rate drive the
  // per-request fates (keyed by the request's admission sequence number).
  FaultInjectionConfig injection;

  // Deadline applied to requests that do not carry their own (0 = none).
  uint64_t default_deadline_ms = 0;

  // Bounds on long-daemon state (request shapes are client-controlled, so
  // both maps must stay finite under adversarial unique-shape streams): the
  // result cache LRU-evicts beyond cache_capacity entries, and at most
  // breaker_max_shapes failing shapes are tracked at once — failures of
  // shapes beyond the cap still get structured errors, just no quarantine.
  uint64_t cache_capacity = 4096;
  uint64_t breaker_max_shapes = 1024;
};

// Deterministic counters, all mutated in the serial phases. Snapshot via
// ServerCore::stats(); serialized by StatsJson().
struct ServeStats {
  uint64_t received = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t shed = 0;
  uint64_t quarantined = 0;
  uint64_t timeouts = 0;
  uint64_t poisoned = 0;
  uint64_t errors = 0;
  uint64_t drained = 0;       // requests refused because of BeginDrain
  uint64_t retries = 0;       // transient retries spent across requests
  uint64_t breaker_opens = 0;
  uint64_t breaker_closes = 0;

  friend bool operator==(const ServeStats&, const ServeStats&) = default;
};

class ServerCore {
 public:
  // `pool` may be null: everything runs on the calling thread (--jobs 1).
  explicit ServerCore(ThreadPool* pool, ServeLimits limits = {});
  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  // Serves one batch: responses[i] answers requests[i]. Raw payloads that
  // fail ParseServeRequest become status "error" responses via
  // HandleBatchRaw; pre-parsed requests skip that step.
  std::vector<ServeResponse> HandleBatch(const std::vector<ServeRequest>& requests);
  std::vector<ServeResponse> HandleBatchRaw(const std::vector<std::string>& payloads);
  ServeResponse Handle(const ServeRequest& request);

  // After this, every new request is answered with status "draining".
  // In-flight batches are unaffected — the daemon finishes writing them.
  void BeginDrain();
  bool draining() const { return draining_; }

  const ServeStats& stats() const { return stats_; }
  const ServeLimits& limits() const { return limits_; }
  uint64_t backlog() const { return backlog_; }
  bool shedding() const { return admission_.shedding(); }

  // The stats counters as a JSON object (deterministic member order).
  std::string StatsJson() const;

 private:
  struct WorkloadContext;  // compiled workload + shared traces (memoized)
  struct BreakerState {
    int consecutive_failures = 0;
    uint64_t open_remaining = 0;  // quarantined requests left before probe
  };
  struct ExecOutcome {
    ServeStatus status = ServeStatus::kError;
    std::string payload;
    std::string error;
    int retries = 0;
    uint64_t retry_delay = 0;
  };

  std::shared_ptr<const WorkloadContext> GetWorkload(const std::string& name);
  ExecOutcome Execute(const ServeRequest& request, const CancelToken& token);
  ExecOutcome RunWithRetries(const ServeRequest& request, uint64_t seq,
                             const CancelToken& token);
  static ServeResponse FromOutcome(const ExecOutcome& outcome);

  SweepScheduler scheduler_;
  ServeLimits limits_;
  FaultInjector injector_;
  LoadController admission_;

  bool draining_ = false;
  uint64_t backlog_ = 0;
  uint64_t next_seq_ = 0;
  ServeStats stats_;

  // Bounded LRU result cache: cache_lru_ orders fingerprints most-recently
  // used first; result_cache_ maps fingerprint -> (payload, lru position).
  // Eviction depends only on the request stream, so it is deterministic.
  std::list<uint64_t> cache_lru_;
  std::map<uint64_t, std::pair<std::string, std::list<uint64_t>::iterator>>
      result_cache_;
  // Only shapes with a recorded failure have an entry (success erases it),
  // capped at breaker_max_shapes.
  std::map<std::string, BreakerState> breakers_;
  Memo<std::string, std::shared_ptr<const WorkloadContext>> workloads_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_SERVE_SERVER_H_
