#include "src/serve/daemon.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <ostream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/support/interrupt.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace {

struct Client {
  int fd = -1;
  std::string buffer;  // bytes read, frames not yet consumed
  size_t pos = 0;      // DecodeFrame cursor into buffer
};

// Writes all of `data`, riding out EINTR and short writes. False = peer gone.
bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ServeDaemon::ServeDaemon(ServerCore* core, DaemonOptions options)
    : core_(core), options_(std::move(options)) {}

int ServeDaemon::Run(std::ostream& err) {
  // A dead peer must surface as a write() error, not a process-killing
  // SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    err << "socket path too long: " << options_.socket_path << "\n";
    return 1;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    err << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 16) < 0) {
    err << "bind/listen " << options_.socket_path << ": " << std::strerror(errno)
        << "\n";
    ::close(listener);
    return 1;
  }
  err << "cdmm-serve listening on " << options_.socket_path << "\n";

  std::vector<Client> clients;
  uint64_t served_connections = 0;
  bool listening = true;
  int exit_code = 0;

  auto close_client = [&](size_t index) {
    ::close(clients[index].fd);
    clients.erase(clients.begin() + static_cast<long>(index));
    ++served_connections;
    TELEM_COUNT_RT("serve.connection_closed");
  };

  while (true) {
    if (int signo = InterruptSignal(); signo != 0) {
      // Graceful drain: stop accepting, answer every frame already buffered
      // (status "draining" once the core is in drain), close the
      // connections, and return the cdmmc-style interrupt code so the
      // caller can flush telemetry before exiting.
      core_->BeginDrain();
      err << "interrupted by signal " << signo << "; draining\n";
      exit_code = 128 + signo;
      if (listening) {
        ::close(listener);
        listening = false;
      }
      for (size_t i = clients.size(); i-- > 0;) {
        Client& client = clients[i];
        std::vector<std::string> payloads;
        while (true) {
          Result<std::optional<std::string>> frame =
              DecodeFrame(client.buffer, &client.pos);
          if (!frame.ok() || !frame.value().has_value()) {
            break;
          }
          payloads.push_back(std::move(*frame.value()));
        }
        if (!payloads.empty()) {
          for (const ServeResponse& response : core_->HandleBatchRaw(payloads)) {
            if (!WriteAll(client.fd, EncodeFrame(response.ToJson()))) {
              break;
            }
          }
        }
        close_client(i);
      }
      break;
    }
    if (options_.max_connections > 0 && served_connections >= options_.max_connections &&
        clients.empty()) {
      break;
    }

    std::vector<pollfd> fds;
    if (listening) {
      fds.push_back(pollfd{listener, POLLIN, 0});
    }
    for (const Client& client : clients) {
      fds.push_back(pollfd{client.fd, POLLIN, 0});
    }
    if (fds.empty()) {
      break;
    }
    // A finite timeout keeps the latch polled even on an idle socket
    // (sigaction installs without SA_RESTART, but a signal can land just
    // before poll blocks).
    int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      err << "poll: " << std::strerror(errno) << "\n";
      exit_code = exit_code != 0 ? exit_code : 1;
      break;
    }

    // Only the clients polled this round have pollfd entries; a client
    // accepted below joins the poll set next iteration.
    const size_t polled = clients.size();
    size_t base = 0;
    if (listening) {
      if ((fds[0].revents & POLLIN) != 0) {
        int fd = ::accept(listener, nullptr, nullptr);
        if (fd >= 0) {
          clients.push_back(Client{fd, std::string(), 0});
          TELEM_COUNT_RT("serve.connection_accepted");
        }
      }
      base = 1;
    }

    for (size_t i = polled; i-- > 0;) {
      short revents = fds[base + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      Client& client = clients[i];
      char chunk[4096];
      ssize_t n = ::read(client.fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        close_client(i);
        continue;
      }
      client.buffer.append(chunk, static_cast<size_t>(n));

      // Consume every complete frame; answer them as one batch so the pool
      // sees the whole burst at once.
      std::vector<std::string> payloads;
      bool framing_ok = true;
      while (true) {
        Result<std::optional<std::string>> frame =
            DecodeFrame(client.buffer, &client.pos);
        if (!frame.ok()) {
          err << "client framing error: " << frame.error().ToString() << "\n";
          framing_ok = false;
          break;
        }
        if (!frame.value().has_value()) {
          break;
        }
        payloads.push_back(std::move(*frame.value()));
      }
      if (client.pos > 0) {
        client.buffer.erase(0, client.pos);
        client.pos = 0;
      }

      bool write_ok = true;
      if (!payloads.empty()) {
        std::vector<ServeResponse> responses = core_->HandleBatchRaw(payloads);
        for (const ServeResponse& response : responses) {
          if (!WriteAll(client.fd, EncodeFrame(response.ToJson()))) {
            write_ok = false;
            break;
          }
        }
      }
      if (!framing_ok || !write_ok) {
        close_client(i);
      }
    }
  }

  for (const Client& client : clients) {
    ::close(client.fd);
  }
  if (listening) {
    ::close(listener);
  }
  ::unlink(options_.socket_path.c_str());
  return exit_code;
}

}  // namespace cdmm
