#include "src/serve/server.h"

#include <algorithm>
#include <cstdio>

#include "src/analysis/analytic_locality.h"
#include "src/cdmm/pipeline.h"
#include "src/interp/rle_generator.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"
#include "src/vm/policy_spec.h"
#include "src/vm/sweep_engines.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {
namespace {

// Injection fates are keyed by (admission sequence, attempt): one stride of
// attempt slots per request, so the schedule is a pure function of the
// request stream and never of thread interleaving.
constexpr uint64_t kAttemptStride = 16;

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string SimResultJson(const SimResult& r) {
  JsonValue o = JsonValue::Object();
  o.Set("policy", JsonValue::Str(r.policy));
  o.Set("references", JsonValue::Number(r.references));
  o.Set("faults", JsonValue::Number(r.faults));
  o.Set("elapsed", JsonValue::Number(r.elapsed));
  o.Set("mean_memory", JsonValue::Number(r.mean_memory));
  o.Set("space_time", JsonValue::Number(r.space_time));
  o.Set("max_resident", JsonValue::Number(static_cast<uint64_t>(r.max_resident)));
  return o.Dump();
}

std::string SweepJson(const char* kind, const std::vector<SweepPoint>& points) {
  JsonValue o = JsonValue::Object();
  o.Set("kind", JsonValue::Str(kind));
  o.Set("points", JsonValue::Number(static_cast<uint64_t>(points.size())));
  o.Set("fingerprint", JsonValue::Str(HexU64(FingerprintSweep(points))));
  if (!points.empty()) {
    o.Set("faults_first", JsonValue::Number(points.front().faults));
    o.Set("faults_last", JsonValue::Number(points.back().faults));
  }
  return o.Dump();
}

}  // namespace

struct ServerCore::WorkloadContext {
  std::string error;  // non-empty = unusable (unknown name or compile failure)
  std::shared_ptr<const Trace> full;
  std::shared_ptr<const Trace> refs;
  std::shared_ptr<const PreparedTrace> prepared;
  // Present for affine workloads: sweep requests answer through the
  // symbolic model (bit-identical payloads, trace-length-independent cost).
  std::shared_ptr<const AnalyticLocality> analytic;
  uint32_t virtual_pages = 0;

  // The engine tag mixed into sweep cache fingerprints.
  const char* sweep_engine_tag() const { return analytic != nullptr ? "analytic" : "onepass"; }
};

ServerCore::ServerCore(ThreadPool* pool, ServeLimits limits)
    : scheduler_(pool),
      limits_(limits),
      injector_(limits.injection),
      admission_(LoadControllerConfig{/*window=*/0, /*health_low=*/0.0,
                                      /*health_high=*/0.5, /*pressure_high=*/0.0}) {
  limits_.admit_budget = std::max<uint64_t>(limits_.admit_budget, 1);
  limits_.cache_capacity = std::max<uint64_t>(limits_.cache_capacity, 1);
  limits_.max_attempts =
      std::clamp(limits_.max_attempts, 1, static_cast<int>(kAttemptStride));
  if (limits_.backoff.seed == 0 && limits_.injection.seed != 0) {
    limits_.backoff = BackoffPolicy::FromInjectorConfig(limits_.injection);
  }
}

ServerCore::~ServerCore() = default;

void ServerCore::BeginDrain() {
  if (!draining_) {
    draining_ = true;
    TELEM_COUNT("serve.drain_started");
  }
}

std::shared_ptr<const ServerCore::WorkloadContext> ServerCore::GetWorkload(
    const std::string& name) {
  return workloads_.GetOrCompute(name, [&]() -> std::shared_ptr<const WorkloadContext> {
    auto ctx = std::make_shared<WorkloadContext>();
    const Workload* found = nullptr;
    for (const Workload& w : AllWorkloads()) {
      if (w.name == name) found = &w;
    }
    for (const Workload& w : ExtendedWorkloads()) {
      if (w.name == name) found = &w;
    }
    if (found == nullptr) {
      ctx->error = StrCat("unknown workload \"", name,
                          "\" (want a builtin name like MAIN or FDJAC)");
      return ctx;
    }
    auto compiled = CompiledProgram::FromSource(found->source);
    if (!compiled.ok()) {
      ctx->error = StrCat("workload ", name, " failed to compile: ",
                          compiled.error().ToString());
      return ctx;
    }
    ctx->full = compiled.value().shared_trace();
    ctx->refs = compiled.value().shared_references();
    ctx->prepared = PreparedTrace::BuildShared(*ctx->refs);
    ctx->virtual_pages = ctx->refs->virtual_pages();
    if (IsAffineProgram(compiled.value().program())) {
      ctx->analytic = AnalyticLocality::Build(GenerateLoopRle(compiled.value().program()));
      TELEM_COUNT("serve.workload_analytic_modeled");
    }
    TELEM_COUNT("serve.workload_compiled");
    return ctx;
  });
}

ServerCore::ExecOutcome ServerCore::Execute(const ServeRequest& request,
                                            const CancelToken& token) {
  ExecOutcome out;
  try {
    switch (request.op) {
      case ServeOp::kPing:
      case ServeOp::kStats:
        // Answered inline during admission; reaching here means a caller
        // bypassed HandleBatch. Serve them anyway (ping only: stats would
        // race against the serial-phase counters).
        out.status = ServeStatus::kOk;
        out.payload = "{\"pong\":true}";
        return out;
      case ServeOp::kSimulate: {
        std::shared_ptr<const WorkloadContext> ctx = GetWorkload(request.workload);
        if (!ctx->error.empty()) {
          out.error = ctx->error;
          return out;
        }
        if (token.Expired()) throw SweepCancelled();
        std::optional<SimResult> result =
            RunPolicySpec(request.policy, *ctx->full, *ctx->refs, SimOptions{});
        if (!result.has_value()) {
          out.error = StrCat("unknown policy spec \"", request.policy, "\"");
          return out;
        }
        out.status = ServeStatus::kOk;
        out.payload = SimResultJson(*result);
        return out;
      }
      case ServeOp::kSweepWs: {
        std::shared_ptr<const WorkloadContext> ctx = GetWorkload(request.workload);
        if (!ctx->error.empty()) {
          out.error = ctx->error;
          return out;
        }
        if (token.Expired()) throw SweepCancelled();
        uint64_t max_tau = std::max<uint64_t>(ctx->refs->reference_count(), 1);
        std::vector<SweepPoint> points =
            ctx->analytic != nullptr
                ? AnalyticWsSweep(*ctx->analytic, DefaultTauGrid(max_tau, 12))
                : OnePassWsSweep(*ctx->prepared, DefaultTauGrid(max_tau, 12));
        out.status = ServeStatus::kOk;
        out.payload = SweepJson("ws", points);
        return out;
      }
      case ServeOp::kSweepOpt: {
        std::shared_ptr<const WorkloadContext> ctx = GetWorkload(request.workload);
        if (!ctx->error.empty()) {
          out.error = ctx->error;
          return out;
        }
        if (token.Expired()) throw SweepCancelled();
        std::vector<SweepPoint> points =
            ctx->analytic != nullptr
                ? AnalyticOptSweep(*ctx->analytic, std::max(ctx->virtual_pages, 1u))
                : OnePassOptSweep(*ctx->prepared, std::max(ctx->virtual_pages, 1u));
        out.status = ServeStatus::kOk;
        out.payload = SweepJson("opt", points);
        return out;
      }
      case ServeOp::kLadderCell: {
        std::shared_ptr<const WorkloadContext> ctx = GetWorkload(request.workload);
        if (!ctx->error.empty()) {
          out.error = ctx->error;
          return out;
        }
        Result<HierarchySpec> spec = HierarchySpec::Parse(request.hierarchy);
        if (!spec.ok()) {
          out.error = StrCat("bad hierarchy spec: ", spec.error().ToString());
          return out;
        }
        if (token.Expired()) throw SweepCancelled();
        HierarchySpec shape =
            spec.value().WithBottomLatency(std::max<uint64_t>(request.penalty, 1));
        SimOptions options;
        options.hierarchy = &shape;
        std::optional<SimResult> result =
            RunPolicySpec(request.policy, *ctx->full, *ctx->refs, options);
        if (!result.has_value()) {
          out.error = StrCat("unknown policy spec \"", request.policy, "\"");
          return out;
        }
        JsonValue o = JsonValue::Object();
        o.Set("policy", JsonValue::Str(result->policy));
        o.Set("penalty", JsonValue::Number(shape.bottom_latency()));
        o.Set("hierarchy", JsonValue::Str(shape.ToString()));
        o.Set("faults", JsonValue::Number(result->faults));
        o.Set("elapsed", JsonValue::Number(result->elapsed));
        o.Set("mean_memory", JsonValue::Number(result->mean_memory));
        o.Set("space_time", JsonValue::Number(result->space_time));
        out.status = ServeStatus::kOk;
        out.payload = o.Dump();
        return out;
      }
    }
  } catch (const SweepCancelled&) {
    throw;  // MapPartial turns this into a timeout failure
  } catch (const std::exception& e) {
    out.status = ServeStatus::kError;
    out.error = e.what();
    return out;
  }
  out.error = "unhandled op";
  return out;
}

ServerCore::ExecOutcome ServerCore::RunWithRetries(const ServeRequest& request,
                                                   uint64_t seq,
                                                   const CancelToken& token) {
  if (injector_.enabled() && injector_.StallsSweepItem(seq)) {
    // A stalled backend never answers inside any deadline; model it as a
    // deterministic timeout without burning wall-clock, and never retry — a
    // stall is not transient (MapPartial's discipline).
    ExecOutcome out;
    out.status = ServeStatus::kTimeout;
    out.error = "injected stall: request abandoned at deadline";
    TELEM_COUNT("serve.request_stalled");
    return out;
  }
  uint64_t deadline_ms =
      request.deadline_ms != 0 ? request.deadline_ms : limits_.default_deadline_ms;
  CancelToken own =
      deadline_ms > 0 ? CancelToken::AfterMs(deadline_ms) : CancelToken();
  int attempt = 0;
  uint64_t delay = 0;
  while (true) {
    if (token.Expired() || own.Expired()) {
      ExecOutcome out;
      out.status = ServeStatus::kTimeout;
      out.error = "deadline expired before attempt started";
      out.retries = attempt;
      out.retry_delay = delay;
      return out;
    }
    bool poisoned = injector_.enabled() &&
                    injector_.PoisonsSweepItem(seq * kAttemptStride +
                                               static_cast<uint64_t>(attempt));
    if (!poisoned) {
      ExecOutcome out = Execute(request, own);
      out.retries = attempt;
      out.retry_delay = delay;
      return out;
    }
    TELEM_COUNT("serve.attempt_poisoned");
    if (attempt + 1 >= limits_.max_attempts) {
      ExecOutcome out;
      out.status = ServeStatus::kPoisoned;
      out.error = StrCat("transient failure persisted through ", attempt + 1,
                         " attempt(s)");
      out.retries = attempt;
      out.retry_delay = delay;
      return out;
    }
    // Virtual-time backoff: the schedule is charged to the response, not
    // slept, so a soak over thousands of poisoned requests stays fast and
    // the recorded delays are bit-identical at any --jobs.
    delay += limits_.backoff.Delay(seq, attempt);
    TELEM_COUNT("serve.retry_scheduled");
    ++attempt;
  }
}

ServeResponse ServerCore::FromOutcome(const ExecOutcome& outcome) {
  ServeResponse response;
  response.status = outcome.status;
  response.payload = outcome.payload;
  response.error = outcome.error;
  response.retries = outcome.retries;
  response.retry_delay = outcome.retry_delay;
  return response;
}

std::vector<ServeResponse> ServerCore::HandleBatch(
    const std::vector<ServeRequest>& requests) {
  const size_t n = requests.size();
  std::vector<ServeResponse> responses(n);
  struct Pending {
    size_t index = 0;
    uint64_t seq = 0;
    uint64_t fingerprint = 0;
    uint64_t cost = 0;
    std::string shape;
  };
  std::vector<Pending> pending;

  // Phase 1 — serial admission, strictly in request order. Every decision
  // here (cache, breaker, shed) depends only on prior requests, never on
  // this batch's completion order.
  for (size_t i = 0; i < n; ++i) {
    const ServeRequest& request = requests[i];
    ++stats_.received;
    TELEM_COUNT("serve.request_received");
    ServeResponse& response = responses[i];

    if (draining_) {
      response.status = ServeStatus::kDraining;
      response.error = "server is draining; resubmit elsewhere";
      ++stats_.drained;
      TELEM_COUNT("serve.request_drained");
      continue;
    }
    if (request.op == ServeOp::kPing) {
      response.payload = "{\"pong\":true}";
      ++stats_.completed;
      TELEM_COUNT("serve.request_completed");
      continue;
    }
    if (request.op == ServeOp::kStats) {
      response.payload = StatsJson();
      ++stats_.completed;
      TELEM_COUNT("serve.request_completed");
      continue;
    }

    // Content-addressed cache: a hit bypasses admission, the breaker and
    // injection — a cached result cannot fail again. Sweep keys carry the
    // engine tag of the workload's resolved sweep path (the memoized
    // workload context is computed here if this is its first sight).
    uint64_t fingerprint;
    if (request.op == ServeOp::kSweepWs || request.op == ServeOp::kSweepOpt) {
      std::shared_ptr<const WorkloadContext> ctx = GetWorkload(request.workload);
      fingerprint = FingerprintRequest(
          request, ctx->error.empty() ? ctx->sweep_engine_tag() : "");
    } else {
      fingerprint = FingerprintRequest(request);
    }
    auto hit = result_cache_.find(fingerprint);
    if (hit != result_cache_.end()) {
      response.payload = hit->second.first;
      response.cached = true;
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, hit->second.second);
      ++stats_.cache_hits;
      ++stats_.completed;
      TELEM_COUNT("serve.cache_hit");
      continue;
    }
    ++stats_.cache_misses;
    TELEM_COUNT("serve.cache_miss");

    // Breakers only exist for shapes with recorded failures (Phase 3
    // materializes them); a lookup here must not insert, or unique shapes
    // from one client would grow the map without bound.
    std::string shape = RequestShapeKey(request);
    auto tracked = breakers_.find(shape);
    if (tracked != breakers_.end() &&
        tracked->second.consecutive_failures >= limits_.breaker_threshold) {
      BreakerState& breaker = tracked->second;
      if (breaker.open_remaining > 0) {
        --breaker.open_remaining;
        response.status = ServeStatus::kQuarantined;
        response.error =
            StrCat("circuit open for shape ", shape, " after ",
                   breaker.consecutive_failures, " consecutive failure(s); ",
                   breaker.open_remaining, " request(s) until half-open probe");
        ++stats_.quarantined;
        TELEM_COUNT("serve.request_quarantined");
        continue;
      }
      // Cooldown exhausted: this request is the half-open probe — admit it
      // and let its outcome close or re-open the breaker.
      TELEM_COUNT("serve.breaker_probed");
    }

    // Virtual admission: the backlog drains at a fixed rate per received
    // request and the load controller (shared with the OS thrashing
    // detector) applies its hysteresis to the projected load.
    backlog_ -= std::min(limits_.drain_per_request, backlog_);
    uint64_t cost = EstimatedCost(request);
    double budget = static_cast<double>(limits_.admit_budget);
    double projected = static_cast<double>(backlog_ + cost) / budget;
    admission_.Evaluate(1.0 - projected, projected);
    if (admission_.shedding()) {
      response.status = ServeStatus::kShed;
      response.error = StrCat("admission: backlog ", backlog_, " + cost ", cost,
                              " against budget ", limits_.admit_budget,
                              " (readmission below ", limits_.admit_budget / 2, ")");
      ++stats_.shed;
      TELEM_COUNT("serve.request_shed");
      continue;
    }
    backlog_ += cost;
    TELEM_GAUGE_MAX("serve.backlog_peak", backlog_);
    ++stats_.admitted;
    TELEM_COUNT("serve.request_admitted");
    pending.push_back(Pending{i, next_seq_++, fingerprint, cost, std::move(shape)});
  }

  // Phase 2 — parallel execution on the pool. Outcomes are pure functions
  // of (request, seq, seed); nothing here touches server state.
  PartialSweep<ExecOutcome> ran = scheduler_.MapPartial<ExecOutcome>(
      pending.size(),
      [&](size_t k, const CancelToken& sweep_token) {
        return RunWithRetries(requests[pending[k].index], pending[k].seq, sweep_token);
      });

  // Phase 3 — serial post-processing, again in request order: breaker and
  // cache updates, backlog credit for completed work, counters.
  std::vector<const ExecOutcome*> outcome_at(pending.size(), nullptr);
  for (size_t k = 0; k < ran.indices.size(); ++k) {
    outcome_at[ran.indices[k]] = &ran.results[k];
  }
  size_t next_failure = 0;
  for (size_t k = 0; k < pending.size(); ++k) {
    const Pending& p = pending[k];
    ExecOutcome outcome;
    if (outcome_at[k] != nullptr) {
      outcome = *outcome_at[k];
    } else {
      const SweepItemFailure& failure = ran.failures[next_failure++];
      outcome.status = failure.kind == SweepItemFailure::Kind::kTimeout
                           ? ServeStatus::kTimeout
                           : ServeStatus::kError;
      outcome.error = failure.message;
    }
    responses[p.index] = FromOutcome(outcome);
    backlog_ -= std::min(p.cost, backlog_);
    stats_.retries += static_cast<uint64_t>(outcome.retries);

    auto tracked = breakers_.find(p.shape);
    bool was_open = tracked != breakers_.end() &&
                    tracked->second.consecutive_failures >= limits_.breaker_threshold;
    switch (outcome.status) {
      case ServeStatus::kOk: {
        if (result_cache_.find(p.fingerprint) == result_cache_.end()) {
          cache_lru_.push_front(p.fingerprint);
          result_cache_.emplace(
              p.fingerprint, std::make_pair(outcome.payload, cache_lru_.begin()));
          while (result_cache_.size() > limits_.cache_capacity) {
            result_cache_.erase(cache_lru_.back());
            cache_lru_.pop_back();
            TELEM_COUNT("serve.cache_evicted");
          }
        }
        ++stats_.completed;
        TELEM_COUNT("serve.request_completed");
        // A success clears the shape's failure history entirely — erasing
        // (rather than zeroing) keeps breakers_ bounded by failing shapes.
        if (tracked != breakers_.end()) {
          breakers_.erase(tracked);
        }
        if (was_open) {
          ++stats_.breaker_closes;
          TELEM_COUNT("serve.breaker_closed");
        }
        break;
      }
      case ServeStatus::kTimeout:
      case ServeStatus::kPoisoned:
      case ServeStatus::kError: {
        if (outcome.status == ServeStatus::kTimeout) {
          ++stats_.timeouts;
          TELEM_COUNT("serve.request_timed_out");
        } else if (outcome.status == ServeStatus::kPoisoned) {
          ++stats_.poisoned;
          TELEM_COUNT("serve.request_poisoned");
        } else {
          ++stats_.errors;
          TELEM_COUNT("serve.request_failed");
        }
        if (tracked == breakers_.end()) {
          if (breakers_.size() >= limits_.breaker_max_shapes) {
            // At capacity: the failure is still answered structurally, the
            // shape just isn't quarantine-tracked.
            TELEM_COUNT("serve.breaker_untracked");
            break;
          }
          tracked = breakers_.emplace(p.shape, BreakerState{}).first;
        }
        BreakerState& breaker = tracked->second;
        ++breaker.consecutive_failures;
        if (breaker.consecutive_failures >= limits_.breaker_threshold) {
          breaker.open_remaining = limits_.breaker_cooldown;
          if (!was_open) {
            ++stats_.breaker_opens;
            TELEM_COUNT("serve.breaker_opened");
          }
        }
        break;
      }
      case ServeStatus::kShed:
      case ServeStatus::kQuarantined:
      case ServeStatus::kDraining:
        break;  // never produced by execution
    }
  }
  TELEM_COUNT("serve.batch_handled");
  return responses;
}

std::vector<ServeResponse> ServerCore::HandleBatchRaw(
    const std::vector<std::string>& payloads) {
  // Parse failures become structured error responses in place; the valid
  // remainder rides one HandleBatch so admission order matches arrival order.
  std::vector<ServeResponse> responses(payloads.size());
  std::vector<ServeRequest> valid;
  std::vector<size_t> valid_index;
  for (size_t i = 0; i < payloads.size(); ++i) {
    Result<ServeRequest> parsed = ParseServeRequest(payloads[i]);
    if (!parsed.ok()) {
      responses[i].status = ServeStatus::kError;
      responses[i].error = StrCat("bad request: ", parsed.error().ToString());
      ++stats_.received;
      ++stats_.errors;
      TELEM_COUNT("serve.request_received");
      TELEM_COUNT("serve.request_rejected");
      continue;
    }
    valid.push_back(std::move(parsed).value());
    valid_index.push_back(i);
  }
  std::vector<ServeResponse> handled = HandleBatch(valid);
  for (size_t k = 0; k < handled.size(); ++k) {
    responses[valid_index[k]] = std::move(handled[k]);
  }
  return responses;
}

ServeResponse ServerCore::Handle(const ServeRequest& request) {
  return HandleBatch({request}).front();
}

std::string ServerCore::StatsJson() const {
  JsonValue o = JsonValue::Object();
  o.Set("received", JsonValue::Number(stats_.received));
  o.Set("admitted", JsonValue::Number(stats_.admitted));
  o.Set("completed", JsonValue::Number(stats_.completed));
  o.Set("cache_hits", JsonValue::Number(stats_.cache_hits));
  o.Set("cache_misses", JsonValue::Number(stats_.cache_misses));
  o.Set("shed", JsonValue::Number(stats_.shed));
  o.Set("quarantined", JsonValue::Number(stats_.quarantined));
  o.Set("timeouts", JsonValue::Number(stats_.timeouts));
  o.Set("poisoned", JsonValue::Number(stats_.poisoned));
  o.Set("errors", JsonValue::Number(stats_.errors));
  o.Set("drained", JsonValue::Number(stats_.drained));
  o.Set("retries", JsonValue::Number(stats_.retries));
  o.Set("breaker_opens", JsonValue::Number(stats_.breaker_opens));
  o.Set("breaker_closes", JsonValue::Number(stats_.breaker_closes));
  o.Set("backlog", JsonValue::Number(backlog_));
  o.Set("shedding", JsonValue::Bool(admission_.shedding()));
  o.Set("draining", JsonValue::Bool(draining_));
  return o.Dump();
}

}  // namespace cdmm
