// Reference-trace model. A trace is the interface between the compiler side
// (interpreter emitting array-element references and memory directives) and
// the VM-simulator side (policies consuming references and, for CD, the
// directives). Events are 8 bytes each; directive payloads live in a side
// table so that multi-million-reference traces stay compact.
#ifndef CDMM_SRC_TRACE_TRACE_H_
#define CDMM_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace cdmm {

// A page number within a process's virtual address space (0-based).
using PageId = uint32_t;

// One memory request of an ALLOCATE directive: "give me `pages` pages"; the
// priority index PI orders alternatives (paper §3.1: PI_1 > PI_2 > ...,
// X_1 >= X_2 >= ..., and smaller PI = more urgent when ungranted).
struct AllocateRequest {
  uint16_t priority = 0;  // PI
  uint32_t pages = 0;     // X

  friend bool operator==(const AllocateRequest&, const AllocateRequest&) = default;
};

// Directive payloads referenced by directive trace events.
struct DirectiveRecord {
  enum class Kind : uint8_t { kAllocate, kLock, kUnlock };

  Kind kind = Kind::kAllocate;
  uint32_t loop_id = 0;  // source loop this directive was inserted for (0 = none)

  // kAllocate: the else-chain (PI_1,X_1) else (PI_2,X_2) else ...
  std::vector<AllocateRequest> requests;

  // kLock: priority index PJ; kLock/kUnlock: the page list Y_1, Y_2, ...
  uint16_t lock_priority = 0;
  std::vector<PageId> pages;

  friend bool operator==(const DirectiveRecord&, const DirectiveRecord&) = default;
};

// A single trace event.
struct TraceEvent {
  enum class Kind : uint8_t {
    kRef,        // value = PageId referenced
    kDirective,  // value = index into Trace's directive table
    kLoopEnter,  // value = loop id (annotation; ignored by policies)
    kLoopExit,   // value = loop id
  };

  Kind kind = Kind::kRef;
  uint32_t value = 0;

  static TraceEvent Ref(PageId page) { return TraceEvent{Kind::kRef, page}; }

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// Statistics over the reference events of a trace.
struct TraceStats {
  uint64_t references = 0;
  uint32_t distinct_pages = 0;
  PageId max_page = 0;                  // meaningful only if references > 0
  std::vector<uint64_t> page_counts;    // indexed by PageId, size = max_page+1
};

// An immutable-after-build sequence of reference and directive events for one
// program, plus the program's virtual size in pages.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Virtual size V of the program in pages (upper bound on any PageId + 1).
  uint32_t virtual_pages() const { return virtual_pages_; }
  void set_virtual_pages(uint32_t pages) { virtual_pages_ = pages; }

  void AddRef(PageId page) {
    CDMM_CHECK_MSG(virtual_pages_ == 0 || page < virtual_pages_,
                   "page " << page << " out of range, V=" << virtual_pages_);
    events_.push_back(TraceEvent::Ref(page));
    ++reference_count_;
  }

  // Appends a directive; returns its index in the directive table.
  uint32_t AddDirective(DirectiveRecord record);

  // Appends all events of `other`, remapping its directive-table indices.
  // Used by the parallel-nests driver to merge per-nest slices in source
  // order; the merged trace is byte-identical to a sequential generation.
  void Append(const Trace& other);

  void AddLoopEnter(uint32_t loop_id) {
    events_.push_back(TraceEvent{TraceEvent::Kind::kLoopEnter, loop_id});
  }
  void AddLoopExit(uint32_t loop_id) {
    events_.push_back(TraceEvent{TraceEvent::Kind::kLoopExit, loop_id});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const DirectiveRecord& directive(uint32_t index) const {
    CDMM_CHECK(index < directives_.size());
    return directives_[index];
  }
  const std::vector<DirectiveRecord>& directives() const { return directives_; }

  // Number of page-reference events (the paper's reference-string length R).
  uint64_t reference_count() const { return reference_count_; }

  bool empty() const { return events_.empty(); }

  // Full scan computing distinct pages and per-page frequencies.
  TraceStats ComputeStats() const;

  // 64-bit FNV-1a over the virtual size, every event and every directive
  // payload. Any change to the generated reference pattern or the inserted
  // directives changes the fingerprint; the golden-trace regression tests
  // pin one per workload.
  uint64_t Fingerprint() const;

  // Returns a copy containing only kRef events (directive/marker-free view,
  // what LRU/WS/etc. see).
  Trace ReferencesOnly() const;

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::string name_;
  uint32_t virtual_pages_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<DirectiveRecord> directives_;
  uint64_t reference_count_ = 0;
};

}  // namespace cdmm

#endif  // CDMM_SRC_TRACE_TRACE_H_
