// Text (de)serialisation for traces. Format, one event per line:
//
//   CDMMTRACE 1
//   NAME <program>
//   PAGES <virtual size>
//   R <page>
//   D A <loop> <pi>:<pages> [<pi>:<pages> ...]     (ALLOCATE else-chain)
//   D L <loop> <pj> <page> [<page> ...]            (LOCK)
//   D U <loop> <page> [<page> ...]                 (UNLOCK)
//   E <loop>                                       (loop enter marker)
//   X <loop>                                       (loop exit marker)
//
// The format is deliberately line-oriented and diff-friendly; traces in this
// project are small enough (a few million lines worst case) that a binary
// format is unnecessary.
#ifndef CDMM_SRC_TRACE_TRACE_IO_H_
#define CDMM_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/support/result.h"
#include "src/trace/trace.h"

namespace cdmm {

// Writes `trace` in the text format above.
void WriteTrace(const Trace& trace, std::ostream& os);
std::string TraceToString(const Trace& trace);

// Parses a trace; returns a descriptive Error (with 1-based line number in
// the location) on malformed input.
Result<Trace> ReadTrace(std::istream& is);
Result<Trace> TraceFromString(const std::string& text);

// Compact binary format ("CDMB" magic, version byte, varint-encoded events;
// ~4-8x smaller than the text form and faster to parse). The two formats
// are interchangeable; ReadAnyTrace sniffs the magic.
void WriteTraceBinary(const Trace& trace, std::ostream& os);
Result<Trace> ReadTraceBinary(std::istream& is);

// Reads either format, dispatching on the leading magic bytes.
Result<Trace> ReadAnyTrace(std::istream& is);

}  // namespace cdmm

#endif  // CDMM_SRC_TRACE_TRACE_IO_H_
