// Loop-RLE trace: a reference string stored as a straight-line program of
// repeated blocks instead of a flat event vector. A node is either a leaf
// (a literal run of page ids) or an interior block (a sequence of child
// nodes); every node carries a repeat count, so a DO loop whose iterations
// all emit the same page sequence is stored once with repeat = trip count.
// Expanded length is the sum over roots of `refs`, which may far exceed
// what a flat Trace could hold (billions of references in a few kilobytes).
//
// The format is exact, not approximate: LoopRleBuilder only folds a scope
// after structurally verifying that two consecutive iterations emitted the
// same references, so Expand() reproduces the interpreter's trace byte for
// byte. The analytic sweep engines (src/analysis/analytic_locality.h) walk
// the node tree directly and never expand; the streaming visitors below are
// the fallback for consumers that do need the flat string but must not hold
// O(R) events in memory at once.
#ifndef CDMM_SRC_TRACE_LOOP_RLE_H_
#define CDMM_SRC_TRACE_LOOP_RLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/check.h"
#include "src/trace/trace.h"

namespace cdmm {

// Statistics from one GenerateLoopRle run, carried on the trace so sweep
// engines can report how much of the reference string was modeled exactly.
struct RleBuildStats {
  uint64_t folds_applied = 0;     // scopes folded into repeat > 1 nodes
  uint64_t foldable_loops = 0;    // loops statically eligible for folding
  uint64_t unfoldable_loops = 0;  // loops that had to be executed in full
  // No indirect subscripts anywhere in the program: the reference string is
  // a pure function of the loop structure and the analytic engines are both
  // exact and trace-length-independent. Indirect/guarded programs are still
  // modeled exactly, but compression (and so the O(program) bound) is lost
  // for the loops involved.
  bool affine = true;

  friend bool operator==(const RleBuildStats&, const RleBuildStats&) = default;
};

class LoopRleTrace {
 public:
  struct Node {
    uint64_t repeat = 1;  // how many times this node's content repeats
    uint64_t refs = 0;    // expanded references of the node, repeat included
    uint32_t begin = 0;   // leaf: index into pages(); interior: into children()
    uint32_t count = 0;   // leaf: run length; interior: child node count
    bool leaf = true;

    friend bool operator==(const Node&, const Node&) = default;
  };

  const std::string& name() const { return name_; }
  uint32_t virtual_pages() const { return virtual_pages_; }
  uint64_t total_refs() const { return total_refs_; }
  const RleBuildStats& stats() const { return stats_; }

  // Distinct pages actually referenced (computed once at Finish).
  uint32_t distinct_pages() const { return distinct_pages_; }

  // Stored (compressed) footprint, for compression-ratio assertions.
  size_t stored_pages() const { return pages_.size(); }
  size_t node_count() const { return nodes_.size(); }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<uint32_t>& roots() const { return roots_; }
  const std::vector<uint32_t>& children() const { return children_; }
  const std::vector<PageId>& pages() const { return pages_; }

  // Streams every reference in order without materializing the string.
  // Cost is O(expanded length); use the analytic engines to avoid that.
  template <typename Fn>
  void ForEachRef(Fn&& fn) const {
    for (uint32_t root : roots_) {
      VisitNode(root, fn);
    }
  }

  // Chunked variant: `fn(data, n)` receives consecutive slices of at most
  // `chunk` references, so a simulating consumer needs O(chunk) memory.
  template <typename Fn>
  void ForEachChunk(size_t chunk, Fn&& fn) const {
    CDMM_CHECK(chunk >= 1);
    std::vector<PageId> buffer;
    buffer.reserve(chunk);
    ForEachRef([&](PageId page) {
      buffer.push_back(page);
      if (buffer.size() == chunk) {
        fn(buffer.data(), buffer.size());
        buffer.clear();
      }
    });
    if (!buffer.empty()) {
      fn(buffer.data(), buffer.size());
    }
  }

  // Expands to a flat refs-only Trace, equal to what GenerateTrace(program,
  // tree, nullptr) emits. CHECK-fails if the expanded length would not fit.
  Trace Expand() const;

 private:
  friend class LoopRleBuilder;

  template <typename Fn>
  void VisitNode(uint32_t id, Fn&& fn) const {
    const Node& node = nodes_[id];
    for (uint64_t rep = 0; rep < node.repeat; ++rep) {
      if (node.leaf) {
        for (uint32_t k = 0; k < node.count; ++k) {
          fn(pages_[node.begin + k]);
        }
      } else {
        for (uint32_t k = 0; k < node.count; ++k) {
          VisitNode(children_[node.begin + k], fn);
        }
      }
    }
  }

  std::string name_;
  uint32_t virtual_pages_ = 0;
  uint32_t distinct_pages_ = 0;
  uint64_t total_refs_ = 0;
  RleBuildStats stats_;
  std::vector<Node> nodes_;
  std::vector<PageId> pages_;      // leaf runs, concatenated
  std::vector<uint32_t> children_; // interior child lists, concatenated
  std::vector<uint32_t> roots_;
};

// Incremental builder used by the RLE trace generator. Usage per foldable
// loop: OpenScope(), emit iteration 1, OpenScope(), emit iteration 2,
// CHECK(TopTwoScopesEqual()), DiscardScope(), CloseScopeRepeat(trip). Loops
// that cannot fold just emit their references with no scopes at all.
class LoopRleBuilder {
 public:
  LoopRleBuilder(std::string name, uint32_t virtual_pages);

  void Ref(PageId page);

  // Opens a nested scope; the enclosing scope's pending run is sealed first.
  void OpenScope();

  // Seals the top scope's trailing pending run so its content is complete.
  void SealTop();

  // Structural equality of the two topmost (sealed) scopes — the builder's
  // proof obligation before folding: iff true, the two scopes expand to the
  // same reference sequence.
  bool TopTwoScopesEqual() const;

  // Drops the top scope and everything allocated inside it.
  void DiscardScope();

  // Closes the top scope into an interior node repeated `repeat` times and
  // appends it to the parent scope. repeat == 1 splices the children into
  // the parent instead (no node overhead for unfolded single passes).
  void CloseScopeRepeat(uint64_t repeat);

  // Stored footprint so the generator can enforce its compressed-size cap.
  size_t stored_pages() const { return pages_.size(); }

  LoopRleTrace Finish(const RleBuildStats& stats);

 private:
  struct Scope {
    std::vector<uint32_t> child_nodes;  // completed node ids, in order
    std::vector<PageId> pending;        // trailing literal run, not yet a leaf
    // Pool watermarks at open, for DiscardScope truncation.
    size_t nodes_mark = 0;
    size_t pages_mark = 0;
    size_t children_mark = 0;
  };

  void FlushPending(Scope& scope);
  uint64_t NodeRefs(uint32_t id) const { return nodes_[id].refs; }
  bool NodesEqual(uint32_t a, uint32_t b) const;

  std::string name_;
  uint32_t virtual_pages_ = 0;
  std::vector<LoopRleTrace::Node> nodes_;
  std::vector<PageId> pages_;
  std::vector<uint32_t> children_;
  std::vector<Scope> scopes_;  // scopes_[0] is the root scope
};

}  // namespace cdmm

#endif  // CDMM_SRC_TRACE_LOOP_RLE_H_
