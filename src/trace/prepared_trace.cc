#include "src/trace/prepared_trace.h"

#include <utility>

#include "src/support/check.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {

PreparedTrace PreparedTrace::Build(const Trace& trace) {
  TELEM_SPAN("prepare:trace", "sweep");
  CDMM_CHECK_MSG(trace.reference_count() < UINT32_MAX,
                 "trace too long for 32-bit next-use indices");
  PreparedTrace prepared;
  prepared.name_ = trace.name();
  prepared.virtual_pages_ = trace.virtual_pages();
  prepared.pages_.reserve(trace.reference_count());
  PageId max_page = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    prepared.pages_.push_back(e.value);
    max_page = e.value > max_page ? e.value : max_page;
  }
  const uint32_t r = prepared.size();
  const uint32_t none = r;  // sentinel: "no later/earlier use"
  prepared.next_use_.assign(r, none);
  prepared.first_use_.assign(r == 0 ? 0 : static_cast<size_t>(max_page) + 1, none);
  // Backward scan: seen[p] is the earliest use of p at or after position i.
  std::vector<uint32_t>& seen = prepared.first_use_;  // doubles as the scratch
  for (uint32_t i = r; i-- > 0;) {
    PageId page = prepared.pages_[i];
    prepared.next_use_[i] = seen[page];
    seen[page] = i;
  }
  for (uint32_t root : prepared.first_use_) {
    prepared.distinct_pages_ += root != none ? 1 : 0;
  }
  TELEM_COUNT("sweep.prepared_trace_built");
  TELEM_COUNT_N("sweep.prepared_refs_indexed", r);
  return prepared;
}

std::shared_ptr<const PreparedTrace> PreparedTrace::BuildShared(const Trace& trace) {
  return std::make_shared<const PreparedTrace>(Build(trace));
}

}  // namespace cdmm
