// PreparedTrace: an immutable, columnar side-structure over a Trace's
// reference events, built once per workload and shared (like the memoized
// shared_ptr<const Trace>) by every simulation that needs forward distances.
// It holds the reference string as a flat PageId column plus, per reference,
// the index of the next use of the same page — the quantity OPT, VMIN and
// the one-pass sweep engines otherwise each recompute with their own
// backward scan and hash map. A per-page first-use index roots the next-use
// chain, so per-page walks (first_use -> next_use -> ...) need no map at
// all. Cost: 4 bytes/ref for the next-use column plus 4 bytes/ref for the
// columnar page copy.
#ifndef CDMM_SRC_TRACE_PREPARED_TRACE_H_
#define CDMM_SRC_TRACE_PREPARED_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace cdmm {

class PreparedTrace {
 public:
  // Builds the columns in one backward scan over the reference events
  // (directive and loop-marker events are skipped, so a PreparedTrace built
  // from a directive-bearing trace equals one built from ReferencesOnly()).
  // The trace must hold fewer than 2^32 - 1 references (indices and the
  // kNoNext sentinel are 32-bit).
  static PreparedTrace Build(const Trace& trace);

  // Shared-ownership convenience for memo caches.
  static std::shared_ptr<const PreparedTrace> BuildShared(const Trace& trace);

  // Number of references R (positions are 0-based, in [0, size())).
  uint32_t size() const { return static_cast<uint32_t>(pages_.size()); }
  bool empty() const { return pages_.empty(); }

  const std::string& name() const { return name_; }
  uint32_t virtual_pages() const { return virtual_pages_; }
  uint32_t distinct_pages() const { return distinct_pages_; }

  // The flat reference string.
  PageId page(uint32_t i) const { return pages_[i]; }
  const std::vector<PageId>& pages() const { return pages_; }

  // Index of the next reference to the same page, or size() when reference
  // `i` is the last use of its page.
  uint32_t next_use(uint32_t i) const { return next_use_[i]; }
  bool has_next_use(uint32_t i) const { return next_use_[i] != size(); }
  const std::vector<uint32_t>& next_uses() const { return next_use_; }

  // Index of the first reference to `page`, or size() when the page is
  // never referenced. Chains via next_use() enumerate all uses of a page.
  uint32_t first_use(PageId page) const {
    return page < first_use_.size() ? first_use_[page] : size();
  }

  // Exclusive upper bound on every PageId in the reference string (max page
  // + 1; at least 1 so flat tables are never zero-sized). This is what the
  // SoA kernels size their per-page frame tables with — first_use_ already
  // spans exactly [0, max page].
  uint32_t page_bound() const {
    return first_use_.empty() ? 1 : static_cast<uint32_t>(first_use_.size());
  }

 private:
  PreparedTrace() = default;

  std::string name_;
  uint32_t virtual_pages_ = 0;
  uint32_t distinct_pages_ = 0;
  std::vector<PageId> pages_;       // reference string, directive-free
  std::vector<uint32_t> next_use_;  // per-reference forward link
  std::vector<uint32_t> first_use_; // per-page chain root, size = max page + 1
};

}  // namespace cdmm

#endif  // CDMM_SRC_TRACE_PREPARED_TRACE_H_
