#include "src/trace/trace_io.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/support/str.h"

namespace cdmm {
namespace {

constexpr char kMagic[] = "CDMMTRACE";
constexpr int kVersion = 1;

Error ErrorAt(uint32_t line, std::string message) {
  return Error{std::move(message), SourceLocation{line, 1}};
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& os) {
  os << kMagic << " " << kVersion << "\n";
  os << "NAME " << trace.name() << "\n";
  os << "PAGES " << trace.virtual_pages() << "\n";
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kRef:
        os << "R " << e.value << "\n";
        break;
      case TraceEvent::Kind::kLoopEnter:
        os << "E " << e.value << "\n";
        break;
      case TraceEvent::Kind::kLoopExit:
        os << "X " << e.value << "\n";
        break;
      case TraceEvent::Kind::kDirective: {
        const DirectiveRecord& d = trace.directive(e.value);
        switch (d.kind) {
          case DirectiveRecord::Kind::kAllocate:
            os << "D A " << d.loop_id;
            for (const AllocateRequest& r : d.requests) {
              os << " " << r.priority << ":" << r.pages;
            }
            break;
          case DirectiveRecord::Kind::kLock:
            os << "D L " << d.loop_id << " " << d.lock_priority;
            for (PageId p : d.pages) {
              os << " " << p;
            }
            break;
          case DirectiveRecord::Kind::kUnlock:
            os << "D U " << d.loop_id;
            for (PageId p : d.pages) {
              os << " " << p;
            }
            break;
        }
        os << "\n";
        break;
      }
    }
  }
}

std::string TraceToString(const Trace& trace) {
  std::ostringstream os;
  WriteTrace(trace, os);
  return os.str();
}

Result<Trace> ReadTrace(std::istream& is) {
  std::string line;
  uint32_t lineno = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++lineno;
      if (!IsBlank(line)) {
        return true;
      }
    }
    return false;
  };

  if (!next_line()) {
    return ErrorAt(1, "empty trace stream");
  }
  {
    std::istringstream hs(line);
    std::string magic;
    int version = 0;
    hs >> magic >> version;
    if (magic != kMagic) {
      return ErrorAt(lineno, StrCat("bad magic '", magic, "', expected ", kMagic));
    }
    if (version != kVersion) {
      return ErrorAt(lineno, StrCat("unsupported trace version ", version));
    }
  }

  Trace trace;
  while (next_line()) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "NAME") {
      std::string name;
      ls >> name;
      trace.set_name(name);
    } else if (tag == "PAGES") {
      uint32_t pages = 0;
      if (!(ls >> pages)) {
        return ErrorAt(lineno, "malformed PAGES line");
      }
      trace.set_virtual_pages(pages);
    } else if (tag == "R") {
      PageId page = 0;
      if (!(ls >> page)) {
        return ErrorAt(lineno, "malformed R line");
      }
      if (trace.virtual_pages() != 0 && page >= trace.virtual_pages()) {
        return ErrorAt(lineno, StrCat("page ", page, " out of range, V=", trace.virtual_pages()));
      }
      trace.AddRef(page);
    } else if (tag == "E" || tag == "X") {
      uint32_t loop_id = 0;
      if (!(ls >> loop_id)) {
        return ErrorAt(lineno, "malformed loop marker line");
      }
      if (tag == "E") {
        trace.AddLoopEnter(loop_id);
      } else {
        trace.AddLoopExit(loop_id);
      }
    } else if (tag == "D") {
      std::string sub;
      ls >> sub;
      DirectiveRecord d;
      if (!(ls >> d.loop_id)) {
        return ErrorAt(lineno, "malformed directive line: missing loop id");
      }
      if (sub == "A") {
        d.kind = DirectiveRecord::Kind::kAllocate;
        std::string pair;
        while (ls >> pair) {
          size_t colon = pair.find(':');
          if (colon == std::string::npos) {
            return ErrorAt(lineno, StrCat("malformed ALLOCATE request '", pair, "'"));
          }
          AllocateRequest req;
          try {
            req.priority = static_cast<uint16_t>(std::stoul(pair.substr(0, colon)));
            req.pages = static_cast<uint32_t>(std::stoul(pair.substr(colon + 1)));
          } catch (const std::exception&) {
            return ErrorAt(lineno, StrCat("malformed ALLOCATE request '", pair, "'"));
          }
          d.requests.push_back(req);
        }
        if (d.requests.empty()) {
          return ErrorAt(lineno, "ALLOCATE directive with no requests");
        }
      } else if (sub == "L") {
        d.kind = DirectiveRecord::Kind::kLock;
        if (!(ls >> d.lock_priority)) {
          return ErrorAt(lineno, "malformed LOCK line: missing PJ");
        }
        PageId p = 0;
        while (ls >> p) {
          d.pages.push_back(p);
        }
      } else if (sub == "U") {
        d.kind = DirectiveRecord::Kind::kUnlock;
        PageId p = 0;
        while (ls >> p) {
          d.pages.push_back(p);
        }
      } else {
        return ErrorAt(lineno, StrCat("unknown directive kind '", sub, "'"));
      }
      trace.AddDirective(std::move(d));
    } else {
      return ErrorAt(lineno, StrCat("unknown event tag '", tag, "'"));
    }
  }
  return trace;
}

Result<Trace> TraceFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadTrace(is);
}

}  // namespace cdmm

namespace cdmm {
namespace {

constexpr char kBinaryMagic[4] = {'C', 'D', 'M', 'B'};
constexpr uint8_t kBinaryVersion = 1;

void PutVarint(std::ostream& os, uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

bool GetVarint(std::istream& is, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    int c = is.get();
    if (c == EOF || shift > 63) {
      return false;
    }
    v |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  *out = v;
  return true;
}

// Event tags. References carry their page inline: tag = (page << 3) | kTagRef.
enum BinaryTag : uint64_t {
  kTagRef = 0,
  kTagLoopEnter = 1,
  kTagLoopExit = 2,
  kTagAllocate = 3,
  kTagLock = 4,
  kTagUnlock = 5,
  kTagEnd = 6,
};

}  // namespace

void WriteTraceBinary(const Trace& trace, std::ostream& os) {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  os.put(static_cast<char>(kBinaryVersion));
  PutVarint(os, trace.name().size());
  os.write(trace.name().data(), static_cast<std::streamsize>(trace.name().size()));
  PutVarint(os, trace.virtual_pages());
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kRef:
        PutVarint(os, (static_cast<uint64_t>(e.value) << 3) | kTagRef);
        break;
      case TraceEvent::Kind::kLoopEnter:
        PutVarint(os, (static_cast<uint64_t>(e.value) << 3) | kTagLoopEnter);
        break;
      case TraceEvent::Kind::kLoopExit:
        PutVarint(os, (static_cast<uint64_t>(e.value) << 3) | kTagLoopExit);
        break;
      case TraceEvent::Kind::kDirective: {
        const DirectiveRecord& d = trace.directive(e.value);
        switch (d.kind) {
          case DirectiveRecord::Kind::kAllocate:
            PutVarint(os, (static_cast<uint64_t>(d.loop_id) << 3) | kTagAllocate);
            PutVarint(os, d.requests.size());
            for (const AllocateRequest& r : d.requests) {
              PutVarint(os, r.priority);
              PutVarint(os, r.pages);
            }
            break;
          case DirectiveRecord::Kind::kLock:
            PutVarint(os, (static_cast<uint64_t>(d.loop_id) << 3) | kTagLock);
            PutVarint(os, d.lock_priority);
            PutVarint(os, d.pages.size());
            for (PageId p : d.pages) {
              PutVarint(os, p);
            }
            break;
          case DirectiveRecord::Kind::kUnlock:
            PutVarint(os, (static_cast<uint64_t>(d.loop_id) << 3) | kTagUnlock);
            PutVarint(os, d.pages.size());
            for (PageId p : d.pages) {
              PutVarint(os, p);
            }
            break;
        }
        break;
      }
    }
  }
  PutVarint(os, kTagEnd);  // payload 0, tag kEnd: unambiguous terminator
}

Result<Trace> ReadTraceBinary(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (is.gcount() != sizeof(magic) || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Error{"bad binary trace magic", {}};
  }
  int version = is.get();
  if (version != kBinaryVersion) {
    return Error{StrCat("unsupported binary trace version ", version), {}};
  }
  uint64_t name_len = 0;
  if (!GetVarint(is, &name_len) || name_len > (1u << 20)) {
    return Error{"malformed trace name", {}};
  }
  std::string name(name_len, '\0');
  is.read(name.data(), static_cast<std::streamsize>(name_len));
  if (is.gcount() != static_cast<std::streamsize>(name_len)) {
    return Error{"truncated trace name", {}};
  }
  Trace trace(name);
  uint64_t pages = 0;
  if (!GetVarint(is, &pages)) {
    return Error{"missing virtual page count", {}};
  }
  trace.set_virtual_pages(static_cast<uint32_t>(pages));

  while (true) {
    uint64_t head = 0;
    if (!GetVarint(is, &head)) {
      return Error{"truncated binary trace (missing terminator)", {}};
    }
    uint64_t tag = head & 0x7;
    uint64_t payload = head >> 3;
    if (tag == kTagEnd && payload == 0 && head == kTagEnd) {
      break;
    }
    switch (tag) {
      case kTagRef:
        if (trace.virtual_pages() != 0 && payload >= trace.virtual_pages()) {
          return Error{StrCat("page ", payload, " out of range"), {}};
        }
        trace.AddRef(static_cast<PageId>(payload));
        break;
      case kTagLoopEnter:
        trace.AddLoopEnter(static_cast<uint32_t>(payload));
        break;
      case kTagLoopExit:
        trace.AddLoopExit(static_cast<uint32_t>(payload));
        break;
      case kTagAllocate: {
        DirectiveRecord d;
        d.kind = DirectiveRecord::Kind::kAllocate;
        d.loop_id = static_cast<uint32_t>(payload);
        uint64_t n = 0;
        if (!GetVarint(is, &n) || n == 0 || n > 64) {
          return Error{"malformed ALLOCATE request count", {}};
        }
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t pi = 0;
          uint64_t x = 0;
          if (!GetVarint(is, &pi) || !GetVarint(is, &x)) {
            return Error{"truncated ALLOCATE request", {}};
          }
          d.requests.push_back(
              AllocateRequest{static_cast<uint16_t>(pi), static_cast<uint32_t>(x)});
        }
        trace.AddDirective(std::move(d));
        break;
      }
      case kTagLock:
      case kTagUnlock: {
        DirectiveRecord d;
        d.kind = tag == kTagLock ? DirectiveRecord::Kind::kLock : DirectiveRecord::Kind::kUnlock;
        d.loop_id = static_cast<uint32_t>(payload);
        if (tag == kTagLock) {
          uint64_t pj = 0;
          if (!GetVarint(is, &pj)) {
            return Error{"truncated LOCK priority", {}};
          }
          d.lock_priority = static_cast<uint16_t>(pj);
        }
        uint64_t n = 0;
        if (!GetVarint(is, &n) || n > (1u << 24)) {
          return Error{"malformed lock page count", {}};
        }
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t p = 0;
          if (!GetVarint(is, &p)) {
            return Error{"truncated lock page list", {}};
          }
          d.pages.push_back(static_cast<PageId>(p));
        }
        trace.AddDirective(std::move(d));
        break;
      }
      default:
        return Error{StrCat("unknown binary event tag ", tag), {}};
    }
  }
  return trace;
}

Result<Trace> ReadAnyTrace(std::istream& is) {
  int first = is.peek();
  if (first == 'C') {
    // Both formats start with 'C'; sniff the fourth byte ('M' text vs 'B').
    char head[4];
    is.read(head, 4);
    for (int i = 3; i >= 0; --i) {
      is.putback(head[i]);
    }
    if (std::memcmp(head, kBinaryMagic, 4) == 0) {
      return ReadTraceBinary(is);
    }
  }
  return ReadTrace(is);
}

}  // namespace cdmm
