#include "src/trace/trace.h"

#include <algorithm>

namespace cdmm {

uint32_t Trace::AddDirective(DirectiveRecord record) {
  if (record.kind == DirectiveRecord::Kind::kAllocate) {
    // Enforce the paper's ordering invariants: PI_1 > PI_2 > ..., X_1 >= X_2.
    for (size_t i = 1; i < record.requests.size(); ++i) {
      CDMM_CHECK_MSG(record.requests[i - 1].priority > record.requests[i].priority,
                     "ALLOCATE priorities must strictly decrease");
      CDMM_CHECK_MSG(record.requests[i - 1].pages >= record.requests[i].pages,
                     "ALLOCATE request sizes must be non-increasing");
    }
  }
  directives_.push_back(std::move(record));
  uint32_t index = static_cast<uint32_t>(directives_.size() - 1);
  events_.push_back(TraceEvent{TraceEvent::Kind::kDirective, index});
  return index;
}

void Trace::Append(const Trace& other) {
  CDMM_CHECK_MSG(virtual_pages_ == 0 || other.virtual_pages_ == 0 ||
                     virtual_pages_ == other.virtual_pages_,
                 "appending traces with different virtual sizes: " << virtual_pages_ << " vs "
                                                                   << other.virtual_pages_);
  if (virtual_pages_ == 0) {
    virtual_pages_ = other.virtual_pages_;
  }
  uint32_t base = static_cast<uint32_t>(directives_.size());
  events_.reserve(events_.size() + other.events_.size());
  for (TraceEvent e : other.events_) {
    if (e.kind == TraceEvent::Kind::kDirective) {
      e.value += base;  // remap into this trace's directive table
    }
    events_.push_back(e);
  }
  directives_.insert(directives_.end(), other.directives_.begin(), other.directives_.end());
  reference_count_ += other.reference_count_;
}

TraceStats Trace::ComputeStats() const {
  TraceStats stats;
  for (const TraceEvent& e : events_) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    ++stats.references;
    stats.max_page = std::max(stats.max_page, e.value);
    if (e.value >= stats.page_counts.size()) {
      stats.page_counts.resize(e.value + 1, 0);
    }
    ++stats.page_counts[e.value];
  }
  for (uint64_t c : stats.page_counts) {
    if (c != 0) {
      ++stats.distinct_pages;
    }
  }
  return stats;
}

uint64_t Trace::Fingerprint() const {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  auto mix = [&h](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (value >> (byte * 8)) & 0xFF;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(virtual_pages_);
  mix(events_.size());
  for (const TraceEvent& e : events_) {
    mix((static_cast<uint64_t>(e.kind) << 32) | e.value);
  }
  mix(directives_.size());
  for (const DirectiveRecord& d : directives_) {
    mix((static_cast<uint64_t>(d.kind) << 32) | d.loop_id);
    mix(d.requests.size());
    for (const AllocateRequest& r : d.requests) {
      mix((static_cast<uint64_t>(r.priority) << 32) | r.pages);
    }
    mix(d.lock_priority);
    mix(d.pages.size());
    for (PageId p : d.pages) {
      mix(p);
    }
  }
  return h;
}

Trace Trace::ReferencesOnly() const {
  Trace out(name_);
  out.set_virtual_pages(virtual_pages_);
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceEvent::Kind::kRef) {
      out.AddRef(e.value);
    }
  }
  return out;
}

}  // namespace cdmm
