#include "src/trace/loop_rle.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace cdmm {

Trace LoopRleTrace::Expand() const {
  CDMM_CHECK_MSG(total_refs_ < (1ULL << 32),
                 "expanded length " << total_refs_ << " too large to materialize");
  Trace trace(name_);
  trace.set_virtual_pages(virtual_pages_);
  ForEachRef([&](PageId page) { trace.AddRef(page); });
  return trace;
}

LoopRleBuilder::LoopRleBuilder(std::string name, uint32_t virtual_pages)
    : name_(std::move(name)), virtual_pages_(virtual_pages) {
  scopes_.emplace_back();
}

void LoopRleBuilder::Ref(PageId page) {
  CDMM_CHECK_MSG(virtual_pages_ == 0 || page < virtual_pages_,
                 "page " << page << " out of range, V=" << virtual_pages_);
  scopes_.back().pending.push_back(page);
}

void LoopRleBuilder::FlushPending(Scope& scope) {
  if (scope.pending.empty()) {
    return;
  }
  LoopRleTrace::Node leaf;
  leaf.repeat = 1;
  leaf.leaf = true;
  leaf.begin = static_cast<uint32_t>(pages_.size());
  leaf.count = static_cast<uint32_t>(scope.pending.size());
  leaf.refs = scope.pending.size();
  pages_.insert(pages_.end(), scope.pending.begin(), scope.pending.end());
  scope.pending.clear();
  scope.child_nodes.push_back(static_cast<uint32_t>(nodes_.size()));
  nodes_.push_back(leaf);
}

void LoopRleBuilder::OpenScope() {
  FlushPending(scopes_.back());
  Scope scope;
  scope.nodes_mark = nodes_.size();
  scope.pages_mark = pages_.size();
  scope.children_mark = children_.size();
  scopes_.push_back(std::move(scope));
}

void LoopRleBuilder::SealTop() { FlushPending(scopes_.back()); }

bool LoopRleBuilder::NodesEqual(uint32_t a, uint32_t b) const {
  const LoopRleTrace::Node& na = nodes_[a];
  const LoopRleTrace::Node& nb = nodes_[b];
  if (na.repeat != nb.repeat || na.leaf != nb.leaf || na.count != nb.count) {
    return false;
  }
  if (na.leaf) {
    return std::equal(pages_.begin() + na.begin, pages_.begin() + na.begin + na.count,
                      pages_.begin() + nb.begin);
  }
  for (uint32_t k = 0; k < na.count; ++k) {
    if (!NodesEqual(children_[na.begin + k], children_[nb.begin + k])) {
      return false;
    }
  }
  return true;
}

bool LoopRleBuilder::TopTwoScopesEqual() const {
  CDMM_CHECK(scopes_.size() >= 3);  // root + the two iteration scopes
  const Scope& first = scopes_[scopes_.size() - 2];
  const Scope& second = scopes_.back();
  if (!second.pending.empty() || !first.pending.empty()) {
    return false;  // callers seal both scopes before comparing
  }
  if (first.child_nodes.size() != second.child_nodes.size()) {
    return false;
  }
  for (size_t k = 0; k < first.child_nodes.size(); ++k) {
    if (!NodesEqual(first.child_nodes[k], second.child_nodes[k])) {
      return false;
    }
  }
  return true;
}

void LoopRleBuilder::DiscardScope() {
  CDMM_CHECK(scopes_.size() >= 2);
  Scope scope = std::move(scopes_.back());
  scopes_.pop_back();
  // Everything the scope created sits above its watermarks (scopes only
  // append to the pools), so truncation frees exactly its allocations.
  nodes_.resize(scope.nodes_mark);
  pages_.resize(scope.pages_mark);
  children_.resize(scope.children_mark);
}

void LoopRleBuilder::CloseScopeRepeat(uint64_t repeat) {
  CDMM_CHECK(scopes_.size() >= 2);
  CDMM_CHECK(repeat >= 1);
  FlushPending(scopes_.back());
  Scope scope = std::move(scopes_.back());
  scopes_.pop_back();
  Scope& parent = scopes_.back();
  if (scope.child_nodes.empty()) {
    return;  // body emitted nothing; the repeat is a no-op
  }
  if (repeat == 1) {
    parent.child_nodes.insert(parent.child_nodes.end(), scope.child_nodes.begin(),
                              scope.child_nodes.end());
    return;
  }
  LoopRleTrace::Node node;
  node.repeat = repeat;
  node.leaf = false;
  node.begin = static_cast<uint32_t>(children_.size());
  node.count = static_cast<uint32_t>(scope.child_nodes.size());
  uint64_t once = 0;
  for (uint32_t id : scope.child_nodes) {
    once += NodeRefs(id);
  }
  node.refs = once * repeat;
  children_.insert(children_.end(), scope.child_nodes.begin(), scope.child_nodes.end());
  parent.child_nodes.push_back(static_cast<uint32_t>(nodes_.size()));
  nodes_.push_back(node);
}

LoopRleTrace LoopRleBuilder::Finish(const RleBuildStats& stats) {
  CDMM_CHECK_MSG(scopes_.size() == 1, "unbalanced RLE scopes at Finish");
  FlushPending(scopes_.back());

  LoopRleTrace trace;
  trace.name_ = std::move(name_);
  trace.virtual_pages_ = virtual_pages_;
  trace.stats_ = stats;
  trace.nodes_ = std::move(nodes_);
  trace.pages_ = std::move(pages_);
  trace.children_ = std::move(children_);
  trace.roots_ = std::move(scopes_.back().child_nodes);

  uint64_t total = 0;
  for (uint32_t root : trace.roots_) {
    total += trace.nodes_[root].refs;
  }
  trace.total_refs_ = total;

  std::vector<bool> seen(trace.virtual_pages_ > 0 ? trace.virtual_pages_ : 0, false);
  uint32_t distinct = 0;
  for (PageId page : trace.pages_) {
    if (page >= seen.size()) {
      seen.resize(static_cast<size_t>(page) + 1, false);
    }
    if (!seen[page]) {
      seen[page] = true;
      ++distinct;
    }
  }
  trace.distinct_pages_ = distinct;
  return trace;
}

}  // namespace cdmm
