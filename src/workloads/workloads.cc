#include "src/workloads/workloads.h"

#include "src/lang/sema.h"
#include "src/support/check.h"

namespace cdmm {
namespace {

// MAIN: driver of an atmospheric-research code (UIARL style): grid
// initialisation, a time loop alternating a heavy multi-column relaxation
// with a repeated-span diagnostic over the whole grid, and a long vector
// smoothing post-pass. The phases have deliberately contrasting working
// sets (streaming inits vs. a ~40-page re-spanned grid).
constexpr char kMainSource[] = R"(
      PROGRAM MAIN
      PARAMETER (M = 128, N = 20, NT = 10, L = 640)
      DIMENSION P(M,N), Q(M,N), W(M), Z(L), R(L)
      DO 20 J = 1, N
        DO 10 I = 1, M
          P(I,J) = 0.0
          Q(I,J) = 1.0
   10   CONTINUE
   20 CONTINUE
      DO 60 T = 1, NT
        DO 50 J = 2, 19
          P(1,J) = W(1) * 2.0
          Q(1,J) = W(2) * 0.5
          DO 30 I = 2, 127
            Q(I,J) = P(I,J) + P(I,J-1) + P(I,J+1) + W(I)
            P(I,J) = Q(I,J) + Q(I-1,J)
   30     CONTINUE
   50   CONTINUE
        DO 57 S = 1, 2
          DO 55 J = 1, N
            DO 53 I = 1, M
              W(I) = W(I) + P(I,J) * Q(I,J)
   53       CONTINUE
   55     CONTINUE
   57   CONTINUE
   60 CONTINUE
      DO 90 K = 1, 30
        DO 80 I = 2, 639
          Z(I) = Z(I) + R(I) * 0.25
          Z(I) = Z(I) - R(I-1) * 0.125
   80   CONTINUE
   90 CONTINUE
      END
)";

// FDJAC: MINPACK's forward-difference Jacobian inside a Newton iteration.
// Each column build re-spans the X/DIAG/FVEC data vectors (the function
// evaluation), then a streaming pass applies the Jacobian column-by-column.
constexpr char kFdjacSource[] = R"(
      PROGRAM FDJAC
      PARAMETER (MR = 384, N = 96, NITER = 2)
      DIMENSION FJAC(MR,N), X(N), FVEC(MR), WA(MR), DAT(MR), SIG(MR), QTF(N)
      DO 60 ITER = 1, NITER
        DO 30 J = 1, N
          X(J) = X(J) + 0.001
          DO 10 I = 1, MR
            WA(I) = X(J) * DAT(I) + FVEC(I) * SIG(I)
   10     CONTINUE
          DO 20 I = 1, MR
            FJAC(I,J) = WA(I) - FVEC(I)
   20     CONTINUE
          X(J) = X(J) - 0.001
   30   CONTINUE
        DO 50 J = 1, N
          DO 40 I = 1, MR
            QTF(J) = QTF(J) + FJAC(I,J) * FVEC(I)
   40     CONTINUE
   50   CONTINUE
   60 CONTINUE
      END
)";

// TQL: EISPACK's TQL2 (tridiagonal QL with eigenvectors): per-eigenvalue QL
// sweeps over the D/E vectors (triangular) and plane rotations streaming
// through the eigenvector columns while re-referencing the pivot column L.
constexpr char kTqlSource[] = R"(
      PROGRAM TQL
      PARAMETER (N = 64, NQL = 2)
      DIMENSION Z(N,N), D(N), E(N)
      DO 100 L = 1, N
        DO 90 ITER = 1, NQL
          E(L) = E(L) * 0.99
          D(L) = D(L) + E(L)
          DO 20 I = L, N
            D(I) = D(I) - E(I) * E(I) / (D(I) + 2.0)
            E(I) = E(I) * 0.5
   20     CONTINUE
          DO 40 K = L, N
            DO 30 I = 1, N
              Z(I,K) = Z(I,K) * E(K) + Z(I,L) * D(K)
   30       CONTINUE
   40     CONTINUE
   90   CONTINUE
  100 CONTINUE
      END
)";

// FIELD: 5-point relaxation with a wide stencil phase (five active columns
// plus coefficient vectors) alternating with a streaming copy-back; the
// classic column-order grid code.
constexpr char kFieldSource[] = R"(
      PROGRAM FIELD
      PARAMETER (M = 128, N = 48, NT = 8)
      DIMENSION A(M,N), B(M,N), CX(M), CY(M)
      DO 50 T = 1, NT
        DO 20 J = 3, 46
          DO 10 I = 2, 127
            B(I,J) = A(I,J) + A(I,J-2) + A(I,J+2) + CX(I) * A(I+1,J) + CY(I) * A(I-1,J)
   10     CONTINUE
   20   CONTINUE
        DO 40 J = 1, N
          DO 30 I = 1, M
            A(I,J) = B(I,J) * 0.2
   30     CONTINUE
   40   CONTINUE
        DO 65 S = 1, 2
          DO 60 J = 1, 16
            DO 55 I = 1, M
              CX(I) = CX(I) + A(I,J) * 0.001
   55       CONTINUE
   60     CONTINUE
   65   CONTINUE
   50 CONTINUE
      END
)";

// INIT: initialisation-dominated program: long streaming fills and copies of
// two grids and a large state vector, with a periodic re-spanned lookup
// table pass. Mostly sequential with a tiny true locality.
constexpr char kInitSource[] = R"(
      PROGRAM INIT
      PARAMETER (M = 128, N = 64, LS = 16384, NP = 10)
      DIMENSION U(M,N), V(M,N), S(LS), TBL(2048)
      DO 20 J = 1, N
        DO 10 I = 1, M
          U(I,J) = 1.0
   10   CONTINUE
   20 CONTINUE
      DO 40 J = 1, N
        DO 30 I = 1, M
          V(I,J) = U(I,J) * 2.0
   30   CONTINUE
   40 CONTINUE
      DO 45 I = 1, LS
        S(I) = 0.5
   45 CONTINUE
      DO 70 K = 1, NP
        DO 55 R = 1, 3
          DO 50 I = 1, 2048
            TBL(I) = TBL(I) + 1.0
   50     CONTINUE
   55   CONTINUE
   70 CONTINUE
      END
)";

// APPROX: iterative least-squares fitting: every coefficient update re-scans
// the full sample vectors X and Y (a ~64-page repeated span), separated by
// long streaming residual passes over an auxiliary buffer.
constexpr char kApproxSource[] = R"(
      PROGRAM APPROX
      PARAMETER (NS = 2048, NW = 8192, NC = 24)
      DIMENSION X(NS), Y(NS), C(NC), WK(NW)
      DO 40 K = 1, NC
        DO 10 I = 1, NS
          Y(I) = Y(I) + C(K) * X(I)
   10   CONTINUE
        DO 20 I = 1, NS
          C(K) = C(K) + X(I) * Y(I)
   20   CONTINUE
        DO 30 I = 2, NW
          WK(I) = WK(I) + WK(I-1) * 0.5
   30   CONTINUE
   40 CONTINUE
      END
)";

// HYBRJ: MINPACK's Powell hybrid method: triangular factor updates against a
// re-referenced pivot column, alternating with streaming scaling passes over
// the full factor.
constexpr char kHybrjSource[] = R"(
      PROGRAM HYBRJ
      PARAMETER (N = 64)
      DIMENSION R(N,N), QTF(N), DIAG(N), WA(N)
      DO 60 J = 1, N
        DO 10 I = J, N
          R(I,J) = R(I,J) + DIAG(I) * DIAG(J)
          WA(I) = R(I,J) * QTF(I)
   10   CONTINUE
        DO 30 K = J, N
          DO 20 I = 1, J
            R(I,K) = R(I,K) - WA(I) * R(I,J)
   20     CONTINUE
   30   CONTINUE
        DO 50 K = 1, N
          DO 40 I = 1, N
            R(I,K) = R(I,K) * 0.999
   40     CONTINUE
   50   CONTINUE
   60 CONTINUE
      END
)";

// CONDUCT: heat-conduction ADI-style solver on a 128x128 plate (the paper
// quotes 270 virtual pages; this grid plus its coefficient vectors lands at
// 262). Alternates a column-direction phase (small locality) with a
// row-direction phase whose working set is one page per column — the
// pattern where compile-time knowledge pays off most.
constexpr char kConductSource[] = R"(
      PROGRAM CONDUCT
      PARAMETER (M = 128, NT = 4)
      DIMENSION T(M,M), COND(M), FLUX(M), CAP(M)
      DO 60 STEP = 1, NT
        DO 20 J = 1, M
          CAP(J) = CAP(J) + 1.0
          DO 10 I = 2, 127
            T(I,J) = T(I,J) + COND(I) * (T(I+1,J) - T(I-1,J))
   10     CONTINUE
   20   CONTINUE
        DO 40 I = 2, 127
          DO 30 J = 2, 127
            T(I,J) = T(I,J) + FLUX(I) * (T(I,J+1) - T(I,J-1))
   30     CONTINUE
   40   CONTINUE
   60 CONTINUE
      END
)";

// HWSCRT: FISHPACK's Helmholtz solver on a rectangle (the paper quotes 69
// virtual pages; a 64x64 grid plus boundary/work vectors lands exactly
// there). Column scaling, a row-direction sweep, and a column-direction
// correction per cyclic-reduction step.
constexpr char kHwscrtSource[] = R"(
      PROGRAM HWSCRT
      PARAMETER (M = 64, NSTEP = 6)
      DIMENSION F(M,M), BDA(M), BDB(M), W(192)
      DO 70 STEP = 1, NSTEP
        DO 20 J = 1, M
          DO 10 I = 1, M
            F(I,J) = F(I,J) * W(I)
   10     CONTINUE
   20   CONTINUE
        DO 40 I = 1, M
          DO 30 J = 2, 63
            F(I,J) = F(I,J) + BDA(I) * (F(I,J+1) - F(I,J-1))
   30     CONTINUE
   40   CONTINUE
        DO 60 J = 2, 63
          DO 50 I = 1, M
            F(I,J) = F(I,J) - BDB(I) * W(I+64)
   50     CONTINUE
   60   CONTINUE
   70 CONTINUE
      END
)";

// TRED: EISPACK's TRED2 Householder reduction to tridiagonal form:
// triangular column operations against an accumulating transformation,
// with the active column re-referenced across the elimination loop.
constexpr char kTredSource[] = R"(
      PROGRAM TRED
      PARAMETER (N = 64)
      DIMENSION A(N,N), D(N), E(N)
      DO 60 K = 1, 63
        DO 10 I = K, N
          D(I) = A(I,K) * A(I,K) + D(I)
   10   CONTINUE
        E(K) = D(K) * 0.5
        DO 40 J = K, N
          DO 30 I = K, N
            A(I,J) = A(I,J) - A(I,K) * E(K) * A(J,K)
   30     CONTINUE
   40   CONTINUE
   60 CONTINUE
      END
)";

// POISSN: a FISHPACK-style Poisson SOR solver: repeated 5-point column-order
// sweeps over the potential grid with a fixed right-hand side.
constexpr char kPoissnSource[] = R"(
      PROGRAM POISSN
      PARAMETER (M = 96, N = 48, NIT = 10)
      REAL U(M,N), RHS(M,N)
      DO 30 IT = 1, NIT
        DO 20 J = 2, 47
          DO 10 I = 2, 95
            U(I,J) = (U(I+1,J) + U(I-1,J) + U(I,J+1) + U(I,J-1) - RHS(I,J)) * 0.25
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      END
)";

// GAUSSJ: Gauss-Jordan elimination: the pivot column is re-referenced while
// every other column is updated once per pivot step (column-order inner
// loops, triangular shrinkage).
constexpr char kGaussjSource[] = R"(
      PROGRAM GAUSSJ
      PARAMETER (N = 80)
      REAL A(N,N), B(N), PIV(N)
      DO 50 K = 1, N
        DO 10 I = 1, N
          PIV(I) = A(I,K)
   10   CONTINUE
        DO 40 J = K, N
          DO 30 I = 1, N
            A(I,J) = A(I,J) - PIV(I) * A(K,J)
   30     CONTINUE
   40   CONTINUE
        B(K) = B(K) / (PIV(K) + 1.0)
   50 CONTINUE
      END
)";

// MATMULB: 2x2 register-blocked matrix multiply. The step-2 I/J loops are
// provably independent (strong-SIV divisibility: column J and J+1 writes
// never collide across iterations two apart) while K carries the C
// accumulation; the operand initialisation runs through an analyzed
// SUBROUTINE inlined at both CALL sites, and the two inlined init nests
// touch disjoint arrays, so --parallel-nests runs them concurrently.
constexpr char kMatmulbSource[] = R"(
      PROGRAM MATMULB
      PARAMETER (N = 8)
      DIMENSION A(N,N), B(N,N), C(N,N)
      CALL INIT2(A, 8)
      CALL INIT2(B, 8)
!$CDMM INDEPENDENT
      DO 40 J = 1, N, 2
        DO 30 I = 1, N, 2
          DO 20 K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
            C(I+1,J) = C(I+1,J) + A(I+1,K) * B(K,J)
            C(I,J+1) = C(I,J+1) + A(I,K) * B(K,J+1)
            C(I+1,J+1) = C(I+1,J+1) + A(I+1,K) * B(K,J+1)
   20     CONTINUE
   30   CONTINUE
   40 CONTINUE
      END
      SUBROUTINE INIT2(X, M)
      DIMENSION X(M,M)
!$CDMM INDEPENDENT
      DO 10 J = 1, M
        DO 5 I = 1, M
          X(I,J) = I + J * 2
    5   CONTINUE
   10 CONTINUE
      END
)";

// SORRB: one-dimensional red-black successive over-relaxation. Each
// half-sweep updates every other point from its two neighbours; the stride-2
// loops are provably independent (a carried dependence would need an odd
// iteration difference, impossible at step 2 — the GCD test settles it).
constexpr char kSorrbSource[] = R"(
      PROGRAM SORRB
      PARAMETER (N = 64)
      DIMENSION A(N), B(N)
!$CDMM INDEPENDENT
      DO 10 I = 1, N
        A(I) = B(I) + 1.0
   10 CONTINUE
!$CDMM INDEPENDENT
      DO 20 I = 2, 63, 2
        A(I) = (A(I-1) + A(I+1)) * 0.5
   20 CONTINUE
!$CDMM INDEPENDENT
      DO 30 I = 3, 63, 2
        A(I) = (A(I-1) + A(I+1)) * 0.5
   30 CONTINUE
      END
)";

// GATHER: sparse scatter-add through an INTEGER index array. The write
// B(IDX(I)) cannot be analyzed (the subscript is data-dependent), so the
// dependence framework reports an *assumed* self-dependence and refuses to
// parallelize the scatter loop — the soundness contract in action. No loop
// carries an INDEPENDENT mark.
constexpr char kGatherSource[] = R"(
      PROGRAM GATHER
      PARAMETER (N = 32)
      INTEGER IDX(N)
      DIMENSION A(N), B(N)
      DO 10 I = 1, N
        IDX(I) = MOD(I * 7, N) + 1
   10 CONTINUE
      DO 20 I = 1, N
        B(IDX(I)) = B(IDX(I)) + A(I)
   20 CONTINUE
      END
)";

// STENCILG: a boundary-guarded stencil. The logical IF keeps the update off
// the edges; the guarded loop is still provably independent (C writes only
// its own point, B is read-only), and the two init nests touch disjoint
// arrays so --parallel-nests overlaps them.
constexpr char kStencilgSource[] = R"(
      PROGRAM STENCILG
      PARAMETER (N = 48)
      DIMENSION A(N), B(N), C(N)
!$CDMM INDEPENDENT
      DO 5 I = 1, N
        A(I) = I
    5 CONTINUE
!$CDMM INDEPENDENT
      DO 10 I = 1, N
        B(I) = I * 2
   10 CONTINUE
!$CDMM INDEPENDENT
      DO 20 I = 1, N
        IF (I .GT. 1 .AND. I .LT. 48) C(I) = B(I-1) + B(I+1) + A(I)
   20 CONTINUE
      END
)";

std::vector<Workload> MakeExtendedWorkloads() {
  return {
      {"TRED", "EISPACK TRED2: Householder reduction, triangular column ops", kTredSource},
      {"POISSN", "FISHPACK-style Poisson SOR: repeated 5-point column sweeps", kPoissnSource},
      {"GAUSSJ", "Gauss-Jordan elimination: pivot column reuse + column updates",
       kGaussjSource},
      {"MATMULB", "2x2 register-blocked matmul: step-2 independent loops + CALL init",
       kMatmulbSource},
      {"SORRB", "1-D red-black SOR: stride-2 half-sweeps, GCD-provable independence",
       kSorrbSource},
      {"GATHER", "sparse scatter-add through INTEGER IDX: assumed dependence", kGatherSource},
      {"STENCILG", "boundary-guarded stencil: logical IF inside independent loop",
       kStencilgSource},
  };
}

std::vector<Workload> MakeWorkloads() {
  return {
      {"MAIN", "atmospheric-model driver: init, time-stepped column relaxation, smoothing",
       kMainSource},
      {"FDJAC", "MINPACK forward-difference Jacobian (column-wise writes)", kFdjacSource},
      {"TQL", "EISPACK TQL2: triangular QL sweeps + eigenvector rotations", kTqlSource},
      {"FIELD", "5-point column-order stencil relaxation with copy-back", kFieldSource},
      {"INIT", "initialisation-dominated sweeps with a small resident table", kInitSource},
      {"APPROX", "least-squares fitting: full-data re-scans per coefficient", kApproxSource},
      {"HYBRJ", "MINPACK Powell hybrid: triangular factor updates", kHybrjSource},
      {"CONDUCT", "ADI heat conduction: alternating column/row phases (262 pages)",
       kConductSource},
      {"HWSCRT", "FISHPACK Helmholtz solver on a 64x64 rectangle (69 pages)", kHwscrtSource},
  };
}

}  // namespace

const std::vector<Workload>& AllWorkloads() {
  static const std::vector<Workload>* workloads = new std::vector<Workload>(MakeWorkloads());
  return *workloads;
}

const std::vector<Workload>& ExtendedWorkloads() {
  static const std::vector<Workload>* workloads =
      new std::vector<Workload>(MakeExtendedWorkloads());
  return *workloads;
}

const Workload& FindWorkload(const std::string& name) {
  for (const auto* list : {&AllWorkloads(), &ExtendedWorkloads()}) {
    for (const Workload& w : *list) {
      if (w.name == name) {
        return w;
      }
    }
  }
  CDMM_UNREACHABLE(name + ": unknown workload");
}

Program ParseWorkload(const Workload& workload) {
  auto program = ParseAndCheck(workload.source);
  CDMM_CHECK_MSG(program.ok(),
                 workload.name << " failed to parse: " << program.error().ToString());
  return std::move(program).value();
}

namespace {

WorkloadVariant V(const char* variant, const char* workload, DirectiveSelection sel,
                  int level_cap = 1, bool locks = true) {
  return WorkloadVariant{variant, workload, sel, level_cap, locks};
}

std::vector<WorkloadVariant> MakeTable1() {
  // Table 1 of the paper: the effect of executing different directive sets.
  // Base names run the inner-level directives with LOCK/UNLOCK honoured;
  // numbered variants move the honoured set outward (or drop the locks).
  return {
      V("MAIN", "MAIN", DirectiveSelection::kLevelCap, 3),
      V("MAIN1", "MAIN", DirectiveSelection::kOutermost),
      V("MAIN2", "MAIN", DirectiveSelection::kLevelCap, 2),
      V("MAIN3", "MAIN", DirectiveSelection::kInnermost, 1, /*locks=*/false),
      V("FDJAC", "FDJAC", DirectiveSelection::kInnermost),
      V("FDJAC1", "FDJAC", DirectiveSelection::kLevelCap, 2),
      V("TQL1", "TQL", DirectiveSelection::kLevelCap, 2),
      V("TQL2", "TQL", DirectiveSelection::kInnermost, 1, /*locks=*/false),
  };
}

std::vector<WorkloadVariant> MakeTable2() {
  // Table 2 compares minimal-ST points; the paper's rows name the variant
  // whose ST was lowest per program (MAIN3, FDJAC, ..., TQL1) — the
  // inner-level directive sets, which trade faults for a small footprint.
  return {
      V("MAIN3", "MAIN", DirectiveSelection::kInnermost, 1, /*locks=*/false),
      V("FDJAC", "FDJAC", DirectiveSelection::kInnermost),
      V("FIELD-I", "FIELD", DirectiveSelection::kInnermost),
      V("INIT-I", "INIT", DirectiveSelection::kInnermost),
      V("APPROX", "APPROX", DirectiveSelection::kInnermost),
      V("HYBRJ", "HYBRJ", DirectiveSelection::kInnermost),
      V("CONDUCT", "CONDUCT", DirectiveSelection::kLevelCap, 2),
      V("TQL1", "TQL", DirectiveSelection::kLevelCap, 2),
  };
}

std::vector<WorkloadVariant> MakeTable3() {
  // Tables 3 and 4: all fourteen program/variant rows.
  return {
      V("MAIN", "MAIN", DirectiveSelection::kLevelCap, 3),
      V("MAIN1", "MAIN", DirectiveSelection::kOutermost),
      V("MAIN2", "MAIN", DirectiveSelection::kLevelCap, 2),
      V("MAIN3", "MAIN", DirectiveSelection::kInnermost, 1, /*locks=*/false),
      V("FDJAC", "FDJAC", DirectiveSelection::kInnermost),
      V("FDJAC1", "FDJAC", DirectiveSelection::kLevelCap, 2),
      V("FIELD", "FIELD", DirectiveSelection::kLevelCap, 3),
      V("INIT", "INIT", DirectiveSelection::kLevelCap, 2),
      V("APPROX", "APPROX", DirectiveSelection::kInnermost),
      V("HYBRJ", "HYBRJ", DirectiveSelection::kInnermost),
      V("CONDUCT", "CONDUCT", DirectiveSelection::kLevelCap, 2),
      V("TQL1", "TQL", DirectiveSelection::kLevelCap, 2),
      V("TQL2", "TQL", DirectiveSelection::kInnermost, 1, /*locks=*/false),
      V("HWSCRT", "HWSCRT", DirectiveSelection::kLevelCap, 2),
  };
}

}  // namespace

const std::vector<WorkloadVariant>& Table1Variants() {
  static const auto* variants = new std::vector<WorkloadVariant>(MakeTable1());
  return *variants;
}

const std::vector<WorkloadVariant>& Table2Variants() {
  static const auto* variants = new std::vector<WorkloadVariant>(MakeTable2());
  return *variants;
}

const std::vector<WorkloadVariant>& Table3Variants() {
  static const auto* variants = new std::vector<WorkloadVariant>(MakeTable3());
  return *variants;
}

const WorkloadVariant& FindVariant(const std::string& variant_name) {
  for (const auto* list : {&Table1Variants(), &Table2Variants(), &Table3Variants()}) {
    for (const WorkloadVariant& v : *list) {
      if (v.variant_name == variant_name) {
        return v;
      }
    }
  }
  CDMM_UNREACHABLE(variant_name + ": unknown variant");
}

}  // namespace cdmm
