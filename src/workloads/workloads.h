// The paper's nine numerical FORTRAN programs (§5), re-created in the
// mini-FORTRAN dialect with the loop/array idioms of the packages they came
// from (MINPACK's FDJAC/HYBRJ, EISPACK's TQL, FISHPACK's HWSCRT, and
// atmospheric-simulation-style grid codes for MAIN/FIELD/INIT/APPROX/
// CONDUCT). Absolute trace content differs from the 1985 originals — only
// the structural reference patterns are reproduced; see DESIGN.md §1.
#ifndef CDMM_SRC_WORKLOADS_WORKLOADS_H_
#define CDMM_SRC_WORKLOADS_WORKLOADS_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/vm/cd_policy.h"

namespace cdmm {

struct Workload {
  std::string name;         // "MAIN", "FDJAC", ...
  std::string description;  // provenance / structure note
  const char* source;       // mini-FORTRAN text
};

// All nine programs, in the paper's order of appearance.
const std::vector<Workload>& AllWorkloads();

// Additional kernels beyond the paper's nine (same packages' idioms:
// EISPACK's TRED2, a FISHPACK-style Poisson SOR sweep, and Gauss-Jordan
// elimination). Not part of the table benches; available to cdmmc, the
// examples and the multiprogramming mixes.
const std::vector<Workload>& ExtendedWorkloads();

// Lookup by name across both lists; CHECK-fails for unknown names.
const Workload& FindWorkload(const std::string& name);

// Parses and checks a workload's source (CHECK-fails on error: embedded
// sources are compile-time constants of this library).
Program ParseWorkload(const Workload& workload);

// A named CD configuration of a workload: the paper's Table 1 rows MAIN,
// MAIN1..MAIN3, FDJAC/FDJAC1, TQL1/TQL2 are the same programs run with
// different directive sets ("a program has to be rerun with different sets
// of MD"), which this project expresses as directive-selection choices.
struct WorkloadVariant {
  std::string variant_name;  // "MAIN3"
  std::string workload;      // "MAIN"
  DirectiveSelection selection = DirectiveSelection::kInnermost;
  int level_cap = 1;         // used when selection == kLevelCap
  bool honor_locks = true;
};

// The 8 rows of Table 1.
const std::vector<WorkloadVariant>& Table1Variants();

// The variant used for each program in Table 2 (one row per program).
const std::vector<WorkloadVariant>& Table2Variants();

// The 14 rows of Tables 3 and 4.
const std::vector<WorkloadVariant>& Table3Variants();

// Finds a variant by name across all lists; CHECK-fails if absent.
const WorkloadVariant& FindVariant(const std::string& variant_name);

}  // namespace cdmm

#endif  // CDMM_SRC_WORKLOADS_WORKLOADS_H_
