// A small work-stealing thread pool for the sweep engine. Each worker owns a
// deque: tasks posted from a worker go to its own deque (LIFO for cache
// locality), external posts go to a shared injection queue, and idle workers
// steal from the opposite end (FIFO) of their peers' deques. Destruction
// drains: every task posted before (or, transitively, from) the drain
// completes before the destructor returns.
//
// ParallelFor is the deadlock-free fan-out primitive on top of the pool: the
// caller claims iterations from a shared atomic counter alongside up to
// pool-size helper tasks, so it makes progress even when every worker is
// busy — which makes nested ParallelFor (a sweep task fanning out its own
// sub-sweep) safe at any depth.
#ifndef CDMM_SRC_EXEC_THREAD_POOL_H_
#define CDMM_SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cdmm {

class ThreadPool {
 public:
  // `threads` == 0 picks DefaultConcurrency().
  explicit ThreadPool(unsigned threads = 0);

  // Drains every pending task (including tasks posted by running tasks),
  // then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Fire-and-forget. Safe to call from inside a running task.
  void Post(std::function<void()> task);

  // Post with a future; exceptions thrown by `fn` surface on get().
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> Submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Post([task] { (*task)(); });
    return future;
  }

  // std::thread::hardware_concurrency() with a floor of 1.
  static unsigned DefaultConcurrency();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
  };

  void WorkerLoop(unsigned index);
  // Pops one task (own deque, then the injection queue, then a steal) and
  // runs it. Returns false when no task was found anywhere.
  bool RunOneTask(unsigned self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex queue_mutex_;                       // injection queue + sleeping
  std::deque<std::function<void()>> injected_;   // guarded by queue_mutex_
  std::condition_variable wake_;
  std::atomic<uint64_t> queued_{0};  // tasks sitting in any queue or deque
  std::atomic<bool> stopping_{false};
};

// Runs body(i) for every i in [0, n), distributing iterations over the
// pool's workers while the calling thread participates. Returns when every
// iteration has completed. Iterations must be independent; the assignment of
// iterations to threads is nondeterministic, so deterministic callers write
// results by index. If any iteration throws, remaining unclaimed iterations
// are skipped and the first exception is rethrown here. A null or
// single-threaded pool degrades to a plain serial loop.
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& body);

}  // namespace cdmm

#endif  // CDMM_SRC_EXEC_THREAD_POOL_H_
