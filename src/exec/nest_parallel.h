// Intra-workload parallel trace generation. The dependence graph proves
// which top-level loop nests of one program cannot conflict (no shared array
// with a write, or provably disjoint access ranges); non-conflicting
// consecutive nests are executed concurrently, each against a private copy
// of the interpreter state, and the per-nest traces are merged in source
// order. The merged trace is byte-identical to a sequential generation at
// any job count — concurrency changes wall-clock only, never output.
#ifndef CDMM_SRC_EXEC_NEST_PARALLEL_H_
#define CDMM_SRC_EXEC_NEST_PARALLEL_H_

#include <cstddef>
#include <vector>

#include "src/analysis/dependence.h"
#include "src/analysis/loop_tree.h"
#include "src/directives/plan.h"
#include "src/exec/sweep_scheduler.h"
#include "src/interp/interpreter.h"
#include "src/trace/trace.h"

namespace cdmm {

struct NestParallelResult {
  Trace trace;
  // Execution groups, in source order; each group's units (top-level
  // statement indices) ran concurrently when the group has more than one.
  std::vector<std::vector<size_t>> groups;
  size_t total_units = 0;
  // Units that ran inside a multi-unit (actually concurrent) group.
  size_t concurrent_units = 0;
};

// Partitions the program's top-level statements into maximal runs of
// pairwise non-conflicting units (pure scheduling decision, deterministic,
// independent of the pool). Exposed for tests.
std::vector<std::vector<size_t>> PlanNestGroups(const Program& program,
                                                const DependenceGraph& deps);

// Generates the program's trace with non-conflicting top-level nests run
// concurrently on `scheduler`'s pool (a null pool degenerates to the serial
// order). The result's trace equals GenerateTrace(...) byte for byte.
NestParallelResult GenerateTraceParallelNests(const Program& program, const LoopTree& tree,
                                              const DependenceGraph& deps,
                                              const DirectivePlan* plan,
                                              const InterpOptions& options,
                                              const SweepScheduler& scheduler);

}  // namespace cdmm

#endif  // CDMM_SRC_EXEC_NEST_PARALLEL_H_
