// The shared --jobs flag of the benches, examples and cdmmc. Parsing strips
// the flag from argv so binaries with their own argument handling (including
// google-benchmark's Initialize) never see it.
#ifndef CDMM_SRC_EXEC_FLAGS_H_
#define CDMM_SRC_EXEC_FLAGS_H_

namespace cdmm {

// Extracts "--jobs N" or "--jobs=N" from argv (mutating argc/argv) and
// returns the requested worker count: N >= 1 as given, N == 0 or "auto" for
// the hardware concurrency. Without the flag, returns `default_jobs`
// resolved the same way (so the default 0 means "all cores"). Exits with a
// usage error on a malformed value.
unsigned ParseJobsFlag(int* argc, char** argv, unsigned default_jobs = 0);

}  // namespace cdmm

#endif  // CDMM_SRC_EXEC_FLAGS_H_
