// The shared --jobs / --sweep-engine flags of the benches, examples and
// cdmmc. Parsing strips the flags from argv so binaries with their own
// argument handling (including google-benchmark's Initialize) never see
// them.
#ifndef CDMM_SRC_EXEC_FLAGS_H_
#define CDMM_SRC_EXEC_FLAGS_H_

#include "src/vm/sweep_engines.h"

namespace cdmm {

// Extracts "--jobs N" or "--jobs=N" from argv (mutating argc/argv) and
// returns the requested worker count: N >= 1 as given, N == 0 or "auto" for
// the hardware concurrency. Without the flag, returns `default_jobs`
// resolved the same way (so the default 0 means "all cores"). Exits with a
// usage error on a malformed value.
unsigned ParseJobsFlag(int* argc, char** argv, unsigned default_jobs = 0);

// Extracts "--sweep-engine E" or "--sweep-engine=E" (E = naive | onepass)
// from argv the same way. Without the flag, returns kOnePass; exits with a
// usage error on anything else.
SweepEngine ParseSweepEngineFlag(int* argc, char** argv);

}  // namespace cdmm

#endif  // CDMM_SRC_EXEC_FLAGS_H_
