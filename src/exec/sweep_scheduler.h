// The parallel sweep engine. A sweep is an ordered list of independent
// simulation points over one shared immutable trace; the scheduler fans the
// points out over a ThreadPool and returns results ordered by sweep index —
// never by completion order — so parallel runs are bit-identical to serial
// ones. Traces travel as std::shared_ptr<const Trace>: one memoized copy per
// workload is read concurrently by every policy simulation, and the
// shared_ptr keeps it alive for tasks that outlive the submitting scope.
#ifndef CDMM_SRC_EXEC_SWEEP_SCHEDULER_H_
#define CDMM_SRC_EXEC_SWEEP_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/analysis/analytic_locality.h"
#include "src/exec/thread_pool.h"
#include "src/robust/fault_injector.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/prepared_trace.h"
#include "src/trace/trace.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/hierarchy.h"
#include "src/vm/sim_result.h"
#include "src/vm/sweep_engines.h"

namespace cdmm {

namespace sweep_internal {

// Wall-clock per-item latency: genuinely non-deterministic, so the histogram
// is registered runtime and excluded from cross---jobs comparisons.
inline void RecordItemLatency(std::chrono::steady_clock::time_point start) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  TELEM_HIST_RT("exec.sweep_item_latency_us", telem::BucketSpec::PowersOfTwo(24),
                static_cast<uint64_t>(us));
}

}  // namespace sweep_internal

// Cooperative cancellation handle for sweep items. Copies share the cancelled
// flag; a default-constructed token never expires. Long-running item
// functions should poll Expired() at convenient points and return early.
class CancelToken {
 public:
  CancelToken();

  // A token that expires `ms` milliseconds from now (0 = already expired).
  static CancelToken AfterMs(uint64_t ms);
  // A token that is expired from the start (used for injected stalls).
  static CancelToken PreExpired();

  bool Expired() const;
  void Cancel() const;  // shared flag: const so workers can cancel peers

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

// Thrown by an item function that observes its CancelToken expired and bails
// out early; MapPartial reports the item as a timeout rather than an error.
struct SweepCancelled : std::exception {
  const char* what() const noexcept override { return "cancelled"; }
};

// Why one sweep item produced no result.
struct SweepItemFailure {
  size_t index = 0;  // sweep index of the failed item
  enum class Kind { kTimeout, kError } kind = Kind::kError;
  std::string message;
};

// Outcome of a deadline-bounded sweep: the results that completed (ordered
// by sweep index, with `indices[k]` the sweep index of `results[k]`) plus a
// structured record of every item that did not.
template <typename R>
struct PartialSweep {
  std::vector<R> results;
  std::vector<size_t> indices;
  std::vector<SweepItemFailure> failures;  // ascending by index

  bool complete() const { return failures.empty(); }
};

// One cell of SweepScheduler::HierarchyLadder: a policy spec simulated
// against a hierarchy shape whose backing-store latency is `penalty`.
struct HierarchyLadderCell {
  std::string policy;    // the --simulate spec that ran
  uint64_t penalty = 0;  // backing-store latency for this rung
  HierarchySpec spec;    // the shape actually simulated
  SimResult result;
};

// Knobs for SweepScheduler::MapPartial.
struct PartialMapOptions {
  // Wall-clock budget for the whole sweep; items that have not started when
  // it expires are reported as timeouts. 0 = no deadline.
  uint64_t deadline_ms = 0;
  // Optional deterministic injection: stalled items become timeouts without
  // running, poisoned items throw and become errors. Null = nominal.
  const FaultInjector* injector = nullptr;
};

class SweepScheduler {
 public:
  // A null pool runs every sweep serially (useful as the --jobs 1 baseline).
  // `engine` picks the implementation behind the Ws/Opt parameter sweeps:
  // kOnePass (default) computes the whole curve in one scan, kNaive
  // re-simulates per point (fanned over the pool). Both produce bit-identical
  // SweepPoints at any --jobs.
  explicit SweepScheduler(ThreadPool* pool = nullptr,
                          SweepEngine engine = SweepEngine::kOnePass)
      : pool_(pool), engine_(engine) {}

  ThreadPool* pool() const { return pool_; }
  SweepEngine engine() const { return engine_; }

  // results[i] = fn(i), computed concurrently, returned in index order.
  // R must be default-constructible; fn must be safe to call concurrently.
  template <typename R>
  std::vector<R> Map(size_t n, const std::function<R(size_t)>& fn) const {
    std::vector<R> results(n);
    ParallelFor(pool_, n, [&](size_t i) {
      auto start = std::chrono::steady_clock::now();
      results[i] = fn(i);
      TELEM_COUNT("exec.sweep_item_completed");
      sweep_internal::RecordItemLatency(start);
    });
    return results;
  }

  // Graceful-degradation variant of Map: items that exceed the deadline, are
  // deterministically stalled/poisoned by the injector, or throw, become
  // structured SweepItemFailure entries instead of aborting the sweep.
  // Completed results keep sweep-index order regardless of thread count, so
  // a partial report is itself deterministic for a fixed failure set. Unlike
  // Map, R need not be default-constructible.
  template <typename R>
  PartialSweep<R> MapPartial(size_t n,
                             const std::function<R(size_t, const CancelToken&)>& fn,
                             const PartialMapOptions& options = {}) const {
    std::vector<std::optional<R>> slots(n);
    std::vector<std::optional<SweepItemFailure>> fails(n);
    CancelToken sweep_token = options.deadline_ms > 0
                                  ? CancelToken::AfterMs(options.deadline_ms)
                                  : CancelToken();
    ParallelFor(pool_, n, [&](size_t i) {
      if (options.injector != nullptr && options.injector->StallsSweepItem(i)) {
        // A stalled worker never finishes inside any deadline; model it as a
        // deterministic timeout without burning real wall-clock.
        fails[i] = SweepItemFailure{i, SweepItemFailure::Kind::kTimeout,
                                    "injected stall: item abandoned at deadline"};
        TELEM_COUNT_RT("exec.sweep_item_timed_out");
        return;
      }
      if (sweep_token.Expired()) {
        fails[i] = SweepItemFailure{i, SweepItemFailure::Kind::kTimeout,
                                    "sweep deadline expired before item started"};
        TELEM_COUNT_RT("exec.sweep_item_timed_out");
        return;
      }
      auto start = std::chrono::steady_clock::now();
      try {
        if (options.injector != nullptr && options.injector->PoisonsSweepItem(i)) {
          throw std::runtime_error("injected poison");
        }
        slots[i] = fn(i, sweep_token);
        TELEM_COUNT("exec.sweep_item_completed");
        sweep_internal::RecordItemLatency(start);
      } catch (const SweepCancelled&) {
        fails[i] = SweepItemFailure{i, SweepItemFailure::Kind::kTimeout,
                                    "item cancelled mid-run at deadline"};
        TELEM_COUNT_RT("exec.sweep_item_timed_out");
      } catch (const std::exception& e) {
        fails[i] = SweepItemFailure{i, SweepItemFailure::Kind::kError, e.what()};
        TELEM_COUNT("exec.sweep_item_failed");
      } catch (...) {
        fails[i] = SweepItemFailure{i, SweepItemFailure::Kind::kError,
                                    "unknown exception"};
        TELEM_COUNT("exec.sweep_item_failed");
      }
    });
    PartialSweep<R> out;
    for (size_t i = 0; i < n; ++i) {
      if (slots[i].has_value()) {
        out.results.push_back(*std::move(slots[i]));
        out.indices.push_back(i);
      } else {
        out.failures.push_back(std::move(fails[i]).value());
      }
    }
    return out;
  }

  // The paper's parameter sweeps, bit-identical to the serial
  // LruSweep/WsSweep/per-m SimulateFixed under either engine. The LRU curve
  // comes out of one stack-distance pass (already whole-curve-in-one-scan,
  // so it stays a single task). The WS and OPT sweeps dispatch on engine():
  // kNaive re-simulates every window / allocation independently, one task
  // per point; kOnePass derives the whole curve from one scan of the
  // (optionally caller-provided, else freshly built) PreparedTrace.
  std::vector<SweepPoint> Lru(std::shared_ptr<const Trace> refs, uint32_t max_frames,
                              const SimOptions& options = {}) const;
  std::vector<SweepPoint> Ws(std::shared_ptr<const Trace> refs, std::vector<uint64_t> taus,
                             const SimOptions& options = {},
                             std::shared_ptr<const PreparedTrace> prepared = nullptr) const;
  std::vector<SweepPoint> Opt(std::shared_ptr<const Trace> refs, uint32_t max_frames,
                              const SimOptions& options = {},
                              std::shared_ptr<const PreparedTrace> prepared = nullptr) const;

  // The analytic entry points (engine = kAnalytic with a built model): the
  // curves come out of the symbolic histograms in time independent of trace
  // length for affine programs, bit-identical to Ws/Opt on the expanded
  // trace. Single closed-form evaluations — nothing to fan over the pool.
  std::vector<SweepPoint> AnalyticWs(const AnalyticLocality& model,
                                     const std::vector<uint64_t>& taus,
                                     const SimOptions& options = {}) const;
  std::vector<SweepPoint> AnalyticOpt(const AnalyticLocality& model, uint32_t max_frames,
                                      const SimOptions& options = {}) const;

  // The fault-penalty ladder (ISSUE 6): every (policy spec, penalty) cell
  // re-simulated against `shape` with the backing store's latency set to the
  // rung's penalty, fanned over the pool in cell order. The result answers
  // "does the CD advantage survive as the fault penalty drops 2000 -> 20?".
  // `full` must carry directives when `policies` contains cd-* specs;
  // policies must all be valid RunPolicySpec specs (checked).
  std::vector<HierarchyLadderCell> HierarchyLadder(
      std::shared_ptr<const Trace> full, std::shared_ptr<const Trace> refs,
      const HierarchySpec& shape, const std::vector<std::string>& policies,
      const std::vector<uint64_t>& penalties, const SimOptions& base = {}) const;

 private:
  ThreadPool* pool_;
  SweepEngine engine_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_EXEC_SWEEP_SCHEDULER_H_
