// The parallel sweep engine. A sweep is an ordered list of independent
// simulation points over one shared immutable trace; the scheduler fans the
// points out over a ThreadPool and returns results ordered by sweep index —
// never by completion order — so parallel runs are bit-identical to serial
// ones. Traces travel as std::shared_ptr<const Trace>: one memoized copy per
// workload is read concurrently by every policy simulation, and the
// shared_ptr keeps it alive for tasks that outlive the submitting scope.
#ifndef CDMM_SRC_EXEC_SWEEP_SCHEDULER_H_
#define CDMM_SRC_EXEC_SWEEP_SCHEDULER_H_

#include <memory>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/trace/trace.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {

class SweepScheduler {
 public:
  // A null pool runs every sweep serially (useful as the --jobs 1 baseline).
  explicit SweepScheduler(ThreadPool* pool = nullptr) : pool_(pool) {}

  ThreadPool* pool() const { return pool_; }

  // results[i] = fn(i), computed concurrently, returned in index order.
  // R must be default-constructible; fn must be safe to call concurrently.
  template <typename R>
  std::vector<R> Map(size_t n, const std::function<R(size_t)>& fn) const {
    std::vector<R> results(n);
    ParallelFor(pool_, n, [&](size_t i) { results[i] = fn(i); });
    return results;
  }

  // The paper's two parameter sweeps, bit-identical to the serial
  // LruSweep/WsSweep. The LRU curve comes out of one stack-distance pass
  // (already whole-curve-in-one-scan, so it stays a single task); the WS
  // sweep simulates every window independently, one task per τ.
  std::vector<SweepPoint> Lru(std::shared_ptr<const Trace> refs, uint32_t max_frames,
                              const SimOptions& options = {}) const;
  std::vector<SweepPoint> Ws(std::shared_ptr<const Trace> refs, std::vector<uint64_t> taus,
                             const SimOptions& options = {}) const;

 private:
  ThreadPool* pool_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_EXEC_SWEEP_SCHEDULER_H_
