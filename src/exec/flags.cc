#include "src/exec/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/exec/thread_pool.h"

namespace cdmm {
namespace {

unsigned ResolveJobs(const std::string& value) {
  if (value == "auto") {
    return ThreadPool::DefaultConcurrency();
  }
  char* end = nullptr;
  unsigned long n = std::strtoul(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || n > 1u << 20) {
    std::fprintf(stderr, "bad --jobs value '%s' (want a count, 0, or 'auto')\n",
                 value.c_str());
    std::exit(2);
  }
  return n == 0 ? ThreadPool::DefaultConcurrency() : static_cast<unsigned>(n);
}

SweepEngine ResolveSweepEngine(const std::string& value) {
  if (value == "naive") {
    return SweepEngine::kNaive;
  }
  if (value == "onepass") {
    return SweepEngine::kOnePass;
  }
  if (value == "analytic") {
    return SweepEngine::kAnalytic;
  }
  std::fprintf(stderr, "bad --sweep-engine value '%s' (want 'naive', 'onepass' or 'analytic')\n",
               value.c_str());
  std::exit(2);
}

}  // namespace

unsigned ParseJobsFlag(int* argc, char** argv, unsigned default_jobs) {
  unsigned jobs =
      default_jobs == 0 ? ThreadPool::DefaultConcurrency() : default_jobs;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "--jobs needs an argument\n");
        std::exit(2);
      }
      jobs = ResolveJobs(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = ResolveJobs(argv[i] + 7);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  return jobs;
}

SweepEngine ParseSweepEngineFlag(int* argc, char** argv) {
  SweepEngine engine = SweepEngine::kOnePass;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--sweep-engine") == 0) {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "--sweep-engine needs an argument\n");
        std::exit(2);
      }
      engine = ResolveSweepEngine(argv[++i]);
    } else if (std::strncmp(argv[i], "--sweep-engine=", 15) == 0) {
      engine = ResolveSweepEngine(argv[i] + 15);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  return engine;
}

}  // namespace cdmm
