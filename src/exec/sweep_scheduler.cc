#include "src/exec/sweep_scheduler.h"

#include <utility>

#include "src/support/check.h"
#include "src/support/interrupt.h"
#include "src/vm/policy_spec.h"
#include "src/vm/working_set.h"

namespace cdmm {

CancelToken::CancelToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

CancelToken CancelToken::AfterMs(uint64_t ms) {
  CancelToken token;
  token.has_deadline_ = true;
  token.deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return token;
}

CancelToken CancelToken::PreExpired() {
  CancelToken token;
  token.Cancel();
  return token;
}

bool CancelToken::Expired() const {
  if (cancelled_->load(std::memory_order_relaxed)) {
    return true;
  }
  // A latched SIGINT/SIGTERM expires every token: in-flight deadline-aware
  // work unwinds into ordered partial results instead of being killed.
  if (InterruptRequested()) {
    return true;
  }
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

void CancelToken::Cancel() const {
  cancelled_->store(true, std::memory_order_relaxed);
}

std::vector<SweepPoint> SweepScheduler::Lru(std::shared_ptr<const Trace> refs,
                                            uint32_t max_frames,
                                            const SimOptions& options) const {
  CDMM_CHECK(refs != nullptr);
  return LruSweep(*refs, max_frames, options);
}

std::vector<SweepPoint> SweepScheduler::Ws(std::shared_ptr<const Trace> refs,
                                           std::vector<uint64_t> taus,
                                           const SimOptions& options,
                                           std::shared_ptr<const PreparedTrace> prepared) const {
  CDMM_CHECK(refs != nullptr);
  if (engine_ != SweepEngine::kNaive) {
    // The whole characteristic from one scan; parallelism adds nothing.
    // A scheduler configured for kAnalytic but handed a flat trace (no
    // model) answers through the one-pass scan: same points, bit for bit.
    if (prepared != nullptr) {
      return OnePassWsSweep(*prepared, taus, options);
    }
    return OnePassWsSweep(*refs, taus, options);
  }
  std::vector<SweepPoint> points(taus.size());
  // One task per window; every task reads the same immutable trace. The
  // point construction matches the serial WsSweep field-for-field.
  ParallelFor(pool_, taus.size(), [&](size_t i) {
    SimResult r = SimulateWs(*refs, taus[i], options);
    SweepPoint p;
    p.parameter = static_cast<double>(taus[i]);
    p.faults = r.faults;
    p.elapsed = r.elapsed;
    p.mean_memory = r.mean_memory;
    p.space_time = r.space_time;
    points[i] = p;
  });
  return points;
}

std::vector<SweepPoint> SweepScheduler::Opt(std::shared_ptr<const Trace> refs,
                                            uint32_t max_frames, const SimOptions& options,
                                            std::shared_ptr<const PreparedTrace> prepared) const {
  CDMM_CHECK(refs != nullptr);
  CDMM_CHECK(max_frames >= 1);
  if (engine_ != SweepEngine::kNaive) {
    if (prepared != nullptr) {
      return OnePassOptSweep(*prepared, max_frames, options);
    }
    return OnePassOptSweep(*refs, max_frames, options);
  }
  // One full OPT simulation per allocation, fanned over the pool; the point
  // construction matches NaiveOptSweep field-for-field.
  std::vector<SweepPoint> points(max_frames);
  ParallelFor(pool_, max_frames, [&](size_t i) {
    uint32_t m = static_cast<uint32_t>(i) + 1;
    SimResult r = SimulateFixed(*refs, m, Replacement::kOpt, options);
    SweepPoint p;
    p.parameter = static_cast<double>(m);
    p.faults = r.faults;
    p.elapsed = r.elapsed;
    p.mean_memory = r.mean_memory;
    p.space_time = r.space_time;
    points[i] = p;
  });
  return points;
}

std::vector<SweepPoint> SweepScheduler::AnalyticWs(const AnalyticLocality& model,
                                                   const std::vector<uint64_t>& taus,
                                                   const SimOptions& options) const {
  return AnalyticWsSweep(model, taus, options);
}

std::vector<SweepPoint> SweepScheduler::AnalyticOpt(const AnalyticLocality& model,
                                                    uint32_t max_frames,
                                                    const SimOptions& options) const {
  CDMM_CHECK(max_frames >= 1);
  return AnalyticOptSweep(model, max_frames, options);
}

std::vector<HierarchyLadderCell> SweepScheduler::HierarchyLadder(
    std::shared_ptr<const Trace> full, std::shared_ptr<const Trace> refs,
    const HierarchySpec& shape, const std::vector<std::string>& policies,
    const std::vector<uint64_t>& penalties, const SimOptions& base) const {
  CDMM_CHECK(full != nullptr && refs != nullptr);
  // Materialise every cell (and its spec) before fanning out so the workers
  // can point SimOptions::hierarchy at stable storage.
  std::vector<HierarchyLadderCell> cells;
  cells.reserve(policies.size() * penalties.size());
  for (const std::string& policy : policies) {
    for (uint64_t penalty : penalties) {
      HierarchyLadderCell cell;
      cell.policy = policy;
      cell.penalty = penalty;
      cell.spec = shape.WithBottomLatency(penalty);
      cells.push_back(std::move(cell));
    }
  }
  ParallelFor(pool_, cells.size(), [&](size_t i) {
    HierarchyLadderCell& cell = cells[i];
    SimOptions options = base;
    // Keep the flat service time on the same rung so any policy parameter
    // derived from it (e.g. vmin's default window) tracks the ladder.
    options.fault_service_time = cell.penalty;
    options.hierarchy = &cell.spec;
    std::optional<SimResult> r = RunPolicySpec(cell.policy, *full, *refs, options);
    CDMM_CHECK_MSG(r.has_value(), "unknown policy spec in HierarchyLadder");
    cell.result = *std::move(r);
    TELEM_COUNT("exec.hierarchy_cell_completed");
  });
  return cells;
}

}  // namespace cdmm
