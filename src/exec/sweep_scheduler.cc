#include "src/exec/sweep_scheduler.h"

#include <utility>

#include "src/support/check.h"
#include "src/vm/working_set.h"

namespace cdmm {

CancelToken::CancelToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

CancelToken CancelToken::AfterMs(uint64_t ms) {
  CancelToken token;
  token.has_deadline_ = true;
  token.deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return token;
}

CancelToken CancelToken::PreExpired() {
  CancelToken token;
  token.Cancel();
  return token;
}

bool CancelToken::Expired() const {
  if (cancelled_->load(std::memory_order_relaxed)) {
    return true;
  }
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

void CancelToken::Cancel() const {
  cancelled_->store(true, std::memory_order_relaxed);
}

std::vector<SweepPoint> SweepScheduler::Lru(std::shared_ptr<const Trace> refs,
                                            uint32_t max_frames,
                                            const SimOptions& options) const {
  CDMM_CHECK(refs != nullptr);
  return LruSweep(*refs, max_frames, options);
}

std::vector<SweepPoint> SweepScheduler::Ws(std::shared_ptr<const Trace> refs,
                                           std::vector<uint64_t> taus,
                                           const SimOptions& options,
                                           std::shared_ptr<const PreparedTrace> prepared) const {
  CDMM_CHECK(refs != nullptr);
  if (engine_ == SweepEngine::kOnePass) {
    // The whole characteristic from one scan; parallelism adds nothing.
    if (prepared != nullptr) {
      return OnePassWsSweep(*prepared, taus, options);
    }
    return OnePassWsSweep(*refs, taus, options);
  }
  std::vector<SweepPoint> points(taus.size());
  // One task per window; every task reads the same immutable trace. The
  // point construction matches the serial WsSweep field-for-field.
  ParallelFor(pool_, taus.size(), [&](size_t i) {
    SimResult r = SimulateWs(*refs, taus[i], options);
    SweepPoint p;
    p.parameter = static_cast<double>(taus[i]);
    p.faults = r.faults;
    p.elapsed = r.elapsed;
    p.mean_memory = r.mean_memory;
    p.space_time = r.space_time;
    points[i] = p;
  });
  return points;
}

std::vector<SweepPoint> SweepScheduler::Opt(std::shared_ptr<const Trace> refs,
                                            uint32_t max_frames, const SimOptions& options,
                                            std::shared_ptr<const PreparedTrace> prepared) const {
  CDMM_CHECK(refs != nullptr);
  CDMM_CHECK(max_frames >= 1);
  if (engine_ == SweepEngine::kOnePass) {
    if (prepared != nullptr) {
      return OnePassOptSweep(*prepared, max_frames, options);
    }
    return OnePassOptSweep(*refs, max_frames, options);
  }
  // One full OPT simulation per allocation, fanned over the pool; the point
  // construction matches NaiveOptSweep field-for-field.
  std::vector<SweepPoint> points(max_frames);
  ParallelFor(pool_, max_frames, [&](size_t i) {
    uint32_t m = static_cast<uint32_t>(i) + 1;
    SimResult r = SimulateFixed(*refs, m, Replacement::kOpt, options);
    SweepPoint p;
    p.parameter = static_cast<double>(m);
    p.faults = r.faults;
    p.elapsed = r.elapsed;
    p.mean_memory = r.mean_memory;
    p.space_time = r.space_time;
    points[i] = p;
  });
  return points;
}

}  // namespace cdmm
