#include "src/exec/nest_parallel.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/support/check.h"

namespace cdmm {
namespace {

// Static array footprint of one top-level statement (unit): which arrays it
// may read and write, plus the root loop id when the unit is a loop (for
// access-range refinement).
struct UnitFootprint {
  std::set<std::string> reads;
  std::set<std::string> writes;
  uint32_t root_loop = 0;
};

void CollectStmtFootprint(const Stmt& stmt, UnitFootprint* fp) {
  if (stmt.kind == Stmt::Kind::kDoLoop) {
    for (const StmtPtr& s : stmt.body) {
      CollectStmtFootprint(*s, fp);
    }
    return;
  }
  const Stmt& assign = stmt.kind == Stmt::Kind::kIf ? *stmt.if_then : stmt;
  const ArrayRef* write_ref =
      assign.lhs_array.has_value() ? &*assign.lhs_array : nullptr;
  for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
    if (ref == write_ref) {
      fp->writes.insert(ref->name);
      // Indirect subscripts of the written element are still reads.
      for (const IndexExpr& ix : ref->indices) {
        if (ix.IsIndirect()) {
          fp->reads.insert(ix.indirect->name);
        }
      }
    } else {
      fp->reads.insert(ref->name);
    }
  }
}

std::vector<UnitFootprint> CollectFootprints(const Program& program) {
  std::vector<UnitFootprint> fps;
  fps.reserve(program.body.size());
  for (const StmtPtr& s : program.body) {
    UnitFootprint fp;
    if (s->kind == Stmt::Kind::kDoLoop) {
      fp.root_loop = s->loop_id;
    }
    CollectStmtFootprint(*s, &fp);
    fps.push_back(std::move(fp));
  }
  return fps;
}

// True when the whole-run access ranges of `array` under the two root loops
// are provably disjoint in some dimension (both sides fully known).
bool RangesDisjoint(const DependenceGraph& deps, const std::string& array, uint32_t root_a,
                    uint32_t root_b) {
  if (root_a == 0 || root_b == 0) {
    return false;
  }
  const std::map<std::string, AccessRange>* ra = deps.RangesFor(root_a);
  const std::map<std::string, AccessRange>* rb = deps.RangesFor(root_b);
  if (ra == nullptr || rb == nullptr) {
    return false;
  }
  auto ia = ra->find(array);
  auto ib = rb->find(array);
  if (ia == ra->end() || ib == rb->end()) {
    return false;
  }
  const AccessRange& a = ia->second;
  const AccessRange& b = ib->second;
  size_t dims = std::min(a.dims.size(), b.dims.size());
  for (size_t d = 0; d < dims; ++d) {
    if (!a.dims[d].known || !b.dims[d].known) {
      continue;
    }
    if (a.dims[d].max < b.dims[d].min || b.dims[d].max < a.dims[d].min) {
      return true;
    }
  }
  return false;
}

// Two units conflict when they share an array with at least one write and
// the dependence graph cannot prove their footprints disjoint. Two writers
// of the same INTEGER array conflict even with provably disjoint ranges:
// the fold-back merges whole INTEGER arrays, so the later unit's copy would
// clobber the elements the earlier unit wrote.
bool UnitsConflict(const DependenceGraph& deps, const std::set<std::string>& integer_arrays,
                   const UnitFootprint& a, const UnitFootprint& b) {
  auto conflicting = [&](const std::set<std::string>& xs, const std::set<std::string>& ys,
                         uint32_t root_x, uint32_t root_y) {
    for (const std::string& array : xs) {
      if (ys.count(array) != 0 && !RangesDisjoint(deps, array, root_x, root_y)) {
        return true;
      }
    }
    return false;
  };
  for (const std::string& array : a.writes) {
    if (b.writes.count(array) != 0 && integer_arrays.count(array) != 0) {
      return true;
    }
  }
  return conflicting(a.writes, b.writes, a.root_loop, b.root_loop) ||
         conflicting(a.writes, b.reads, a.root_loop, b.root_loop) ||
         conflicting(a.reads, b.writes, a.root_loop, b.root_loop);
}

std::set<std::string> IntegerArrayNames(const Program& program) {
  std::set<std::string> names;
  for (const ArrayDecl& d : program.arrays) {
    if (d.is_integer) {
      names.insert(d.name);
    }
  }
  return names;
}

}  // namespace

std::vector<std::vector<size_t>> PlanNestGroups(const Program& program,
                                                const DependenceGraph& deps) {
  std::vector<UnitFootprint> fps = CollectFootprints(program);
  std::set<std::string> integer_arrays = IntegerArrayNames(program);
  std::vector<std::vector<size_t>> groups;
  for (size_t u = 0; u < fps.size(); ++u) {
    bool fits = !groups.empty();
    if (fits) {
      for (size_t member : groups.back()) {
        if (UnitsConflict(deps, integer_arrays, fps[member], fps[u])) {
          fits = false;
          break;
        }
      }
    }
    if (fits) {
      groups.back().push_back(u);
    } else {
      groups.push_back({u});
    }
  }
  return groups;
}

NestParallelResult GenerateTraceParallelNests(const Program& program, const LoopTree& tree,
                                              const DependenceGraph& deps,
                                              const DirectivePlan* plan,
                                              const InterpOptions& options,
                                              const SweepScheduler& scheduler) {
  NestParallelResult out;
  out.trace.set_name(program.name);
  out.groups = PlanNestGroups(program, deps);
  out.total_units = program.body.size();

  std::vector<UnitFootprint> fps = CollectFootprints(program);
  InterpState master;
  for (const std::vector<size_t>& group : out.groups) {
    if (group.size() == 1) {
      size_t u = group[0];
      out.trace.Append(GenerateTraceSlice(program, tree, plan, options, u, u + 1, &master));
      continue;
    }
    out.concurrent_units += group.size();
    // Each unit of the group runs against a private copy of the state; the
    // group is pairwise non-conflicting, so the copies diverge only in the
    // arrays each unit itself writes, and those are disjoint across units.
    struct Slice {
      Trace trace;
      InterpState state;
    };
    std::vector<Slice> slices =
        scheduler.Map<Slice>(group.size(), [&](size_t k) {
          Slice slice;
          slice.state = master;
          size_t u = group[k];
          slice.trace =
              GenerateTraceSlice(program, tree, plan, options, u, u + 1, &slice.state);
          return slice;
        });
    for (size_t k = 0; k < group.size(); ++k) {
      out.trace.Append(slices[k].trace);
      // Fold the unit's INTEGER-array writes back into the master state.
      // Whole-array assignment is safe because the planner serializes any
      // two writers of the same INTEGER array: within a group each such
      // array has at most one writer, and that slice's unwritten elements
      // still hold the master values it started from.
      for (const std::string& array : fps[group[k]].writes) {
        auto it = slices[k].state.int_arrays.find(array);
        if (it != slices[k].state.int_arrays.end()) {
          master.int_arrays[array] = it->second;
        }
      }
    }
  }
  return out;
}

}  // namespace cdmm
