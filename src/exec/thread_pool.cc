#include "src/exec/thread_pool.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {

namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so
// Post can route nested tasks to the worker's own deque.
thread_local ThreadPool* tls_pool = nullptr;
thread_local unsigned tls_worker = 0;

}  // namespace

unsigned ThreadPool::DefaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = DefaultConcurrency();
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_.store(true);
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
  CDMM_CHECK_MSG(queued_.load() == 0, "thread pool destroyed with tasks pending");
}

void ThreadPool::Post(std::function<void()> task) {
  CDMM_CHECK(task != nullptr);
  // queued_ goes up before the task becomes visible so that a worker
  // deciding to sleep under queue_mutex_ either sees the count and rescans,
  // or is already waiting and catches the notify below.
  uint64_t depth = queued_.fetch_add(1) + 1;
  TELEM_COUNT_RT("exec.task_posted");
  TELEM_GAUGE_MAX_RT("exec.queue_depth_peak", depth);
  if (tls_pool == this) {
    {
      Worker& own = *workers_[tls_worker];
      std::lock_guard<std::mutex> lock(own.mutex);
      own.deque.push_back(std::move(task));
    }
    // Empty critical section: a peer that read queued_ == 0 is either fully
    // asleep (the notify below reaches it) or still holds queue_mutex_ (it
    // will re-read queued_ != 0 before sleeping). Without this fence the
    // notify could fall into the gap between its check and its sleep.
    { std::lock_guard<std::mutex> lock(queue_mutex_); }
  } else {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    injected_.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::RunOneTask(unsigned self) {
  std::function<void()> task;
  {
    // Own deque, newest first.
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      task = std::move(own.deque.back());
      own.deque.pop_back();
    }
  }
  if (task == nullptr) {
    // Injection queue, oldest first.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!injected_.empty()) {
      task = std::move(injected_.front());
      injected_.pop_front();
    }
  }
  if (task == nullptr) {
    // Steal the oldest task of a peer, scanning from the next slot so the
    // victim choice is spread over the ring rather than biased to worker 0.
    for (size_t k = 1; k < workers_.size() && task == nullptr; ++k) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.deque.empty()) {
        task = std::move(victim.deque.front());
        victim.deque.pop_front();
        TELEM_COUNT_RT("exec.task_stolen");
      }
    }
  }
  if (task == nullptr) {
    return false;
  }
  queued_.fetch_sub(1);
  task();
  return true;
}

void ThreadPool::WorkerLoop(unsigned index) {
  tls_pool = this;
  tls_worker = index;
  for (;;) {
    if (RunOneTask(index)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (queued_.load() != 0) {
      continue;  // a task appeared between the scan and the lock — rescan
    }
    if (stopping_.load()) {
      break;
    }
    wake_.wait(lock, [this] { return queued_.load() != 0 || stopping_.load(); });
  }
}

namespace {

// Shared state of one ParallelFor. Helpers hold it via shared_ptr: a helper
// that only gets scheduled after the call returned finds every iteration
// claimed and exits without touching `body` (which dies with the caller).
struct ParallelForState {
  explicit ParallelForState(size_t size, const std::function<void(size_t)>& fn)
      : n(size), body(&fn) {}

  const size_t n;
  const std::function<void(size_t)>* body;
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex mutex;
  std::condition_variable idle;
  int active = 0;                // participants currently inside Drain
  std::exception_ptr error;      // first failure wins

  // Claims and runs iterations until none remain (or a failure aborted).
  void Drain() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= n || abort.load()) {
        return;
      }
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (error == nullptr) {
          error = std::current_exception();
        }
        abort.store(true);
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>(n, body);
  size_t helpers = std::min<size_t>(pool->size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Post([state] {
      {
        // Register before claiming: the caller's completion wait below only
        // returns once every participant that might run `body` has left.
        std::lock_guard<std::mutex> lock(state->mutex);
        ++state->active;
      }
      state->Drain();
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->active == 0) {
        state->idle.notify_all();
      }
    });
  }

  state->Drain();  // the caller participates — progress needs no free worker

  std::unique_lock<std::mutex> lock(state->mutex);
  state->idle.wait(lock, [&] { return state->active == 0; });
  if (state->error != nullptr) {
    std::rethrow_exception(state->error);
  }
}

}  // namespace cdmm
