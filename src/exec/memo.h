// Thread-safe compute-once memoization keyed by value. Concurrent callers of
// GetOrCompute for the same key run the computation exactly once (the losers
// block until it finishes); different keys compute concurrently. Returned
// references stay valid for the lifetime of the Memo — slots are
// heap-allocated, so map growth never moves a cached value. A computation
// that throws leaves the slot empty and retryable.
#ifndef CDMM_SRC_EXEC_MEMO_H_
#define CDMM_SRC_EXEC_MEMO_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

namespace cdmm {

template <typename K, typename V>
class Memo {
 public:
  const V& GetOrCompute(const K& key, const std::function<V()>& compute) {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::shared_ptr<Slot>& entry = slots_[key];
      if (entry == nullptr) {
        entry = std::make_shared<Slot>();
      }
      slot = entry;
    }
    std::call_once(slot->once, [&] { slot->value.emplace(compute()); });
    return *slot->value;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
  }

 private:
  struct Slot {
    std::once_flag once;
    std::optional<V> value;
  };

  mutable std::mutex mutex_;
  std::map<K, std::shared_ptr<Slot>> slots_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_EXEC_MEMO_H_
