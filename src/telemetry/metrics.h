// Deterministic metrics for the whole pipeline: lock-free-on-hot-path
// Counter / Gauge / fixed-bucket Histogram types behind a named
// MetricsRegistry.
//
// Determinism contract (what "identical at any --jobs" rests on):
//  - Counter::Add and Histogram::Record are commutative and associative, so
//    concurrent sweep items incrementing the same metric produce the same
//    final value regardless of thread count or scheduling order.
//  - Gauges carry last-write semantics, which is NOT order-independent; a
//    gauge updated from concurrent code must use UpdateMax (max is
//    commutative) or be registered as Det::kRuntime.
//  - Metrics that measure the execution substrate itself (wall-clock
//    latencies, steal counts, queue depths) are registered Det::kRuntime and
//    exported with "det": false so downstream determinism diffs can exclude
//    them. Everything else is keyed by virtual time / reference index and
//    must match bit-for-bit across --jobs 1/4/8.
//  - Snapshot() and MergeFrom() walk metrics in canonical (name-sorted)
//    order, so rendered reports are byte-stable.
//
// Instrumentation sites use the TELEM_* macros from telemetry.h, which
// compile to a single relaxed load + branch when telemetry is disabled.
#ifndef CDMM_SRC_TELEMETRY_METRICS_H_
#define CDMM_SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cdmm {
namespace telem {

// Whether a metric's value is reproducible across thread counts and runs.
// kRuntime metrics (timings, steal counts, queue depths) are excluded from
// cross---jobs determinism comparisons.
enum class Det : uint8_t { kDeterministic, kRuntime };

// Monotonic event count. Relaxed atomic adds: safe and deterministic-in-total
// under any interleaving.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level. Set() is last-write-wins (use only from serial
// contexts or for Det::kRuntime metrics); UpdateMax() is order-independent.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void UpdateMax(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Fixed bucket layout shared by a histogram and everything it merges with.
// Bucket i counts values v with bounds[i-1] < v <= bounds[i] (bounds[-1] is
// `lower - 1`); v < lower lands in the underflow bucket, v > bounds.back()
// in the overflow bucket.
struct BucketSpec {
  uint64_t lower = 0;            // smallest value the regular buckets cover
  std::vector<uint64_t> bounds;  // ascending inclusive upper bounds

  // first, 2*first, 4*first, ... (`count` bounds).
  static BucketSpec PowersOfTwo(size_t count, uint64_t first = 1);
  // lower + width, lower + 2*width, ... (`count` bounds).
  static BucketSpec Linear(uint64_t width, size_t count, uint64_t lower = 0);

  friend bool operator==(const BucketSpec&, const BucketSpec&) = default;
};

// Plain (non-atomic) histogram contents: the snapshot/merge currency.
// Default-constructed data (with a matching spec) is the merge identity.
struct HistogramData {
  BucketSpec spec;
  std::vector<uint64_t> counts;  // one per spec.bounds entry
  uint64_t underflow = 0;
  uint64_t overflow = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = UINT64_MAX;  // merge identity for min
  uint64_t max = 0;           // merge identity for max

  explicit HistogramData(BucketSpec s = {});

  // Element-wise merge; CHECK-fails on a spec mismatch. Associative and
  // commutative, with the empty data as identity (tested).
  void MergeFrom(const HistogramData& other);

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

// Concurrent fixed-bucket histogram. Record is lock-free (one binary search
// plus relaxed atomic adds).
class Histogram {
 public:
  explicit Histogram(BucketSpec spec);

  void Record(uint64_t v);
  HistogramData Snapshot() const;
  const BucketSpec& spec() const { return spec_; }
  void MergeFrom(const HistogramData& other);
  void Reset();

 private:
  BucketSpec spec_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> underflow_{0};
  std::atomic<uint64_t> overflow_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// Point-in-time view of a registry, in canonical (name-sorted) order.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    uint64_t value = 0;
    bool runtime = false;  // Det::kRuntime
  };
  struct GaugeRow {
    std::string name;
    uint64_t value = 0;
    bool runtime = false;
  };
  struct HistogramRow {
    std::string name;
    HistogramData data;
    bool runtime = false;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }
};

// Named metric registry. Registration (Get*) takes a mutex; the returned
// references are stable for the registry's lifetime, so hot paths register
// once (a function-local static) and then touch only the atomic metric.
// Metric names must follow the `subsystem.noun_verb` convention enforced by
// cdmm-lint's H003 pass (see src/lint/lint.h).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates. The first registration fixes the metric's kind,
  // determinism class and (for histograms) bucket spec; re-registering with
  // a different kind or spec CHECK-fails.
  Counter& GetCounter(std::string_view name, Det det = Det::kDeterministic);
  Gauge& GetGauge(std::string_view name, Det det = Det::kDeterministic);
  Histogram& GetHistogram(std::string_view name, const BucketSpec& spec,
                          Det det = Det::kDeterministic);

  MetricsSnapshot Snapshot() const;
  // Every registered metric name, sorted (the cdmm-lint --telemetry input).
  std::vector<std::string> Names() const;

  // Zeroes every metric but keeps registrations (fresh run, stable refs).
  void ResetValues();

  // Adds `other`'s values into this registry, creating metrics as needed, in
  // canonical order. Counters/histograms add; gauges merge by max (the only
  // order-independent choice). CHECK-fails on kind/spec mismatches.
  void MergeFrom(const MetricsRegistry& other);

 private:
  struct Entry {
    enum class Kind : uint8_t { kCounter, kGauge, kHistogram } kind;
    Det det = Det::kDeterministic;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& FindOrCreate(std::string_view name, Entry::Kind kind, Det det,
                      const BucketSpec* spec);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

// Renderers (canonical order, byte-stable for a fixed snapshot).
// Text: one metric per line, "[runtime]" marking Det::kRuntime entries.
std::string RenderMetricsText(const MetricsSnapshot& snapshot);
// JSON: the sidecar body WITHOUT the outer build/tool envelope (flags.cc
// adds those). "det": false marks runtime entries.
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);

}  // namespace telem
}  // namespace cdmm

#endif  // CDMM_SRC_TELEMETRY_METRICS_H_
