// Instrumentation entry points used by the rest of the codebase.
//
// Everything here is gated on a single process-wide enabled flag, read with
// one relaxed atomic load. When telemetry is off (the default), TELEM_COUNT
// and friends compile to that load plus a never-taken branch — no
// registration, no allocation, no formatting — which is what keeps nominal
// cdmmc stdout byte-identical and total overhead under 2%.
//
// Usage:
//   TELEM_COUNT("vm.fault_serviced");            // counter += 1
//   TELEM_COUNT_N("cd.grant_pages_total", n);    // counter += n
//   TELEM_GAUGE_MAX("os.phantom_frames_peak", v);
//   TELEM_HIST("vm.fault_service_ticks", spec, ticks);
//   TELEM_SPAN("simulate", "vm");                // RAII span to scope end
//
// Metric names are `subsystem.noun_verb` (enforced by cdmm-lint H003). The
// metric reference is a function-local static, so each site pays the
// registry lookup exactly once per process.
#ifndef CDMM_SRC_TELEMETRY_TELEMETRY_H_
#define CDMM_SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>

#include "src/telemetry/metrics.h"
#include "src/telemetry/span_tracer.h"

namespace cdmm {
namespace telem {

// The process-wide metrics registry. Values survive across runs in one
// process; callers that need a fresh slate (tests, repeated in-process CLI
// invocations) call GlobalMetrics().ResetValues().
MetricsRegistry& GlobalMetrics();

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// Process-wide enable flag for metrics collection (spans have their own via
// SpanTracer::SetEnabled). Off by default.
inline bool TelemetryEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetTelemetryEnabled(bool enabled);

}  // namespace telem
}  // namespace cdmm

#define TELEM_COUNT(name) TELEM_COUNT_N(name, 1)

#define TELEM_COUNT_N(name, n)                                        \
  do {                                                                \
    if (::cdmm::telem::TelemetryEnabled()) {                          \
      static ::cdmm::telem::Counter& cdmm_telem_metric =              \
          ::cdmm::telem::GlobalMetrics().GetCounter(name);            \
      cdmm_telem_metric.Add(n);                                       \
    }                                                                 \
  } while (0)

// Counter whose total depends on thread scheduling (steals, timeouts):
// exported with "det": false and excluded from determinism diffs.
#define TELEM_COUNT_RT(name)                                          \
  do {                                                                \
    if (::cdmm::telem::TelemetryEnabled()) {                          \
      static ::cdmm::telem::Counter& cdmm_telem_metric =              \
          ::cdmm::telem::GlobalMetrics().GetCounter(                  \
              name, ::cdmm::telem::Det::kRuntime);                    \
      cdmm_telem_metric.Add(1);                                       \
    }                                                                 \
  } while (0)

// Order-independent high-water mark.
#define TELEM_GAUGE_MAX(name, v)                                      \
  do {                                                                \
    if (::cdmm::telem::TelemetryEnabled()) {                          \
      static ::cdmm::telem::Gauge& cdmm_telem_metric =                \
          ::cdmm::telem::GlobalMetrics().GetGauge(name);              \
      cdmm_telem_metric.UpdateMax(v);                                 \
    }                                                                 \
  } while (0)

// Runtime (non-deterministic) high-water mark, e.g. queue depth.
#define TELEM_GAUGE_MAX_RT(name, v)                                   \
  do {                                                                \
    if (::cdmm::telem::TelemetryEnabled()) {                          \
      static ::cdmm::telem::Gauge& cdmm_telem_metric =                \
          ::cdmm::telem::GlobalMetrics().GetGauge(                    \
              name, ::cdmm::telem::Det::kRuntime);                    \
      cdmm_telem_metric.UpdateMax(v);                                 \
    }                                                                 \
  } while (0)

// Histogram of virtual-time / index-keyed values (deterministic).
#define TELEM_HIST(name, spec, v)                                     \
  do {                                                                \
    if (::cdmm::telem::TelemetryEnabled()) {                          \
      static ::cdmm::telem::Histogram& cdmm_telem_metric =            \
          ::cdmm::telem::GlobalMetrics().GetHistogram(name, spec);    \
      cdmm_telem_metric.Record(v);                                    \
    }                                                                 \
  } while (0)

// Histogram of wall-clock values (runtime; excluded from determinism diffs).
#define TELEM_HIST_RT(name, spec, v)                                  \
  do {                                                                \
    if (::cdmm::telem::TelemetryEnabled()) {                          \
      static ::cdmm::telem::Histogram& cdmm_telem_metric =            \
          ::cdmm::telem::GlobalMetrics().GetHistogram(                \
              name, spec, ::cdmm::telem::Det::kRuntime);              \
      cdmm_telem_metric.Record(v);                                    \
    }                                                                 \
  } while (0)

#define CDMM_TELEM_CONCAT_INNER(a, b) a##b
#define CDMM_TELEM_CONCAT(a, b) CDMM_TELEM_CONCAT_INNER(a, b)

// RAII span covering the rest of the enclosing scope. `name` and `category`
// land in the Chrome trace; use TELEM_SPAN_VAR when the span needs AddArg.
#define TELEM_SPAN(name, category) \
  ::cdmm::telem::TelemScope CDMM_TELEM_CONCAT(cdmm_telem_span_, __COUNTER__)(name, category)

#define TELEM_SPAN_VAR(var, name, category) ::cdmm::telem::TelemScope var(name, category)

#endif  // CDMM_SRC_TELEMETRY_TELEMETRY_H_
