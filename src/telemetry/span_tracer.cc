#include "src/telemetry/span_tracer.h"

#include <algorithm>
#include <cctype>

namespace cdmm {
namespace telem {

SpanTracer& SpanTracer::Global() {
  static SpanTracer* tracer = new SpanTracer();  // leaked: alive for atexit paths
  return *tracer;
}

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t SpanTracer::NowUs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

uint32_t SpanTracer::ThreadIndex() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = thread_indices_.emplace(
      std::this_thread::get_id(), static_cast<uint32_t>(thread_indices_.size()));
  return it->second;
}

void SpanTracer::Record(SpanEvent event) {
  if (!enabled()) return;
  event.tid = ThreadIndex();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void SpanTracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  thread_indices_.clear();
}

size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

namespace {

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

bool IsJsonNumber(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

void SpanTracer::WriteChromeJson(std::ostream& out) const {
  std::vector<SpanEvent> events;
  uint32_t thread_count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
    thread_count = static_cast<uint32_t>(thread_indices_.size());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  out << "{\"traceEvents\":[";
  bool first = true;
  for (uint32_t tid = 0; tid < thread_count; ++tid) {
    if (!first) out << ',';
    first = false;
    const std::string thread_name = tid == 0 ? "main" : "worker-" + std::to_string(tid);
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << thread_name << "\"}}";
  }
  for (const SpanEvent& event : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    WriteJsonString(out, event.name);
    out << ",\"cat\":";
    WriteJsonString(out, event.category.empty() ? std::string("cdmm") : event.category);
    out << ",\"ph\":\"X\",\"ts\":" << event.start_us
        << ",\"dur\":" << (event.end_us - event.start_us) << ",\"pid\":1,\"tid\":"
        << event.tid;
    if (!event.args.empty()) {
      out << ",\"args\":{";
      for (size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out << ',';
        WriteJsonString(out, event.args[i].first);
        out << ':';
        if (IsJsonNumber(event.args[i].second)) {
          out << event.args[i].second;
        } else {
          WriteJsonString(out, event.args[i].second);
        }
      }
      out << '}';
    }
    out << '}';
  }
  out << "]}\n";
}

TelemScope::TelemScope(std::string name, std::string category) {
  SpanTracer& tracer = SpanTracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.start_us = tracer.NowUs();
}

TelemScope::~TelemScope() {
  if (!active_) return;
  SpanTracer& tracer = SpanTracer::Global();
  event_.end_us = tracer.NowUs();
  tracer.Record(std::move(event_));
}

void TelemScope::AddArg(std::string key, std::string value) {
  if (!active_) return;
  event_.args.emplace_back(std::move(key), std::move(value));
}

void TelemScope::AddArg(std::string key, uint64_t value) {
  if (!active_) return;
  event_.args.emplace_back(std::move(key), std::to_string(value));
}

}  // namespace telem
}  // namespace cdmm
