// Shared telemetry flags for cdmmc and the benches, in the style of
// src/exec/flags.h: parsing strips the flags from argv so binaries with
// their own argument handling (including google-benchmark's Initialize)
// never see them.
//
// Flags:
//   --metrics[=text|json]   print the metrics report to stdout after the run
//   --metrics-out FILE      write the JSON metrics sidecar to FILE
//   --trace-spans FILE      write Chrome trace-event JSON (Perfetto) to FILE
//                           (cdmmc already uses --trace-out for reference
//                           traces, hence the distinct name)
#ifndef CDMM_SRC_TELEMETRY_FLAGS_H_
#define CDMM_SRC_TELEMETRY_FLAGS_H_

#include <iosfwd>
#include <string>

namespace cdmm {
namespace telem {

struct TelemetryFlags {
  bool metrics_stdout = false;  // --metrics / --metrics=text|json given
  bool metrics_json = false;    // --metrics=json
  std::string metrics_out;      // --metrics-out FILE ("" = none)
  std::string spans_out;        // --trace-spans FILE ("" = none)

  bool any() const {
    return metrics_stdout || !metrics_out.empty() || !spans_out.empty();
  }
};

// Extracts the telemetry flags from argv (mutating argc/argv, exits 2 on a
// malformed value) and returns them. Call before any other flag parsing.
TelemetryFlags ParseTelemetryFlags(int* argc, char** argv);

// Resets metric values and enables/disables collection to match `flags`.
// Call once per run, before the instrumented work.
void ConfigureTelemetry(const TelemetryFlags& flags);

// Emits the requested reports: the stdout block (text or JSON envelope with
// tool/build provenance) and/or the sidecar/span files. File-write failures
// go to `err`; returns false on any failure. No-op when !flags.any().
bool EmitTelemetry(const TelemetryFlags& flags, const std::string& tool,
                   std::ostream& out, std::ostream& err);

// The full JSON sidecar document (schema tools/metrics_schema.json):
// {"schema_version":1,"tool":...,"build":{...},"counters":[...],...}.
std::string MetricsSidecarJson(const std::string& tool);

// One-line telemetry plumbing for the bench binaries: parses + configures in
// the constructor, emits to std::cout/std::cerr in the destructor so every
// return path (including early exits) still reports. Declare right after
// ParseJobsFlag:
//   telem::ScopedTelemetry telemetry(&argc, argv, "bench_table1");
// Emission failures are reported to stderr but cannot change the exit code
// (destructors have no return value); cdmmc, whose exit codes are
// contractual, calls EmitTelemetry directly instead.
class ScopedTelemetry {
 public:
  ScopedTelemetry(int* argc, char** argv, std::string tool);
  ~ScopedTelemetry();
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

  const TelemetryFlags& flags() const { return flags_; }

 private:
  TelemetryFlags flags_;
  std::string tool_;
};

}  // namespace telem
}  // namespace cdmm

#endif  // CDMM_SRC_TELEMETRY_FLAGS_H_
