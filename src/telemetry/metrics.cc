#include "src/telemetry/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/support/check.h"

namespace cdmm {
namespace telem {

BucketSpec BucketSpec::PowersOfTwo(size_t count, uint64_t first) {
  BucketSpec spec;
  spec.lower = 0;
  spec.bounds.reserve(count);
  uint64_t bound = first;
  for (size_t i = 0; i < count; ++i) {
    spec.bounds.push_back(bound);
    if (bound > UINT64_MAX / 2) break;  // saturate rather than overflow
    bound *= 2;
  }
  return spec;
}

BucketSpec BucketSpec::Linear(uint64_t width, size_t count, uint64_t lower) {
  CDMM_CHECK_MSG(width > 0, "linear bucket width must be positive");
  BucketSpec spec;
  spec.lower = lower;
  spec.bounds.reserve(count);
  for (size_t i = 1; i <= count; ++i) spec.bounds.push_back(lower + i * width);
  return spec;
}

HistogramData::HistogramData(BucketSpec s)
    : spec(std::move(s)), counts(spec.bounds.size(), 0) {}

void HistogramData::MergeFrom(const HistogramData& other) {
  CDMM_CHECK_MSG(spec == other.spec, "histogram merge across mismatched bucket specs");
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  underflow += other.underflow;
  overflow += other.overflow;
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

Histogram::Histogram(BucketSpec spec)
    : spec_(std::move(spec)), counts_(spec_.bounds.size()) {
  CDMM_CHECK_MSG(std::is_sorted(spec_.bounds.begin(), spec_.bounds.end()),
                 "histogram bucket bounds must be ascending");
}

void Histogram::Record(uint64_t v) {
  if (v < spec_.lower) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto it = std::lower_bound(spec_.bounds.begin(), spec_.bounds.end(), v);
    if (it == spec_.bounds.end()) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
      counts_[static_cast<size_t>(it - spec_.bounds.begin())].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data(spec_);
  for (size_t i = 0; i < counts_.size(); ++i)
    data.counts[i] = counts_[i].load(std::memory_order_relaxed);
  data.underflow = underflow_.load(std::memory_order_relaxed);
  data.overflow = overflow_.load(std::memory_order_relaxed);
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  data.min = min_.load(std::memory_order_relaxed);
  data.max = max_.load(std::memory_order_relaxed);
  return data;
}

void Histogram::MergeFrom(const HistogramData& other) {
  CDMM_CHECK_MSG(spec_ == other.spec, "histogram merge across mismatched bucket specs");
  for (size_t i = 0; i < counts_.size(); ++i)
    counts_[i].fetch_add(other.counts[i], std::memory_order_relaxed);
  underflow_.fetch_add(other.underflow, std::memory_order_relaxed);
  overflow_.fetch_add(other.overflow, std::memory_order_relaxed);
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (other.min < cur &&
         !min_.compare_exchange_weak(cur, other.min, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (other.max > cur &&
         !max_.compare_exchange_weak(cur, other.max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(std::string_view name,
                                                      Entry::Kind kind, Det det,
                                                      const BucketSpec* spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.det = det;
    switch (kind) {
      case Entry::Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Entry::Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Entry::Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(*spec);
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else {
    CDMM_CHECK_MSG(it->second.kind == kind, "metric re-registered with a different kind");
    if (kind == Entry::Kind::kHistogram) {
      CDMM_CHECK_MSG(it->second.histogram->spec() == *spec,
                     "histogram re-registered with a different bucket spec");
    }
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, Det det) {
  return *FindOrCreate(name, Entry::Kind::kCounter, det, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, Det det) {
  return *FindOrCreate(name, Entry::Kind::kGauge, det, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const BucketSpec& spec, Det det) {
  return *FindOrCreate(name, Entry::Kind::kHistogram, det, &spec).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : entries_) {  // std::map: already name-sorted
    const bool runtime = entry.det == Det::kRuntime;
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        snapshot.counters.push_back({name, entry.counter->value(), runtime});
        break;
      case Entry::Kind::kGauge:
        snapshot.gauges.push_back({name, entry.gauge->value(), runtime});
        break;
      case Entry::Kind::kHistogram:
        snapshot.histograms.push_back({name, entry.histogram->Snapshot(), runtime});
        break;
    }
  }
  return snapshot;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        entry.counter->Reset();
        break;
      case Entry::Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Entry::Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  MetricsSnapshot snapshot = other.Snapshot();
  std::map<std::string, Det> dets;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, entry] : other.entries_) dets[name] = entry.det;
  }
  for (const auto& row : snapshot.counters)
    GetCounter(row.name, dets[row.name]).Add(row.value);
  for (const auto& row : snapshot.gauges)
    GetGauge(row.name, dets[row.name]).UpdateMax(row.value);
  for (const auto& row : snapshot.histograms)
    GetHistogram(row.name, row.data.spec, dets[row.name]).MergeFrom(row.data);
}

namespace {

void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

void AppendUintArray(std::ostringstream& out, const std::vector<uint64_t>& values) {
  out << '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << values[i];
  }
  out << ']';
}

}  // namespace

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& row : snapshot.counters) {
    out << row.name << " = " << row.value;
    if (row.runtime) out << "  [runtime]";
    out << '\n';
  }
  for (const auto& row : snapshot.gauges) {
    out << row.name << " = " << row.value << "  (gauge)";
    if (row.runtime) out << "  [runtime]";
    out << '\n';
  }
  for (const auto& row : snapshot.histograms) {
    out << row.name << " : count=" << row.data.count << " sum=" << row.data.sum;
    if (row.data.count > 0) {
      out << " min=" << row.data.min << " max=" << row.data.max;
    }
    out << " underflow=" << row.data.underflow << " overflow=" << row.data.overflow;
    if (row.runtime) out << "  [runtime]";
    out << '\n';
  }
  return out.str();
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "\"counters\":[";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& row = snapshot.counters[i];
    if (i > 0) out << ',';
    out << "{\"name\":";
    AppendJsonString(out, row.name);
    out << ",\"value\":" << row.value << ",\"det\":" << (row.runtime ? "false" : "true")
        << '}';
  }
  out << "],\"gauges\":[";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& row = snapshot.gauges[i];
    if (i > 0) out << ',';
    out << "{\"name\":";
    AppendJsonString(out, row.name);
    out << ",\"value\":" << row.value << ",\"det\":" << (row.runtime ? "false" : "true")
        << '}';
  }
  out << "],\"histograms\":[";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& row = snapshot.histograms[i];
    if (i > 0) out << ',';
    out << "{\"name\":";
    AppendJsonString(out, row.name);
    out << ",\"det\":" << (row.runtime ? "false" : "true")
        << ",\"lower\":" << row.data.spec.lower << ",\"bounds\":";
    AppendUintArray(out, row.data.spec.bounds);
    out << ",\"counts\":";
    AppendUintArray(out, row.data.counts);
    out << ",\"underflow\":" << row.data.underflow
        << ",\"overflow\":" << row.data.overflow << ",\"count\":" << row.data.count
        << ",\"sum\":" << row.data.sum;
    if (row.data.count > 0) {
      out << ",\"min\":" << row.data.min << ",\"max\":" << row.data.max;
    }
    out << '}';
  }
  out << ']';
  return out.str();
}

}  // namespace telem
}  // namespace cdmm
