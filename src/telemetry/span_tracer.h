// Nested phase/agent span recording with Chrome trace-event JSON export.
//
// Spans capture where wall-clock time goes across the pipeline: compile →
// analysis → directive insertion → simulation → sweep items → OS quanta.
// The output of WriteChromeJson loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Span timestamps are wall-clock and therefore NOT deterministic across runs
// or --jobs settings; only the metrics registry carries the deterministic
// signal. Span *names and nesting* are stable for a fixed serial workload.
#ifndef CDMM_SRC_TELEMETRY_SPAN_TRACER_H_
#define CDMM_SRC_TELEMETRY_SPAN_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cdmm {
namespace telem {

// One completed span ("ph":"X" complete event in the trace format).
struct SpanEvent {
  std::string name;
  std::string category;
  uint64_t start_us = 0;
  uint64_t end_us = 0;
  uint32_t tid = 0;  // dense per-process thread index, not the OS tid
  // Rendered as the event's "args" object; values are emitted as JSON
  // numbers when numeric_value is set, strings otherwise.
  std::vector<std::pair<std::string, std::string>> args;
};

// Process-wide span sink. Recording is cheap (one mutex-guarded vector push
// per completed span — spans are per-phase/per-item, never per-reference) and
// a no-op unless enabled.
class SpanTracer {
 public:
  static SpanTracer& Global();

  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since this tracer's epoch (steady clock).
  uint64_t NowUs() const;

  void Record(SpanEvent event);
  void Clear();
  size_t size() const;

  // {"traceEvents":[...]} — one complete ("ph":"X") event per span plus
  // thread_name metadata, sorted by start time for stable-ish output.
  void WriteChromeJson(std::ostream& out) const;

 private:
  SpanTracer();

  uint32_t ThreadIndex();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
  std::unordered_map<std::thread::id, uint32_t> thread_indices_;

  friend class TelemScope;
};

// RAII span: records [construction, destruction) into SpanTracer::Global()
// when tracing is enabled. Constructing one when tracing is disabled costs a
// relaxed load and a branch.
class TelemScope {
 public:
  TelemScope(std::string name, std::string category);
  TelemScope(const TelemScope&) = delete;
  TelemScope& operator=(const TelemScope&) = delete;
  ~TelemScope();

  // Attaches a key/value pair to the span's trace "args".
  void AddArg(std::string key, std::string value);
  void AddArg(std::string key, uint64_t value);

 private:
  bool active_ = false;
  SpanEvent event_;
};

}  // namespace telem
}  // namespace cdmm

#endif  // CDMM_SRC_TELEMETRY_SPAN_TRACER_H_
