#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace telem {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: alive for atexit paths
  return *registry;
}

void SetTelemetryEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace telem
}  // namespace cdmm
