#include "src/telemetry/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/support/build_info.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace telem {

namespace {

void ApplyMetricsMode(TelemetryFlags* flags, const char* value) {
  flags->metrics_stdout = true;
  if (value == nullptr || std::strcmp(value, "text") == 0) {
    flags->metrics_json = false;
  } else if (std::strcmp(value, "json") == 0) {
    flags->metrics_json = true;
  } else {
    std::fprintf(stderr, "bad --metrics value '%s' (want 'text' or 'json')\n", value);
    std::exit(2);
  }
}

const char* TakeValue(const char* flag, int* argc, char** argv, int* i) {
  if (*i + 1 >= *argc) {
    std::fprintf(stderr, "%s needs an argument\n", flag);
    std::exit(2);
  }
  return argv[++*i];
}

}  // namespace

TelemetryFlags ParseTelemetryFlags(int* argc, char** argv) {
  TelemetryFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      ApplyMetricsMode(&flags, nullptr);
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      ApplyMetricsMode(&flags, argv[i] + 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      flags.metrics_out = TakeValue("--metrics-out", argc, argv, &i);
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      flags.metrics_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--trace-spans") == 0) {
      flags.spans_out = TakeValue("--trace-spans", argc, argv, &i);
    } else if (std::strncmp(argv[i], "--trace-spans=", 14) == 0) {
      flags.spans_out = argv[i] + 14;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  return flags;
}

void ConfigureTelemetry(const TelemetryFlags& flags) {
  const bool metrics_on = flags.metrics_stdout || !flags.metrics_out.empty();
  SetTelemetryEnabled(metrics_on);
  if (metrics_on) GlobalMetrics().ResetValues();
  SpanTracer& tracer = SpanTracer::Global();
  tracer.SetEnabled(!flags.spans_out.empty());
  if (!flags.spans_out.empty()) tracer.Clear();
}

std::string MetricsSidecarJson(const std::string& tool) {
  std::ostringstream out;
  out << "{\"schema_version\":1,\"tool\":\"" << tool
      << "\",\"build\":" << BuildInfoJson() << ','
      << RenderMetricsJson(GlobalMetrics().Snapshot()) << "}\n";
  return out.str();
}

bool EmitTelemetry(const TelemetryFlags& flags, const std::string& tool,
                   std::ostream& out, std::ostream& err) {
  bool ok = true;
  if (flags.metrics_stdout) {
    if (flags.metrics_json) {
      out << MetricsSidecarJson(tool);
    } else {
      out << "== metrics (" << tool << ") ==\n"
          << RenderMetricsText(GlobalMetrics().Snapshot());
    }
  }
  if (!flags.metrics_out.empty()) {
    std::ofstream file(flags.metrics_out);
    if (!file) {
      err << "cannot write metrics sidecar: " << flags.metrics_out << "\n";
      ok = false;
    } else {
      file << MetricsSidecarJson(tool);
    }
  }
  if (!flags.spans_out.empty()) {
    std::ofstream file(flags.spans_out);
    if (!file) {
      err << "cannot write span trace: " << flags.spans_out << "\n";
      ok = false;
    } else {
      SpanTracer::Global().WriteChromeJson(file);
    }
  }
  return ok;
}

ScopedTelemetry::ScopedTelemetry(int* argc, char** argv, std::string tool)
    : tool_(std::move(tool)) {
  flags_ = ParseTelemetryFlags(argc, argv);
  ConfigureTelemetry(flags_);
}

ScopedTelemetry::~ScopedTelemetry() {
  if (flags_.any()) {
    EmitTelemetry(flags_, tool_, std::cout, std::cerr);
  }
}

}  // namespace telem
}  // namespace cdmm
