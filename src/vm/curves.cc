#include "src/vm/curves.h"

#include "src/support/check.h"
#include "src/vm/working_set.h"

namespace cdmm {

std::vector<CurvePoint> LifetimeCurve(const Trace& trace, uint32_t max_frames,
                                      const SimOptions& options) {
  std::vector<CurvePoint> curve;
  double refs = static_cast<double>(trace.reference_count());
  for (const SweepPoint& p : LruSweep(trace, max_frames, options)) {
    double g = p.faults == 0 ? refs : refs / static_cast<double>(p.faults);
    curve.push_back(CurvePoint{p.parameter, g});
  }
  return curve;
}

std::vector<CurvePoint> FaultRateCurve(const Trace& trace, uint32_t max_frames,
                                       const SimOptions& options) {
  std::vector<CurvePoint> curve;
  double refs = static_cast<double>(trace.reference_count());
  CDMM_CHECK(refs > 0);
  for (const SweepPoint& p : LruSweep(trace, max_frames, options)) {
    curve.push_back(CurvePoint{p.parameter, static_cast<double>(p.faults) / refs});
  }
  return curve;
}

std::vector<CurvePoint> WsSizeCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                    const SimOptions& options) {
  std::vector<CurvePoint> curve;
  for (const SweepPoint& p : WsSweep(trace, taus, options)) {
    curve.push_back(CurvePoint{p.parameter, p.mean_memory});
  }
  return curve;
}

std::vector<CurvePoint> WsFaultRateCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                         const SimOptions& options) {
  std::vector<CurvePoint> curve;
  double refs = static_cast<double>(trace.reference_count());
  CDMM_CHECK(refs > 0);
  for (const SweepPoint& p : WsSweep(trace, taus, options)) {
    curve.push_back(CurvePoint{p.parameter, static_cast<double>(p.faults) / refs});
  }
  return curve;
}

uint32_t LifetimeKnee(const std::vector<CurvePoint>& lifetime) {
  CDMM_CHECK(!lifetime.empty());
  uint32_t best_m = static_cast<uint32_t>(lifetime.front().x);
  double best = -1.0;
  for (const CurvePoint& p : lifetime) {
    CDMM_CHECK(p.x > 0);
    double score = p.y / p.x;
    if (score > best) {
      best = score;
      best_m = static_cast<uint32_t>(p.x);
    }
  }
  return best_m;
}

}  // namespace cdmm
