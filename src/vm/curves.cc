#include "src/vm/curves.h"

#include "src/support/check.h"
#include "src/vm/sweep_engines.h"
#include "src/vm/working_set.h"

namespace cdmm {

std::vector<CurvePoint> LifetimeCurve(const std::vector<SweepPoint>& lru_sweep,
                                      uint64_t references) {
  std::vector<CurvePoint> curve;
  curve.reserve(lru_sweep.size());
  double refs = static_cast<double>(references);
  for (const SweepPoint& p : lru_sweep) {
    double g = p.faults == 0 ? refs : refs / static_cast<double>(p.faults);
    curve.push_back(CurvePoint{p.parameter, g});
  }
  return curve;
}

std::vector<CurvePoint> FaultRateCurve(const std::vector<SweepPoint>& lru_sweep,
                                       uint64_t references) {
  std::vector<CurvePoint> curve;
  curve.reserve(lru_sweep.size());
  double refs = static_cast<double>(references);
  CDMM_CHECK(refs > 0);
  for (const SweepPoint& p : lru_sweep) {
    curve.push_back(CurvePoint{p.parameter, static_cast<double>(p.faults) / refs});
  }
  return curve;
}

std::vector<CurvePoint> WsSizeCurve(const std::vector<SweepPoint>& ws_sweep) {
  std::vector<CurvePoint> curve;
  curve.reserve(ws_sweep.size());
  for (const SweepPoint& p : ws_sweep) {
    curve.push_back(CurvePoint{p.parameter, p.mean_memory});
  }
  return curve;
}

std::vector<CurvePoint> WsFaultRateCurve(const std::vector<SweepPoint>& ws_sweep,
                                         uint64_t references) {
  std::vector<CurvePoint> curve;
  curve.reserve(ws_sweep.size());
  double refs = static_cast<double>(references);
  CDMM_CHECK(refs > 0);
  for (const SweepPoint& p : ws_sweep) {
    curve.push_back(CurvePoint{p.parameter, static_cast<double>(p.faults) / refs});
  }
  return curve;
}

std::vector<CurvePoint> LifetimeCurve(const Trace& trace, uint32_t max_frames,
                                      const SimOptions& options) {
  return LifetimeCurve(LruSweep(trace, max_frames, options), trace.reference_count());
}

std::vector<CurvePoint> FaultRateCurve(const Trace& trace, uint32_t max_frames,
                                       const SimOptions& options) {
  return FaultRateCurve(LruSweep(trace, max_frames, options), trace.reference_count());
}

std::vector<CurvePoint> WsSizeCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                    const SimOptions& options) {
  // One-pass engine: bit-identical to WsSweep, one scan instead of |taus|.
  return WsSizeCurve(OnePassWsSweep(trace, taus, options));
}

std::vector<CurvePoint> WsFaultRateCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                         const SimOptions& options) {
  return WsFaultRateCurve(OnePassWsSweep(trace, taus, options), trace.reference_count());
}

uint32_t LifetimeKnee(const std::vector<CurvePoint>& lifetime) {
  CDMM_CHECK(!lifetime.empty());
  uint32_t best_m = static_cast<uint32_t>(lifetime.front().x);
  double best = -1.0;
  for (const CurvePoint& p : lifetime) {
    CDMM_CHECK(p.x > 0);
    double score = p.y / p.x;
    if (score > best) {
      best = score;
      best_m = static_cast<uint32_t>(p.x);
    }
  }
  return best_m;
}

}  // namespace cdmm
