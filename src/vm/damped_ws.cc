#include "src/vm/damped_ws.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"

namespace cdmm {

SimResult SimulateDampedWs(const Trace& trace, const DampedWsParams& params,
                           const SimOptions& options) {
  CDMM_CHECK(params.tau >= 1 && params.release_interval >= 1);
  SimResult result;
  result.policy = StrCat("DWS(tau=", params.tau, ",rho=", params.release_interval, ")");

  std::unordered_map<PageId, uint64_t> last_ref;
  last_ref.reserve(trace.virtual_pages());
  std::deque<std::pair<uint64_t, PageId>> window;   // (ref time, page)
  std::deque<PageId> expired;                       // awaiting damped release
  std::unordered_map<PageId, bool> resident;
  resident.reserve(trace.virtual_pages());
  uint64_t resident_count = 0;
  uint64_t t = 0;
  uint64_t next_release = params.release_interval;
  double ref_integral = 0.0;
  uint64_t service_total = 0;
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);

  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    ++t;
    // Move pages that left the working-set window onto the expired queue
    // instead of dropping them immediately (the damping).
    while (!window.empty() && window.front().first + params.tau < t) {
      auto [when, page] = window.front();
      window.pop_front();
      auto it = last_ref.find(page);
      if (it != last_ref.end() && it->second == when && resident[page]) {
        expired.push_back(page);
      }
    }
    // Damped release: at most one expired page per release interval.
    if (t >= next_release) {
      next_release += params.release_interval;
      while (!expired.empty()) {
        PageId victim = expired.front();
        expired.pop_front();
        // Skip pages revived by a reference since expiring.
        auto it = last_ref.find(victim);
        if (it != last_ref.end() && it->second + params.tau >= t) {
          continue;
        }
        if (resident[victim]) {
          resident[victim] = false;
          --resident_count;
          TELEM_COUNT("vm.dws_page_released");
          if (hier != nullptr) {
            hier->OnEvict(victim);
          }
        }
        break;
      }
    }

    PageId page = e.value;
    bool fault = !resident[page];
    if (fault) {
      ++result.faults;
      resident[page] = true;
      ++resident_count;
    }
    last_ref[page] = t;
    window.emplace_back(t, page);
    result.max_resident = std::max<uint32_t>(result.max_resident,
                                             static_cast<uint32_t>(resident_count));
    if (fault) {
      uint64_t cost = hier != nullptr ? hier->OnFault(page, 0, result.faults - 1)
                                      : FaultServiceCost(options, result.faults - 1);
      service_total += cost;
      TELEM_COUNT("vm.fault_serviced");
      TELEM_HIST("vm.fault_service_ticks", telem::BucketSpec::PowersOfTwo(20), cost);
    }
    result.elapsed += 1;
    ref_integral += static_cast<double>(resident_count);
  }
  result.elapsed += service_total;
  result.references = t;
  result.mean_memory = t == 0 ? 0.0 : ref_integral / static_cast<double>(t);
  result.space_time = ref_integral + static_cast<double>(service_total);
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

}  // namespace cdmm
