// Per-thread simulation scratch shared by the flat policy kernels: one
// arena per thread, Reset() at the start of every simulation, so repeated
// runs (sweep points, bench iterations, OS slices) cost pointer bumps
// instead of fresh heap allocations. The scope publishes each run's
// allocation telemetry into the alloc.* family on exit.
#ifndef CDMM_SRC_VM_SCRATCH_H_
#define CDMM_SRC_VM_SCRATCH_H_

#include <cstdint>

#include "src/support/arena.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {

// The calling thread's simulation scratch arena. Kernels must not nest two
// live scopes on the same thread (no policy simulator calls another).
inline Arena& SimScratchArena() {
  thread_local Arena arena;
  return arena;
}

// Resets the scratch arena for one simulation and publishes the run's
// allocation telemetry on exit.
// Only warmth-independent stats are published: bytes_allocated counts bump
// allocations whether or not they reused a retained block, so the delta is
// identical no matter which thread (with whatever arena history) ran the
// simulation. Block counts are NOT published — they depend on per-thread
// arena warmth and would break cross-`--jobs` metric determinism.
class ScratchScope {
 public:
  explicit ScratchScope(Arena& arena)
      : arena_(arena), bytes0_(arena.stats().bytes_allocated) {
    arena_.Reset();
  }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;
  ~ScratchScope() {
    TELEM_COUNT("alloc.arena_scratch_reset");
    TELEM_COUNT_N("alloc.arena_bytes_allocated",
                  arena_.stats().bytes_allocated - bytes0_);
  }

 private:
  Arena& arena_;
  uint64_t bytes0_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_VM_SCRATCH_H_
