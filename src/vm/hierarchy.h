// N-level memory hierarchy for every policy simulator (ROADMAP item 3).
//
// A HierarchySpec describes the storage levels *below* the policy-managed
// RAM, ordered fast-to-slow; the last level is the unbounded backing store
// (the classic swap disk). The RAM level itself — its capacity and its
// management policy (LRU/FIFO/OPT/WS/CD/...) — stays exactly where it always
// was: in the policy simulator driven by `--simulate`, so any existing policy
// composes with any hierarchy shape.
//
// Semantics (exclusive victim caches):
//  - A page evicted from RAM is demoted into the first level below; a level
//    over capacity pushes its stalest entry one level further down, and a
//    page falling off the last intermediate level simply lives in the
//    backing store (which needs no state).
//  - A fault is serviced by the highest level currently holding the page;
//    the page is promoted out of that level (exclusivity) and the fault
//    costs that level's service latency.
//  - Levels hold only demoted pages, and a hit removes the page, so the
//    insertion order is the recency order: LRU and FIFO victim selection
//    coincide for intermediate levels. The per-level `policy` field is kept
//    (and surfaced by ToString) for the spec grammar; the distinction is
//    meaningful only for the RAM level, which `--simulate` controls.
//
// Degenerate case (a single level, i.e. the legacy RAM/disk machine):
// OnFault returns exactly FaultServiceCost's value — same injector call,
// same stream, same fault index, same base — and OnEvict is a no-op, which
// is what makes the differential-oracle suite (tests/hierarchy_test.cc)
// bit-for-bit rather than approximately equal.
#ifndef CDMM_SRC_VM_HIERARCHY_H_
#define CDMM_SRC_VM_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/robust/fault_injector.h"
#include "src/support/result.h"
#include "src/vm/sim_result.h"

namespace cdmm {

// Victim order of an intermediate level (see the header comment: the two
// coincide below RAM; the field exists so specs read naturally).
enum class LevelPolicy : uint8_t { kLru, kFifo };

const char* LevelPolicyName(LevelPolicy p);

struct HierarchyLevel {
  std::string name;       // "nvm", "ssd", "disk", ...
  uint32_t capacity = 0;  // frames; 0 = unbounded (only legal for the last level)
  uint64_t latency = 1;   // service time in references when a fault lands here
  LevelPolicy policy = LevelPolicy::kLru;

  friend bool operator==(const HierarchyLevel&, const HierarchyLevel&) = default;
};

class HierarchySpec {
 public:
  // The levels below RAM, fast to slow; back() is the backing store.
  std::vector<HierarchyLevel> levels;

  // The legacy two-level machine: one unbounded "disk" at `service` refs.
  static HierarchySpec Legacy(uint64_t service = 2000);

  // Parses "name:capacity:latency[:lru|fifo],..." (capacity '*' = unbounded,
  // last level only) or one of the preset names from Presets().
  static Result<HierarchySpec> Parse(const std::string& text);

  // Named shapes for --hierarchy and bench_hierarchy: "legacy"/"dram-disk",
  // "dram-nvm-disk", "dram-nvm-ssd-disk". Each pair is (name, spec string).
  static const std::vector<std::pair<std::string, std::string>>& Presets();

  // Same shape with the backing store's latency replaced — the fault-penalty
  // ladder knob (2000 -> 200 -> 20).
  HierarchySpec WithBottomLatency(uint64_t latency) const;

  // Single boundary: behaves exactly like the legacy RAM/disk simulators.
  bool degenerate() const { return levels.size() == 1; }

  uint64_t bottom_latency() const { return levels.back().latency; }

  std::string ToString() const;

  friend bool operator==(const HierarchySpec&, const HierarchySpec&) = default;
};

// Per-run migration/service state for one hierarchy. Keys are opaque 64-bit
// page identities (the uniprogrammed simulators pass the PageId; the
// multiprogrammed OS packs (process index, page) so one shared hierarchy
// serves the whole mix).
class HierarchyEngine {
 public:
  HierarchyEngine(const HierarchySpec& spec, const FaultInjector* injector);

  // Services the `fault_index`-th fault of `stream`: finds `key` in the
  // highest level holding it, promotes it out, and returns the fault's
  // service time — the servicing level's latency, plus one extra round per
  // injected transient promotion failure, perturbed by the injector exactly
  // as FaultServiceCost perturbs the legacy service time.
  uint64_t OnFault(uint64_t key, uint64_t stream, uint64_t fault_index);

  // RAM evicted `key`: demote it into the first level below, cascading
  // overflow victims downward. Injected transient demotion failures drop the
  // page one level further (toward the backing store) instead of retrying —
  // losing a cache copy is safe, losing the backing copy never happens.
  void OnEvict(uint64_t key);

  // Per-level counters in spec order (the backing store is the last entry).
  std::vector<HierarchyLevelTraffic> Traffic() const;

 private:
  // One intermediate level: an intrusive recency list over an index-linked
  // node pool (grown once up to capacity+1 nodes, then recycled through a
  // free list — no per-demotion heap traffic), plus a key→slot map. Keys are
  // sparse 64-bit identities, so the map stays; only the list nodes are
  // pooled. Same victim order as the std::list original.
  struct Level {
    static constexpr uint32_t kNone = 0xFFFFFFFFu;
    struct Node {
      uint64_t key = 0;
      uint32_t next = kNone;  // toward the tail (stalest entry)
      uint32_t prev = kNone;
    };

    HierarchyLevel spec;
    std::vector<Node> pool;
    uint32_t head = kNone;       // most recently inserted
    uint32_t tail = kNone;       // stalest (the overflow victim)
    uint32_t free_head = kNone;  // singly linked through Node::next
    std::unordered_map<uint64_t, uint32_t> where;  // key -> pool slot
    HierarchyLevelTraffic traffic;

    void Unlink(uint32_t idx);
    void Free(uint32_t idx) {
      pool[idx].next = free_head;
      free_head = idx;
    }
    // Inserts `key` at the recency head, recycling a free node or growing
    // the pool (bounded by capacity+1: the transient extra entry between an
    // insert and its overflow eviction).
    void PushFront(uint64_t key);
    // Removes `key` if this level holds it; returns whether it did.
    bool RemoveIfPresent(uint64_t key);
    // Removes and returns the stalest entry.
    uint64_t PopBack();
  };

  const FaultInjector* injector_;
  std::vector<Level> inter_;           // spec.levels minus the backing store
  HierarchyLevelTraffic bottom_;       // backing-store counters
  uint64_t bottom_latency_;
  uint64_t migration_seq_ = 0;         // injector key for migration attempts
};

// Engine factory the simulators share: null unless `options` carry a
// hierarchy, so the legacy code path stays literally untouched when the
// feature is off.
std::unique_ptr<HierarchyEngine> MakeHierarchyEngine(const SimOptions& options);

}  // namespace cdmm

#endif  // CDMM_SRC_VM_HIERARCHY_H_
