// The working-set policy family: pure WS(τ) (Denning 1968), the Sampled WS
// (Rodriguez-Rosell & Dupuy 1973) and the Variable-Interval Sampled WS
// (Ferrari & Yih 1983). Window/interval times are measured in process
// virtual time (references), so fault service does not age the window.
#ifndef CDMM_SRC_VM_WORKING_SET_H_
#define CDMM_SRC_VM_WORKING_SET_H_

#include <vector>

#include "src/trace/trace.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {

// Pure WS(τ): a page is resident iff referenced within the last `tau`
// references. Faults occur on references to non-resident pages; pages leave
// the set silently on expiry.
SimResult SimulateWs(const Trace& trace, uint64_t tau, const SimOptions& options = {});

// Sampled WS: residency is only trimmed at sampling instants, every
// `sample_interval` references; a page survives a sample if it was
// referenced during any of the last `window_samples` intervals.
struct SampledWsParams {
  uint64_t sample_interval = 1000;
  uint32_t window_samples = 1;
};
SimResult SimulateSampledWs(const Trace& trace, const SampledWsParams& params,
                            const SimOptions& options = {});

// VSWS: samples when `max_interval` references have elapsed, or early when
// `fault_threshold` faults have accumulated and at least `min_interval`
// references have elapsed, trimming unreferenced-since-last-sample pages.
struct VswsParams {
  uint64_t min_interval = 500;   // M
  uint64_t max_interval = 4000;  // L
  uint32_t fault_threshold = 8;  // Q
};
SimResult SimulateVsws(const Trace& trace, const VswsParams& params,
                       const SimOptions& options = {});

// Sweeps WS over the given window values (for the paper's τ = 1..K search).
std::vector<SweepPoint> WsSweep(const Trace& trace, const std::vector<uint64_t>& taus,
                                const SimOptions& options = {});

// A geometric-ish grid of windows from 1 to `max_tau` with ~`points_per_decade`
// values per decade, always including 1 and max_tau.
std::vector<uint64_t> DefaultTauGrid(uint64_t max_tau, int points_per_decade = 16);

}  // namespace cdmm

#endif  // CDMM_SRC_VM_WORKING_SET_H_
