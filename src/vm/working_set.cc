#include "src/vm/working_set.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "src/support/arena.h"
#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"
#include "src/vm/scratch.h"

namespace cdmm {

namespace {

// Flat WS kernel. The sliding window is dense — every reference pushes
// exactly one entry, stamped with its virtual time — so the deque of the
// original implementation (kept in src/vm/legacy_sim.cc) collapses to a ring
// of min(tau, R) + 2 page slots indexed by vtime % cap: by the time position
// t wraps onto a slot, the entry it overwrites (position t - cap < t - tau)
// has already been walked by the expiry cursor. The per-page last-reference
// map becomes a flat column with 0 = never referenced (virtual time is
// 1-based). Bit-identical to the legacy walker: same expiry order, same
// fault predicate, same accumulation order for the ref_integral double.
template <bool kHier>
SimResult RunWs(const Trace& trace, uint64_t tau, const SimOptions& options) {
  // Page-index bound for the flat tables: the declared virtual-page count
  // when known, else one prescan for the max referenced page.
  uint32_t bound = trace.virtual_pages();
  if (bound == 0) {
    for (const TraceEvent& e : trace.events()) {
      if (e.kind == TraceEvent::Kind::kRef) {
        bound = std::max<uint32_t>(bound, static_cast<uint32_t>(e.value) + 1);
      }
    }
  }
  if (bound == 0) {
    bound = 1;
  }
  const uint64_t cap = std::min<uint64_t>(tau, trace.reference_count()) + 2;

  Arena& arena = SimScratchArena();
  ScratchScope scope(arena);
  TELEM_COUNT("hotpath.kernel_dispatched");
  uint64_t* last_when = arena.NewArray<uint64_t>(bound);  // 0 = never referenced
  PageId* ring = arena.NewArray<PageId>(cap);

  std::unique_ptr<HierarchyEngine> hier_owner;
  HierarchyEngine* hier = nullptr;
  if constexpr (kHier) {
    hier_owner = MakeHierarchyEngine(options);
    hier = hier_owner.get();
  }
  uint64_t ws_size = 0;

  SimResult result;
  result.policy = StrCat("WS(tau=", tau, ")");
  uint64_t t = 0;
  uint64_t expire_next = 1;  // oldest window position the cursor has not expired
  double ref_integral = 0.0;
  uint64_t service_total = 0;

  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    ++t;
    // Keep window entries with time >= t - tau: W(t-1, τ) covers [t-τ, t-1].
    while (expire_next + tau < t) {
      const PageId old = ring[expire_next % cap];
      if (last_when[old] == expire_next) {
        --ws_size;  // page expired from the working set
        TELEM_COUNT("vm.ws_page_expired");
        if constexpr (kHier) {
          hier->OnEvict(old);
        }
      }
      ++expire_next;
    }
    const PageId page = e.value;
    const uint64_t prev = last_when[page];
    const bool fault = prev == 0 || prev + tau < t;
    if (fault) {
      ++result.faults;
      ++ws_size;
      TELEM_COUNT("vm.ws_page_admitted");
    }
    last_when[page] = t;
    ring[t % cap] = page;
    result.max_resident = std::max<uint32_t>(result.max_resident, static_cast<uint32_t>(ws_size));

    if (fault) {
      uint64_t cost;
      if constexpr (kHier) {
        cost = hier->OnFault(page, 0, result.faults - 1);
      } else {
        cost = FaultServiceCost(options, result.faults - 1);
      }
      service_total += cost;
      TELEM_COUNT("vm.fault_serviced");
      TELEM_HIST("vm.fault_service_ticks", telem::BucketSpec::PowersOfTwo(20), cost);
    }
    result.elapsed += 1;
    ref_integral += static_cast<double>(ws_size);
  }
  result.elapsed += service_total;
  result.references = t;
  result.mean_memory = t == 0 ? 0.0 : ref_integral / static_cast<double>(t);
  result.space_time = ref_integral + static_cast<double>(service_total);
  if constexpr (kHier) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

}  // namespace

SimResult SimulateWs(const Trace& trace, uint64_t tau, const SimOptions& options) {
  CDMM_CHECK(tau >= 1);
  return options.hierarchy != nullptr ? RunWs<true>(trace, tau, options)
                                      : RunWs<false>(trace, tau, options);
}

namespace {

// Shared sampled-WS engine: pages accumulate between samples and are trimmed
// at sampling instants when their use history over the last
// `window_samples` intervals is empty.
class SampledEngine {
 public:
  SampledEngine(uint32_t window_samples, const SimOptions& options)
      : window_samples_(std::max<uint32_t>(window_samples, 1)), options_(options),
        hier_(MakeHierarchyEngine(options)) {}

  void Touch(PageId page, SimResult* result) {
    ++t_;
    auto [it, inserted] = pages_.try_emplace(page, UseBits{});
    bool fault = inserted || !it->second.resident;
    it->second.bits |= 1;  // referenced in the current interval
    it->second.resident = true;
    if (fault) {
      ++result->faults;
      ++resident_count_;
      ++faults_since_sample_;
    }
    result->max_resident = std::max(result->max_resident, resident_count_);
    if (fault) {
      uint64_t cost = hier_ != nullptr ? hier_->OnFault(page, 0, result->faults - 1)
                                       : FaultServiceCost(options_, result->faults - 1);
      service_total_ += cost;
      TELEM_COUNT("vm.fault_serviced");
      TELEM_HIST("vm.fault_service_ticks", telem::BucketSpec::PowersOfTwo(20), cost);
    }
    result->elapsed += 1;
    ref_integral_ += static_cast<double>(resident_count_);
  }

  void Sample() {
    for (auto& [page, use] : pages_) {
      use.bits = static_cast<uint64_t>(use.bits << 1);
      uint64_t mask = window_samples_ >= 64 ? ~0ULL : ((1ULL << window_samples_) - 1) << 1;
      if (use.resident && (use.bits & mask) == 0) {
        use.resident = false;
        --resident_count_;
        TELEM_COUNT("vm.sws_page_trimmed");
        if (hier_ != nullptr) {
          hier_->OnEvict(page);
        }
      }
    }
    TELEM_COUNT("vm.sws_sample_taken");
    faults_since_sample_ = 0;
  }

  uint64_t now() const { return t_; }
  uint32_t faults_since_sample() const { return faults_since_sample_; }
  double ref_integral() const { return ref_integral_; }
  uint64_t service_total() const { return service_total_; }
  const HierarchyEngine* hier() const { return hier_.get(); }

 private:
  struct UseBits {
    uint64_t bits = 0;  // bit k = referenced during the k-th most recent interval
    bool resident = false;
  };

  uint32_t window_samples_;
  SimOptions options_;
  std::unique_ptr<HierarchyEngine> hier_;
  std::unordered_map<PageId, UseBits> pages_;
  uint32_t resident_count_ = 0;
  uint64_t t_ = 0;
  uint32_t faults_since_sample_ = 0;
  double ref_integral_ = 0.0;
  uint64_t service_total_ = 0;
};

void FinishMean(SimResult* result, const SampledEngine& engine) {
  result->references = engine.now();
  result->elapsed += engine.service_total();
  result->mean_memory =
      engine.now() == 0 ? 0.0 : engine.ref_integral() / static_cast<double>(engine.now());
  result->space_time = engine.ref_integral() + static_cast<double>(engine.service_total());
  if (engine.hier() != nullptr) {
    result->hierarchy_levels = engine.hier()->Traffic();
  }
}

}  // namespace

SimResult SimulateSampledWs(const Trace& trace, const SampledWsParams& params,
                            const SimOptions& options) {
  CDMM_CHECK(params.sample_interval >= 1);
  SimResult result;
  result.policy =
      StrCat("SWS(sigma=", params.sample_interval, ",k=", params.window_samples, ")");
  SampledEngine engine(params.window_samples, options);
  uint64_t next_sample = params.sample_interval;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    engine.Touch(e.value, &result);
    if (engine.now() >= next_sample) {
      engine.Sample();
      next_sample += params.sample_interval;
    }
  }
  FinishMean(&result, engine);
  return result;
}

SimResult SimulateVsws(const Trace& trace, const VswsParams& params, const SimOptions& options) {
  CDMM_CHECK(params.min_interval >= 1 && params.max_interval >= params.min_interval);
  SimResult result;
  result.policy = StrCat("VSWS(M=", params.min_interval, ",L=", params.max_interval,
                         ",Q=", params.fault_threshold, ")");
  SampledEngine engine(/*window_samples=*/1, options);
  uint64_t last_sample = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    engine.Touch(e.value, &result);
    uint64_t since = engine.now() - last_sample;
    bool fault_triggered = engine.faults_since_sample() >= params.fault_threshold &&
                           since >= params.min_interval;
    bool sample = since >= params.max_interval || fault_triggered;
    if (sample) {
      if (fault_triggered) TELEM_COUNT("vm.vsws_fault_triggered");
      engine.Sample();
      last_sample = engine.now();
    }
  }
  FinishMean(&result, engine);
  return result;
}

std::vector<SweepPoint> WsSweep(const Trace& trace, const std::vector<uint64_t>& taus,
                                const SimOptions& options) {
  std::vector<SweepPoint> points;
  points.reserve(taus.size());
  for (uint64_t tau : taus) {
    SimResult r = SimulateWs(trace, tau, options);
    SweepPoint p;
    p.parameter = static_cast<double>(tau);
    p.faults = r.faults;
    p.elapsed = r.elapsed;
    p.mean_memory = r.mean_memory;
    p.space_time = r.space_time;
    points.push_back(p);
  }
  return points;
}

std::vector<uint64_t> DefaultTauGrid(uint64_t max_tau, int points_per_decade) {
  CDMM_CHECK(max_tau >= 1 && points_per_decade >= 1);
  std::set<uint64_t> taus = {1, max_tau};
  double factor = std::pow(10.0, 1.0 / points_per_decade);
  for (double v = 1.0; v < static_cast<double>(max_tau); v *= factor) {
    taus.insert(static_cast<uint64_t>(std::llround(v)));
  }
  return {taus.begin(), taus.end()};
}

}  // namespace cdmm
