// LRU stack-distance computation in O(log R) per reference via a Fenwick
// tree over last-use positions (the classic Bennett–Kruskal technique).
// Shared by the LRU parameter sweep (fault counts for every allocation in
// one pass) and the locality-estimate validator.
#ifndef CDMM_SRC_VM_STACK_DISTANCE_H_
#define CDMM_SRC_VM_STACK_DISTANCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/prepared_trace.h"
#include "src/trace/trace.h"

namespace cdmm {

// Streaming stack-distance engine. Feed references in order; each Touch
// returns the page's LRU stack depth (1-based; 0 for a first touch) and the
// position of its previous use (0 if none).
class StackDistanceEngine {
 public:
  // `expected_refs` is a sizing hint, not a limit: feeding more references
  // triggers an amortized doubling rebuild of the Fenwick tree (the live
  // entries are exactly the per-page last-use positions, so a rebuild is
  // O(P log R)). `expected_pages` pre-sizes the page table; when non-zero it
  // also switches the per-page last-use map to a flat column for pages below
  // the bound (out-of-range pages fall back to the map, so the hint is never
  // a correctness constraint).
  explicit StackDistanceEngine(size_t expected_refs, uint32_t expected_pages = 0);

  // Exact sizing from a prepared trace: the Fenwick is reserved for the full
  // reference count and the last-use table for the page bound, so neither
  // ever regrows (regrows() stays 0 over the whole string).
  explicit StackDistanceEngine(const PreparedTrace& prepared)
      : StackDistanceEngine(prepared.size(), prepared.page_bound()) {}

  struct Touch {
    uint32_t depth = 0;     // LRU stack depth, 1-based; 0 = cold (first touch)
    uint64_t previous = 0;  // 1-based position of the previous use; 0 = none
  };

  // Processes the next reference (positions advance by one per call).
  Touch Next(PageId page);

  // 1-based position of the reference Next() will process next, minus one.
  uint64_t position() const { return now_; }

  // Number of doubling rebuilds the Fenwick tree has paid. An engine sized
  // from the trace it consumes keeps this at 0; the regression test pins it.
  uint64_t regrows() const { return regrows_; }

 private:
  void Add(size_t i, int delta);
  int64_t Prefix(size_t i) const;
  void EnsureCapacity(size_t i);

  // Last use position of `page`, 0 when never seen.
  uint64_t LastUse(PageId page) const {
    if (page < flat_last_use_.size()) {
      return flat_last_use_[page];
    }
    auto it = overflow_last_use_.find(page);
    return it == overflow_last_use_.end() ? 0 : it->second;
  }
  void SetLastUse(PageId page, uint64_t at) {
    if (page < flat_last_use_.size()) {
      flat_last_use_[page] = at;
    } else {
      overflow_last_use_[page] = at;
    }
  }

  std::vector<int64_t> tree_;  // Fenwick over positions (1-based storage)
  // Flat last-use column for pages below the construction-time bound, plus
  // an overflow map for anything above it (sizing hints are not limits).
  std::vector<uint64_t> flat_last_use_;
  std::unordered_map<PageId, uint64_t> overflow_last_use_;
  uint64_t now_ = 0;
  uint64_t regrows_ = 0;
};

}  // namespace cdmm

#endif  // CDMM_SRC_VM_STACK_DISTANCE_H_
