// Pre-overhaul simulator implementations, kept as the differential oracle
// and the bench_hotpath baseline. This is deliberately the old code, moved
// here unchanged (telemetry included, so a legacy run is observable the
// same way); see legacy_sim.h for why it must stay un-optimized.
#include "src/vm/legacy_sim.h"

#include <algorithm>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"

namespace cdmm {
namespace legacy {
namespace {

SimResult Finish(uint64_t references, uint32_t frames, Replacement replacement, uint64_t faults,
                 uint32_t max_resident, uint64_t service_total, const HierarchyEngine* hier) {
  SimResult result;
  result.policy = StrCat(ReplacementName(replacement), "(m=", frames, ")");
  result.references = references;
  result.faults = faults;
  result.elapsed = result.references + service_total;
  result.mean_memory = frames;
  result.space_time = static_cast<double>(frames) * static_cast<double>(result.references) +
                      static_cast<double>(service_total);
  result.max_resident = max_resident;
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

SimResult SimulateLru(const std::vector<PageId>& refs, uint32_t virtual_pages, uint32_t frames,
                      const SimOptions& options) {
  // Recency list: front = most recent. map page -> list iterator.
  std::list<PageId> stack;
  std::unordered_map<PageId, std::list<PageId>::iterator> where;
  where.reserve(virtual_pages);
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t service_total = 0;
  uint64_t faults = 0;
  uint32_t max_resident = 0;
  for (PageId page : refs) {
    auto it = where.find(page);
    if (it != where.end()) {
      stack.splice(stack.begin(), stack, it->second);
    } else {
      ++faults;
      TELEM_COUNT("vm.fault_serviced");
      if (hier != nullptr) {
        service_total += hier->OnFault(page, 0, faults - 1);
      }
      if (where.size() == frames) {
        PageId victim = stack.back();
        stack.pop_back();
        where.erase(victim);
        TELEM_COUNT("vm.page_evicted");
        if (hier != nullptr) {
          hier->OnEvict(victim);
        }
      }
      stack.push_front(page);
      where[page] = stack.begin();
      max_resident = std::max<uint32_t>(max_resident, static_cast<uint32_t>(where.size()));
    }
  }
  if (hier == nullptr) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  return Finish(refs.size(), frames, Replacement::kLru, faults, max_resident, service_total,
                hier.get());
}

SimResult SimulateFifo(const std::vector<PageId>& refs, uint32_t frames,
                       const SimOptions& options) {
  std::deque<PageId> queue;
  std::set<PageId> resident;
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t service_total = 0;
  uint64_t faults = 0;
  uint32_t max_resident = 0;
  for (PageId page : refs) {
    if (resident.count(page) != 0) {
      continue;
    }
    ++faults;
    TELEM_COUNT("vm.fault_serviced");
    if (hier != nullptr) {
      service_total += hier->OnFault(page, 0, faults - 1);
    }
    if (resident.size() == frames) {
      PageId victim = queue.front();
      queue.pop_front();
      resident.erase(victim);
      TELEM_COUNT("vm.page_evicted");
      if (hier != nullptr) {
        hier->OnEvict(victim);
      }
    }
    queue.push_back(page);
    resident.insert(page);
    max_resident = std::max<uint32_t>(max_resident, static_cast<uint32_t>(resident.size()));
  }
  if (hier == nullptr) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  return Finish(refs.size(), frames, Replacement::kFifo, faults, max_resident, service_total,
                hier.get());
}

SimResult SimulateOpt(const PreparedTrace& prepared, uint32_t frames, const SimOptions& options) {
  // Resident set ordered by next use (largest = best victim); the set key is
  // disambiguated by page because sentinel next-uses collide across pages.
  std::set<std::pair<uint64_t, PageId>> by_next_use;
  std::unordered_map<PageId, uint64_t> resident_next;  // page -> its key
  resident_next.reserve(frames + 1);
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t service_total = 0;
  uint64_t faults = 0;
  uint32_t max_resident = 0;

  for (uint32_t i = 0; i < prepared.size(); ++i) {
    PageId page = prepared.page(i);
    uint64_t next = prepared.next_use(i);
    auto key_of = [&](uint64_t nu, PageId p) {
      return std::pair<uint64_t, PageId>{nu, p};
    };
    auto it = resident_next.find(page);
    if (it != resident_next.end()) {
      by_next_use.erase(key_of(it->second, page));
    } else {
      ++faults;
      TELEM_COUNT("vm.fault_serviced");
      if (hier != nullptr) {
        service_total += hier->OnFault(page, 0, faults - 1);
      }
      if (resident_next.size() == frames) {
        auto victim = std::prev(by_next_use.end());
        PageId victim_page = victim->second;
        resident_next.erase(victim_page);
        by_next_use.erase(victim);
        TELEM_COUNT("vm.page_evicted");
        if (hier != nullptr) {
          hier->OnEvict(victim_page);
        }
      }
    }
    resident_next[page] = next;
    by_next_use.insert(key_of(next, page));
    max_resident = std::max<uint32_t>(max_resident, static_cast<uint32_t>(resident_next.size()));
  }
  if (hier == nullptr) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  return Finish(prepared.size(), frames, Replacement::kOpt, faults, max_resident, service_total,
                hier.get());
}

// The std::list/std::map-backed CdCore, exactly as cd_core.cc had it.
class LegacyCdCore {
 public:
  LegacyCdCore(uint32_t initial_grant, bool honor_locks)
      : grant_(std::max<uint32_t>(initial_grant, 1)), honor_locks_(honor_locks) {}

  bool Touch(PageId page) {
    auto it = where_.find(page);
    if (it != where_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return false;
    }
    bool incoming_locked = IsLocked(page);
    if (!incoming_locked && unlocked_resident() >= grant_) {
      CDMM_CHECK_MSG(EvictUnlockedLru(), "grant underflow");
    }
    lru_.push_front(page);
    where_[page] = lru_.begin();
    if (incoming_locked) {
      ++locked_resident_;
    }
    return true;
  }

  void SetGrant(uint32_t grant) {
    grant_ = std::max<uint32_t>(grant, 1);
    while (unlocked_resident() > grant_) {
      CDMM_CHECK_MSG(EvictUnlockedLru(), "shrink with no unlocked page");
    }
  }

  void Lock(const std::vector<PageId>& pages, uint16_t pj) {
    if (!honor_locks_) {
      return;
    }
    for (PageId p : pages) {
      auto [it, inserted] = locked_.try_emplace(p, pj);
      if (!inserted) {
        it->second = pj;
      } else if (where_.count(p) != 0) {
        ++locked_resident_;
      }
    }
  }

  void Unlock(const std::vector<PageId>& pages) {
    if (!honor_locks_) {
      return;
    }
    for (PageId p : pages) {
      auto it = locked_.find(p);
      if (it == locked_.end()) {
        continue;
      }
      locked_.erase(it);
      if (where_.count(p) != 0) {
        CDMM_CHECK(locked_resident_ > 0);
        --locked_resident_;
      }
    }
    while (unlocked_resident() > grant_) {
      CDMM_CHECK(EvictUnlockedLru());
    }
  }

  uint32_t EnforceCap(uint32_t cap) {
    uint32_t released = 0;
    while (resident() > cap) {
      if (EvictUnlockedLru()) {
        continue;
      }
      if (!ReleaseOneLock()) {
        break;
      }
      ++released;
    }
    return released;
  }

  void set_eviction_sink(std::vector<PageId>* sink) { eviction_sink_ = sink; }

  uint32_t grant() const { return grant_; }
  uint32_t resident() const { return static_cast<uint32_t>(where_.size()); }
  uint32_t locked_resident() const { return locked_resident_; }
  uint32_t unlocked_resident() const { return resident() - locked_resident_; }
  uint32_t held() const { return grant_ + locked_resident_; }
  bool IsLocked(PageId page) const { return locked_.find(page) != locked_.end(); }

 private:
  bool EvictUnlockedLru() {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (!IsLocked(*it)) {
        Remove(*it);
        return true;
      }
    }
    return false;
  }

  bool ReleaseOneLock() {
    PageId victim = 0;
    int best_pj = -1;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto lk = locked_.find(*it);
      if (lk != locked_.end() && static_cast<int>(lk->second) > best_pj) {
        best_pj = lk->second;
        victim = *it;
      }
    }
    if (best_pj < 0) {
      return false;
    }
    locked_.erase(victim);
    CDMM_CHECK(locked_resident_ > 0);
    --locked_resident_;
    Remove(victim);
    return true;
  }

  void Remove(PageId page) {
    auto it = where_.find(page);
    CDMM_CHECK(it != where_.end());
    lru_.erase(it->second);
    where_.erase(it);
    if (eviction_sink_ != nullptr) {
      eviction_sink_->push_back(page);
    }
  }

  uint32_t grant_;
  bool honor_locks_;
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
  std::map<PageId, uint16_t> locked_;  // page -> PJ
  uint32_t locked_resident_ = 0;
  std::vector<PageId>* eviction_sink_ = nullptr;
};

}  // namespace

SimResult SimulateFixed(const PreparedTrace& prepared, uint32_t frames,
                        Replacement replacement, const SimOptions& options) {
  CDMM_CHECK_MSG(frames >= 1, "fixed partition needs at least one frame");
  switch (replacement) {
    case Replacement::kLru:
      return SimulateLru(prepared.pages(), prepared.virtual_pages(), frames, options);
    case Replacement::kFifo:
      return SimulateFifo(prepared.pages(), frames, options);
    case Replacement::kOpt:
      return SimulateOpt(prepared, frames, options);
  }
  CDMM_UNREACHABLE("bad Replacement");
}

SimResult SimulateWs(const Trace& trace, uint64_t tau, const SimOptions& options) {
  CDMM_CHECK(tau >= 1);
  std::unordered_map<PageId, uint64_t> last_ref;
  last_ref.reserve(trace.virtual_pages());
  std::deque<std::pair<uint64_t, PageId>> window;  // (ref time, page)
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t ws_size = 0;

  SimResult result;
  result.policy = StrCat("WS(tau=", tau, ")");
  uint64_t t = 0;
  double ref_integral = 0.0;
  uint64_t service_total = 0;

  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    ++t;
    while (!window.empty() && window.front().first + tau < t) {
      auto [when, page] = window.front();
      window.pop_front();
      auto it = last_ref.find(page);
      if (it != last_ref.end() && it->second == when) {
        --ws_size;  // page expired from the working set
        TELEM_COUNT("vm.ws_page_expired");
        if (hier != nullptr) {
          hier->OnEvict(page);
        }
      }
    }
    PageId page = e.value;
    auto it = last_ref.find(page);
    bool in_ws = it != last_ref.end() && it->second + tau >= t;
    bool fault = !in_ws;
    if (fault) {
      ++result.faults;
      ++ws_size;
      TELEM_COUNT("vm.ws_page_admitted");
    }
    if (it == last_ref.end()) {
      last_ref.emplace(page, t);
    } else {
      it->second = t;
    }
    window.emplace_back(t, page);
    result.max_resident = std::max<uint32_t>(result.max_resident, static_cast<uint32_t>(ws_size));

    if (fault) {
      uint64_t cost = hier != nullptr ? hier->OnFault(page, 0, result.faults - 1)
                                      : FaultServiceCost(options, result.faults - 1);
      service_total += cost;
      TELEM_COUNT("vm.fault_serviced");
      TELEM_HIST("vm.fault_service_ticks", telem::BucketSpec::PowersOfTwo(20), cost);
    }
    result.elapsed += 1;
    ref_integral += static_cast<double>(ws_size);
  }
  result.elapsed += service_total;
  result.references = t;
  result.mean_memory = t == 0 ? 0.0 : ref_integral / static_cast<double>(t);
  result.space_time = ref_integral + static_cast<double>(service_total);
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

SimResult SimulateCd(const Trace& trace, const CdOptions& options, CdRunInfo* info) {
  SimResult result;
  result.policy = StrCat("CD(", DirectiveSelectionName(options.selection),
                         options.selection == DirectiveSelection::kLevelCap
                             ? StrCat(" ", options.level_cap)
                             : "",
                         ")");
  LegacyCdCore core(options.initial_allocation, options.honor_locks);
  uint64_t swap_requests = 0;
  double ref_integral = 0.0;
  uint64_t service_total = 0;
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options.sim);
  std::vector<PageId> evicted;
  if (hier != nullptr) {
    core.set_eviction_sink(&evicted);
  }
  auto drain_evictions = [&]() {
    if (hier == nullptr) {
      return;
    }
    for (PageId p : evicted) {
      hier->OnEvict(p);
    }
    evicted.clear();
  };

  auto process = [&](const DirectiveRecord& d) {
    ++result.directives_processed;
    TELEM_COUNT("cd.directive_processed");
    switch (d.kind) {
      case DirectiveRecord::Kind::kAllocate: {
        uint32_t available = options.selection == DirectiveSelection::kAvailability &&
                                     options.available_frames != 0
                                 ? options.available_frames
                                 : 0;
        if (options.selection == DirectiveSelection::kAvailability && available == 0) {
          core.SetGrant(d.requests.front().pages);
          TELEM_COUNT("cd.alloc_granted");
          TELEM_HIST("cd.grant_pages", telem::BucketSpec::PowersOfTwo(16),
                     d.requests.front().pages);
          break;
        }
        int idx = SelectCdRequest(d.requests, options.selection, options.level_cap, available);
        if (idx < 0) {
          if (d.requests.back().priority == 1) {
            ++swap_requests;
            core.SetGrant(available);
            TELEM_COUNT("cd.alloc_swap_requested");
          } else {
            TELEM_COUNT("cd.alloc_continued");
          }
          break;
        }
        uint32_t g = d.requests[static_cast<size_t>(idx)].pages;
        if (g < core.grant() && core.unlocked_resident() > g) {
          ++result.allocation_shrinks;
          TELEM_COUNT("cd.alloc_shrunk");
        }
        core.SetGrant(g);
        TELEM_COUNT("cd.alloc_granted");
        TELEM_HIST("cd.grant_pages", telem::BucketSpec::PowersOfTwo(16), g);
        break;
      }
      case DirectiveRecord::Kind::kLock: {
        core.Lock(d.pages, d.lock_priority);
        TELEM_COUNT("cd.lock_applied");
        if (options.available_frames != 0) {
          uint32_t released = core.EnforceCap(options.available_frames);
          result.lock_releases += released;
          TELEM_COUNT_N("cd.lock_release_forced", released);
        }
        break;
      }
      case DirectiveRecord::Kind::kUnlock:
        core.Unlock(d.pages);
        TELEM_COUNT("cd.unlock_applied");
        break;
    }
  };

  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kRef: {
        bool fault = core.Touch(e.value);
        if (fault) {
          ++result.faults;
          if (options.available_frames != 0) {
            result.lock_releases += core.EnforceCap(options.available_frames);
          }
        }
        ++result.references;
        result.max_resident = std::max(result.max_resident, core.resident());
        if (fault) {
          uint64_t cost = hier != nullptr
                              ? hier->OnFault(e.value, 0, result.faults - 1)
                              : FaultServiceCost(options.sim, result.faults - 1);
          service_total += cost;
          TELEM_COUNT("vm.fault_serviced");
          TELEM_HIST("vm.fault_service_ticks", telem::BucketSpec::PowersOfTwo(20), cost);
        }
        drain_evictions();
        result.elapsed += 1;
        ref_integral += static_cast<double>(core.held());
        break;
      }
      case TraceEvent::Kind::kDirective:
        process(trace.directive(e.value));
        drain_evictions();
        break;
      case TraceEvent::Kind::kLoopEnter:
      case TraceEvent::Kind::kLoopExit:
        break;
    }
  }
  result.elapsed += service_total;
  result.mean_memory =
      result.references == 0 ? 0.0 : ref_integral / static_cast<double>(result.references);
  result.space_time = ref_integral + static_cast<double>(service_total);
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  if (info != nullptr) {
    info->swap_requests = swap_requests;
  }
  return result;
}

}  // namespace legacy
}  // namespace cdmm
