#include "src/vm/policy_spec.h"

#include <cstdlib>

#include "src/vm/cd_policy.h"
#include "src/vm/damped_ws.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/pff.h"
#include "src/vm/vmin.h"
#include "src/vm/working_set.h"

namespace cdmm {
namespace {

// Parses "name:123" into its numeric suffix; `fallback` when absent.
uint64_t SpecArg(const std::string& spec, uint64_t fallback) {
  size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return fallback;
  }
  return std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
}

bool HasPrefix(const std::string& s, const char* prefix) { return s.rfind(prefix, 0) == 0; }

}  // namespace

std::optional<SimResult> RunPolicySpec(const std::string& spec, const Trace& full,
                                       const Trace& refs, const SimOptions& options) {
  if (HasPrefix(spec, "cd-")) {
    CdOptions cd;
    cd.sim = options;
    std::string rest = spec.substr(3);
    if (HasPrefix(rest, "nolock-")) {
      cd.honor_locks = false;
      rest = rest.substr(7);
    }
    if (rest == "outer") {
      cd.selection = DirectiveSelection::kOutermost;
    } else if (rest == "inner") {
      cd.selection = DirectiveSelection::kInnermost;
    } else if (HasPrefix(rest, "cap")) {
      cd.selection = DirectiveSelection::kLevelCap;
      cd.level_cap = static_cast<int>(SpecArg(rest, 2));
    } else if (HasPrefix(rest, "avail")) {
      cd.selection = DirectiveSelection::kAvailability;
      cd.available_frames = static_cast<uint32_t>(SpecArg(rest, 0));
    } else {
      return std::nullopt;
    }
    return SimulateCd(full, cd);
  }
  if (HasPrefix(spec, "lru")) {
    return SimulateFixed(refs, static_cast<uint32_t>(SpecArg(spec, 16)), Replacement::kLru,
                         options);
  }
  if (HasPrefix(spec, "fifo")) {
    return SimulateFixed(refs, static_cast<uint32_t>(SpecArg(spec, 16)), Replacement::kFifo,
                         options);
  }
  if (HasPrefix(spec, "opt")) {
    return SimulateFixed(refs, static_cast<uint32_t>(SpecArg(spec, 16)), Replacement::kOpt,
                         options);
  }
  if (HasPrefix(spec, "sws")) {
    return SimulateSampledWs(refs, {.sample_interval = SpecArg(spec, 2000), .window_samples = 1},
                             options);
  }
  if (spec == "vsws") {
    return SimulateVsws(refs, {}, options);
  }
  if (HasPrefix(spec, "ws")) {
    return SimulateWs(refs, SpecArg(spec, 2000), options);
  }
  if (HasPrefix(spec, "dws")) {
    return SimulateDampedWs(refs, {.tau = SpecArg(spec, 2000), .release_interval = 64}, options);
  }
  if (HasPrefix(spec, "pff")) {
    return SimulatePff(refs, SpecArg(spec, 2000), options);
  }
  if (HasPrefix(spec, "vmin")) {
    return SimulateVmin(refs, options, SpecArg(spec, 0));
  }
  return std::nullopt;
}

std::vector<std::string> KnownPolicySpecs() {
  return {"cd-outer", "cd-inner", "cd-cap:2",  "cd-avail:64", "cd-nolock-inner",
          "lru:16",   "fifo:16",  "opt:16",    "ws:2000",     "sws:2000",
          "vsws",     "dws:2000", "pff:2000",  "vmin"};
}

}  // namespace cdmm
