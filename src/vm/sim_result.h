// Common result/option types for the virtual-memory policy simulators.
//
// Metric conventions (shared by every policy so comparisons are fair):
//  - Virtual time advances 1 unit per reference, plus `fault_service_time`
//    units per page fault (the paper's §5 convention: 2000 references).
//  - MEM is the mean of the memory *held* by the program, averaged over
//    virtual (reference) time — the classic "average resident set size":
//    the fixed partition m for LRU/FIFO/OPT, the working-set size for the
//    WS family, the resident set for PFF, and grant + pinned pages for CD.
//  - ST (space-time cost) is the integral of held memory over the reference
//    string plus one frame held for the duration of every fault service:
//        ST = MEM * R + PF * fault_service_time.
//    Back-solving the paper's Table 1/3/4 rows (e.g. CONDUCT: MEM 25.8,
//    PF 577, ST 20.5e6) shows this is the formula the authors used; charging
//    the full resident set during fault service would make their MEM/PF/ST
//    triples mutually inconsistent.
#ifndef CDMM_SRC_VM_SIM_RESULT_H_
#define CDMM_SRC_VM_SIM_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/robust/fault_injector.h"

namespace cdmm {

class HierarchySpec;  // src/vm/hierarchy.h

struct SimOptions {
  // Page-fault service time in reference units (paper: 2000).
  uint64_t fault_service_time = 2000;

  // Optional deterministic fault injection (null = nominal service times).
  // Compared by identity; two options structs with distinct live injectors
  // describe distinct experiments.
  const FaultInjector* injector = nullptr;

  // Optional N-level hierarchy below RAM (null = the legacy RAM/disk
  // machine; see src/vm/hierarchy.h). When set, the levels' latencies are
  // authoritative and fault_service_time is ignored. Compared by identity,
  // like the injector.
  const HierarchySpec* hierarchy = nullptr;

  friend bool operator==(const SimOptions&, const SimOptions&) = default;
};

// Service time of the `fault_index`-th fault under `options` — the single
// injection point every policy simulator consults. Identical to
// options.fault_service_time when no injector is set.
inline uint64_t FaultServiceCost(const SimOptions& options, uint64_t fault_index) {
  return options.injector == nullptr
             ? options.fault_service_time
             : options.injector->FaultServiceTime(0, fault_index, options.fault_service_time);
}

// Sum of FaultServiceCost over faults [0, faults) — for policies that derive
// elapsed/space-time from a fault count instead of accumulating per fault.
inline uint64_t TotalFaultServiceCost(const SimOptions& options, uint64_t faults) {
  return options.injector == nullptr
             ? faults * options.fault_service_time
             : options.injector->TotalFaultServiceTime(0, faults, options.fault_service_time);
}

// Per-level traffic of one hierarchy level over a run (spec order, the
// backing store last). Populated only when SimOptions::hierarchy is set.
struct HierarchyLevelTraffic {
  std::string level;             // level name from the spec
  uint64_t hits = 0;             // faults serviced by this level
  uint64_t demotions_in = 0;     // pages demoted into this level from above
  uint64_t evictions = 0;        // overflow pushed one level further down
  uint64_t migration_retries = 0;  // injected transient promotion failures
  uint64_t demotion_drops = 0;   // injected demotion failures (page fell past)
  uint64_t service_ticks = 0;    // total service time charged to this level

  friend bool operator==(const HierarchyLevelTraffic&, const HierarchyLevelTraffic&) = default;
};

struct SimResult {
  std::string policy;       // e.g. "LRU(m=26)", "WS(tau=421)", "CD(outer)"
  uint64_t references = 0;  // reference-string length R
  uint64_t faults = 0;      // PF
  uint64_t elapsed = 0;     // R + PF * fault_service_time
  double space_time = 0.0;  // ST = MEM * R + PF * fault_service_time
  double mean_memory = 0.0; // MEM (held memory averaged over references)
  uint32_t max_resident = 0;

  // CD-only extras (0 for other policies).
  uint64_t directives_processed = 0;
  uint64_t lock_releases = 0;   // soft releases forced by memory pressure
  uint64_t allocation_shrinks = 0;

  // Per-level hierarchy traffic; empty when SimOptions::hierarchy is null.
  std::vector<HierarchyLevelTraffic> hierarchy_levels;
};

}  // namespace cdmm

#endif  // CDMM_SRC_VM_SIM_RESULT_H_
