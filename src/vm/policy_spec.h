// Textual policy specifications: one string names a policy and its
// parameters, e.g. "lru:32", "ws:2000", "cd-cap:2", "vmin". Used by the
// cdmmc driver and the examples so every binary accepts the same syntax.
#ifndef CDMM_SRC_VM_POLICY_SPEC_H_
#define CDMM_SRC_VM_POLICY_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/vm/sim_result.h"

namespace cdmm {

// Runs the policy named by `spec` and returns its result, or nullopt for an
// unrecognised spec. `full` must carry directives for the cd-* policies;
// `refs` is the directive-free view used by everything else.
//
// Accepted specs:
//   cd-outer | cd-inner | cd-cap:N | cd-avail:FRAMES | cd-nolock-...
//   lru:M | fifo:M | opt:M
//   ws:TAU | sws:SIGMA | vsws | dws:TAU | pff:T | vmin[:U]
std::optional<SimResult> RunPolicySpec(const std::string& spec, const Trace& full,
                                       const Trace& refs, const SimOptions& options = {});

// The canonical list of example specs (for --help text and the tests).
std::vector<std::string> KnownPolicySpecs();

}  // namespace cdmm

#endif  // CDMM_SRC_VM_POLICY_SPEC_H_
