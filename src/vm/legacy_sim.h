// Reference (pre-overhaul) implementations of the per-event simulators,
// preserved verbatim from the container-based code the SoA/flat kernels in
// fixed_alloc.cc, working_set.cc and cd_core.cc replaced. They serve two
// jobs:
//  - the bit-identity oracle: tests/hotpath_test.cc proves every SimResult
//    field (including eviction-order-dependent hierarchy traffic) equal
//    between these and the flat kernels on all builtins and under fault
//    injection;
//  - the in-process baseline for bench_hotpath's ns/ref ratchet, which makes
//    the >= 1.5x speedup gate machine-independent (both sides run on the
//    same hardware in the same process).
// Do not optimize these: their value is being the old code.
#ifndef CDMM_SRC_VM_LEGACY_SIM_H_
#define CDMM_SRC_VM_LEGACY_SIM_H_

#include "src/trace/prepared_trace.h"
#include "src/trace/trace.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {
namespace legacy {

// std::list/std::set/std::unordered_map-based LRU, FIFO and OPT.
SimResult SimulateFixed(const PreparedTrace& prepared, uint32_t frames,
                        Replacement replacement, const SimOptions& options = {});

// Deque-window + hash-map WS(tau).
SimResult SimulateWs(const Trace& trace, uint64_t tau, const SimOptions& options = {});

// SimulateCd over the std::list-backed CdCore.
SimResult SimulateCd(const Trace& trace, const CdOptions& options, CdRunInfo* info = nullptr);

}  // namespace legacy
}  // namespace cdmm

#endif  // CDMM_SRC_VM_LEGACY_SIM_H_
