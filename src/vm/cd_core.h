// CdCore: the residency/lock/grant mechanics of the CD policy, shared by the
// uniprogramming simulator (SimulateCd) and the multiprogrammed OS memory
// manager (src/os). Pure state machine — no metric accounting, no time.
//
// Invariants:
//  - unlocked resident pages never exceed the grant;
//  - locked pages sit on top of the grant and are only evicted by
//    EnforceCap's soft-release path (highest PJ first);
//  - replacement among unlocked pages is LRU.
//
// Storage is flat struct-of-arrays indexed by page: the recency list is an
// intrusive doubly-linked list over next_/prev_ index columns, residency is a
// byte column, and locks are an int32 PJ column (-1 = unlocked). Page tables
// grow geometrically on first touch of an out-of-range page, so callers may
// pass a sizing hint but never have to. Behaviour (victim order, lock
// release order, CHECK conditions) is bit-identical to the container-based
// original preserved as LegacyCdCore in src/vm/legacy_sim.cc.
#ifndef CDMM_SRC_VM_CD_CORE_H_
#define CDMM_SRC_VM_CD_CORE_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace cdmm {

class CdCore {
 public:
  // `page_hint` pre-sizes the per-page columns (e.g. the trace's virtual-page
  // count); it is an optimization only — out-of-range pages grow the tables.
  CdCore(uint32_t initial_grant, bool honor_locks, uint32_t page_hint = 0);

  // Processes one page reference; returns true if it faulted.
  bool Touch(PageId page);

  // Sets the allocation grant (floored at 1) and evicts unlocked LRU pages
  // down to the new grant.
  void SetGrant(uint32_t grant);

  void Lock(const std::vector<PageId>& pages, uint16_t pj);
  void Unlock(const std::vector<PageId>& pages);

  // Forces total residency (locked + unlocked) down to `cap`, evicting
  // unlocked LRU pages first, then soft-releasing locks highest-PJ-first.
  // Returns the number of locks released.
  uint32_t EnforceCap(uint32_t cap);

  // Swap-out: drops the whole resident set (locks survive as metadata so a
  // re-faulted page is still pinned, matching a swapped process resuming).
  void DropAll();

  // Soft-releases the lowest-priority (highest PJ) resident lock and evicts
  // its page; returns false when no resident page is locked. Used by the
  // multiprogrammed OS under direct pool pressure.
  bool SoftReleaseLock() { return ReleaseOneLock(); }

  // Optional eviction sink for the hierarchy engine: every true eviction
  // (an unlocked-LRU victim or a soft-released lock) appends its page here,
  // in eviction order. DropAll (swap-out) bypasses the sink on purpose — a
  // swapped-out set returns to the backing store, not the next level down.
  void set_eviction_sink(std::vector<PageId>* sink) { eviction_sink_ = sink; }

  uint32_t grant() const { return grant_; }
  uint32_t resident() const { return resident_count_; }
  uint32_t locked_resident() const { return locked_resident_; }
  uint32_t unlocked_resident() const { return resident_count_ - locked_resident_; }
  // Frames this process holds against a shared pool.
  uint32_t held() const { return grant_ + locked_resident_; }
  bool IsResident(PageId page) const {
    return page < resident_.size() && resident_[page] != 0;
  }
  bool IsLocked(PageId page) const {
    return page < locked_pj_.size() && locked_pj_[page] >= 0;
  }

 private:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  // Grows the per-page columns to cover `page` (geometric doubling).
  void EnsurePage(PageId page);
  // Splices `page` out of the recency list (does not touch residency).
  void Unlink(PageId page);
  // Pushes `page` at the MRU end of the recency list.
  void PushFront(PageId page);

  bool EvictUnlockedLru();
  bool ReleaseOneLock();
  void Remove(PageId page);

  uint32_t grant_;
  bool honor_locks_;
  // Intrusive recency list: head_ = MRU, tail_ = LRU victim end. next_ points
  // toward the tail (older), prev_ toward the head (newer).
  uint32_t head_ = kNone;
  uint32_t tail_ = kNone;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> prev_;
  std::vector<uint8_t> resident_;
  std::vector<int32_t> locked_pj_;  // PJ per page; -1 = unlocked
  uint32_t resident_count_ = 0;
  uint32_t locked_resident_ = 0;
  std::vector<PageId>* eviction_sink_ = nullptr;
};

}  // namespace cdmm

#endif  // CDMM_SRC_VM_CD_CORE_H_
