// CdCore: the residency/lock/grant mechanics of the CD policy, shared by the
// uniprogramming simulator (SimulateCd) and the multiprogrammed OS memory
// manager (src/os). Pure state machine — no metric accounting, no time.
//
// Invariants:
//  - unlocked resident pages never exceed the grant;
//  - locked pages sit on top of the grant and are only evicted by
//    EnforceCap's soft-release path (highest PJ first);
//  - replacement among unlocked pages is LRU.
#ifndef CDMM_SRC_VM_CD_CORE_H_
#define CDMM_SRC_VM_CD_CORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/trace/trace.h"

namespace cdmm {

class CdCore {
 public:
  CdCore(uint32_t initial_grant, bool honor_locks);

  // Processes one page reference; returns true if it faulted.
  bool Touch(PageId page);

  // Sets the allocation grant (floored at 1) and evicts unlocked LRU pages
  // down to the new grant.
  void SetGrant(uint32_t grant);

  void Lock(const std::vector<PageId>& pages, uint16_t pj);
  void Unlock(const std::vector<PageId>& pages);

  // Forces total residency (locked + unlocked) down to `cap`, evicting
  // unlocked LRU pages first, then soft-releasing locks highest-PJ-first.
  // Returns the number of locks released.
  uint32_t EnforceCap(uint32_t cap);

  // Swap-out: drops the whole resident set (locks survive as metadata so a
  // re-faulted page is still pinned, matching a swapped process resuming).
  void DropAll();

  // Soft-releases the lowest-priority (highest PJ) resident lock and evicts
  // its page; returns false when no resident page is locked. Used by the
  // multiprogrammed OS under direct pool pressure.
  bool SoftReleaseLock() { return ReleaseOneLock(); }

  // Optional eviction sink for the hierarchy engine: every true eviction
  // (an unlocked-LRU victim or a soft-released lock) appends its page here,
  // in eviction order. DropAll (swap-out) bypasses the sink on purpose — a
  // swapped-out set returns to the backing store, not the next level down.
  void set_eviction_sink(std::vector<PageId>* sink) { eviction_sink_ = sink; }

  uint32_t grant() const { return grant_; }
  uint32_t resident() const { return static_cast<uint32_t>(where_.size()); }
  uint32_t locked_resident() const { return locked_resident_; }
  uint32_t unlocked_resident() const { return resident() - locked_resident_; }
  // Frames this process holds against a shared pool.
  uint32_t held() const { return grant_ + locked_resident_; }
  bool IsResident(PageId page) const { return where_.find(page) != where_.end(); }
  bool IsLocked(PageId page) const { return locked_.find(page) != locked_.end(); }

 private:
  bool EvictUnlockedLru();
  bool ReleaseOneLock();
  void Remove(PageId page);

  uint32_t grant_;
  bool honor_locks_;
  std::list<PageId> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
  std::map<PageId, uint16_t> locked_;  // page -> PJ
  uint32_t locked_resident_ = 0;
  std::vector<PageId>* eviction_sink_ = nullptr;
};

}  // namespace cdmm

#endif  // CDMM_SRC_VM_CD_CORE_H_
