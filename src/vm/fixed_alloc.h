// Fixed-allocation (static partition) policies: LRU, FIFO, and OPT (Belady's
// MIN with perfect lookahead, the optimality yardstick). The program owns a
// constant partition of `frames` pages; MEM == frames by the shared metric
// convention in sim_result.h.
#ifndef CDMM_SRC_VM_FIXED_ALLOC_H_
#define CDMM_SRC_VM_FIXED_ALLOC_H_

#include <vector>

#include "src/trace/prepared_trace.h"
#include "src/trace/trace.h"
#include "src/vm/sim_result.h"

namespace cdmm {

enum class Replacement : uint8_t { kLru, kFifo, kOpt };

const char* ReplacementName(Replacement r);

// Simulates one fixed-size partition. Directive events in the trace are
// ignored (these policies cannot use them). `frames` must be >= 1.
SimResult SimulateFixed(const Trace& trace, uint32_t frames, Replacement replacement,
                        const SimOptions& options = {});

// Same simulation over a PreparedTrace. OPT reads its forward distances
// straight from the prepared next-use column instead of re-deriving them
// with a backward scan + hash map; the Trace overload above delegates here.
// Results are bit-identical either way.
SimResult SimulateFixed(const PreparedTrace& prepared, uint32_t frames, Replacement replacement,
                        const SimOptions& options = {});

// One point of a parameter sweep (shared by the LRU and WS sweeps).
// Exact equality is meaningful: the determinism tests assert bit-identical
// sweeps across thread counts.
struct SweepPoint {
  double parameter = 0.0;   // frames for LRU, window τ for WS
  uint64_t faults = 0;
  uint64_t elapsed = 0;
  double mean_memory = 0.0;
  double space_time = 0.0;

  friend bool operator==(const SweepPoint&, const SweepPoint&) = default;
};

// Computes the whole LRU curve faults(m) for m = 1..max_frames in one pass
// using LRU stack distances (the LRU inclusion property), then derives
// elapsed/ST per point. Equivalent to calling SimulateFixed for every m,
// but O(R * V) total instead of O(R * V) per point.
std::vector<SweepPoint> LruSweep(const Trace& trace, uint32_t max_frames,
                                 const SimOptions& options = {});

// Same curve off an already-prepared trace: the stack-distance engine is
// sized exactly (references and page bound both known up front), so its
// Fenwick tree never regrows and the per-page last-use table is flat.
std::vector<SweepPoint> LruSweep(const PreparedTrace& prepared, uint32_t max_frames,
                                 const SimOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_VM_FIXED_ALLOC_H_
