// The Compiler-Directed (CD) memory-management policy (§4 of the paper).
// Consumes a directive-bearing trace produced by the interpreter:
//  - ALLOCATE ((PI_1,X_1) else ...) adjusts the program's allocation grant;
//  - LOCK (PJ, Y...) pins pages against replacement (soft: the policy may
//    release them under pressure, highest PJ first);
//  - UNLOCK (Y...) releases pins.
// Replacement within the grant is local LRU over unlocked pages.
#ifndef CDMM_SRC_VM_CD_POLICY_H_
#define CDMM_SRC_VM_CD_POLICY_H_

#include "src/trace/trace.h"
#include "src/vm/sim_result.h"

namespace cdmm {

// How an ALLOCATE else-chain is resolved. The paper's uniprogramming
// experiments (§5) fix the honoured set of directives before the run
// ("we specify prior to program execution the set of directives to be
// executed"); kAvailability is the multiprogrammed Figure-6 behaviour.
enum class DirectiveSelection : uint8_t {
  kOutermost,     // always grant X_1 (the outermost loop's locality)
  kInnermost,     // always grant the chain's last request (current loop)
  kLevelCap,      // grant the first request with PI <= level_cap
  kAvailability,  // grant the largest X_i that fits in available_frames
};

const char* DirectiveSelectionName(DirectiveSelection s);

struct CdOptions {
  DirectiveSelection selection = DirectiveSelection::kOutermost;
  // kLevelCap: the largest priority index the system is willing to honour.
  int level_cap = 1;
  // Allocation before the first ALLOCATE is processed.
  uint32_t initial_allocation = 2;
  // Ignore LOCK/UNLOCK directives when false (ablation switch).
  bool honor_locks = true;
  // kAvailability: physical frames available to this program (0 = unlimited,
  // which degenerates to kOutermost).
  uint32_t available_frames = 0;
  SimOptions sim;
};

// Counters specific to a CD run, folded into SimResult by SimulateCd.
struct CdRunInfo {
  uint64_t swap_requests = 0;  // ungrantable PI=1 requests (Figure 6's swap arm)
};

SimResult SimulateCd(const Trace& trace, const CdOptions& options, CdRunInfo* info = nullptr);

// Resolves an ALLOCATE else-chain. For kAvailability, `available` is the
// frame budget; returns -1 when nothing fits (the Figure-6 swap/continue
// decision is the caller's). Other modes always return a valid index and
// ignore `available`.
int SelectCdRequest(const std::vector<AllocateRequest>& chain, DirectiveSelection selection,
                    int level_cap, uint32_t available);

}  // namespace cdmm

#endif  // CDMM_SRC_VM_CD_POLICY_H_
