#include "src/vm/stack_distance.h"

#include <algorithm>

#include "src/support/check.h"

namespace cdmm {

StackDistanceEngine::StackDistanceEngine(size_t expected_refs, uint32_t expected_pages) {
  tree_.assign(expected_refs + 1, 0);
  if (expected_pages != 0) {
    flat_last_use_.assign(expected_pages, 0);
  }
}

void StackDistanceEngine::EnsureCapacity(size_t pos) {
  if (pos < tree_.size()) {
    return;
  }
  // A Fenwick tree cannot grow in place (a fresh node would have to cover
  // already-counted positions), so double the capacity and rebuild. The
  // tree's live +1 entries are exactly each page's most recent use position
  // — the contents of the last-use table — so the rebuild is O(P log R);
  // doubling makes the total regrowth cost amortized O(log R) per reference.
  ++regrows_;
  size_t capacity = tree_.size() - 1;
  while (capacity < pos) {
    capacity = capacity == 0 ? 1 : capacity * 2;
  }
  tree_.assign(capacity + 1, 0);
  auto reinsert = [&](uint64_t at) {
    for (size_t i = at; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += 1;
    }
  };
  for (uint64_t at : flat_last_use_) {
    if (at != 0) {
      reinsert(at);
    }
  }
  for (const auto& [page, at] : overflow_last_use_) {
    (void)page;
    reinsert(at);
  }
}

void StackDistanceEngine::Add(size_t pos, int delta) {
  EnsureCapacity(pos);
  for (size_t i = pos; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

int64_t StackDistanceEngine::Prefix(size_t pos) const {
  int64_t s = 0;
  for (size_t i = std::min(pos, tree_.size() - 1); i > 0; i -= i & (~i + 1)) {
    s += tree_[i];
  }
  return s;
}

StackDistanceEngine::Touch StackDistanceEngine::Next(PageId page) {
  ++now_;
  EnsureCapacity(now_);
  Touch result;
  uint64_t prev = LastUse(page);
  if (prev != 0) {
    // Distinct pages whose most recent use lies strictly after `prev`, plus
    // the page itself.
    int64_t between = Prefix(now_ - 1) - Prefix(prev);
    result.depth = static_cast<uint32_t>(between + 1);
    result.previous = prev;
    Add(prev, -1);
  }
  SetLastUse(page, now_);
  Add(now_, +1);
  return result;
}

}  // namespace cdmm
