#include "src/vm/stack_distance.h"

#include <algorithm>

#include "src/support/check.h"

namespace cdmm {

StackDistanceEngine::StackDistanceEngine(size_t expected_refs, uint32_t expected_pages) {
  tree_.assign(expected_refs + 1, 0);
  if (expected_pages != 0) {
    last_use_.reserve(expected_pages);
  }
}

void StackDistanceEngine::EnsureCapacity(size_t pos) {
  if (pos < tree_.size()) {
    return;
  }
  // A Fenwick tree cannot grow in place (a fresh node would have to cover
  // already-counted positions), so double the capacity and rebuild. The
  // tree's live +1 entries are exactly each page's most recent use position
  // — the contents of last_use_ — so the rebuild is O(P log R); doubling
  // makes the total regrowth cost amortized O(log R) per reference.
  size_t capacity = tree_.size() - 1;
  while (capacity < pos) {
    capacity = capacity == 0 ? 1 : capacity * 2;
  }
  tree_.assign(capacity + 1, 0);
  for (const auto& [page, at] : last_use_) {
    (void)page;
    for (size_t i = at; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += 1;
    }
  }
}

void StackDistanceEngine::Add(size_t pos, int delta) {
  EnsureCapacity(pos);
  for (size_t i = pos; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

int64_t StackDistanceEngine::Prefix(size_t pos) const {
  int64_t s = 0;
  for (size_t i = std::min(pos, tree_.size() - 1); i > 0; i -= i & (~i + 1)) {
    s += tree_[i];
  }
  return s;
}

StackDistanceEngine::Touch StackDistanceEngine::Next(PageId page) {
  ++now_;
  EnsureCapacity(now_);
  Touch result;
  auto it = last_use_.find(page);
  if (it != last_use_.end()) {
    uint64_t prev = it->second;
    // Distinct pages whose most recent use lies strictly after `prev`, plus
    // the page itself.
    int64_t between = Prefix(now_ - 1) - Prefix(prev);
    result.depth = static_cast<uint32_t>(between + 1);
    result.previous = prev;
    Add(prev, -1);
    it->second = now_;
  } else {
    last_use_.emplace(page, now_);
  }
  Add(now_, +1);
  return result;
}

}  // namespace cdmm
