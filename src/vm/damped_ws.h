// The Damped Working Set (Smith 1976), surveyed in the paper's §1: "The
// Damped WS (DWS) was introduced to handle these transitional faults.
// However, the DWS out performs WS by less than 10%". DWS damps the
// working-set contraction: pages are expelled not the instant they leave
// the window but at a bounded rate, which smooths the deallocation spike at
// inter-locality transitions.
#ifndef CDMM_SRC_VM_DAMPED_WS_H_
#define CDMM_SRC_VM_DAMPED_WS_H_

#include "src/trace/trace.h"
#include "src/vm/sim_result.h"

namespace cdmm {

struct DampedWsParams {
  uint64_t tau = 2000;
  // At most one expired page is released every `release_interval`
  // references; expired pages awaiting release still count as held memory
  // and still satisfy references without faulting.
  uint64_t release_interval = 64;
};

SimResult SimulateDampedWs(const Trace& trace, const DampedWsParams& params,
                           const SimOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_VM_DAMPED_WS_H_
