// Classic memory-policy characteristic curves (Denning & Kahn 1975, cited by
// the paper): the lifetime function g(m) — mean references between faults as
// a function of allocation — its fault-rate inverse, and the WS
// characteristic (mean working-set size and fault rate vs the window τ).
// These are the standard instruments for locating a program's "knee", which
// is exactly what the CD directives encode at compile time.
//
// Every curve is a pure transform of a parameter sweep. The sweep-taking
// overloads let callers run the sweep once (serially or via the parallel
// SweepScheduler) and derive any number of curves from it; the Trace-taking
// forms are conveniences that run the sweep themselves.
#ifndef CDMM_SRC_VM_CURVES_H_
#define CDMM_SRC_VM_CURVES_H_

#include <vector>

#include "src/trace/trace.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {

struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};

// g(m) = R / PF(m) from an LRU sweep; `references` is the trace length R.
std::vector<CurvePoint> LifetimeCurve(const std::vector<SweepPoint>& lru_sweep,
                                      uint64_t references);
// f(m) = PF(m) / R from an LRU sweep.
std::vector<CurvePoint> FaultRateCurve(const std::vector<SweepPoint>& lru_sweep,
                                       uint64_t references);
// (τ, mean WS size) from a WS sweep.
std::vector<CurvePoint> WsSizeCurve(const std::vector<SweepPoint>& ws_sweep);
// (τ, PF/R) from a WS sweep.
std::vector<CurvePoint> WsFaultRateCurve(const std::vector<SweepPoint>& ws_sweep,
                                         uint64_t references);

// Convenience forms that run the underlying sweep on `trace` themselves.
std::vector<CurvePoint> LifetimeCurve(const Trace& trace, uint32_t max_frames,
                                      const SimOptions& options = {});
std::vector<CurvePoint> FaultRateCurve(const Trace& trace, uint32_t max_frames,
                                       const SimOptions& options = {});
std::vector<CurvePoint> WsSizeCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                    const SimOptions& options = {});
std::vector<CurvePoint> WsFaultRateCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                         const SimOptions& options = {});

// The lifetime knee: the allocation maximising g(m)/m (the classic
// knee criterion). Returns the m of the knee point.
uint32_t LifetimeKnee(const std::vector<CurvePoint>& lifetime);

}  // namespace cdmm

#endif  // CDMM_SRC_VM_CURVES_H_
