// Classic memory-policy characteristic curves (Denning & Kahn 1975, cited by
// the paper): the lifetime function g(m) — mean references between faults as
// a function of allocation — its fault-rate inverse, and the WS
// characteristic (mean working-set size and fault rate vs the window τ).
// These are the standard instruments for locating a program's "knee", which
// is exactly what the CD directives encode at compile time.
#ifndef CDMM_SRC_VM_CURVES_H_
#define CDMM_SRC_VM_CURVES_H_

#include <vector>

#include "src/trace/trace.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {

struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};

// g(m) = R / PF(m) under LRU for m = 1..max_frames.
std::vector<CurvePoint> LifetimeCurve(const Trace& trace, uint32_t max_frames,
                                      const SimOptions& options = {});

// f(m) = PF(m) / R under LRU.
std::vector<CurvePoint> FaultRateCurve(const Trace& trace, uint32_t max_frames,
                                       const SimOptions& options = {});

// (τ, mean WS size) over the given windows.
std::vector<CurvePoint> WsSizeCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                    const SimOptions& options = {});

// (τ, PF/R) over the given windows.
std::vector<CurvePoint> WsFaultRateCurve(const Trace& trace, const std::vector<uint64_t>& taus,
                                         const SimOptions& options = {});

// The lifetime knee: the allocation maximising g(m)/m (the classic
// knee criterion). Returns the m of the knee point.
uint32_t LifetimeKnee(const std::vector<CurvePoint>& lifetime);

}  // namespace cdmm

#endif  // CDMM_SRC_VM_CURVES_H_
