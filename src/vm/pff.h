// The Page Fault Frequency policy (Chu & Opderbeck 1972). A single parameter
// T (the critical inter-fault interval): a fault arriving within T references
// of the previous fault grows the resident set; a fault arriving later first
// discards every page not referenced since the previous fault.
#ifndef CDMM_SRC_VM_PFF_H_
#define CDMM_SRC_VM_PFF_H_

#include "src/trace/trace.h"
#include "src/vm/sim_result.h"

namespace cdmm {

SimResult SimulatePff(const Trace& trace, uint64_t critical_interval,
                      const SimOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_VM_PFF_H_
