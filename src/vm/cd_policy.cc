#include "src/vm/cd_policy.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/cd_core.h"
#include "src/vm/hierarchy.h"

namespace cdmm {

const char* DirectiveSelectionName(DirectiveSelection s) {
  switch (s) {
    case DirectiveSelection::kOutermost:
      return "outermost";
    case DirectiveSelection::kInnermost:
      return "innermost";
    case DirectiveSelection::kLevelCap:
      return "level-cap";
    case DirectiveSelection::kAvailability:
      return "availability";
  }
  return "?";
}

int SelectCdRequest(const std::vector<AllocateRequest>& chain, DirectiveSelection selection,
                    int level_cap, uint32_t available) {
  CDMM_CHECK(!chain.empty());
  switch (selection) {
    case DirectiveSelection::kOutermost:
      return 0;
    case DirectiveSelection::kInnermost:
      return static_cast<int>(chain.size()) - 1;
    case DirectiveSelection::kLevelCap:
      for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].priority <= level_cap) {
          return static_cast<int>(i);
        }
      }
      return static_cast<int>(chain.size()) - 1;
    case DirectiveSelection::kAvailability:
      for (size_t i = 0; i < chain.size(); ++i) {
        if (chain[i].pages <= available) {
          return static_cast<int>(i);
        }
      }
      return -1;
  }
  CDMM_UNREACHABLE("bad DirectiveSelection");
}

namespace {

// The CD event loop, monomorphic per hierarchy mode: without a hierarchy the
// per-reference path is core.Touch (flat SoA inside) plus plain accounting —
// no null checks, no eviction-sink drain.
template <bool kHier>
SimResult RunCd(const Trace& trace, const CdOptions& options, CdRunInfo* info) {
  SimResult result;
  result.policy = StrCat("CD(", DirectiveSelectionName(options.selection),
                         options.selection == DirectiveSelection::kLevelCap
                             ? StrCat(" ", options.level_cap)
                             : "",
                         ")");
  TELEM_COUNT("hotpath.kernel_dispatched");
  CdCore core(options.initial_allocation, options.honor_locks, trace.virtual_pages());
  uint64_t swap_requests = 0;
  double ref_integral = 0.0;
  uint64_t service_total = 0;
  std::unique_ptr<HierarchyEngine> hier;
  std::vector<PageId> evicted;
  if constexpr (kHier) {
    hier = MakeHierarchyEngine(options.sim);
    core.set_eviction_sink(&evicted);
  }
  // Demote the core's evictions after each event, once the faulting page (if
  // any) has been promoted out of the levels below.
  auto drain_evictions = [&]() {
    if constexpr (kHier) {
      for (PageId p : evicted) {
        hier->OnEvict(p);
      }
      evicted.clear();
    }
  };

  auto process = [&](const DirectiveRecord& d) {
    ++result.directives_processed;
    TELEM_COUNT("cd.directive_processed");
    switch (d.kind) {
      case DirectiveRecord::Kind::kAllocate: {
        uint32_t available = options.selection == DirectiveSelection::kAvailability &&
                                     options.available_frames != 0
                                 ? options.available_frames
                                 : 0;
        if (options.selection == DirectiveSelection::kAvailability && available == 0) {
          // Unlimited memory degenerates to the outermost selection.
          core.SetGrant(d.requests.front().pages);
          TELEM_COUNT("cd.alloc_granted");
          TELEM_HIST("cd.grant_pages", telem::BucketSpec::PowersOfTwo(16),
                     d.requests.front().pages);
          break;
        }
        int idx = SelectCdRequest(d.requests, options.selection, options.level_cap, available);
        if (idx < 0) {
          // Figure 6: nothing fits. PI = 1 would swap/suspend — emulated in
          // uniprogramming by recording the request and running inside what
          // physically fits; PI > 1 continues under the current allocation.
          if (d.requests.back().priority == 1) {
            ++swap_requests;
            core.SetGrant(available);
            TELEM_COUNT("cd.alloc_swap_requested");
          } else {
            TELEM_COUNT("cd.alloc_continued");
          }
          break;
        }
        uint32_t g = d.requests[static_cast<size_t>(idx)].pages;
        if (g < core.grant() && core.unlocked_resident() > g) {
          ++result.allocation_shrinks;
          TELEM_COUNT("cd.alloc_shrunk");
        }
        core.SetGrant(g);
        TELEM_COUNT("cd.alloc_granted");
        TELEM_HIST("cd.grant_pages", telem::BucketSpec::PowersOfTwo(16), g);
        break;
      }
      case DirectiveRecord::Kind::kLock: {
        core.Lock(d.pages, d.lock_priority);
        TELEM_COUNT("cd.lock_applied");
        if (options.available_frames != 0) {
          uint32_t released = core.EnforceCap(options.available_frames);
          result.lock_releases += released;
          TELEM_COUNT_N("cd.lock_release_forced", released);
        }
        break;
      }
      case DirectiveRecord::Kind::kUnlock:
        core.Unlock(d.pages);
        TELEM_COUNT("cd.unlock_applied");
        break;
    }
  };

  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kRef: {
        bool fault = core.Touch(e.value);
        if (fault) {
          ++result.faults;
          if (options.available_frames != 0) {
            result.lock_releases += core.EnforceCap(options.available_frames);
          }
        }
        ++result.references;
        result.max_resident = std::max(result.max_resident, core.resident());
        if (fault) {
          uint64_t cost;
          if constexpr (kHier) {
            cost = hier->OnFault(e.value, 0, result.faults - 1);
          } else {
            cost = FaultServiceCost(options.sim, result.faults - 1);
          }
          service_total += cost;
          TELEM_COUNT("vm.fault_serviced");
          TELEM_HIST("vm.fault_service_ticks", telem::BucketSpec::PowersOfTwo(20), cost);
        }
        drain_evictions();
        result.elapsed += 1;
        ref_integral += static_cast<double>(core.held());
        break;
      }
      case TraceEvent::Kind::kDirective:
        process(trace.directive(e.value));
        drain_evictions();
        break;
      case TraceEvent::Kind::kLoopEnter:
      case TraceEvent::Kind::kLoopExit:
        break;
    }
  }
  result.elapsed += service_total;
  result.mean_memory =
      result.references == 0 ? 0.0 : ref_integral / static_cast<double>(result.references);
  result.space_time = ref_integral + static_cast<double>(service_total);
  if constexpr (kHier) {
    result.hierarchy_levels = hier->Traffic();
  }
  if (info != nullptr) {
    info->swap_requests = swap_requests;
  }
  return result;
}

}  // namespace

SimResult SimulateCd(const Trace& trace, const CdOptions& options, CdRunInfo* info) {
  return options.sim.hierarchy != nullptr ? RunCd<true>(trace, options, info)
                                          : RunCd<false>(trace, options, info);
}

}  // namespace cdmm
