#include "src/vm/sweep_engines.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/support/check.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace {

// Packed OPT retention key: (next use index, page), lexicographic order as a
// single 64-bit compare. The eviction victim is the largest key — exactly
// SimulateOpt's std::pair<uint64_t, PageId> ordering, including the
// page-id tie-break among pages never referenced again (whose next-use
// component is the shared sentinel).
uint64_t PackKey(uint32_t next_use, PageId page) {
  return (static_cast<uint64_t>(next_use) << 32) | page;
}
PageId KeyPage(uint64_t key) { return static_cast<PageId>(key); }

}  // namespace

const char* SweepEngineName(SweepEngine engine) {
  switch (engine) {
    case SweepEngine::kNaive:
      return "naive";
    case SweepEngine::kOnePass:
      return "onepass";
    case SweepEngine::kAnalytic:
      return "analytic";
  }
  return "?";
}

SweepPoint MakeWsSweepPoint(uint64_t tau, uint64_t refs, uint64_t faults, uint64_t occupancy,
                            const SimOptions& options) {
  uint64_t service_total = TotalFaultServiceCost(options, faults);
  SweepPoint p;
  p.parameter = static_cast<double>(tau);
  p.faults = faults;
  p.elapsed = refs + service_total;
  p.mean_memory =
      refs == 0 ? 0.0 : static_cast<double>(occupancy) / static_cast<double>(refs);
  p.space_time = static_cast<double>(occupancy) + static_cast<double>(service_total);
  return p;
}

SweepPoint MakeOptSweepPoint(uint32_t m, uint64_t refs, uint64_t faults,
                             const SimOptions& options) {
  // Field-for-field the arithmetic of fixed_alloc.cc's Finish()/LruSweep().
  uint64_t service_total = TotalFaultServiceCost(options, faults);
  SweepPoint p;
  p.parameter = m;
  p.faults = faults;
  p.elapsed = refs + service_total;
  p.mean_memory = m;
  p.space_time = static_cast<double>(m) * static_cast<double>(refs) +
                 static_cast<double>(service_total);
  return p;
}

std::vector<SweepPoint> OnePassWsSweep(const PreparedTrace& prepared,
                                       const std::vector<uint64_t>& taus,
                                       const SimOptions& options) {
  TELEM_SPAN("sweep:ws_onepass", "sweep");
  const uint64_t r = prepared.size();
  std::vector<SweepPoint> points(taus.size());

  // One scan of the forward links builds the two Denning–Slutz histograms:
  //  - gaps[g]  = #consecutive-use pairs at distance g (faults: gap > τ);
  //  - caps[k]  = #residency intervals whose WS occupancy saturates at
  //               min(k, τ) + 1 instants — k = g - 1 for a pair, k = R - u
  //               for the tail after a page's final use at time u.
  std::vector<uint32_t> gaps(r + 1, 0);
  std::vector<uint32_t> caps(r + 1, 0);
  uint64_t total_pairs = 0;
  for (uint32_t i = 0; i < prepared.size(); ++i) {
    uint32_t next = prepared.next_use(i);
    if (next != prepared.size()) {
      uint32_t g = next - i;
      ++gaps[g];
      ++caps[g - 1];
      ++total_pairs;
    } else {
      ++caps[prepared.size() - 1 - i];  // tail distance R - u with u = i + 1
    }
  }
  const uint64_t cold = prepared.distinct_pages();
  const uint64_t total_caps = r;  // every reference opens exactly one interval
  TELEM_COUNT("sweep.gap_histogram_built");

  // Evaluate every τ in ascending order with one merged traversal of the
  // histograms; running prefix sums make each point O(1).
  std::vector<size_t> order(taus.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return taus[a] < taus[b]; });
  uint64_t g_cursor = 1;        // gaps[1..g_cursor-1] consumed
  uint64_t pairs_le = 0;        // Σ gaps[g], g <= τ
  uint64_t k_cursor = 0;        // caps[0..k_cursor-1] consumed
  uint64_t caps_le = 0;         // Σ caps[k], k <= τ
  uint64_t weighted_caps_le = 0;  // Σ caps[k]·k, k <= τ
  for (size_t idx : order) {
    uint64_t tau = taus[idx];
    CDMM_CHECK(tau >= 1);
    for (; g_cursor <= tau && g_cursor <= r; ++g_cursor) {
      pairs_le += gaps[g_cursor];
    }
    for (; k_cursor <= tau && k_cursor <= r; ++k_cursor) {
      weighted_caps_le += caps[k_cursor] * k_cursor;
      caps_le += caps[k_cursor];
    }
    uint64_t faults = cold + (total_pairs - pairs_le);
    // Σ over references of the resident-set size after that reference:
    // every interval contributes min(k, τ) + 1 instants of occupancy.
    uint64_t occupancy = r + weighted_caps_le + tau * (total_caps - caps_le);
    points[idx] = MakeWsSweepPoint(tau, r, faults, occupancy, options);
  }
  TELEM_COUNT("sweep.ws_curve_computed");
  TELEM_COUNT_N("sweep.ws_points_computed", points.size());
  return points;
}

std::vector<SweepPoint> OnePassWsSweep(const Trace& trace, const std::vector<uint64_t>& taus,
                                       const SimOptions& options) {
  return OnePassWsSweep(PreparedTrace::Build(trace), taus, options);
}

std::vector<SweepPoint> OnePassOptSweep(const PreparedTrace& prepared, uint32_t max_frames,
                                        const SimOptions& options) {
  TELEM_SPAN("sweep:opt_onepass", "sweep");
  CDMM_CHECK_MSG(max_frames >= 1, "fixed partition needs at least one frame");
  const uint64_t r = prepared.size();

  // OPT stack distances via Mattson's priority-list update: the list holds
  // each resident page's packed (next use, page) key, top (index 0) first;
  // for every capacity m the top m entries are exactly OPT's resident set.
  // On a reference the new key takes the top and the displaced keys
  // percolate down, each level retaining the sooner-referenced (smaller)
  // key — the cascade of per-capacity evictions. A page's stored key stays
  // current between its uses (its next use does not change), so no
  // re-prioritisation pass is ever needed.
  std::vector<uint64_t> depth_hist(static_cast<size_t>(max_frames) + 2, 0);
  uint64_t cold = 0;
  std::vector<uint64_t> stack;
  for (uint32_t i = 0; i < prepared.size(); ++i) {
    PageId page = prepared.page(i);
    uint64_t fresh = PackKey(prepared.next_use(i), page);
    if (stack.empty()) {
      stack.push_back(fresh);
      ++cold;
      continue;
    }
    if (KeyPage(stack[0]) == page) {
      stack[0] = fresh;
      ++depth_hist[1];
      continue;
    }
    uint64_t carry = stack[0];
    stack[0] = fresh;
    size_t j = 1;
    for (; j < stack.size(); ++j) {
      if (KeyPage(stack[j]) == page) {
        stack[j] = carry;
        ++depth_hist[std::min<uint64_t>(j + 1, max_frames + 1)];
        break;
      }
      if (carry < stack[j]) {
        std::swap(carry, stack[j]);
      }
    }
    if (j == stack.size()) {
      stack.push_back(carry);
      ++cold;
    }
  }

  // faults(m) = cold + Σ_{d > m} depth_hist[d], one backward pass — the
  // same suffix-sum finish as LruSweep.
  std::vector<SweepPoint> points;
  points.reserve(max_frames);
  std::vector<uint64_t> faults_at(max_frames + 1, 0);
  uint64_t running = cold;
  for (uint32_t m = max_frames; m >= 1; --m) {
    running += depth_hist[m + 1];
    faults_at[m] = running;
  }
  for (uint32_t m = 1; m <= max_frames; ++m) {
    points.push_back(MakeOptSweepPoint(m, r, faults_at[m], options));
  }
  TELEM_COUNT("sweep.opt_curve_computed");
  TELEM_COUNT_N("sweep.opt_points_computed", points.size());
  return points;
}

std::vector<SweepPoint> OnePassOptSweep(const Trace& trace, uint32_t max_frames,
                                        const SimOptions& options) {
  return OnePassOptSweep(PreparedTrace::Build(trace), max_frames, options);
}

std::vector<SweepPoint> NaiveOptSweep(const Trace& trace, uint32_t max_frames,
                                      const SimOptions& options) {
  CDMM_CHECK(max_frames >= 1);
  std::vector<SweepPoint> points;
  points.reserve(max_frames);
  for (uint32_t m = 1; m <= max_frames; ++m) {
    SimResult r = SimulateFixed(trace, m, Replacement::kOpt, options);
    SweepPoint p;
    p.parameter = static_cast<double>(m);
    p.faults = r.faults;
    p.elapsed = r.elapsed;
    p.mean_memory = r.mean_memory;
    p.space_time = r.space_time;
    points.push_back(p);
  }
  return points;
}

uint64_t FingerprintSweep(const std::vector<SweepPoint>& points) {
  uint64_t hash = 14695981039346656037ULL;
  auto mix = [&hash](uint64_t bits) {
    for (int b = 0; b < 64; b += 8) {
      hash ^= (bits >> b) & 0xFF;
      hash *= 1099511628211ULL;
    }
  };
  auto mix_double = [&](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  for (const SweepPoint& p : points) {
    mix_double(p.parameter);
    mix(p.faults);
    mix(p.elapsed);
    mix_double(p.mean_memory);
    mix_double(p.space_time);
  }
  return hash;
}

}  // namespace cdmm
