#include "src/vm/hierarchy.h"

#include <algorithm>
#include <cctype>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace {

bool IsLowerWord(const std::string& s) {
  if (s.empty() || std::islower(static_cast<unsigned char>(s[0])) == 0) {
    return false;
  }
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::islower(u) == 0 && std::isdigit(u) == 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

// Parses a non-negative decimal integer; returns false on junk.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

Error SpecError(const std::string& text, const std::string& why) {
  return Error{StrCat("bad hierarchy spec '", text, "': ", why), {}};
}

}  // namespace

const char* LevelPolicyName(LevelPolicy p) {
  switch (p) {
    case LevelPolicy::kLru:
      return "lru";
    case LevelPolicy::kFifo:
      return "fifo";
  }
  return "?";
}

HierarchySpec HierarchySpec::Legacy(uint64_t service) {
  HierarchySpec spec;
  spec.levels.push_back(HierarchyLevel{"disk", 0, std::max<uint64_t>(service, 1),
                                       LevelPolicy::kLru});
  return spec;
}

const std::vector<std::pair<std::string, std::string>>& HierarchySpec::Presets() {
  static const auto* presets = new std::vector<std::pair<std::string, std::string>>{
      {"legacy", "disk:*:2000"},
      {"dram-disk", "disk:*:2000"},
      {"dram-nvm-disk", "nvm:512:60,disk:*:2000"},
      {"dram-nvm-ssd-disk", "nvm:512:60,ssd:4096:400,disk:*:2000"},
  };
  return *presets;
}

Result<HierarchySpec> HierarchySpec::Parse(const std::string& text) {
  for (const auto& [name, spec] : Presets()) {
    if (text == name) {
      return Parse(spec);
    }
  }
  HierarchySpec spec;
  for (const std::string& segment : SplitOn(text, ',')) {
    std::vector<std::string> fields = SplitOn(segment, ':');
    if (fields.size() < 3 || fields.size() > 4) {
      return SpecError(text, StrCat("level '", segment,
                                    "' wants name:capacity:latency[:lru|fifo]"));
    }
    HierarchyLevel level;
    level.name = fields[0];
    if (!IsLowerWord(level.name)) {
      return SpecError(text, StrCat("level name '", fields[0],
                                    "' must be lowercase alphanumeric"));
    }
    if (fields[1] == "*") {
      level.capacity = 0;
    } else {
      uint64_t capacity = 0;
      if (!ParseU64(fields[1], &capacity) || capacity == 0 || capacity > UINT32_MAX) {
        return SpecError(text, StrCat("capacity '", fields[1],
                                      "' must be a positive frame count or '*'"));
      }
      level.capacity = static_cast<uint32_t>(capacity);
    }
    if (!ParseU64(fields[2], &level.latency) || level.latency == 0) {
      return SpecError(text, StrCat("latency '", fields[2],
                                    "' must be a positive reference count"));
    }
    if (fields.size() == 4) {
      if (fields[3] == "lru") {
        level.policy = LevelPolicy::kLru;
      } else if (fields[3] == "fifo") {
        level.policy = LevelPolicy::kFifo;
      } else {
        return SpecError(text, StrCat("policy '", fields[3], "' must be lru or fifo"));
      }
    }
    spec.levels.push_back(std::move(level));
  }
  for (size_t i = 0; i + 1 < spec.levels.size(); ++i) {
    if (spec.levels[i].capacity == 0) {
      return SpecError(text, StrCat("only the last level may be unbounded, not '",
                                    spec.levels[i].name, "'"));
    }
  }
  if (spec.levels.back().capacity != 0) {
    return SpecError(text, "the last level (the backing store) must have capacity '*'");
  }
  return spec;
}

HierarchySpec HierarchySpec::WithBottomLatency(uint64_t latency) const {
  CDMM_CHECK(latency >= 1);
  HierarchySpec copy = *this;
  copy.levels.back().latency = latency;
  return copy;
}

std::string HierarchySpec::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(levels.size());
  for (const HierarchyLevel& level : levels) {
    std::string capacity = level.capacity == 0 ? "*" : StrCat(level.capacity);
    std::string segment = StrCat(level.name, ":", capacity, ":", level.latency);
    if (level.policy != LevelPolicy::kLru) {
      segment = StrCat(segment, ":", LevelPolicyName(level.policy));
    }
    parts.push_back(std::move(segment));
  }
  return Join(parts, ",");
}

HierarchyEngine::HierarchyEngine(const HierarchySpec& spec, const FaultInjector* injector)
    : injector_(injector) {
  CDMM_CHECK_MSG(!spec.levels.empty(), "hierarchy needs at least a backing store");
  CDMM_CHECK_MSG(spec.levels.back().capacity == 0, "the backing store must be unbounded");
  inter_.reserve(spec.levels.size() - 1);
  for (size_t i = 0; i + 1 < spec.levels.size(); ++i) {
    Level level;
    level.spec = spec.levels[i];
    level.traffic.level = spec.levels[i].name;
    // Reserve the node pool up front (bounded for pathological capacities —
    // the pool grows on demand and never exceeds capacity+1 nodes).
    const size_t reserve = std::min<size_t>(static_cast<size_t>(level.spec.capacity) + 1,
                                            size_t{1} << 16);
    level.pool.reserve(reserve);
    level.where.reserve(reserve);
    inter_.push_back(std::move(level));
  }
  bottom_.level = spec.levels.back().name;
  bottom_latency_ = std::max<uint64_t>(spec.levels.back().latency, 1);
}

void HierarchyEngine::Level::Unlink(uint32_t idx) {
  const uint32_t n = pool[idx].next;
  const uint32_t p = pool[idx].prev;
  if (p != kNone) {
    pool[p].next = n;
  } else {
    head = n;
  }
  if (n != kNone) {
    pool[n].prev = p;
  } else {
    tail = p;
  }
}

void HierarchyEngine::Level::PushFront(uint64_t key) {
  uint32_t idx = free_head;
  if (idx == kNone) {
    idx = static_cast<uint32_t>(pool.size());
    pool.emplace_back();
  } else {
    free_head = pool[idx].next;
  }
  pool[idx] = Node{key, head, kNone};
  if (head != kNone) {
    pool[head].prev = idx;
  } else {
    tail = idx;
  }
  head = idx;
  where.emplace(key, idx);
}

bool HierarchyEngine::Level::RemoveIfPresent(uint64_t key) {
  auto it = where.find(key);
  if (it == where.end()) {
    return false;
  }
  Unlink(it->second);
  Free(it->second);
  where.erase(it);
  return true;
}

uint64_t HierarchyEngine::Level::PopBack() {
  const uint32_t idx = tail;
  const uint64_t key = pool[idx].key;
  Unlink(idx);
  Free(idx);
  where.erase(key);
  return key;
}

uint64_t HierarchyEngine::OnFault(uint64_t key, uint64_t stream, uint64_t fault_index) {
  size_t hit = inter_.size();  // default: the backing store
  for (size_t i = 0; i < inter_.size(); ++i) {
    if (inter_[i].RemoveIfPresent(key)) {
      hit = i;
      break;
    }
  }
  uint64_t base = hit < inter_.size() ? inter_[hit].spec.latency : bottom_latency_;
  uint64_t cost = base;
  HierarchyLevelTraffic& traffic = hit < inter_.size() ? inter_[hit].traffic : bottom_;
  if (hit < inter_.size()) {
    TELEM_COUNT("hierarchy.page_promoted");
    if (injector_ != nullptr) {
      // Transient promotion failures: each failed attempt re-pays the level's
      // service latency, bounded by the retry budget (the backing copy always
      // succeeds eventually, so the fault never fails outright).
      int budget = std::max(injector_->config().max_migration_retries, 0);
      for (int attempt = 0; attempt < budget; ++attempt) {
        if (!injector_->MigrationAttemptFails(migration_seq_++)) {
          break;
        }
        cost += base;
        ++traffic.migration_retries;
        TELEM_COUNT("hierarchy.migration_retried");
      }
    }
  }
  // The same perturbation the legacy path applies to its flat service time;
  // with a degenerate spec (no intermediate levels) `cost == bottom latency`
  // and this is exactly FaultServiceCost.
  uint64_t service = injector_ != nullptr
                         ? injector_->FaultServiceTime(stream, fault_index, cost)
                         : cost;
  ++traffic.hits;
  traffic.service_ticks += service;
  TELEM_COUNT("hierarchy.fault_routed");
  TELEM_HIST("hierarchy.hit_depth", telem::BucketSpec::Linear(1, 8), hit + 1);
  TELEM_HIST("hierarchy.service_ticks", telem::BucketSpec::PowersOfTwo(24), service);
  return service;
}

void HierarchyEngine::OnEvict(uint64_t key) {
  uint64_t moving = key;
  for (Level& level : inter_) {
    if (injector_ != nullptr && injector_->MigrationAttemptFails(migration_seq_++)) {
      // Demotion failed transiently: the page falls past this level. The
      // backing store still holds every page, so no data is lost — this
      // level just misses a cache copy it would otherwise have had.
      ++level.traffic.demotion_drops;
      TELEM_COUNT("hierarchy.demotion_dropped");
      continue;
    }
    // Defensive: exclusivity means a demoted page is never already cached
    // here, but a duplicate must not inflate the level's size.
    level.RemoveIfPresent(moving);
    level.PushFront(moving);
    ++level.traffic.demotions_in;
    TELEM_COUNT("hierarchy.page_demoted");
    if (level.where.size() <= level.spec.capacity) {
      return;
    }
    // Overflow: push the stalest entry down. Entries are never re-referenced
    // in place (a hit removes them), so insertion order is recency order and
    // LRU/FIFO victim selection coincide.
    moving = level.PopBack();
    ++level.traffic.evictions;
  }
  // Fell past the last intermediate level: the page now lives only in the
  // backing store, which needs no per-page state.
}

std::vector<HierarchyLevelTraffic> HierarchyEngine::Traffic() const {
  std::vector<HierarchyLevelTraffic> traffic;
  traffic.reserve(inter_.size() + 1);
  for (const Level& level : inter_) {
    traffic.push_back(level.traffic);
  }
  traffic.push_back(bottom_);
  return traffic;
}

std::unique_ptr<HierarchyEngine> MakeHierarchyEngine(const SimOptions& options) {
  if (options.hierarchy == nullptr) {
    return nullptr;
  }
  return std::make_unique<HierarchyEngine>(*options.hierarchy, options.injector);
}

}  // namespace cdmm
