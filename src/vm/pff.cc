#include "src/vm/pff.h"

#include <algorithm>
#include <unordered_map>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"

namespace cdmm {

SimResult SimulatePff(const Trace& trace, uint64_t critical_interval, const SimOptions& options) {
  CDMM_CHECK(critical_interval >= 1);
  SimResult result;
  result.policy = StrCat("PFF(T=", critical_interval, ")");

  // page -> last reference time; residency flag folded into presence of an
  // entry in `resident`.
  std::unordered_map<PageId, uint64_t> last_ref;
  std::unordered_map<PageId, bool> resident;
  last_ref.reserve(trace.virtual_pages());
  resident.reserve(trace.virtual_pages());
  uint32_t resident_count = 0;
  uint64_t t = 0;
  uint64_t last_fault_time = 0;
  double ref_integral = 0.0;
  uint64_t service_total = 0;
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);

  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    ++t;
    PageId page = e.value;
    bool fault = !resident[page];
    if (fault) {
      ++result.faults;
      if (t - last_fault_time > critical_interval) {
        // Long inter-fault gap: shrink to the pages referenced since the
        // previous fault (plus the new page below).
        TELEM_COUNT("vm.pff_window_reset");
        for (auto& [p, is_resident] : resident) {
          if (is_resident) {
            auto it = last_ref.find(p);
            if (it == last_ref.end() || it->second <= last_fault_time) {
              is_resident = false;
              --resident_count;
              TELEM_COUNT("vm.pff_page_dropped");
              if (hier != nullptr) {
                hier->OnEvict(p);
              }
            }
          }
        }
      }
      resident[page] = true;
      ++resident_count;
      last_fault_time = t;
    }
    last_ref[page] = t;
    result.max_resident = std::max(result.max_resident, resident_count);

    if (fault) {
      uint64_t cost = hier != nullptr ? hier->OnFault(page, 0, result.faults - 1)
                                      : FaultServiceCost(options, result.faults - 1);
      service_total += cost;
      TELEM_COUNT("vm.fault_serviced");
      TELEM_HIST("vm.fault_service_ticks", telem::BucketSpec::PowersOfTwo(20), cost);
    }
    result.elapsed += 1;
    ref_integral += static_cast<double>(resident_count);
  }
  result.elapsed += service_total;
  result.references = t;
  result.mean_memory = t == 0 ? 0.0 : ref_integral / static_cast<double>(t);
  result.space_time = ref_integral + static_cast<double>(service_total);
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

}  // namespace cdmm
