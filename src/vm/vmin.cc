#include "src/vm/vmin.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"

namespace cdmm {

SimResult SimulateVmin(const PreparedTrace& prepared, const SimOptions& options,
                       uint64_t retention) {
  uint64_t window = retention != 0 ? retention : options.fault_service_time;
  SimResult result;
  result.policy = StrCat("VMIN(U=", window, ")");
  const uint32_t r = prepared.size();

  // A page is resident during [use, use + window] when the next use falls in
  // that interval; otherwise it is dropped immediately after the use and the
  // next use faults. Residency between uses i and j (j = next_use(i)) is
  // j - i time units when kept. Each use itself occupies one unit (the page
  // must be resident to be referenced), counted exactly once. The forward
  // gaps come straight from the prepared next-use column; a final use (no
  // next use) never satisfies the window, matching the old "infinite gap"
  // sentinel.
  uint64_t faults = 0;
  double ref_integral = 0.0;
  uint32_t resident = 0;
  uint32_t max_resident = 0;
  // Track residency level via a difference array over time.
  std::vector<int32_t> delta(static_cast<size_t>(r) + 1, 0);
  std::unordered_map<PageId, bool> is_resident;
  is_resident.reserve(prepared.virtual_pages());
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t service_total = 0;

  for (uint32_t i = 0; i < r; ++i) {
    PageId page = prepared.page(i);
    auto it = is_resident.find(page);
    if (it == is_resident.end() || !it->second) {
      ++faults;
      is_resident[page] = true;
      TELEM_COUNT("vm.fault_serviced");
      if (hier != nullptr) {
        service_total += hier->OnFault(page, 0, faults - 1);
      }
    }
    // Keep the page until its next use if the gap is within the window.
    if (prepared.has_next_use(i) && prepared.next_use(i) - i <= window) {
      delta[i] += 1;
      delta[prepared.next_use(i)] -= 1;
      TELEM_COUNT("vm.vmin_page_retained");
    } else {
      // Resident for this reference only.
      delta[i] += 1;
      delta[i + 1] -= 1;
      is_resident[page] = false;
      TELEM_COUNT("vm.vmin_page_dropped");
      if (hier != nullptr) {
        hier->OnEvict(page);
      }
    }
  }
  for (uint32_t t = 0; t < r; ++t) {
    resident = static_cast<uint32_t>(static_cast<int64_t>(resident) + delta[t]);
    max_resident = std::max(max_resident, resident);
    ref_integral += static_cast<double>(resident);
  }

  result.references = r;
  result.faults = faults;
  if (hier == nullptr) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  result.elapsed = result.references + service_total;
  result.mean_memory =
      r == 0 ? 0.0 : ref_integral / static_cast<double>(result.references);
  result.space_time = ref_integral + static_cast<double>(service_total);
  result.max_resident = max_resident;
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

SimResult SimulateVmin(const Trace& trace, const SimOptions& options, uint64_t retention) {
  return SimulateVmin(PreparedTrace::Build(trace), options, retention);
}

}  // namespace cdmm
