#include "src/vm/cd_core.h"

#include <algorithm>

#include "src/support/check.h"

namespace cdmm {

CdCore::CdCore(uint32_t initial_grant, bool honor_locks, uint32_t page_hint)
    : grant_(std::max<uint32_t>(initial_grant, 1)), honor_locks_(honor_locks) {
  if (page_hint != 0) {
    next_.resize(page_hint);
    prev_.resize(page_hint);
    resident_.resize(page_hint, 0);
    locked_pj_.resize(page_hint, -1);
  }
}

void CdCore::EnsurePage(PageId page) {
  if (page < next_.size()) {
    return;
  }
  size_t capacity = std::max<size_t>(next_.size(), 64);
  while (capacity <= page) {
    capacity *= 2;
  }
  next_.resize(capacity);
  prev_.resize(capacity);
  resident_.resize(capacity, 0);
  locked_pj_.resize(capacity, -1);
}

void CdCore::Unlink(PageId page) {
  const uint32_t n = next_[page];
  const uint32_t p = prev_[page];
  if (p != kNone) {
    next_[p] = n;
  } else {
    head_ = n;
  }
  if (n != kNone) {
    prev_[n] = p;
  } else {
    tail_ = p;
  }
}

void CdCore::PushFront(PageId page) {
  prev_[page] = kNone;
  next_[page] = head_;
  if (head_ != kNone) {
    prev_[head_] = page;
  } else {
    tail_ = page;
  }
  head_ = page;
}

bool CdCore::Touch(PageId page) {
  EnsurePage(page);
  if (resident_[page] != 0) {
    Unlink(page);
    PushFront(page);
    return false;
  }
  bool incoming_locked = locked_pj_[page] >= 0;
  if (!incoming_locked && unlocked_resident() >= grant_) {
    CDMM_CHECK_MSG(EvictUnlockedLru(), "grant underflow");
  }
  PushFront(page);
  resident_[page] = 1;
  ++resident_count_;
  if (incoming_locked) {
    ++locked_resident_;
  }
  return true;
}

void CdCore::SetGrant(uint32_t grant) {
  grant_ = std::max<uint32_t>(grant, 1);
  while (unlocked_resident() > grant_) {
    CDMM_CHECK_MSG(EvictUnlockedLru(), "shrink with no unlocked page");
  }
}

void CdCore::Lock(const std::vector<PageId>& pages, uint16_t pj) {
  if (!honor_locks_) {
    return;
  }
  for (PageId p : pages) {
    EnsurePage(p);
    bool inserted = locked_pj_[p] < 0;
    locked_pj_[p] = pj;
    if (inserted && resident_[p] != 0) {
      ++locked_resident_;
    }
  }
}

void CdCore::Unlock(const std::vector<PageId>& pages) {
  if (!honor_locks_) {
    return;
  }
  for (PageId p : pages) {
    if (p >= locked_pj_.size() || locked_pj_[p] < 0) {
      continue;
    }
    locked_pj_[p] = -1;
    if (resident_[p] != 0) {
      CDMM_CHECK(locked_resident_ > 0);
      --locked_resident_;
    }
  }
  // Newly unlocked pages now count against the grant; trim immediately so
  // `held()` stays truthful for pool accounting.
  while (unlocked_resident() > grant_) {
    CDMM_CHECK(EvictUnlockedLru());
  }
}

uint32_t CdCore::EnforceCap(uint32_t cap) {
  uint32_t released = 0;
  while (resident() > cap) {
    if (EvictUnlockedLru()) {
      continue;
    }
    if (!ReleaseOneLock()) {
      break;
    }
    ++released;
  }
  return released;
}

void CdCore::DropAll() {
  head_ = kNone;
  tail_ = kNone;
  std::fill(resident_.begin(), resident_.end(), 0);
  resident_count_ = 0;
  locked_resident_ = 0;
}

bool CdCore::EvictUnlockedLru() {
  for (uint32_t v = tail_; v != kNone; v = prev_[v]) {
    if (locked_pj_[v] < 0) {
      Remove(v);
      return true;
    }
  }
  return false;
}

bool CdCore::ReleaseOneLock() {
  // Walk the whole list from the LRU end taking the strictly-greatest PJ, so
  // among equal-PJ locks the one nearest the LRU end wins — the same victim
  // the legacy reverse-list scan picked.
  PageId victim = 0;
  int best_pj = -1;
  for (uint32_t v = tail_; v != kNone; v = prev_[v]) {
    const int32_t pj = locked_pj_[v];
    if (pj > best_pj) {
      best_pj = pj;
      victim = v;
    }
  }
  if (best_pj < 0) {
    return false;
  }
  locked_pj_[victim] = -1;
  CDMM_CHECK(locked_resident_ > 0);
  --locked_resident_;
  Remove(victim);
  return true;
}

void CdCore::Remove(PageId page) {
  CDMM_CHECK(resident_[page] != 0);
  Unlink(page);
  resident_[page] = 0;
  --resident_count_;
  if (eviction_sink_ != nullptr) {
    eviction_sink_->push_back(page);
  }
}

}  // namespace cdmm
