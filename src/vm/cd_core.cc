#include "src/vm/cd_core.h"

#include <algorithm>

#include "src/support/check.h"

namespace cdmm {

CdCore::CdCore(uint32_t initial_grant, bool honor_locks)
    : grant_(std::max<uint32_t>(initial_grant, 1)), honor_locks_(honor_locks) {}

bool CdCore::Touch(PageId page) {
  auto it = where_.find(page);
  if (it != where_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  bool incoming_locked = IsLocked(page);
  if (!incoming_locked && unlocked_resident() >= grant_) {
    CDMM_CHECK_MSG(EvictUnlockedLru(), "grant underflow");
  }
  lru_.push_front(page);
  where_[page] = lru_.begin();
  if (incoming_locked) {
    ++locked_resident_;
  }
  return true;
}

void CdCore::SetGrant(uint32_t grant) {
  grant_ = std::max<uint32_t>(grant, 1);
  while (unlocked_resident() > grant_) {
    CDMM_CHECK_MSG(EvictUnlockedLru(), "shrink with no unlocked page");
  }
}

void CdCore::Lock(const std::vector<PageId>& pages, uint16_t pj) {
  if (!honor_locks_) {
    return;
  }
  for (PageId p : pages) {
    auto [it, inserted] = locked_.try_emplace(p, pj);
    if (!inserted) {
      it->second = pj;
    } else if (where_.count(p) != 0) {
      ++locked_resident_;
    }
  }
}

void CdCore::Unlock(const std::vector<PageId>& pages) {
  if (!honor_locks_) {
    return;
  }
  for (PageId p : pages) {
    auto it = locked_.find(p);
    if (it == locked_.end()) {
      continue;
    }
    locked_.erase(it);
    if (where_.count(p) != 0) {
      CDMM_CHECK(locked_resident_ > 0);
      --locked_resident_;
    }
  }
  // Newly unlocked pages now count against the grant; trim immediately so
  // `held()` stays truthful for pool accounting.
  while (unlocked_resident() > grant_) {
    CDMM_CHECK(EvictUnlockedLru());
  }
}

uint32_t CdCore::EnforceCap(uint32_t cap) {
  uint32_t released = 0;
  while (resident() > cap) {
    if (EvictUnlockedLru()) {
      continue;
    }
    if (!ReleaseOneLock()) {
      break;
    }
    ++released;
  }
  return released;
}

void CdCore::DropAll() {
  lru_.clear();
  where_.clear();
  locked_resident_ = 0;
}

bool CdCore::EvictUnlockedLru() {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    if (!IsLocked(*it)) {
      Remove(*it);
      return true;
    }
  }
  return false;
}

bool CdCore::ReleaseOneLock() {
  PageId victim = 0;
  int best_pj = -1;
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto lk = locked_.find(*it);
    if (lk != locked_.end() && static_cast<int>(lk->second) > best_pj) {
      best_pj = lk->second;
      victim = *it;
    }
  }
  if (best_pj < 0) {
    return false;
  }
  locked_.erase(victim);
  CDMM_CHECK(locked_resident_ > 0);
  --locked_resident_;
  Remove(victim);
  return true;
}

void CdCore::Remove(PageId page) {
  auto it = where_.find(page);
  CDMM_CHECK(it != where_.end());
  lru_.erase(it->second);
  where_.erase(it);
  if (eviction_sink_ != nullptr) {
    eviction_sink_->push_back(page);
  }
}

}  // namespace cdmm
