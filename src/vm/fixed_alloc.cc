// Fixed-partition policies over the columnar PreparedTrace, as flat
// struct-of-arrays kernels: an intrusive index-linked LRU list, a FIFO ring
// with a residency bitmap, and an OPT slot table whose victim scan is a SIMD
// argmax over packed (next_use, page) keys. Each (policy, hierarchy) pair is
// a separate template instantiation, so the per-event loop is monomorphic —
// no per-event branching on the policy or on `hier != nullptr`.
//
// Results are bit-identical to the container-based originals preserved in
// src/vm/legacy_sim.cc (tests/hotpath_test.cc is the differential oracle):
// the flat LRU keeps the same recency order, the ring is the same queue, and
// the OPT argmax picks the same victim because packed keys order exactly
// like the legacy std::set's (next_use, page) pairs and keys are pairwise
// distinct.
#include "src/vm/fixed_alloc.h"

#include "src/vm/stack_distance.h"

#include <algorithm>

#include "src/support/arena.h"
#include "src/support/check.h"
#include "src/support/simd.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"
#include "src/vm/scratch.h"

namespace cdmm {

const char* ReplacementName(Replacement r) {
  switch (r) {
    case Replacement::kLru:
      return "LRU";
    case Replacement::kFifo:
      return "FIFO";
    case Replacement::kOpt:
      return "OPT";
  }
  return "?";
}

namespace {

constexpr uint32_t kNone = 0xFFFFFFFFu;

// Shared accounting: every reference costs 1 unit, every fault adds the
// service time; held memory is the constant partition size. Without a
// hierarchy engine `service_total` is the closed-form TotalFaultServiceCost;
// with one it is the per-fault accumulation over the engine's level hits.
SimResult Finish(uint64_t references, uint32_t frames, Replacement replacement, uint64_t faults,
                 uint32_t max_resident, uint64_t service_total, const HierarchyEngine* hier) {
  SimResult result;
  result.policy = StrCat(ReplacementName(replacement), "(m=", frames, ")");
  result.references = references;
  result.faults = faults;
  result.elapsed = result.references + service_total;
  result.mean_memory = frames;
  // Space-time: memory held over the reference string plus one frame held
  // for the duration of each fault service (see sim_result.h).
  result.space_time = static_cast<double>(frames) * static_cast<double>(result.references) +
                      static_cast<double>(service_total);
  result.max_resident = max_resident;
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

// One monomorphic per-event loop per (policy, hierarchy?) pair.
template <Replacement R, bool kHier>
SimResult RunFixed(const PreparedTrace& prepared, uint32_t frames, const SimOptions& options) {
  const uint32_t n = prepared.size();
  const PageId* pages = prepared.pages().data();
  const uint32_t bound = prepared.page_bound();
  Arena& arena = SimScratchArena();
  ScratchScope scope(arena);
  TELEM_COUNT("hotpath.kernel_dispatched");

  std::unique_ptr<HierarchyEngine> hier_owner;
  HierarchyEngine* hier = nullptr;
  if constexpr (kHier) {
    hier_owner = MakeHierarchyEngine(options);
    hier = hier_owner.get();
  }
  uint64_t service_total = 0;
  uint64_t faults = 0;
  uint32_t max_resident = 0;

  if constexpr (R == Replacement::kLru) {
    // Intrusive doubly-linked recency list over page indices; slot `bound`
    // is the sentinel (next = MRU front, prev = LRU victim). prev == kNone
    // marks a non-resident page.
    uint32_t* next = arena.NewArray<uint32_t>(bound + 1);
    uint32_t* prev = arena.NewArray<uint32_t>(bound + 1);
    std::fill(prev, prev + bound, kNone);
    next[bound] = bound;
    prev[bound] = bound;
    uint32_t resident = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const PageId page = pages[i];
      if (prev[page] != kNone) {
        // Hit: unlink; reinserted at the front below.
        const uint32_t pn = next[page];
        const uint32_t pp = prev[page];
        next[pp] = pn;
        prev[pn] = pp;
      } else {
        ++faults;
        TELEM_COUNT("vm.fault_serviced");
        if constexpr (kHier) {
          service_total += hier->OnFault(page, 0, faults - 1);
        }
        if (resident == frames) {
          const uint32_t victim = prev[bound];
          const uint32_t vp = prev[victim];
          next[vp] = bound;
          prev[bound] = vp;
          prev[victim] = kNone;
          TELEM_COUNT("vm.page_evicted");
          if constexpr (kHier) {
            hier->OnEvict(victim);
          }
        } else {
          ++resident;
          max_resident = std::max(max_resident, resident);
        }
      }
      const uint32_t front = next[bound];
      next[bound] = page;
      prev[page] = bound;
      next[page] = front;
      prev[front] = page;
    }
  } else if constexpr (R == Replacement::kFifo) {
    uint8_t* resident = arena.NewArray<uint8_t>(bound);  // zero-filled
    uint32_t* ring = arena.NewArray<uint32_t>(frames);
    uint32_t head = 0;
    uint32_t count = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const PageId page = pages[i];
      if (resident[page] != 0) {
        continue;
      }
      ++faults;
      TELEM_COUNT("vm.fault_serviced");
      if constexpr (kHier) {
        service_total += hier->OnFault(page, 0, faults - 1);
      }
      if (count == frames) {
        const PageId victim = ring[head];
        head = head + 1 == frames ? 0 : head + 1;
        --count;
        resident[victim] = 0;
        TELEM_COUNT("vm.page_evicted");
        if constexpr (kHier) {
          hier->OnEvict(victim);
        }
      }
      uint32_t slot = head + count;
      if (slot >= frames) {
        slot -= frames;
      }
      ring[slot] = page;
      ++count;
      resident[page] = 1;
      max_resident = std::max(max_resident, count);
    }
  } else {
    // OPT: per-frame packed keys (next_use << 32 | page); the victim is the
    // maximum key, exactly the legacy std::set's std::prev(end()). Keys are
    // pairwise distinct (real next-uses are distinct positions, sentinels
    // are broken by page), so the argmax is unambiguous.
    const uint32_t* next_use = prepared.next_uses().data();
    uint64_t* keys = arena.NewArray<uint64_t>(frames);
    uint32_t* slot_of = arena.NewArray<uint32_t>(bound);
    std::fill(slot_of, slot_of + bound, kNone);
    uint32_t count = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const PageId page = pages[i];
      uint32_t s = slot_of[page];
      if (s == kNone) {
        ++faults;
        TELEM_COUNT("vm.fault_serviced");
        if constexpr (kHier) {
          service_total += hier->OnFault(page, 0, faults - 1);
        }
        if (count == frames) {
          const size_t v = simd::ArgMaxU64(keys, frames);
          const PageId victim = static_cast<PageId>(keys[v] & 0xFFFFFFFFu);
          slot_of[victim] = kNone;
          s = static_cast<uint32_t>(v);
          TELEM_COUNT("vm.page_evicted");
          if constexpr (kHier) {
            hier->OnEvict(victim);
          }
        } else {
          s = count++;
        }
        slot_of[page] = s;
      }
      keys[s] = (static_cast<uint64_t>(next_use[i]) << 32) | page;
      max_resident = std::max(max_resident, count);
    }
  }

  if constexpr (!kHier) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  return Finish(n, frames, R, faults, max_resident, service_total, hier);
}

}  // namespace

SimResult SimulateFixed(const Trace& trace, uint32_t frames, Replacement replacement,
                        const SimOptions& options) {
  return SimulateFixed(PreparedTrace::Build(trace), frames, replacement, options);
}

SimResult SimulateFixed(const PreparedTrace& prepared, uint32_t frames, Replacement replacement,
                        const SimOptions& options) {
  CDMM_CHECK_MSG(frames >= 1, "fixed partition needs at least one frame");
  const bool hier = options.hierarchy != nullptr;
  switch (replacement) {
    case Replacement::kLru:
      return hier ? RunFixed<Replacement::kLru, true>(prepared, frames, options)
                  : RunFixed<Replacement::kLru, false>(prepared, frames, options);
    case Replacement::kFifo:
      return hier ? RunFixed<Replacement::kFifo, true>(prepared, frames, options)
                  : RunFixed<Replacement::kFifo, false>(prepared, frames, options);
    case Replacement::kOpt:
      return hier ? RunFixed<Replacement::kOpt, true>(prepared, frames, options)
                  : RunFixed<Replacement::kOpt, false>(prepared, frames, options);
  }
  CDMM_UNREACHABLE("bad Replacement");
}

namespace {

// Shared by both LruSweep overloads once the distance histogram is filled.
std::vector<SweepPoint> FinishLruSweep(std::vector<uint64_t>& distance_hist,
                                       uint64_t cold_faults, uint64_t refs, uint32_t max_frames,
                                       const SimOptions& options) {
  // Suffix sums: faults(m) = cold + Σ_{d > m} hist[d], built in one backward
  // pass (O(V) instead of the naive O(V²) inner loop per point).
  std::vector<uint64_t> faults_at(max_frames + 1, 0);
  {
    uint64_t running = cold_faults;
    for (uint32_t m = max_frames; m >= 1; --m) {
      running += distance_hist[m + 1];
      faults_at[m] = running;
    }
  }
  std::vector<SweepPoint> points;
  points.reserve(max_frames);
  for (uint32_t m = 1; m <= max_frames; ++m) {
    uint64_t faults = faults_at[m];
    uint64_t service_total = TotalFaultServiceCost(options, faults);
    SweepPoint p;
    p.parameter = m;
    p.faults = faults;
    p.elapsed = refs + service_total;
    p.mean_memory = m;
    p.space_time = static_cast<double>(m) * static_cast<double>(refs) +
                   static_cast<double>(service_total);
    points.push_back(p);
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> LruSweep(const Trace& trace, uint32_t max_frames,
                                 const SimOptions& options) {
  CDMM_CHECK(max_frames >= 1);
  // Stack-distance histogram: distance d (1-based) means the page was at
  // depth d of the LRU stack; a first-touch counts as infinite distance.
  // faults(m) = #refs with distance > m. Distances come from the O(log R)
  // Fenwick engine (Bennett-Kruskal).
  std::vector<uint64_t> distance_hist(max_frames + 2, 0);
  uint64_t cold_faults = 0;
  StackDistanceEngine engine(trace.reference_count(), trace.virtual_pages());

  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    StackDistanceEngine::Touch touch = engine.Next(e.value);
    if (touch.depth == 0) {
      ++cold_faults;
      continue;
    }
    ++distance_hist[std::min<uint64_t>(touch.depth, max_frames + 1)];
  }
  return FinishLruSweep(distance_hist, cold_faults, trace.reference_count(), max_frames, options);
}

std::vector<SweepPoint> LruSweep(const PreparedTrace& prepared, uint32_t max_frames,
                                 const SimOptions& options) {
  CDMM_CHECK(max_frames >= 1);
  // Same sweep off the columnar page string; the engine is sized exactly
  // (reference count and page bound both known), so the Fenwick never
  // regrows and the last-use table is a flat column.
  std::vector<uint64_t> distance_hist(max_frames + 2, 0);
  uint64_t cold_faults = 0;
  StackDistanceEngine engine(prepared);
  for (PageId page : prepared.pages()) {
    StackDistanceEngine::Touch touch = engine.Next(page);
    if (touch.depth == 0) {
      ++cold_faults;
      continue;
    }
    ++distance_hist[std::min<uint64_t>(touch.depth, max_frames + 1)];
  }
  return FinishLruSweep(distance_hist, cold_faults, prepared.size(), max_frames, options);
}

}  // namespace cdmm
