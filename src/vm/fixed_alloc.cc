#include "src/vm/fixed_alloc.h"

#include "src/vm/stack_distance.h"

#include <algorithm>
#include <deque>
#include <list>
#include <map>
#include <set>
#include <unordered_map>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/hierarchy.h"

namespace cdmm {

const char* ReplacementName(Replacement r) {
  switch (r) {
    case Replacement::kLru:
      return "LRU";
    case Replacement::kFifo:
      return "FIFO";
    case Replacement::kOpt:
      return "OPT";
  }
  return "?";
}

namespace {

// Shared accounting: every reference costs 1 unit, every fault adds the
// service time; held memory is the constant partition size. Without a
// hierarchy engine `service_total` is the closed-form TotalFaultServiceCost;
// with one it is the per-fault accumulation over the engine's level hits.
SimResult Finish(uint64_t references, uint32_t frames, Replacement replacement, uint64_t faults,
                 uint32_t max_resident, uint64_t service_total, const HierarchyEngine* hier) {
  SimResult result;
  result.policy = StrCat(ReplacementName(replacement), "(m=", frames, ")");
  result.references = references;
  result.faults = faults;
  result.elapsed = result.references + service_total;
  result.mean_memory = frames;
  // Space-time: memory held over the reference string plus one frame held
  // for the duration of each fault service (see sim_result.h).
  result.space_time = static_cast<double>(frames) * static_cast<double>(result.references) +
                      static_cast<double>(service_total);
  result.max_resident = max_resident;
  if (hier != nullptr) {
    result.hierarchy_levels = hier->Traffic();
  }
  return result;
}

// Both fixed-partition recency policies run off a flat reference string;
// the Trace overloads filter their event streams into one first.
SimResult SimulateLru(const std::vector<PageId>& refs, uint32_t virtual_pages, uint32_t frames,
                      const SimOptions& options) {
  // Recency list: front = most recent. map page -> list iterator.
  std::list<PageId> stack;
  std::unordered_map<PageId, std::list<PageId>::iterator> where;
  where.reserve(virtual_pages);
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t service_total = 0;
  uint64_t faults = 0;
  uint32_t max_resident = 0;
  for (PageId page : refs) {
    auto it = where.find(page);
    if (it != where.end()) {
      stack.splice(stack.begin(), stack, it->second);
    } else {
      ++faults;
      TELEM_COUNT("vm.fault_serviced");
      if (hier != nullptr) {
        service_total += hier->OnFault(page, 0, faults - 1);
      }
      if (where.size() == frames) {
        PageId victim = stack.back();
        stack.pop_back();
        where.erase(victim);
        TELEM_COUNT("vm.page_evicted");
        if (hier != nullptr) {
          hier->OnEvict(victim);
        }
      }
      stack.push_front(page);
      where[page] = stack.begin();
      max_resident = std::max<uint32_t>(max_resident, static_cast<uint32_t>(where.size()));
    }
  }
  if (hier == nullptr) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  return Finish(refs.size(), frames, Replacement::kLru, faults, max_resident, service_total,
                hier.get());
}

SimResult SimulateFifo(const std::vector<PageId>& refs, uint32_t frames,
                       const SimOptions& options) {
  std::deque<PageId> queue;
  std::set<PageId> resident;
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t service_total = 0;
  uint64_t faults = 0;
  uint32_t max_resident = 0;
  for (PageId page : refs) {
    if (resident.count(page) != 0) {
      continue;
    }
    ++faults;
    TELEM_COUNT("vm.fault_serviced");
    if (hier != nullptr) {
      service_total += hier->OnFault(page, 0, faults - 1);
    }
    if (resident.size() == frames) {
      PageId victim = queue.front();
      queue.pop_front();
      resident.erase(victim);
      TELEM_COUNT("vm.page_evicted");
      if (hier != nullptr) {
        hier->OnEvict(victim);
      }
    }
    queue.push_back(page);
    resident.insert(page);
    max_resident = std::max<uint32_t>(max_resident, static_cast<uint32_t>(resident.size()));
  }
  if (hier == nullptr) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  return Finish(refs.size(), frames, Replacement::kFifo, faults, max_resident, service_total,
                hier.get());
}

SimResult SimulateOpt(const PreparedTrace& prepared, uint32_t frames, const SimOptions& options) {
  // The forward distances come straight from the prepared next-use column;
  // pages never referenced again carry the shared sentinel prepared.size(),
  // which outranks every real index just as the old kNever did.
  // Resident set ordered by next use (largest = best victim). Ties cannot
  // happen: next uses are distinct positions (the sentinel is broken by
  // page id).
  std::set<std::pair<uint64_t, PageId>> by_next_use;
  std::unordered_map<PageId, uint64_t> resident_next;  // page -> its key
  resident_next.reserve(frames + 1);
  std::unique_ptr<HierarchyEngine> hier = MakeHierarchyEngine(options);
  uint64_t service_total = 0;
  uint64_t faults = 0;
  uint32_t max_resident = 0;

  for (uint32_t i = 0; i < prepared.size(); ++i) {
    PageId page = prepared.page(i);
    uint64_t next = prepared.next_use(i);
    // Sentinel entries collide across pages; disambiguate the set key by page.
    auto key_of = [&](uint64_t nu, PageId p) {
      return std::pair<uint64_t, PageId>{nu, p};
    };
    auto it = resident_next.find(page);
    if (it != resident_next.end()) {
      by_next_use.erase(key_of(it->second, page));
    } else {
      ++faults;
      TELEM_COUNT("vm.fault_serviced");
      if (hier != nullptr) {
        service_total += hier->OnFault(page, 0, faults - 1);
      }
      if (resident_next.size() == frames) {
        auto victim = std::prev(by_next_use.end());
        PageId victim_page = victim->second;
        resident_next.erase(victim_page);
        by_next_use.erase(victim);
        TELEM_COUNT("vm.page_evicted");
        if (hier != nullptr) {
          hier->OnEvict(victim_page);
        }
      }
    }
    resident_next[page] = next;
    by_next_use.insert(key_of(next, page));
    max_resident = std::max<uint32_t>(max_resident, static_cast<uint32_t>(resident_next.size()));
  }
  if (hier == nullptr) {
    service_total = TotalFaultServiceCost(options, faults);
  }
  return Finish(prepared.size(), frames, Replacement::kOpt, faults, max_resident, service_total,
                hier.get());
}

}  // namespace

SimResult SimulateFixed(const Trace& trace, uint32_t frames, Replacement replacement,
                        const SimOptions& options) {
  return SimulateFixed(PreparedTrace::Build(trace), frames, replacement, options);
}

SimResult SimulateFixed(const PreparedTrace& prepared, uint32_t frames, Replacement replacement,
                        const SimOptions& options) {
  CDMM_CHECK_MSG(frames >= 1, "fixed partition needs at least one frame");
  switch (replacement) {
    case Replacement::kLru:
      return SimulateLru(prepared.pages(), prepared.virtual_pages(), frames, options);
    case Replacement::kFifo:
      return SimulateFifo(prepared.pages(), frames, options);
    case Replacement::kOpt:
      return SimulateOpt(prepared, frames, options);
  }
  CDMM_UNREACHABLE("bad Replacement");
}

std::vector<SweepPoint> LruSweep(const Trace& trace, uint32_t max_frames,
                                 const SimOptions& options) {
  CDMM_CHECK(max_frames >= 1);
  // Stack-distance histogram: distance d (1-based) means the page was at
  // depth d of the LRU stack; a first-touch counts as infinite distance.
  // faults(m) = #refs with distance > m. Distances come from the O(log R)
  // Fenwick engine (Bennett-Kruskal).
  std::vector<uint64_t> distance_hist(max_frames + 2, 0);
  uint64_t cold_faults = 0;
  StackDistanceEngine engine(trace.reference_count(), trace.virtual_pages());

  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEvent::Kind::kRef) {
      continue;
    }
    StackDistanceEngine::Touch touch = engine.Next(e.value);
    if (touch.depth == 0) {
      ++cold_faults;
      continue;
    }
    ++distance_hist[std::min<uint64_t>(touch.depth, max_frames + 1)];
  }

  // Suffix sums: faults(m) = cold + Σ_{d > m} hist[d], built in one backward
  // pass (O(V) instead of the naive O(V²) inner loop per point).
  std::vector<uint64_t> faults_at(max_frames + 1, 0);
  {
    uint64_t running = cold_faults;
    for (uint32_t m = max_frames; m >= 1; --m) {
      running += distance_hist[m + 1];
      faults_at[m] = running;
    }
  }
  std::vector<SweepPoint> points;
  points.reserve(max_frames);
  uint64_t refs = trace.reference_count();
  for (uint32_t m = 1; m <= max_frames; ++m) {
    uint64_t faults = faults_at[m];
    uint64_t service_total = TotalFaultServiceCost(options, faults);
    SweepPoint p;
    p.parameter = m;
    p.faults = faults;
    p.elapsed = refs + service_total;
    p.mean_memory = m;
    p.space_time = static_cast<double>(m) * static_cast<double>(refs) +
                   static_cast<double>(service_total);
    points.push_back(p);
  }
  return points;
}

}  // namespace cdmm
