// Single-pass sweep engines for the paper's two brute-force parameter
// sweeps, plus the engine-selection knob the benches and cdmmc expose as
// --sweep-engine.
//
//  - OnePassWsSweep: the whole WS characteristic — exact faults(τ), mean WS
//    size s(τ), elapsed and space-time for EVERY window τ — from one O(R)
//    scan, via the Denning–Slutz inter-reference-interval histogram. A
//    reference at time t to a page last used at time u faults under WS(τ)
//    iff the gap g = t - u exceeds τ, and the page occupies the working set
//    for min(g - 1, τ) + 1 of the instants between the two uses (its tail
//    after the final use for min(R - u, τ) + 1); histogramming gaps and
//    tails therefore yields every fault count and every resident-set
//    integral at once. Bit-identical to per-τ SimulateWs (see the exactness
//    argument in DESIGN.md §11).
//  - OnePassOptSweep: faults(m) for all m = 1..max_frames from one pass of
//    OPT stack distances (Mattson's priority-list update, priorities =
//    packed (next use, page) keys from a PreparedTrace). Bit-identical to
//    per-m SimulateFixed(Replacement::kOpt).
//
// The naive counterparts (per-τ SimulateWs, per-m SimulateFixed) remain the
// cross-validation oracle behind --sweep-engine=naive; SweepScheduler
// dispatches between the two so nominal stdout is byte-identical under
// either engine at any --jobs.
#ifndef CDMM_SRC_VM_SWEEP_ENGINES_H_
#define CDMM_SRC_VM_SWEEP_ENGINES_H_

#include <vector>

#include "src/trace/prepared_trace.h"
#include "src/trace/trace.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/sim_result.h"

namespace cdmm {

// Which implementation a sweep-running component uses. kOnePass is the
// default everywhere; kNaive re-simulates per parameter point and serves as
// the oracle the cross-validation tests and CI compare against. kAnalytic
// (src/analysis/analytic_locality.h) derives the same histograms symbolically
// from the loop structure without materializing the trace; it produces the
// same SweepPoints bit for bit via the shared point makers below.
enum class SweepEngine : uint8_t { kNaive, kOnePass, kAnalytic };

const char* SweepEngineName(SweepEngine engine);

// Shared finish arithmetic, used by both the one-pass scans here and the
// analytic curve evaluators so that identical (faults, occupancy) integers
// yield identical doubles — the engines differ only in how they obtain the
// histograms, never in how a histogram becomes a SweepPoint.
SweepPoint MakeWsSweepPoint(uint64_t tau, uint64_t refs, uint64_t faults, uint64_t occupancy,
                            const SimOptions& options);
SweepPoint MakeOptSweepPoint(uint32_t m, uint64_t refs, uint64_t faults,
                             const SimOptions& options);

// The full WS characteristic over `taus` (each >= 1, any order, duplicates
// allowed) in one scan. points[i] corresponds to taus[i] and equals the
// SweepPoint a per-τ SimulateWs run would produce, bit for bit.
std::vector<SweepPoint> OnePassWsSweep(const PreparedTrace& prepared,
                                       const std::vector<uint64_t>& taus,
                                       const SimOptions& options = {});
// Convenience: builds the PreparedTrace itself.
std::vector<SweepPoint> OnePassWsSweep(const Trace& trace, const std::vector<uint64_t>& taus,
                                       const SimOptions& options = {});

// The full OPT curve faults(m), m = 1..max_frames, in one pass; points
// equal per-m SimulateFixed(trace, m, Replacement::kOpt) bit for bit.
std::vector<SweepPoint> OnePassOptSweep(const PreparedTrace& prepared, uint32_t max_frames,
                                        const SimOptions& options = {});
std::vector<SweepPoint> OnePassOptSweep(const Trace& trace, uint32_t max_frames,
                                        const SimOptions& options = {});

// The naive OPT sweep — one full SimulateFixed(kOpt) per allocation — kept
// as the serial oracle (SweepScheduler::Opt parallelises it per point).
std::vector<SweepPoint> NaiveOptSweep(const Trace& trace, uint32_t max_frames,
                                      const SimOptions& options = {});

// Order-sensitive FNV-1a over every field of every point (doubles hashed by
// bit pattern). The benches and cdmmc --sweep print this digest, making
// "bit-identical sweeps" a one-line diff between engines and job counts.
uint64_t FingerprintSweep(const std::vector<SweepPoint>& points);

}  // namespace cdmm

#endif  // CDMM_SRC_VM_SWEEP_ENGINES_H_
