// VMIN (Prieve & Fabry 1976): the optimal variable-space policy. With a
// fault cost of D reference-times, keeping a page between two consecutive
// uses costs gap·1 space-time units while dropping and re-faulting costs D;
// VMIN keeps the page exactly when the forward gap is at most D. It
// minimises ST = Σ resident + PF·D over all demand policies — the
// variable-allocation analogue of Belady's MIN, and the yardstick the
// paper's DMIN reference [BDMS81] aims at. CD's directives try to
// approximate this schedule with compile-time information only.
#ifndef CDMM_SRC_VM_VMIN_H_
#define CDMM_SRC_VM_VMIN_H_

#include "src/trace/prepared_trace.h"
#include "src/trace/trace.h"
#include "src/vm/sim_result.h"

namespace cdmm {

// Simulates VMIN with retention window = options.fault_service_time (the
// cost-optimal choice); `retention` overrides it when non-zero (e.g. to
// sweep the memory/fault trade-off).
SimResult SimulateVmin(const Trace& trace, const SimOptions& options = {},
                       uint64_t retention = 0);

// Same simulation off a PreparedTrace's next-use column (no backward scan);
// the Trace overload delegates here. Results are bit-identical either way.
SimResult SimulateVmin(const PreparedTrace& prepared, const SimOptions& options = {},
                       uint64_t retention = 0);

}  // namespace cdmm

#endif  // CDMM_SRC_VM_VMIN_H_
