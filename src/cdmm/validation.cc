#include "src/cdmm/validation.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/support/check.h"
#include "src/support/str.h"
#include "src/vm/stack_distance.h"

namespace cdmm {

std::vector<LoopValidation> ValidateLocalityEstimates(const CompiledProgram& cp) {
  // Re-run the interpreter with loop markers (the cached trace may lack
  // them).
  InterpOptions iopt;
  iopt.geometry = cp.options().locality.geometry;
  iopt.emit_loop_markers = true;
  Trace trace = GenerateTrace(cp.program(), cp.tree(), &cp.plan(), iopt);

  std::map<uint32_t, LoopValidation> rows;
  for (const LoopNode* node : cp.tree().preorder()) {
    LoopValidation v;
    v.loop_id = node->loop_id;
    v.loop_label = static_cast<int>(node->loop->label);
    v.priority_index = node->priority_index;
    v.estimated_pages = cp.locality().loop(node->loop_id).pages;
    rows[node->loop_id] = v;
  }

  // An active (dynamic) loop execution. `need` is the largest LRU stack
  // distance among re-uses whose previous use also falls inside this
  // execution: the smallest allocation avoiding all non-cold faults while
  // the loop runs — the measured counterpart of the ALLOCATE argument X.
  struct Active {
    uint32_t loop_id;
    uint64_t start;               // ref position at loop entry
    uint32_t need = 0;
    std::unordered_map<PageId, uint32_t> touched;  // page -> touch count
  };
  std::vector<Active> stack;

  StackDistanceEngine engine(trace.reference_count(), trace.virtual_pages());

  auto close = [&](Active& a) {
    LoopValidation& v = rows.at(a.loop_id);
    ++v.executions;
    v.max_distinct = std::max(v.max_distinct, static_cast<uint32_t>(a.touched.size()));
    v.max_rereferenced = std::max(v.max_rereferenced, a.need);
  };

  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kLoopEnter:
        stack.push_back(Active{e.value, engine.position(), 0, {}});
        break;
      case TraceEvent::Kind::kLoopExit: {
        CDMM_CHECK(!stack.empty() && stack.back().loop_id == e.value);
        close(stack.back());
        stack.pop_back();
        break;
      }
      case TraceEvent::Kind::kRef: {
        PageId page = e.value;
        StackDistanceEngine::Touch touch = engine.Next(page);
        if (touch.depth != 0) {
          for (Active& a : stack) {
            if (touch.previous > a.start) {  // previous use inside this execution
              a.need = std::max(a.need, touch.depth);
            }
          }
        }
        for (Active& a : stack) {
          ++a.touched[page];
        }
        break;
      }
      case TraceEvent::Kind::kDirective:
        break;
    }
  }
  CDMM_CHECK_MSG(stack.empty(), "unbalanced loop markers");

  std::vector<LoopValidation> out;
  out.reserve(rows.size());
  for (const LoopNode* node : cp.tree().preorder()) {
    out.push_back(rows.at(node->loop_id));
  }
  return out;
}

std::vector<Diagnostic> ValidationDiagnostics(const CompiledProgram& cp,
                                              const std::vector<LoopValidation>& rows) {
  std::vector<Diagnostic> out;
  for (const LoopValidation& v : rows) {
    if (v.adequate()) {
      continue;
    }
    const LoopNode& node = cp.tree().node(v.loop_id);
    Diagnostic d;
    d.code = "V001";
    d.severity = Severity::kWarning;
    d.pass = "estimate-validation";
    d.location = node.loop->location;
    d.message = StrCat("ALLOCATE before loop ", v.loop_label, " grants X=", v.estimated_pages,
                       " but the measured minimal no-thrash allocation is ", v.max_rereferenced,
                       " page(s) over ", v.executions, " execution(s)");
    d.fixit = StrCat("raise the §2 estimate for loop ", v.loop_label, " to at least ",
                     v.max_rereferenced, " page(s)");
    out.push_back(std::move(d));
  }
  return out;
}

std::string ValidationReport(const std::string& program_name,
                             const std::vector<LoopValidation>& rows) {
  std::ostringstream os;
  os << "Locality-estimate validation for " << program_name
     << " (X vs measured minimal no-thrash allocation per execution)\n";
  for (const LoopValidation& v : rows) {
    os << "  loop " << v.loop_label << " [PI " << v.priority_index << "] X=" << v.estimated_pages
       << "  measured need " << v.max_rereferenced << ", distinct " << v.max_distinct << " over "
       << v.executions << " execution(s)" << (v.adequate() ? "" : "  [UNDER-ESTIMATE]") << "\n";
  }
  return os.str();
}

}  // namespace cdmm
