#include "src/cdmm/experiments.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>
#include <utility>

#include "src/support/check.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {
namespace {

double Pct(double other, double cd) {
  CDMM_CHECK(cd > 0.0);
  return (other - cd) / cd * 100.0;
}

}  // namespace

ExperimentRunner::ExperimentRunner(SimOptions sim, PipelineOptions pipeline, ThreadPool* pool,
                                   SweepEngine engine)
    : sim_(sim), pipeline_(pipeline), scheduler_(pool, engine) {}

void ExperimentRunner::Prefetch(const std::vector<WorkloadVariant>& variants) {
  // One task per CD run and per curve; the curve tasks of a workload race to
  // compile it (and to prepare its trace), which the compute-once memos
  // resolve to a single computation the losers wait on.
  std::vector<std::function<void()>> tasks;
  std::set<std::string> seen;
  for (const WorkloadVariant& variant : variants) {
    if (seen.insert(variant.workload).second) {
      const std::string workload = variant.workload;
      tasks.push_back([this, workload] { LruCurve(workload); });
      tasks.push_back([this, workload] { WsCurve(workload); });
      tasks.push_back([this, workload] { OptCurve(workload); });
    }
    tasks.push_back([this, variant] { RunCd(variant); });
  }
  ParallelFor(scheduler_.pool(), tasks.size(), [&](size_t i) { tasks[i](); });
}

const CompiledProgram& ExperimentRunner::compiled(const std::string& workload) {
  return compiled_.GetOrCompute(workload, [&] {
    auto cp = CompiledProgram::FromSource(FindWorkload(workload).source, pipeline_);
    CDMM_CHECK_MSG(cp.ok(), workload << ": " << cp.error().ToString());
    TELEM_COUNT("experiments.workload_compiled");
    return std::move(cp).value();
  });
}

CdOptions ExperimentRunner::MakeCdOptions(const WorkloadVariant& variant) const {
  CdOptions options;
  options.selection = variant.selection;
  options.level_cap = variant.level_cap;
  options.honor_locks = variant.honor_locks;
  options.initial_allocation = 2;
  options.sim = sim_;
  return options;
}

const SimResult& ExperimentRunner::RunCd(const WorkloadVariant& variant) {
  return cd_results_.GetOrCompute(variant.variant_name, [&] {
    TELEM_SPAN_VAR(span, "simulate:cd", "experiments");
    span.AddArg("variant", variant.variant_name);
    const CompiledProgram& cp = compiled(variant.workload);
    SimResult r = SimulateCd(cp.trace(), MakeCdOptions(variant));
    r.policy = variant.variant_name + " " + r.policy;
    TELEM_COUNT("experiments.cd_run_completed");
    return r;
  });
}

const std::vector<SweepPoint>& ExperimentRunner::LruCurve(const std::string& workload) {
  return lru_curves_.GetOrCompute(workload, [&] {
    TELEM_SPAN_VAR(span, "sweep:lru", "experiments");
    span.AddArg("workload", workload);
    const CompiledProgram& cp = compiled(workload);
    TELEM_COUNT("experiments.lru_curve_computed");
    return scheduler_.Lru(cp.shared_references(), cp.virtual_pages(), sim_);
  });
}

const std::vector<SweepPoint>& ExperimentRunner::WsCurve(const std::string& workload) {
  return ws_curves_.GetOrCompute(workload, [&] {
    TELEM_SPAN_VAR(span, "sweep:ws", "experiments");
    span.AddArg("workload", workload);
    const CompiledProgram& cp = compiled(workload);
    TELEM_COUNT("experiments.ws_curve_computed");
    std::shared_ptr<const Trace> refs = cp.shared_references();
    uint64_t max_tau = std::max<uint64_t>(refs->reference_count(), 1);
    return scheduler_.Ws(std::move(refs), DefaultTauGrid(max_tau, 12), sim_,
                         Prepared(workload));
  });
}

const std::vector<SweepPoint>& ExperimentRunner::OptCurve(const std::string& workload) {
  return opt_curves_.GetOrCompute(workload, [&] {
    TELEM_SPAN_VAR(span, "sweep:opt", "experiments");
    span.AddArg("workload", workload);
    const CompiledProgram& cp = compiled(workload);
    TELEM_COUNT("experiments.opt_curve_computed");
    return scheduler_.Opt(cp.shared_references(), cp.virtual_pages(), sim_,
                          Prepared(workload));
  });
}

std::shared_ptr<const PreparedTrace> ExperimentRunner::Prepared(const std::string& workload) {
  return prepared_.GetOrCompute(workload, [&] {
    const CompiledProgram& cp = compiled(workload);
    return PreparedTrace::BuildShared(*cp.shared_references());
  });
}

ExperimentRunner::MinStRow ExperimentRunner::MinStComparison(const WorkloadVariant& variant) {
  MinStRow row;
  row.variant = variant.variant_name;
  row.st_cd = RunCd(variant).space_time;

  row.st_lru = std::numeric_limits<double>::infinity();
  for (const SweepPoint& p : LruCurve(variant.workload)) {
    row.st_lru = std::min(row.st_lru, p.space_time);
  }
  row.st_ws = std::numeric_limits<double>::infinity();
  for (const SweepPoint& p : WsCurve(variant.workload)) {
    row.st_ws = std::min(row.st_ws, p.space_time);
  }
  row.st_opt = std::numeric_limits<double>::infinity();
  for (const SweepPoint& p : OptCurve(variant.workload)) {
    row.st_opt = std::min(row.st_opt, p.space_time);
  }
  row.pct_st_lru = Pct(row.st_lru, row.st_cd);
  row.pct_st_ws = Pct(row.st_ws, row.st_cd);
  row.pct_st_opt = Pct(row.st_opt, row.st_cd);
  return row;
}

ExperimentRunner::EqualMemRow ExperimentRunner::EqualMemoryComparison(
    const WorkloadVariant& variant) {
  EqualMemRow row;
  row.variant = variant.variant_name;
  const SimResult& cd = RunCd(variant);
  row.mem_cd = cd.mean_memory;
  row.pf_cd = cd.faults;
  row.st_cd = cd.space_time;

  const CompiledProgram& cp = compiled(variant.workload);
  uint32_t v = cp.virtual_pages();
  row.lru_frames = static_cast<uint32_t>(
      std::clamp<int64_t>(std::llround(row.mem_cd), 1, static_cast<int64_t>(v)));
  const std::vector<SweepPoint>& lru = LruCurve(variant.workload);
  const SweepPoint& lp = lru[row.lru_frames - 1];
  CDMM_CHECK(static_cast<uint32_t>(lp.parameter) == row.lru_frames);
  row.dpf_lru = static_cast<int64_t>(lp.faults) - static_cast<int64_t>(row.pf_cd);
  row.pct_st_lru = Pct(lp.space_time, row.st_cd);

  // WS: the τ whose mean working-set size is closest to CD's average memory
  // (the paper: "similar values were obtained ... by adjusting τ").
  const SweepPoint* best = nullptr;
  for (const SweepPoint& p : WsCurve(variant.workload)) {
    if (best == nullptr ||
        std::abs(p.mean_memory - row.mem_cd) < std::abs(best->mean_memory - row.mem_cd)) {
      best = &p;
    }
  }
  CDMM_CHECK(best != nullptr);
  row.ws_tau = static_cast<uint64_t>(best->parameter);
  row.ws_mem = best->mean_memory;
  row.dpf_ws = static_cast<int64_t>(best->faults) - static_cast<int64_t>(row.pf_cd);
  row.pct_st_ws = Pct(best->space_time, row.st_cd);
  return row;
}

ExperimentRunner::EqualPfRow ExperimentRunner::EqualFaultComparison(
    const WorkloadVariant& variant) {
  EqualPfRow row;
  row.variant = variant.variant_name;
  const SimResult& cd = RunCd(variant);
  row.pf_cd = cd.faults;
  row.mem_cd = cd.mean_memory;
  row.st_cd = cd.space_time;

  // LRU: smallest partition generating at most PF_CD faults (the LRU fault
  // curve is non-increasing in m by the inclusion property, so the first hit
  // is the smallest). Falls back to V if even full residency misses the mark
  // (cannot happen: at m = V only cold faults remain, and CD pays those too).
  const std::vector<SweepPoint>& lru = LruCurve(variant.workload);
  const SweepPoint* lru_pick = &lru.back();
  for (const SweepPoint& p : lru) {
    if (p.faults <= row.pf_cd) {
      lru_pick = &p;
      break;
    }
  }
  row.lru_frames = static_cast<uint32_t>(lru_pick->parameter);
  row.pct_mem_lru = Pct(lru_pick->mean_memory, row.mem_cd);
  row.pct_st_lru = Pct(lru_pick->space_time, row.st_cd);

  // WS: among windows meeting the fault target, the smallest mean memory.
  const SweepPoint* ws_pick = nullptr;
  for (const SweepPoint& p : WsCurve(variant.workload)) {
    if (p.faults <= row.pf_cd &&
        (ws_pick == nullptr || p.mean_memory < ws_pick->mean_memory)) {
      ws_pick = &p;
    }
  }
  CDMM_CHECK_MSG(ws_pick != nullptr,
                 variant.variant_name << ": no WS window reaches PF <= " << row.pf_cd);
  row.ws_tau = static_cast<uint64_t>(ws_pick->parameter);
  row.ws_mem = ws_pick->mean_memory;
  row.pct_mem_ws = Pct(ws_pick->mean_memory, row.mem_cd);
  row.pct_st_ws = Pct(ws_pick->space_time, row.st_cd);
  return row;
}

}  // namespace cdmm
