// The end-to-end pipeline: source → parse/check → loop tree → locality
// analysis → directive plan (Algorithms 1 & 2) → reference trace. This is
// the library's primary entry point; everything downstream (policy
// simulators, experiment runner, benches) consumes the CompiledProgram.
#ifndef CDMM_SRC_CDMM_PIPELINE_H_
#define CDMM_SRC_CDMM_PIPELINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/analysis/dependence.h"
#include "src/analysis/locality.h"
#include "src/analysis/loop_tree.h"
#include "src/directives/plan.h"
#include "src/interp/interpreter.h"
#include "src/lang/ast.h"
#include "src/support/result.h"
#include "src/trace/trace.h"

namespace cdmm {

struct PipelineOptions {
  LocalityOptions locality;          // geometry + system default minimum
  DirectivePlanOptions directives;   // allocate/lock insertion switches
  bool emit_loop_markers = false;    // annotate the trace with loop events
};

// Owns every stage product; the analyses reference the owned Program, so a
// CompiledProgram is movable (unique_ptr members) but not copyable.
class CompiledProgram {
 public:
  // Compiles `source`; returns a diagnostic on parse/check failure.
  static Result<CompiledProgram> FromSource(std::string_view source,
                                            const PipelineOptions& options = {});

  const Program& program() const { return *program_; }
  const LoopTree& tree() const { return *tree_; }
  const LocalityAnalysis& locality() const { return *locality_; }
  const DirectivePlan& plan() const { return plan_; }
  const PipelineOptions& options() const { return options_; }

  // The directive-bearing trace: generated once (lazily, thread-safe), then
  // shared immutably. shared_trace() hands out the owning pointer so
  // concurrent policy simulations — including tasks that outlive this call's
  // scope — read the one memoized copy instead of re-deriving it.
  const Trace& trace() const { return *shared_trace(); }
  std::shared_ptr<const Trace> shared_trace() const;

  // The directive-free view (what LRU/WS/OPT/... see), memoized the same
  // way; replaces per-caller trace().ReferencesOnly() copies.
  const Trace& references() const { return *shared_references(); }
  std::shared_ptr<const Trace> shared_references() const;

  // The dependence graph, built lazily on first use (nominal runs that never
  // consult it pay nothing and emit no dep.* telemetry) and then shared.
  const DependenceGraph& deps() const { return *shared_deps(); }
  std::shared_ptr<const DependenceGraph> shared_deps() const;

  // The dependence-aware directive plan (Algorithms 1 & 2 consulting the
  // graph: independent loops recorded, provably-unnecessary locks pruned).
  // Lazy like the graph; the nominal plan() stays untouched, so callers that
  // never opt in see byte-identical traces.
  const DirectivePlan& dep_plan() const;

  // Convenience: total virtual pages of the program.
  uint32_t virtual_pages() const { return trace().virtual_pages(); }

  // Figure-5c-style instrumented listing.
  std::string Listing(bool compact = true) const;

 private:
  CompiledProgram() = default;

  // Lazily generated traces. Heap-held so a CompiledProgram stays movable
  // (std::once_flag is not) and so shared_ptr copies handed out before a
  // move remain valid.
  struct LazyTraces {
    std::once_flag full_once;
    std::shared_ptr<const Trace> full;
    std::once_flag refs_once;
    std::shared_ptr<const Trace> refs;
    std::once_flag deps_once;
    std::shared_ptr<const DependenceGraph> deps;
    std::once_flag dep_plan_once;
    std::shared_ptr<const DirectivePlan> dep_plan;
  };

  PipelineOptions options_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<LoopTree> tree_;
  std::unique_ptr<LocalityAnalysis> locality_;
  DirectivePlan plan_;
  std::shared_ptr<LazyTraces> lazy_ = std::make_shared<LazyTraces>();
};

}  // namespace cdmm

#endif  // CDMM_SRC_CDMM_PIPELINE_H_
