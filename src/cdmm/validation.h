// Validation of the compile-time locality estimates against measured trace
// behaviour: replays a loop-marker-annotated trace and records, for every
// dynamic execution of every loop, the distinct pages touched and the pages
// re-referenced (touched more than once) — the measured counterpart of the
// paper's X. The §2 estimator is an upper bound by design; this module
// quantifies how tight it is (the paper left "a deterministic procedure ...
// being developed by the authors").
#ifndef CDMM_SRC_CDMM_VALIDATION_H_
#define CDMM_SRC_CDMM_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/lint/diagnostics.h"

namespace cdmm {

struct LoopValidation {
  uint32_t loop_id = 0;
  int loop_label = 0;
  int priority_index = 0;
  int64_t estimated_pages = 0;     // the ALLOCATE argument X
  uint64_t executions = 0;         // dynamic entries of this loop
  uint32_t max_distinct = 0;       // max pages touched in one execution
  // Max over executions of the minimal LRU allocation avoiding every
  // non-cold fault while the loop runs (largest intra-execution re-use
  // stack distance) — the measured counterpart of X.
  uint32_t max_rereferenced = 0;

  // X should cover the re-referenced set (adequate) without wildly
  // exceeding the touched set (tight).
  bool adequate() const { return estimated_pages >= max_rereferenced; }
};

// Regenerates the program's trace with loop markers and measures per-loop
// behaviour. The CompiledProgram's own (cached) trace is not modified.
std::vector<LoopValidation> ValidateLocalityEstimates(const CompiledProgram& cp);

// Formats the validation as a table-like report.
std::string ValidationReport(const std::string& program_name,
                             const std::vector<LoopValidation>& rows);

// The structured-diagnostic view of the validation: one V001 warning per
// loop whose ALLOCATE argument X under-estimates the measured minimal
// no-thrash allocation, anchored at the offending loop's DO statement (pass
// "estimate-validation"). Empty when every estimate is adequate.
std::vector<Diagnostic> ValidationDiagnostics(const CompiledProgram& cp,
                                              const std::vector<LoopValidation>& rows);

}  // namespace cdmm

#endif  // CDMM_SRC_CDMM_VALIDATION_H_
