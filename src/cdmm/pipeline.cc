#include "src/cdmm/pipeline.h"

#include "src/lang/sema.h"
#include "src/telemetry/telemetry.h"

namespace cdmm {

Result<CompiledProgram> CompiledProgram::FromSource(std::string_view source,
                                                    const PipelineOptions& options) {
  TELEM_SPAN("compile", "pipeline");
  auto parsed = ParseAndCheck(source);
  if (!parsed.ok()) {
    return parsed.error();
  }
  CompiledProgram cp;
  cp.options_ = options;
  cp.program_ = std::make_unique<Program>(std::move(parsed).value());
  {
    TELEM_SPAN("analysis", "pipeline");
    cp.tree_ = std::make_unique<LoopTree>(*cp.program_);
    cp.locality_ = std::make_unique<LocalityAnalysis>(*cp.program_, *cp.tree_, options.locality);
  }
  {
    TELEM_SPAN("directive-insertion", "pipeline");
    cp.plan_ = BuildDirectivePlan(*cp.tree_, *cp.locality_, options.directives);
  }
  TELEM_COUNT("pipeline.program_compiled");
  TELEM_COUNT_N("pipeline.directive_planned",
                cp.plan_.allocate_before_loop.size() + cp.plan_.locks.size() +
                    cp.plan_.unlock_after_loop.size());
  return cp;
}

std::shared_ptr<const Trace> CompiledProgram::shared_trace() const {
  std::call_once(lazy_->full_once, [this] {
    TELEM_SPAN("trace-generation", "pipeline");
    InterpOptions iopt;
    iopt.geometry = options_.locality.geometry;
    iopt.emit_loop_markers = options_.emit_loop_markers;
    lazy_->full = std::make_shared<const Trace>(GenerateTrace(*program_, *tree_, &plan_, iopt));
    TELEM_COUNT("pipeline.trace_generated");
    TELEM_COUNT_N("pipeline.ref_emitted", lazy_->full->reference_count());
  });
  return lazy_->full;
}

std::shared_ptr<const Trace> CompiledProgram::shared_references() const {
  std::call_once(lazy_->refs_once, [this] {
    lazy_->refs = std::make_shared<const Trace>(shared_trace()->ReferencesOnly());
  });
  return lazy_->refs;
}

std::shared_ptr<const DependenceGraph> CompiledProgram::shared_deps() const {
  std::call_once(lazy_->deps_once, [this] {
    lazy_->deps =
        std::make_shared<const DependenceGraph>(DependenceGraph::Build(*program_, *tree_));
  });
  return lazy_->deps;
}

const DirectivePlan& CompiledProgram::dep_plan() const {
  std::call_once(lazy_->dep_plan_once, [this] {
    lazy_->dep_plan = std::make_shared<const DirectivePlan>(
        BuildDirectivePlan(*tree_, *locality_, *shared_deps(), options_.directives));
  });
  return *lazy_->dep_plan;
}

std::string CompiledProgram::Listing(bool compact) const {
  return InstrumentedListing(*tree_, plan_, compact);
}

}  // namespace cdmm
