// Experiment runner reproducing the paper's §5 comparisons. Caches compiled
// workloads, their traces, and the LRU/WS parameter sweeps so that the four
// table benches share work. The comparison formulas are the paper's own:
//   %MEM = (MEM_other - MEM_CD) / MEM_CD * 100
//   %ST  = (ST_other  - ST_CD)  / ST_CD  * 100
//   ΔPF  =  PF_other  - PF_CD
//
// With a ThreadPool the runner becomes a parallel sweep campaign: Prefetch
// fans the (workload × policy × parameter) grid out over the pool, every
// concurrent simulation reading one shared immutable trace per workload.
// All caches are thread-safe compute-once memos, results are keyed (never
// ordered by completion), and every accessor returns values bit-identical
// to a serial run.
#ifndef CDMM_SRC_CDMM_EXPERIMENTS_H_
#define CDMM_SRC_CDMM_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/exec/memo.h"
#include "src/exec/sweep_scheduler.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {

class ExperimentRunner {
 public:
  // `pool` may be null (fully serial) or shared across runners; the runner
  // does not own it. `engine` selects the sweep implementation (see
  // SweepScheduler); results are bit-identical under either.
  explicit ExperimentRunner(SimOptions sim = {}, PipelineOptions pipeline = {},
                            ThreadPool* pool = nullptr,
                            SweepEngine engine = SweepEngine::kOnePass);

  // Warms every cache the given variants will hit — CD runs, LRU curves, WS
  // curves — as one parallel sweep over the pool. Calling the accessors
  // afterwards (e.g. from a serial table-printing loop) only reads memoized
  // results, so table output is byte-identical to a run without Prefetch.
  void Prefetch(const std::vector<WorkloadVariant>& variants);

  // Compiled workload (cached by name).
  const CompiledProgram& compiled(const std::string& workload);

  // CD run for a Table-1-style variant (cached by variant name).
  const SimResult& RunCd(const WorkloadVariant& variant);

  // LRU/OPT curves for m = 1..V and WS curve over the default τ grid
  // (cached). OPT is the optimality yardstick column of Tables 1 and 2.
  const std::vector<SweepPoint>& LruCurve(const std::string& workload);
  const std::vector<SweepPoint>& WsCurve(const std::string& workload);
  const std::vector<SweepPoint>& OptCurve(const std::string& workload);

  // The workload's PreparedTrace (cached), shared by the OPT/WS one-pass
  // sweeps exactly as the memoized shared_ptr<const Trace> is shared by the
  // naive simulations.
  std::shared_ptr<const PreparedTrace> Prepared(const std::string& workload);

  // ---- Table 2: minimal space-time cost of each policy ----
  struct MinStRow {
    std::string variant;
    double st_cd = 0.0;
    double st_lru = 0.0;   // min over m
    double st_ws = 0.0;    // min over τ
    double st_opt = 0.0;   // min over m under OPT (the yardstick)
    double pct_st_lru = 0.0;
    double pct_st_ws = 0.0;
    double pct_st_opt = 0.0;
  };
  MinStRow MinStComparison(const WorkloadVariant& variant);

  // ---- Table 3: LRU/WS given (approximately) CD's average memory ----
  struct EqualMemRow {
    std::string variant;
    double mem_cd = 0.0;
    uint64_t pf_cd = 0;
    double st_cd = 0.0;
    uint32_t lru_frames = 0;  // = round(mem_cd), clamped to [1, V]
    int64_t dpf_lru = 0;
    double pct_st_lru = 0.0;
    uint64_t ws_tau = 0;      // τ whose mean WS size is closest to mem_cd
    double ws_mem = 0.0;
    int64_t dpf_ws = 0;
    double pct_st_ws = 0.0;
  };
  EqualMemRow EqualMemoryComparison(const WorkloadVariant& variant);

  // ---- Table 4: memory/ST needed to match CD's fault count ----
  struct EqualPfRow {
    std::string variant;
    uint64_t pf_cd = 0;
    double mem_cd = 0.0;
    double st_cd = 0.0;
    uint32_t lru_frames = 0;  // smallest m with PF_LRU(m) <= PF_CD
    double pct_mem_lru = 0.0;
    double pct_st_lru = 0.0;
    uint64_t ws_tau = 0;      // smallest-memory τ with PF_WS(τ) <= PF_CD
    double ws_mem = 0.0;
    double pct_mem_ws = 0.0;
    double pct_st_ws = 0.0;
  };
  EqualPfRow EqualFaultComparison(const WorkloadVariant& variant);

  const SimOptions& sim_options() const { return sim_; }
  const SweepScheduler& scheduler() const { return scheduler_; }

 private:
  CdOptions MakeCdOptions(const WorkloadVariant& variant) const;

  SimOptions sim_;
  PipelineOptions pipeline_;
  SweepScheduler scheduler_;
  Memo<std::string, CompiledProgram> compiled_;
  Memo<std::string, SimResult> cd_results_;
  Memo<std::string, std::shared_ptr<const PreparedTrace>> prepared_;
  Memo<std::string, std::vector<SweepPoint>> lru_curves_;
  Memo<std::string, std::vector<SweepPoint>> ws_curves_;
  Memo<std::string, std::vector<SweepPoint>> opt_curves_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_CDMM_EXPERIMENTS_H_
