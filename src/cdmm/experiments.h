// Experiment runner reproducing the paper's §5 comparisons. Caches compiled
// workloads, their traces, and the LRU/WS parameter sweeps so that the four
// table benches share work. The comparison formulas are the paper's own:
//   %MEM = (MEM_other - MEM_CD) / MEM_CD * 100
//   %ST  = (ST_other  - ST_CD)  / ST_CD  * 100
//   ΔPF  =  PF_other  - PF_CD
#ifndef CDMM_SRC_CDMM_EXPERIMENTS_H_
#define CDMM_SRC_CDMM_EXPERIMENTS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cdmm/pipeline.h"
#include "src/vm/cd_policy.h"
#include "src/vm/fixed_alloc.h"
#include "src/vm/working_set.h"
#include "src/workloads/workloads.h"

namespace cdmm {

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SimOptions sim = {}, PipelineOptions pipeline = {});

  // Compiled workload (cached by name).
  const CompiledProgram& compiled(const std::string& workload);

  // CD run for a Table-1-style variant (cached by variant name).
  const SimResult& RunCd(const WorkloadVariant& variant);

  // LRU curve for m = 1..V and WS curve over the default τ grid (cached).
  const std::vector<SweepPoint>& LruCurve(const std::string& workload);
  const std::vector<SweepPoint>& WsCurve(const std::string& workload);

  // ---- Table 2: minimal space-time cost of each policy ----
  struct MinStRow {
    std::string variant;
    double st_cd = 0.0;
    double st_lru = 0.0;   // min over m
    double st_ws = 0.0;    // min over τ
    double pct_st_lru = 0.0;
    double pct_st_ws = 0.0;
  };
  MinStRow MinStComparison(const WorkloadVariant& variant);

  // ---- Table 3: LRU/WS given (approximately) CD's average memory ----
  struct EqualMemRow {
    std::string variant;
    double mem_cd = 0.0;
    uint64_t pf_cd = 0;
    double st_cd = 0.0;
    uint32_t lru_frames = 0;  // = round(mem_cd), clamped to [1, V]
    int64_t dpf_lru = 0;
    double pct_st_lru = 0.0;
    uint64_t ws_tau = 0;      // τ whose mean WS size is closest to mem_cd
    double ws_mem = 0.0;
    int64_t dpf_ws = 0;
    double pct_st_ws = 0.0;
  };
  EqualMemRow EqualMemoryComparison(const WorkloadVariant& variant);

  // ---- Table 4: memory/ST needed to match CD's fault count ----
  struct EqualPfRow {
    std::string variant;
    uint64_t pf_cd = 0;
    double mem_cd = 0.0;
    double st_cd = 0.0;
    uint32_t lru_frames = 0;  // smallest m with PF_LRU(m) <= PF_CD
    double pct_mem_lru = 0.0;
    double pct_st_lru = 0.0;
    uint64_t ws_tau = 0;      // smallest-memory τ with PF_WS(τ) <= PF_CD
    double ws_mem = 0.0;
    double pct_mem_ws = 0.0;
    double pct_st_ws = 0.0;
  };
  EqualPfRow EqualFaultComparison(const WorkloadVariant& variant);

  const SimOptions& sim_options() const { return sim_; }

 private:
  CdOptions MakeCdOptions(const WorkloadVariant& variant) const;

  SimOptions sim_;
  PipelineOptions pipeline_;
  std::map<std::string, std::unique_ptr<CompiledProgram>> compiled_;
  std::map<std::string, Trace> reference_views_;  // directive-free traces
  std::map<std::string, SimResult> cd_results_;
  std::map<std::string, std::vector<SweepPoint>> lru_curves_;
  std::map<std::string, std::vector<SweepPoint>> ws_curves_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_CDMM_EXPERIMENTS_H_
