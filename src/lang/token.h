// Tokens of the mini-FORTRAN dialect accepted by cdmm::lang.
#ifndef CDMM_SRC_LANG_TOKEN_H_
#define CDMM_SRC_LANG_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/support/source_location.h"

namespace cdmm {

enum class TokenKind : uint8_t {
  kEof,
  kNewline,     // statement separator (FORTRAN is line-oriented)
  kIdentifier,  // array/scalar/loop-variable names, canonicalised to upper case
  kInteger,     // unsigned integer literal
  kReal,        // real literal (accepted, value irrelevant to tracing)
  // Keywords.
  kKwProgram,
  kKwDimension,
  kKwParameter,
  kKwReal,     // REAL / DOUBLEPRECISION type declaration (DIMENSION synonym)
  kKwInteger,  // INTEGER type declaration
  kKwDo,
  kKwContinue,
  kKwEnd,
  kKwIf,          // logical IF around an assignment
  kKwCall,        // CALL statement
  kKwSubroutine,  // SUBROUTINE unit header
  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kAssign,  // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  // Dot-delimited operator (.GT. .GE. .LT. .LE. .EQ. .NE. .AND. .OR.);
  // `text` holds the bare name ("GT", "AND", ...).
  kDotOp,
  // A `!$CDMM <word>` compiler-directive comment; `text` holds the word
  // (currently only "INDEPENDENT").
  kDirective,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        // identifier name (upper-cased) or literal spelling
  int64_t int_value = 0;   // valid for kInteger
  SourceLocation location;

  std::string ToString() const;
};

}  // namespace cdmm

#endif  // CDMM_SRC_LANG_TOKEN_H_
