#include "src/lang/ast.h"

#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"

namespace cdmm {

std::string IndexExpr::Canonical() const {
  if (IsConstant()) {
    return StrCat(offset);
  }
  if (offset == 0) {
    return var;
  }
  if (offset > 0) {
    return StrCat(var, "+", offset);
  }
  return StrCat(var, "-", -offset);
}

std::string ArrayRef::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(indices.size());
  for (const IndexExpr& ix : indices) {
    parts.push_back(ix.Canonical());
  }
  return StrCat(name, "(", Join(parts, ","), ")");
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kNumber: {
      std::ostringstream os;
      os << number;
      return os.str();
    }
    case Kind::kScalar:
      return scalar;
    case Kind::kArrayElement:
      return array.ToString();
    case Kind::kNegate:
      return StrCat("-", lhs->ToString());
    case Kind::kBinary:
      return StrCat("(", lhs->ToString(), " ", std::string(1, op), " ", rhs->ToString(), ")");
  }
  CDMM_UNREACHABLE("bad Expr::Kind");
}

LoopBound LoopBound::Constant(int64_t v) {
  return LoopBound{LoopBound::Kind::kConstant, v, StrCat(v), SourceLocation{}};
}

namespace {

void CollectRefs(const Expr& expr, std::vector<const ArrayRef*>* out) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kScalar:
      return;
    case Expr::Kind::kArrayElement:
      out->push_back(&expr.array);
      return;
    case Expr::Kind::kNegate:
      CollectRefs(*expr.lhs, out);
      return;
    case Expr::Kind::kBinary:
      CollectRefs(*expr.lhs, out);
      CollectRefs(*expr.rhs, out);
      return;
  }
}

}  // namespace

std::vector<const ArrayRef*> Stmt::DirectArrayRefs() const {
  std::vector<const ArrayRef*> refs;
  if (kind != Kind::kAssign) {
    return refs;
  }
  if (lhs_array.has_value()) {
    refs.push_back(&*lhs_array);
  }
  if (rhs != nullptr) {
    CollectRefs(*rhs, &refs);
  }
  return refs;
}

const ArrayDecl* Program::FindArray(const std::string& array_name) const {
  for (const ArrayDecl& decl : arrays) {
    if (decl.name == array_name) {
      return &decl;
    }
  }
  return nullptr;
}

const Stmt* Program::FindLoop(uint32_t loop_id) const {
  const Stmt* found = nullptr;
  ForEachStmt([&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kDoLoop && s.loop_id == loop_id) {
      found = &s;
    }
  });
  return found;
}

namespace {

// `suppress_continue`: when an outer loop shares its terminal label with this
// loop (FORTRAN's "DO 10 I / DO 10 J / 10 CONTINUE" idiom) only the outermost
// loop prints the CONTINUE card, so the listing re-parses identically.
void PrintStmt(const Stmt& stmt, int indent, bool suppress_continue, std::ostringstream& os) {
  std::string pad(static_cast<size_t>(indent) * 2 + 6, ' ');
  switch (stmt.kind) {
    case Stmt::Kind::kAssign: {
      os << pad;
      if (stmt.lhs_array.has_value()) {
        os << stmt.lhs_array->ToString();
      } else {
        os << stmt.lhs_scalar;
      }
      os << " = " << stmt.rhs->ToString() << "\n";
      return;
    }
    case Stmt::Kind::kDoLoop: {
      os << pad << "DO " << stmt.label << " " << stmt.loop_var << " = " << stmt.lower.spelling
         << ", " << stmt.upper.spelling;
      if (stmt.step != 1) {
        os << ", " << stmt.step;
      }
      os << "\n";
      for (size_t i = 0; i < stmt.body.size(); ++i) {
        const Stmt& child = *stmt.body[i];
        bool shares_label = i + 1 == stmt.body.size() && child.kind == Stmt::Kind::kDoLoop &&
                            child.label == stmt.label;
        PrintStmt(child, indent + 1, shares_label, os);
      }
      if (!suppress_continue) {
        // Right-align the label in a 5-column field like classic FORTRAN cards.
        std::string label = StrCat(stmt.label);
        std::string label_pad(label.size() < 5 ? 5 - label.size() : 1, ' ');
        os << label_pad << label << " CONTINUE\n";
      }
      return;
    }
  }
  CDMM_UNREACHABLE("bad Stmt::Kind");
}

}  // namespace

std::string ProgramToString(const Program& program) {
  std::ostringstream os;
  os << "      PROGRAM " << program.name << "\n";
  for (const auto& [name, value] : program.parameters) {
    os << "      PARAMETER (" << name << " = " << value << ")\n";
  }
  if (!program.arrays.empty()) {
    os << "      DIMENSION ";
    std::vector<std::string> decls;
    decls.reserve(program.arrays.size());
    for (const ArrayDecl& a : program.arrays) {
      if (a.IsVector()) {
        decls.push_back(StrCat(a.name, "(", a.rows_spelling, ")"));
      } else {
        decls.push_back(StrCat(a.name, "(", a.rows_spelling, ",", a.cols_spelling, ")"));
      }
    }
    os << Join(decls, ", ") << "\n";
  }
  for (const StmtPtr& s : program.body) {
    PrintStmt(*s, 0, /*suppress_continue=*/false, os);
  }
  os << "      END\n";
  return os.str();
}

}  // namespace cdmm
