#include "src/lang/ast.h"

#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"

namespace cdmm {

std::string IndexExpr::Canonical() const {
  if (IsConstant()) {
    return StrCat(offset);
  }
  std::string base = indirect != nullptr ? indirect->ToString() : var;
  if (offset == 0) {
    return base;
  }
  if (offset > 0) {
    return StrCat(base, "+", offset);
  }
  return StrCat(base, "-", -offset);
}

bool operator==(const IndexExpr& a, const IndexExpr& b) {
  if (a.offset != b.offset) {
    return false;
  }
  if ((a.indirect != nullptr) != (b.indirect != nullptr)) {
    return false;
  }
  if (a.indirect != nullptr) {
    return a.Canonical() == b.Canonical();
  }
  return a.var == b.var;
}

bool ArrayRef::HasIndirect() const {
  for (const IndexExpr& ix : indices) {
    if (ix.IsIndirect()) {
      return true;
    }
  }
  return false;
}

std::string ArrayRef::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(indices.size());
  for (const IndexExpr& ix : indices) {
    parts.push_back(ix.Canonical());
  }
  return StrCat(name, "(", Join(parts, ","), ")");
}

const char* RelOpSpelling(RelOp op) {
  switch (op) {
    case RelOp::kGt:
      return ".GT.";
    case RelOp::kGe:
      return ".GE.";
    case RelOp::kLt:
      return ".LT.";
    case RelOp::kLe:
      return ".LE.";
    case RelOp::kEq:
      return ".EQ.";
    case RelOp::kNe:
      return ".NE.";
  }
  CDMM_UNREACHABLE("bad RelOp");
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kNumber: {
      std::ostringstream os;
      os << number;
      return os.str();
    }
    case Kind::kScalar:
      return scalar;
    case Kind::kArrayElement:
      return array.ToString();
    case Kind::kNegate:
      return StrCat("-", lhs->ToString());
    case Kind::kBinary:
      if (op == '%') {
        return StrCat("MOD(", lhs->ToString(), ", ", rhs->ToString(), ")");
      }
      return StrCat("(", lhs->ToString(), " ", std::string(1, op), " ", rhs->ToString(), ")");
    case Kind::kCompare:
      return StrCat(lhs->ToString(), " ", RelOpSpelling(rel), " ", rhs->ToString());
    case Kind::kAnd:
      return StrCat(lhs->ToString(), " .AND. ", rhs->ToString());
    case Kind::kOr:
      return StrCat(lhs->ToString(), " .OR. ", rhs->ToString());
  }
  CDMM_UNREACHABLE("bad Expr::Kind");
}

LoopBound LoopBound::Constant(int64_t v) {
  return LoopBound{LoopBound::Kind::kConstant, v, StrCat(v), SourceLocation{}};
}

namespace {

// Pushes `ref` followed by the arrays its indirect subscripts read (the
// inner IDX(...) reference is a real memory access and must be visible to
// every consumer that enumerates refs).
void PushRef(const ArrayRef& ref, std::vector<const ArrayRef*>* out) {
  out->push_back(&ref);
  for (const IndexExpr& ix : ref.indices) {
    if (ix.IsIndirect()) {
      PushRef(*ix.indirect, out);
    }
  }
}

void CollectRefs(const Expr& expr, std::vector<const ArrayRef*>* out) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kScalar:
      return;
    case Expr::Kind::kArrayElement:
      PushRef(expr.array, out);
      return;
    case Expr::Kind::kNegate:
      CollectRefs(*expr.lhs, out);
      return;
    case Expr::Kind::kBinary:
    case Expr::Kind::kCompare:
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      CollectRefs(*expr.lhs, out);
      CollectRefs(*expr.rhs, out);
      return;
  }
}

}  // namespace

std::vector<const ArrayRef*> Stmt::DirectArrayRefs() const {
  std::vector<const ArrayRef*> refs;
  if (kind == Kind::kIf) {
    return if_then->DirectArrayRefs();
  }
  if (kind != Kind::kAssign) {
    return refs;
  }
  if (lhs_array.has_value()) {
    PushRef(*lhs_array, &refs);
  }
  if (rhs != nullptr) {
    CollectRefs(*rhs, &refs);
  }
  return refs;
}

const ArrayDecl* Program::FindArray(const std::string& array_name) const {
  for (const ArrayDecl& decl : arrays) {
    if (decl.name == array_name) {
      return &decl;
    }
  }
  return nullptr;
}

const Stmt* Program::FindLoop(uint32_t loop_id) const {
  const Stmt* found = nullptr;
  ForEachStmt([&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kDoLoop && s.loop_id == loop_id) {
      found = &s;
    }
  });
  return found;
}

namespace {

// `suppress_continue`: when an outer loop shares its terminal label with this
// loop (FORTRAN's "DO 10 I / DO 10 J / 10 CONTINUE" idiom) only the outermost
// loop prints the CONTINUE card, so the listing re-parses identically.
void PrintStmt(const Stmt& stmt, int indent, bool suppress_continue, std::ostringstream& os) {
  std::string pad(static_cast<size_t>(indent) * 2 + 6, ' ');
  switch (stmt.kind) {
    case Stmt::Kind::kAssign: {
      os << pad;
      if (stmt.lhs_array.has_value()) {
        os << stmt.lhs_array->ToString();
      } else {
        os << stmt.lhs_scalar;
      }
      os << " = " << stmt.rhs->ToString() << "\n";
      return;
    }
    case Stmt::Kind::kIf: {
      os << pad << "IF (" << stmt.if_cond->ToString() << ") ";
      const Stmt& then = *stmt.if_then;
      if (then.lhs_array.has_value()) {
        os << then.lhs_array->ToString();
      } else {
        os << then.lhs_scalar;
      }
      os << " = " << then.rhs->ToString() << "\n";
      return;
    }
    case Stmt::Kind::kCall: {
      std::vector<std::string> parts;
      parts.reserve(stmt.call_args.size());
      for (const CallArg& arg : stmt.call_args) {
        parts.push_back(arg.is_literal ? StrCat(arg.value) : arg.spelling);
      }
      os << pad << "CALL " << stmt.call_name << "(" << Join(parts, ", ") << ")\n";
      return;
    }
    case Stmt::Kind::kDoLoop: {
      if (stmt.marked_independent) {
        os << "!$CDMM INDEPENDENT\n";
      }
      os << pad << "DO " << stmt.label << " " << stmt.loop_var << " = " << stmt.lower.spelling
         << ", " << stmt.upper.spelling;
      if (stmt.step != 1) {
        os << ", " << stmt.step;
      }
      os << "\n";
      for (size_t i = 0; i < stmt.body.size(); ++i) {
        const Stmt& child = *stmt.body[i];
        bool shares_label = i + 1 == stmt.body.size() && child.kind == Stmt::Kind::kDoLoop &&
                            child.label == stmt.label;
        PrintStmt(child, indent + 1, shares_label, os);
      }
      if (!suppress_continue) {
        // Right-align the label in a 5-column field like classic FORTRAN cards.
        std::string label = StrCat(stmt.label);
        std::string label_pad(label.size() < 5 ? 5 - label.size() : 1, ' ');
        os << label_pad << label << " CONTINUE\n";
      }
      return;
    }
  }
  CDMM_UNREACHABLE("bad Stmt::Kind");
}

}  // namespace

std::string ProgramToString(const Program& program) {
  std::ostringstream os;
  os << "      PROGRAM " << program.name << "\n";
  for (const auto& [name, value] : program.parameters) {
    os << "      PARAMETER (" << name << " = " << value << ")\n";
  }
  std::vector<std::string> real_decls;
  std::vector<std::string> int_decls;
  for (const ArrayDecl& a : program.arrays) {
    std::string spelling =
        a.IsVector() ? StrCat(a.name, "(", a.rows_spelling, ")")
                     : StrCat(a.name, "(", a.rows_spelling, ",", a.cols_spelling, ")");
    (a.is_integer ? int_decls : real_decls).push_back(std::move(spelling));
  }
  if (!real_decls.empty()) {
    os << "      DIMENSION " << Join(real_decls, ", ") << "\n";
  }
  if (!int_decls.empty()) {
    os << "      INTEGER " << Join(int_decls, ", ") << "\n";
  }
  for (const StmtPtr& s : program.body) {
    PrintStmt(*s, 0, /*suppress_continue=*/false, os);
  }
  os << "      END\n";
  return os.str();
}

}  // namespace cdmm
