#include "src/lang/sema.h"

#include <set>
#include <string>
#include <vector>

#include "src/lang/parser.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

constexpr char kPass[] = "sema";

// Accumulating semantic checker. Traversal order matches the historical
// short-circuit checker, so CheckProgram (first error) is unchanged while
// CheckProgramAll surfaces everything in one run.
class Checker {
 public:
  explicit Checker(const Program& program) : program_(program) {}

  std::vector<Diagnostic> Run() {
    std::set<std::string> names;
    for (const ArrayDecl& a : program_.arrays) {
      if (!names.insert(a.name).second) {
        Report("S001", a.location, StrCat("array ", a.name, " declared more than once"));
      }
      if (program_.parameters.count(a.name) != 0) {
        Report("S002", a.location,
               StrCat("name ", a.name, " is both an array and a PARAMETER"));
      }
    }
    for (const StmtPtr& s : program_.body) {
      CheckStmt(*s);
    }
    return diags_.Take();
  }

 private:
  void Report(std::string code, SourceLocation location, std::string message) {
    diags_.Report(Severity::kError, std::move(code), kPass, location, std::move(message));
  }

  void CheckStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign:
        CheckAssign(stmt);
        return;
      case Stmt::Kind::kDoLoop:
        CheckLoop(stmt);
        return;
      case Stmt::Kind::kIf:
        CheckCond(*stmt.if_cond);
        CheckAssign(*stmt.if_then);
        return;
      case Stmt::Kind::kCall:
        // CALLs are inlined by the parser; one surviving here is a bug.
        Report("S012", stmt.location,
               StrCat("internal: CALL to ", stmt.call_name, " survived inlining"));
        return;
    }
  }

  // S010: a logical-IF condition must be array-free, and every scalar in it
  // must be an enclosing loop variable or a PARAMETER (so the interpreter
  // can evaluate it with integer arithmetic).
  void CheckCond(const Expr& cond) {
    switch (cond.kind) {
      case Expr::Kind::kNumber:
        return;
      case Expr::Kind::kScalar: {
        if (program_.parameters.count(cond.scalar) != 0) {
          return;
        }
        for (const std::string& v : active_loop_vars_) {
          if (v == cond.scalar) {
            return;
          }
        }
        Report("S010", cond.location,
               StrCat("IF condition uses '", cond.scalar,
                      "', which is neither a loop variable nor a PARAMETER"));
        return;
      }
      case Expr::Kind::kArrayElement:
        Report("S010", cond.location,
               StrCat("IF condition may not reference array ", cond.array.name));
        return;
      case Expr::Kind::kNegate:
        CheckCond(*cond.lhs);
        return;
      case Expr::Kind::kBinary:
      case Expr::Kind::kCompare:
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        CheckCond(*cond.lhs);
        CheckCond(*cond.rhs);
        return;
    }
  }

  void CheckLoopBound(const LoopBound& bound, const Stmt& loop) {
    if (bound.kind != LoopBound::Kind::kVariable) {
      return;
    }
    for (const std::string& v : active_loop_vars_) {
      if (v == bound.spelling) {
        return;
      }
    }
    Report("S008", bound.location.IsValid() ? bound.location : loop.location,
           StrCat("loop bound '", bound.spelling,
                  "' is neither a PARAMETER nor an enclosing loop variable"));
  }

  void CheckLoop(const Stmt& loop) {
    for (const std::string& v : active_loop_vars_) {
      if (v == loop.loop_var) {
        Report("S006", loop.location,
               StrCat("loop variable ", loop.loop_var, " reused by an enclosing DO"));
        break;
      }
    }
    CheckLoopBound(loop.lower, loop);
    CheckLoopBound(loop.upper, loop);
    if (program_.FindArray(loop.loop_var) != nullptr) {
      Report("S007", loop.location,
             StrCat("loop variable ", loop.loop_var, " collides with an array name"));
    }
    active_loop_vars_.push_back(loop.loop_var);
    for (const StmtPtr& s : loop.body) {
      CheckStmt(*s);
    }
    active_loop_vars_.pop_back();
  }

  void CheckAssign(const Stmt& stmt) {
    if (!stmt.lhs_scalar.empty() && program_.FindArray(stmt.lhs_scalar) != nullptr) {
      Report("S009", stmt.location,
             StrCat("array ", stmt.lhs_scalar, " assigned without subscripts"));
    }
    for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
      CheckArrayRef(*ref);
    }
    if (stmt.rhs != nullptr) {
      CheckExprScalars(*stmt.rhs);
    }
  }

  void CheckExprScalars(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kScalar:
        if (program_.FindArray(expr.scalar) != nullptr) {
          Report("S009", expr.location,
                 StrCat("array ", expr.scalar, " used without subscripts"));
        }
        return;
      case Expr::Kind::kNumber:
      case Expr::Kind::kArrayElement:
        return;
      case Expr::Kind::kNegate:
        CheckExprScalars(*expr.lhs);
        return;
      case Expr::Kind::kBinary:
      case Expr::Kind::kCompare:
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        CheckExprScalars(*expr.lhs);
        CheckExprScalars(*expr.rhs);
        return;
    }
  }

  void CheckArrayRef(const ArrayRef& ref) {
    const ArrayDecl* decl = program_.FindArray(ref.name);
    if (decl == nullptr) {
      Report("S003", ref.location, StrCat("reference to undeclared array ", ref.name));
    } else {
      size_t want = decl->IsVector() ? 1 : 2;
      if (ref.indices.size() != want) {
        Report("S004", ref.location,
               StrCat("array ", ref.name, " declared with ", want, " dimension(s) but ",
                      "referenced with ", ref.indices.size(), " subscript(s)"));
      }
    }
    for (const IndexExpr& ix : ref.indices) {
      if (ix.IsConstant()) {
        continue;
      }
      if (ix.IsIndirect()) {
        // S011: an indirect subscript must read a declared one-dimensional
        // INTEGER array with a direct (non-indirect) subscript; the inner
        // reference's own S003/S004/S005 checks run when it is visited as a
        // ref site in its own right.
        const ArrayRef& inner = *ix.indirect;
        const ArrayDecl* base = program_.FindArray(inner.name);
        if (base == nullptr || !base->is_integer || !base->IsVector()) {
          Report("S011", ix.location,
                 StrCat("indirect subscript base ", inner.name,
                        " must be a declared one-dimensional INTEGER array"));
        }
        for (const IndexExpr& inner_ix : inner.indices) {
          if (inner_ix.IsIndirect()) {
            Report("S011", inner_ix.location,
                   StrCat("indirect subscript of ", inner.name,
                          " may not itself be indirect (depth limit 1)"));
          }
        }
        continue;
      }
      bool bound = false;
      for (const std::string& v : active_loop_vars_) {
        if (v == ix.var) {
          bound = true;
          break;
        }
      }
      if (!bound) {
        Report("S005", ix.location,
               StrCat("subscript variable ", ix.var, " of ", ref.name,
                      " is not bound by an enclosing DO loop"));
      }
    }
  }

  const Program& program_;
  DiagnosticEngine diags_;
  std::vector<std::string> active_loop_vars_;
};

}  // namespace

std::vector<Diagnostic> CheckProgramAll(const Program& program) {
  return Checker(program).Run();
}

std::optional<Error> CheckProgram(const Program& program) {
  std::vector<Diagnostic> diags = CheckProgramAll(program);
  if (diags.empty()) {
    return std::nullopt;
  }
  return diags.front().ToError();
}

Result<Program> ParseAndCheck(std::string_view source) {
  auto program = Parse(source);
  if (!program.ok()) {
    return program.error();
  }
  if (auto err = CheckProgram(program.value())) {
    return *err;
  }
  return program;
}

}  // namespace cdmm
