#include "src/lang/sema.h"

#include <set>
#include <vector>

#include "src/lang/parser.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

class Checker {
 public:
  explicit Checker(const Program& program) : program_(program) {}

  std::optional<Error> Run() {
    std::set<std::string> names;
    for (const ArrayDecl& a : program_.arrays) {
      if (!names.insert(a.name).second) {
        return Error{StrCat("array ", a.name, " declared more than once"), a.location};
      }
      if (program_.parameters.count(a.name) != 0) {
        return Error{StrCat("name ", a.name, " is both an array and a PARAMETER"), a.location};
      }
    }
    for (const StmtPtr& s : program_.body) {
      if (auto err = CheckStmt(*s)) {
        return err;
      }
    }
    return std::nullopt;
  }

 private:
  std::optional<Error> CheckStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign:
        return CheckAssign(stmt);
      case Stmt::Kind::kDoLoop:
        return CheckLoop(stmt);
    }
    return std::nullopt;
  }

  std::optional<Error> CheckLoopBound(const LoopBound& bound, const Stmt& loop) {
    if (bound.kind != LoopBound::Kind::kVariable) {
      return std::nullopt;
    }
    for (const std::string& v : active_loop_vars_) {
      if (v == bound.spelling) {
        return std::nullopt;
      }
    }
    return Error{StrCat("loop bound '", bound.spelling,
                        "' is neither a PARAMETER nor an enclosing loop variable"),
                 loop.location};
  }

  std::optional<Error> CheckLoop(const Stmt& loop) {
    for (const std::string& v : active_loop_vars_) {
      if (v == loop.loop_var) {
        return Error{StrCat("loop variable ", loop.loop_var, " reused by an enclosing DO"),
                     loop.location};
      }
    }
    if (auto err = CheckLoopBound(loop.lower, loop)) {
      return err;
    }
    if (auto err = CheckLoopBound(loop.upper, loop)) {
      return err;
    }
    if (program_.FindArray(loop.loop_var) != nullptr) {
      return Error{StrCat("loop variable ", loop.loop_var, " collides with an array name"),
                   loop.location};
    }
    active_loop_vars_.push_back(loop.loop_var);
    for (const StmtPtr& s : loop.body) {
      if (auto err = CheckStmt(*s)) {
        return err;
      }
    }
    active_loop_vars_.pop_back();
    return std::nullopt;
  }

  std::optional<Error> CheckAssign(const Stmt& stmt) {
    if (!stmt.lhs_scalar.empty() && program_.FindArray(stmt.lhs_scalar) != nullptr) {
      return Error{StrCat("array ", stmt.lhs_scalar, " assigned without subscripts"),
                   stmt.location};
    }
    for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
      if (auto err = CheckArrayRef(*ref)) {
        return err;
      }
    }
    if (stmt.rhs != nullptr) {
      if (auto err = CheckExprScalars(*stmt.rhs)) {
        return err;
      }
    }
    return std::nullopt;
  }

  std::optional<Error> CheckExprScalars(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kScalar:
        if (program_.FindArray(expr.scalar) != nullptr) {
          return Error{StrCat("array ", expr.scalar, " used without subscripts"), expr.location};
        }
        return std::nullopt;
      case Expr::Kind::kNumber:
      case Expr::Kind::kArrayElement:
        return std::nullopt;
      case Expr::Kind::kNegate:
        return CheckExprScalars(*expr.lhs);
      case Expr::Kind::kBinary:
        if (auto err = CheckExprScalars(*expr.lhs)) {
          return err;
        }
        return CheckExprScalars(*expr.rhs);
    }
    return std::nullopt;
  }

  std::optional<Error> CheckArrayRef(const ArrayRef& ref) {
    const ArrayDecl* decl = program_.FindArray(ref.name);
    if (decl == nullptr) {
      return Error{StrCat("reference to undeclared array ", ref.name), ref.location};
    }
    size_t want = decl->IsVector() ? 1 : 2;
    if (ref.indices.size() != want) {
      return Error{StrCat("array ", ref.name, " declared with ", want, " dimension(s) but ",
                          "referenced with ", ref.indices.size(), " subscript(s)"),
                   ref.location};
    }
    for (const IndexExpr& ix : ref.indices) {
      if (ix.IsConstant()) {
        continue;
      }
      bool bound = false;
      for (const std::string& v : active_loop_vars_) {
        if (v == ix.var) {
          bound = true;
          break;
        }
      }
      if (!bound) {
        return Error{StrCat("subscript variable ", ix.var, " of ", ref.name,
                            " is not bound by an enclosing DO loop"),
                     ix.location};
      }
    }
    return std::nullopt;
  }

  const Program& program_;
  std::vector<std::string> active_loop_vars_;
};

}  // namespace

std::optional<Error> CheckProgram(const Program& program) { return Checker(program).Run(); }

Result<Program> ParseAndCheck(std::string_view source) {
  auto program = Parse(source);
  if (!program.ok()) {
    return program.error();
  }
  if (auto err = CheckProgram(program.value())) {
    return *err;
  }
  return program;
}

}  // namespace cdmm
