#include "src/lang/parser.h"

#include <utility>

#include "src/lang/lexer.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    // Header: PROGRAM <name>.
    if (auto err = Expect(TokenKind::kKwProgram)) {
      return *err;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected program name after PROGRAM");
    }
    program_.name = Take().text;
    if (auto err = ExpectNewline()) {
      return *err;
    }

    while (true) {
      // Skip blank separators.
      while (Peek().kind == TokenKind::kNewline) {
        Take();
      }
      if (Peek().kind == TokenKind::kEof) {
        return ErrorHere("missing END statement");
      }
      if (Peek().kind == TokenKind::kKwEnd) {
        Take();
        if (!open_loops_.empty()) {
          return Error{StrCat("END reached with unterminated DO loop (label ",
                              open_loops_.back()->label, ")"),
                       Peek().location};
        }
        return std::move(program_);
      }
      if (auto err = ParseStatement()) {
        return *err;
      }
    }
  }

 private:
  using MaybeError = std::optional<Error>;

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Error ErrorHere(std::string message) const { return Error{std::move(message), Peek().location}; }

  MaybeError Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return ErrorHere(StrCat("expected ", TokenKindName(kind), ", found ", Peek().ToString()));
    }
    Take();
    return std::nullopt;
  }

  MaybeError ExpectNewline() {
    if (Peek().kind == TokenKind::kEof) {
      return std::nullopt;
    }
    return Expect(TokenKind::kNewline);
  }

  // Appends a finished statement to the innermost open loop, or the program.
  void Emit(StmtPtr stmt) {
    if (open_loops_.empty()) {
      program_.body.push_back(std::move(stmt));
    } else {
      open_loops_.back()->body.push_back(std::move(stmt));
    }
  }

  MaybeError ParseStatement() {
    // Optional statement label.
    int64_t label = -1;
    if (Peek().kind == TokenKind::kInteger) {
      label = Take().int_value;
    }

    switch (Peek().kind) {
      case TokenKind::kKwDimension:
        if (label != -1) {
          return ErrorHere("DIMENSION statement cannot carry a label");
        }
        return ParseDimension(/*allow_scalars=*/false);
      case TokenKind::kKwReal:
      case TokenKind::kKwInteger:
        // Type declarations act as DIMENSION for dimensioned items; bare
        // scalar names are accepted and ignored (scalars are permanently
        // resident, §2).
        if (label != -1) {
          return ErrorHere("type declaration cannot carry a label");
        }
        return ParseDimension(/*allow_scalars=*/true);
      case TokenKind::kKwParameter:
        if (label != -1) {
          return ErrorHere("PARAMETER statement cannot carry a label");
        }
        return ParseParameter();
      case TokenKind::kKwDo:
        return ParseDo();
      case TokenKind::kKwContinue:
        return ParseContinue(label);
      case TokenKind::kIdentifier:
        return ParseAssign();
      default:
        return ErrorHere(StrCat("unexpected ", Peek().ToString(), " at statement start"));
    }
  }

  MaybeError ParseDimension(bool allow_scalars) {
    Take();  // DIMENSION / REAL / INTEGER
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected array name in DIMENSION");
      }
      ArrayDecl decl;
      decl.location = Peek().location;
      decl.name = Take().text;
      if (allow_scalars && Peek().kind != TokenKind::kLParen) {
        // A scalar item in a type declaration: record nothing.
        if (Peek().kind != TokenKind::kComma) {
          break;
        }
        Take();
        continue;
      }
      if (auto err = Expect(TokenKind::kLParen)) {
        return err;
      }
      if (auto err = ParseDimExtent(&decl.rows, &decl.rows_spelling)) {
        return err;
      }
      if (Peek().kind == TokenKind::kComma) {
        Take();
        if (auto err = ParseDimExtent(&decl.cols, &decl.cols_spelling)) {
          return err;
        }
      } else {
        decl.cols = 1;
        decl.cols_spelling.clear();
      }
      if (auto err = Expect(TokenKind::kRParen)) {
        return err;
      }
      if (decl.rows <= 0 || decl.cols <= 0) {
        return Error{StrCat("array ", decl.name, " has non-positive extent"), decl.location};
      }
      program_.arrays.push_back(std::move(decl));
      if (Peek().kind != TokenKind::kComma) {
        break;
      }
      Take();
    }
    return ExpectNewline();
  }

  MaybeError ParseDimExtent(int64_t* value, std::string* spelling) {
    if (Peek().kind == TokenKind::kInteger) {
      *value = Peek().int_value;
      *spelling = Peek().text;
      Take();
      return std::nullopt;
    }
    if (Peek().kind == TokenKind::kIdentifier) {
      auto it = program_.parameters.find(Peek().text);
      if (it == program_.parameters.end()) {
        return ErrorHere(StrCat("unknown PARAMETER '", Peek().text, "' in DIMENSION"));
      }
      *value = it->second;
      *spelling = Peek().text;
      Take();
      return std::nullopt;
    }
    return ErrorHere("expected integer or PARAMETER name as array extent");
  }

  MaybeError ParseParameter() {
    Take();  // PARAMETER
    if (auto err = Expect(TokenKind::kLParen)) {
      return err;
    }
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected constant name in PARAMETER");
      }
      SourceLocation loc = Peek().location;
      std::string name = Take().text;
      if (auto err = Expect(TokenKind::kAssign)) {
        return err;
      }
      bool negative = false;
      if (Peek().kind == TokenKind::kMinus) {
        Take();
        negative = true;
      }
      if (Peek().kind != TokenKind::kInteger) {
        return ErrorHere("expected integer value in PARAMETER");
      }
      int64_t value = Take().int_value;
      if (negative) {
        value = -value;
      }
      if (!program_.parameters.emplace(name, value).second) {
        return Error{StrCat("duplicate PARAMETER '", name, "'"), loc};
      }
      program_.parameter_locations.emplace(name, loc);
      if (Peek().kind != TokenKind::kComma) {
        break;
      }
      Take();
    }
    if (auto err = Expect(TokenKind::kRParen)) {
      return err;
    }
    return ExpectNewline();
  }

  MaybeError ParseLoopBound(LoopBound* bound) {
    bound->location = Peek().location;
    bool negative = false;
    if (Peek().kind == TokenKind::kMinus) {
      Take();
      negative = true;
    }
    if (Peek().kind == TokenKind::kInteger) {
      bound->kind = LoopBound::Kind::kConstant;
      bound->value = negative ? -Peek().int_value : Peek().int_value;
      bound->spelling = negative ? StrCat("-", Peek().text) : Peek().text;
      Take();
      return std::nullopt;
    }
    if (!negative && Peek().kind == TokenKind::kIdentifier) {
      auto it = program_.parameters.find(Peek().text);
      if (it != program_.parameters.end()) {
        bound->kind = LoopBound::Kind::kParameter;
        bound->value = it->second;
      } else {
        // An enclosing loop's variable (triangular loop); validated by sema.
        bound->kind = LoopBound::Kind::kVariable;
        bound->value = 0;
      }
      bound->spelling = Peek().text;
      Take();
      return std::nullopt;
    }
    return ErrorHere("expected integer, PARAMETER, or loop variable as loop bound");
  }

  MaybeError ParseDo() {
    SourceLocation loc = Peek().location;
    Take();  // DO
    if (Peek().kind != TokenKind::kInteger) {
      return ErrorHere("expected statement label after DO");
    }
    int64_t label = Take().int_value;
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected loop variable after DO label");
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kDoLoop;
    stmt->location = loc;
    stmt->label = label;
    stmt->loop_id = ++program_.loop_count;
    stmt->loop_var_location = Peek().location;
    stmt->loop_var = Take().text;
    if (auto err = Expect(TokenKind::kAssign)) {
      return err;
    }
    if (auto err = ParseLoopBound(&stmt->lower)) {
      return err;
    }
    if (auto err = Expect(TokenKind::kComma)) {
      return err;
    }
    if (auto err = ParseLoopBound(&stmt->upper)) {
      return err;
    }
    stmt->step = 1;
    if (Peek().kind == TokenKind::kComma) {
      Take();
      LoopBound step;
      if (auto err = ParseLoopBound(&step)) {
        return err;
      }
      if (step.value == 0) {
        return Error{"loop step cannot be zero", loc};
      }
      stmt->step = step.value;
    }
    if (auto err = ExpectNewline()) {
      return err;
    }
    Stmt* raw = stmt.get();
    Emit(std::move(stmt));
    open_loops_.push_back(raw);
    return std::nullopt;
  }

  MaybeError ParseContinue(int64_t label) {
    SourceLocation loc = Peek().location;
    Take();  // CONTINUE
    if (label == -1) {
      // Unlabelled CONTINUE is a no-op statement; accept and discard.
      return ExpectNewline();
    }
    if (open_loops_.empty()) {
      return Error{StrCat("CONTINUE with label ", label, " outside any DO loop"), loc};
    }
    if (open_loops_.back()->label != label) {
      return Error{StrCat("CONTINUE label ", label, " does not terminate the innermost DO (label ",
                          open_loops_.back()->label, ")"),
                   loc};
    }
    // FORTRAN closes every open loop sharing this terminal label.
    while (!open_loops_.empty() && open_loops_.back()->label == label) {
      open_loops_.pop_back();
    }
    return ExpectNewline();
  }

  MaybeError ParseAssign() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kAssign;
    stmt->location = Peek().location;
    std::string name = Take().text;
    if (Peek().kind == TokenKind::kLParen) {
      ArrayRef ref;
      ref.name = name;
      ref.location = stmt->location;
      if (auto err = ParseSubscripts(&ref)) {
        return err;
      }
      stmt->lhs_array = std::move(ref);
    } else {
      stmt->lhs_scalar = name;
    }
    if (auto err = Expect(TokenKind::kAssign)) {
      return err;
    }
    auto rhs = ParseExpr();
    if (!rhs.ok()) {
      return rhs.error();
    }
    stmt->rhs = std::move(rhs).value();
    if (auto err = ExpectNewline()) {
      return err;
    }
    Emit(std::move(stmt));
    return std::nullopt;
  }

  MaybeError ParseSubscripts(ArrayRef* ref) {
    if (auto err = Expect(TokenKind::kLParen)) {
      return err;
    }
    while (true) {
      auto ix = ParseIndexExpr();
      if (!ix.ok()) {
        return ix.error();
      }
      ref->indices.push_back(std::move(ix).value());
      if (Peek().kind != TokenKind::kComma) {
        break;
      }
      Take();
    }
    if (ref->indices.size() > 2) {
      return Error{StrCat("array ", ref->name, " referenced with ", ref->indices.size(),
                          " subscripts; only 1- and 2-dimensional arrays are supported"),
                   ref->location};
    }
    return Expect(TokenKind::kRParen);
  }

  // index := IDENT [ (+|-) INT ] | INT
  Result<IndexExpr> ParseIndexExpr() {
    IndexExpr ix;
    ix.location = Peek().location;
    if (Peek().kind == TokenKind::kInteger) {
      ix.offset = Take().int_value;
      return ix;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected index variable or constant subscript");
    }
    ix.var = Take().text;
    if (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      bool negative = Take().kind == TokenKind::kMinus;
      if (Peek().kind != TokenKind::kInteger) {
        return ErrorHere("expected integer offset in subscript");
      }
      int64_t off = Take().int_value;
      ix.offset = negative ? -off : off;
    }
    return ix;
  }

  // expr := term (('+'|'-') term)*
  Result<ExprPtr> ParseExpr() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) {
      return lhs.error();
    }
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      char op = Take().kind == TokenKind::kPlus ? '+' : '-';
      auto rhs = ParseTerm();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kBinary;
      bin->op = op;
      bin->location = node->location;
      bin->lhs = std::move(node);
      bin->rhs = std::move(rhs).value();
      node = std::move(bin);
    }
    return node;
  }

  // term := factor (('*'|'/') factor)*
  Result<ExprPtr> ParseTerm() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) {
      return lhs.error();
    }
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kStar || Peek().kind == TokenKind::kSlash) {
      char op = Take().kind == TokenKind::kStar ? '*' : '/';
      auto rhs = ParseFactor();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kBinary;
      bin->op = op;
      bin->location = node->location;
      bin->lhs = std::move(node);
      bin->rhs = std::move(rhs).value();
      node = std::move(bin);
    }
    return node;
  }

  // factor := NUMBER | IDENT | IDENT '(' subscripts ')' | '(' expr ')' | '-' factor
  Result<ExprPtr> ParseFactor() {
    SourceLocation loc = Peek().location;
    if (Peek().kind == TokenKind::kMinus) {
      Take();
      auto inner = ParseFactor();
      if (!inner.ok()) {
        return inner.error();
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNegate;
      node->location = loc;
      node->lhs = std::move(inner).value();
      return node;
    }
    if (Peek().kind == TokenKind::kInteger || Peek().kind == TokenKind::kReal) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->location = loc;
      node->number = Peek().kind == TokenKind::kInteger ? static_cast<double>(Peek().int_value)
                                                        : std::stod(Peek().text);
      Take();
      return node;
    }
    if (Peek().kind == TokenKind::kLParen) {
      Take();
      auto inner = ParseExpr();
      if (!inner.ok()) {
        return inner.error();
      }
      if (auto err = Expect(TokenKind::kRParen)) {
        return *err;
      }
      return std::move(inner).value();
    }
    if (Peek().kind == TokenKind::kIdentifier) {
      std::string name = Take().text;
      auto node = std::make_unique<Expr>();
      node->location = loc;
      if (Peek().kind == TokenKind::kLParen) {
        node->kind = Expr::Kind::kArrayElement;
        node->array.name = name;
        node->array.location = loc;
        if (auto err = ParseSubscripts(&node->array)) {
          return *err;
        }
      } else {
        node->kind = Expr::Kind::kScalar;
        node->scalar = name;
      }
      return node;
    }
    return ErrorHere(StrCat("expected expression, found ", Peek().ToString()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program program_;
  std::vector<Stmt*> open_loops_;
};

}  // namespace

Result<Program> Parse(std::string_view source) {
  auto tokens = Lex(source);
  if (!tokens.ok()) {
    return tokens.error();
  }
  return Parser(std::move(tokens).value()).Run();
}

}  // namespace cdmm
