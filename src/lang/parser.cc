#include "src/lang/parser.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/lang/lexer.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

// A parsed SUBROUTINE unit, kept only until its CALL sites are inlined.
// Arrays in a subroutine must all be formal parameters; scalars may be
// formals (value parameters, substituted with constants at inline time) or
// locals (renamed to fresh caller-unique names).
struct SubUnit {
  std::string name;
  SourceLocation location;
  std::vector<std::string> formals;
  std::map<std::string, int64_t> parameters;  // local PARAMETERs
  std::vector<ArrayDecl> arrays;              // formal arrays only
  std::vector<StmtPtr> body;
};

// Per-CALL-site substitution built while cloning a subroutine body.
struct InlineCtx {
  std::map<std::string, int64_t> const_subst;     // formal/local PARAMETER -> value
  std::map<std::string, std::string> name_subst;  // formal array / renamed local -> new name
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    // Header: PROGRAM <name>.
    if (auto err = Expect(TokenKind::kKwProgram)) {
      return *err;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected program name after PROGRAM");
    }
    program_.name = Take().text;
    if (auto err = ExpectNewline()) {
      return *err;
    }

    if (auto err = ParseUnitBody()) {
      return *err;
    }

    // Trailing SUBROUTINE units.
    while (true) {
      while (Peek().kind == TokenKind::kNewline) {
        Take();
      }
      if (Peek().kind == TokenKind::kEof) {
        break;
      }
      if (Peek().kind != TokenKind::kKwSubroutine) {
        return ErrorHere(
            StrCat("expected SUBROUTINE after main program END, found ", Peek().ToString()));
      }
      if (auto err = ParseSubroutine()) {
        return *err;
      }
    }

    if (auto err = InlineAllCalls()) {
      return *err;
    }
    RenumberLoops();
    return std::move(program_);
  }

 private:
  using MaybeError = std::optional<Error>;

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Error ErrorHere(std::string message) const { return Error{std::move(message), Peek().location}; }

  MaybeError Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return ErrorHere(StrCat("expected ", TokenKindName(kind), ", found ", Peek().ToString()));
    }
    Take();
    return std::nullopt;
  }

  MaybeError ExpectNewline() {
    if (Peek().kind == TokenKind::kEof) {
      return std::nullopt;
    }
    return Expect(TokenKind::kNewline);
  }

  // Appends a finished statement to the innermost open loop, or the unit.
  void Emit(StmtPtr stmt) {
    if (open_loops_.empty()) {
      body_->push_back(std::move(stmt));
    } else {
      open_loops_.back()->body.push_back(std::move(stmt));
    }
  }

  // Statements of one unit (main program or subroutine), up to and including
  // its END card.
  MaybeError ParseUnitBody() {
    while (true) {
      while (Peek().kind == TokenKind::kNewline) {
        Take();
      }
      if (Peek().kind == TokenKind::kEof) {
        return ErrorHere("missing END statement");
      }
      if (Peek().kind == TokenKind::kKwEnd) {
        if (!open_loops_.empty()) {
          return Error{StrCat("END reached with unterminated DO loop (label ",
                              open_loops_.back()->label, ")"),
                       Peek().location};
        }
        if (pending_independent_) {
          return Error{"!$CDMM INDEPENDENT must immediately precede a DO statement",
                       pending_independent_loc_};
        }
        Take();
        return std::nullopt;
      }
      if (auto err = ParseStatement()) {
        return *err;
      }
    }
  }

  MaybeError ParseStatement() {
    // Optional statement label.
    int64_t label = -1;
    if (Peek().kind == TokenKind::kInteger) {
      label = Take().int_value;
    }

    if (pending_independent_ && Peek().kind != TokenKind::kKwDo &&
        Peek().kind != TokenKind::kDirective) {
      return Error{"!$CDMM INDEPENDENT must immediately precede a DO statement",
                   pending_independent_loc_};
    }

    switch (Peek().kind) {
      case TokenKind::kKwDimension:
        if (label != -1) {
          return ErrorHere("DIMENSION statement cannot carry a label");
        }
        return ParseDimension(/*allow_scalars=*/false, /*is_integer=*/false);
      case TokenKind::kKwReal:
      case TokenKind::kKwInteger:
        // Type declarations act as DIMENSION for dimensioned items; bare
        // scalar names are accepted and ignored (scalars are permanently
        // resident, §2). INTEGER arrays are integer-valued and may be used in
        // indirect subscripts.
        if (label != -1) {
          return ErrorHere("type declaration cannot carry a label");
        }
        return ParseDimension(/*allow_scalars=*/true,
                              /*is_integer=*/Peek().kind == TokenKind::kKwInteger);
      case TokenKind::kKwParameter:
        if (label != -1) {
          return ErrorHere("PARAMETER statement cannot carry a label");
        }
        return ParseParameter();
      case TokenKind::kKwDo:
        return ParseDo();
      case TokenKind::kKwContinue:
        return ParseContinue(label);
      case TokenKind::kKwIf:
        return ParseIf();
      case TokenKind::kKwCall:
        return ParseCall();
      case TokenKind::kDirective:
        if (label != -1) {
          return ErrorHere("!$CDMM directive cannot carry a label");
        }
        return ParseDirective();
      case TokenKind::kKwSubroutine:
        return ErrorHere("SUBROUTINE must appear after the main program's END");
      case TokenKind::kIdentifier:
        return ParseAssign();
      default:
        return ErrorHere(StrCat("unexpected ", Peek().ToString(), " at statement start"));
    }
  }

  MaybeError ParseDirective() {
    SourceLocation loc = Peek().location;
    std::string word = Take().text;
    if (word != "INDEPENDENT") {
      return Error{StrCat("unknown !$CDMM directive '", word, "'"), loc};
    }
    if (pending_independent_) {
      return Error{"duplicate !$CDMM INDEPENDENT", loc};
    }
    pending_independent_ = true;
    pending_independent_loc_ = loc;
    return ExpectNewline();
  }

  MaybeError ParseDimension(bool allow_scalars, bool is_integer) {
    Take();  // DIMENSION / REAL / INTEGER
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected array name in DIMENSION");
      }
      ArrayDecl decl;
      decl.location = Peek().location;
      decl.name = Take().text;
      decl.is_integer = is_integer;
      if (allow_scalars && Peek().kind != TokenKind::kLParen) {
        // A scalar item in a type declaration: record nothing.
        if (Peek().kind != TokenKind::kComma) {
          break;
        }
        Take();
        continue;
      }
      if (auto err = Expect(TokenKind::kLParen)) {
        return err;
      }
      if (auto err = ParseDimExtent(&decl.rows, &decl.rows_spelling)) {
        return err;
      }
      if (Peek().kind == TokenKind::kComma) {
        Take();
        if (auto err = ParseDimExtent(&decl.cols, &decl.cols_spelling)) {
          return err;
        }
      } else {
        decl.cols = 1;
        decl.cols_spelling.clear();
      }
      if (auto err = Expect(TokenKind::kRParen)) {
        return err;
      }
      if (in_subroutine_ &&
          std::find(formals_->begin(), formals_->end(), decl.name) == formals_->end()) {
        return Error{StrCat("subroutine array ", decl.name, " must be a formal parameter"),
                     decl.location};
      }
      // Extents resolved to the kFormalExtent sentinel are checked after
      // substitution at each inline site.
      if ((decl.rows <= 0 && decl.rows != kFormalExtent) ||
          (decl.cols <= 0 && decl.cols != kFormalExtent)) {
        return Error{StrCat("array ", decl.name, " has non-positive extent"), decl.location};
      }
      arrays_->push_back(std::move(decl));
      if (Peek().kind != TokenKind::kComma) {
        break;
      }
      Take();
    }
    return ExpectNewline();
  }

  MaybeError ParseDimExtent(int64_t* value, std::string* spelling) {
    if (Peek().kind == TokenKind::kInteger) {
      *value = Peek().int_value;
      *spelling = Peek().text;
      Take();
      return std::nullopt;
    }
    if (Peek().kind == TokenKind::kIdentifier) {
      auto it = params_->find(Peek().text);
      if (it != params_->end()) {
        *value = it->second;
        *spelling = Peek().text;
        Take();
        return std::nullopt;
      }
      if (in_subroutine_ &&
          std::find(formals_->begin(), formals_->end(), Peek().text) != formals_->end()) {
        // A formal scalar used as an extent; resolved at inline time.
        *value = kFormalExtent;
        *spelling = Peek().text;
        Take();
        return std::nullopt;
      }
      return ErrorHere(StrCat("unknown PARAMETER '", Peek().text, "' in DIMENSION"));
    }
    return ErrorHere("expected integer or PARAMETER name as array extent");
  }

  MaybeError ParseParameter() {
    Take();  // PARAMETER
    if (auto err = Expect(TokenKind::kLParen)) {
      return err;
    }
    while (true) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected constant name in PARAMETER");
      }
      SourceLocation loc = Peek().location;
      std::string name = Take().text;
      if (in_subroutine_ &&
          std::find(formals_->begin(), formals_->end(), name) != formals_->end()) {
        return Error{StrCat("PARAMETER '", name, "' shadows a formal parameter"), loc};
      }
      if (auto err = Expect(TokenKind::kAssign)) {
        return err;
      }
      bool negative = false;
      if (Peek().kind == TokenKind::kMinus) {
        Take();
        negative = true;
      }
      if (Peek().kind != TokenKind::kInteger) {
        return ErrorHere("expected integer value in PARAMETER");
      }
      int64_t value = Take().int_value;
      if (negative) {
        value = -value;
      }
      if (!params_->emplace(name, value).second) {
        return Error{StrCat("duplicate PARAMETER '", name, "'"), loc};
      }
      if (!in_subroutine_) {
        program_.parameter_locations.emplace(name, loc);
      }
      if (Peek().kind != TokenKind::kComma) {
        break;
      }
      Take();
    }
    if (auto err = Expect(TokenKind::kRParen)) {
      return err;
    }
    return ExpectNewline();
  }

  MaybeError ParseLoopBound(LoopBound* bound) {
    bound->location = Peek().location;
    bool negative = false;
    if (Peek().kind == TokenKind::kMinus) {
      Take();
      negative = true;
    }
    if (Peek().kind == TokenKind::kInteger) {
      bound->kind = LoopBound::Kind::kConstant;
      bound->value = negative ? -Peek().int_value : Peek().int_value;
      bound->spelling = negative ? StrCat("-", Peek().text) : Peek().text;
      Take();
      return std::nullopt;
    }
    if (!negative && Peek().kind == TokenKind::kIdentifier) {
      auto it = params_->find(Peek().text);
      if (it != params_->end()) {
        bound->kind = LoopBound::Kind::kParameter;
        bound->value = it->second;
      } else {
        // An enclosing loop's variable (triangular loop) or, in a
        // subroutine, a formal scalar; validated by sema / inline.
        bound->kind = LoopBound::Kind::kVariable;
        bound->value = 0;
      }
      bound->spelling = Peek().text;
      Take();
      return std::nullopt;
    }
    return ErrorHere("expected integer, PARAMETER, or loop variable as loop bound");
  }

  MaybeError ParseDo() {
    SourceLocation loc = Peek().location;
    Take();  // DO
    if (Peek().kind != TokenKind::kInteger) {
      return ErrorHere("expected statement label after DO");
    }
    int64_t label = Take().int_value;
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected loop variable after DO label");
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kDoLoop;
    stmt->location = loc;
    stmt->label = label;
    stmt->loop_id = ++program_.loop_count;
    stmt->marked_independent = pending_independent_;
    pending_independent_ = false;
    stmt->loop_var_location = Peek().location;
    stmt->loop_var = Take().text;
    if (auto err = Expect(TokenKind::kAssign)) {
      return err;
    }
    if (auto err = ParseLoopBound(&stmt->lower)) {
      return err;
    }
    if (auto err = Expect(TokenKind::kComma)) {
      return err;
    }
    if (auto err = ParseLoopBound(&stmt->upper)) {
      return err;
    }
    stmt->step = 1;
    if (Peek().kind == TokenKind::kComma) {
      Take();
      LoopBound step;
      if (auto err = ParseLoopBound(&step)) {
        return err;
      }
      if (step.value == 0) {
        return Error{"loop step cannot be zero", loc};
      }
      stmt->step = step.value;
    }
    if (auto err = ExpectNewline()) {
      return err;
    }
    Stmt* raw = stmt.get();
    Emit(std::move(stmt));
    open_loops_.push_back(raw);
    return std::nullopt;
  }

  MaybeError ParseContinue(int64_t label) {
    SourceLocation loc = Peek().location;
    Take();  // CONTINUE
    if (label == -1) {
      // Unlabelled CONTINUE is a no-op statement; accept and discard.
      return ExpectNewline();
    }
    if (open_loops_.empty()) {
      return Error{StrCat("CONTINUE with label ", label, " outside any DO loop"), loc};
    }
    if (open_loops_.back()->label != label) {
      return Error{StrCat("CONTINUE label ", label, " does not terminate the innermost DO (label ",
                          open_loops_.back()->label, ")"),
                   loc};
    }
    // FORTRAN closes every open loop sharing this terminal label.
    while (!open_loops_.empty() && open_loops_.back()->label == label) {
      open_loops_.pop_back();
    }
    return ExpectNewline();
  }

  // `IDENT[(subscripts)] = expr`, shared by plain assignments and logical IF.
  Result<StmtPtr> ParseAssignCore() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kAssign;
    stmt->location = Peek().location;
    std::string name = Take().text;
    if (Peek().kind == TokenKind::kLParen) {
      ArrayRef ref;
      ref.name = name;
      ref.location = stmt->location;
      if (auto err = ParseSubscripts(&ref)) {
        return *err;
      }
      stmt->lhs_array = std::move(ref);
    } else {
      stmt->lhs_scalar = name;
    }
    if (auto err = Expect(TokenKind::kAssign)) {
      return *err;
    }
    auto rhs = ParseExpr();
    if (!rhs.ok()) {
      return rhs.error();
    }
    stmt->rhs = std::move(rhs).value();
    return stmt;
  }

  MaybeError ParseAssign() {
    auto stmt = ParseAssignCore();
    if (!stmt.ok()) {
      return stmt.error();
    }
    if (auto err = ExpectNewline()) {
      return err;
    }
    Emit(std::move(stmt).value());
    return std::nullopt;
  }

  // `IF (cond) assignment` — the one-armed logical IF.
  MaybeError ParseIf() {
    SourceLocation loc = Peek().location;
    Take();  // IF
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->location = loc;
    if (auto err = Expect(TokenKind::kLParen)) {
      return err;
    }
    auto cond = ParseCond();
    if (!cond.ok()) {
      return cond.error();
    }
    stmt->if_cond = std::move(cond).value();
    if (auto err = Expect(TokenKind::kRParen)) {
      return err;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected assignment after IF condition");
    }
    auto then = ParseAssignCore();
    if (!then.ok()) {
      return then.error();
    }
    stmt->if_then = std::move(then).value();
    if (auto err = ExpectNewline()) {
      return err;
    }
    Emit(std::move(stmt));
    return std::nullopt;
  }

  // cond := conj (.OR. conj)* ; conj := rel (.AND. rel)* ;
  // rel := expr RELOP expr. No parenthesised conditions: the grammar prints
  // and re-parses without them because .OR. binds loosest.
  Result<ExprPtr> ParseCond() {
    auto lhs = ParseCondConj();
    if (!lhs.ok()) {
      return lhs.error();
    }
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kDotOp && Peek().text == "OR") {
      SourceLocation loc = Take().location;
      auto rhs = ParseCondConj();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kOr;
      bin->location = loc;
      bin->lhs = std::move(node);
      bin->rhs = std::move(rhs).value();
      node = std::move(bin);
    }
    return node;
  }

  Result<ExprPtr> ParseCondConj() {
    auto lhs = ParseRel();
    if (!lhs.ok()) {
      return lhs.error();
    }
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kDotOp && Peek().text == "AND") {
      SourceLocation loc = Take().location;
      auto rhs = ParseRel();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kAnd;
      bin->location = loc;
      bin->lhs = std::move(node);
      bin->rhs = std::move(rhs).value();
      node = std::move(bin);
    }
    return node;
  }

  Result<ExprPtr> ParseRel() {
    auto lhs = ParseExpr();
    if (!lhs.ok()) {
      return lhs.error();
    }
    if (Peek().kind != TokenKind::kDotOp) {
      return ErrorHere("expected relational operator (.GT./.GE./.LT./.LE./.EQ./.NE.)");
    }
    const std::string& name = Peek().text;
    RelOp rel;
    if (name == "GT") {
      rel = RelOp::kGt;
    } else if (name == "GE") {
      rel = RelOp::kGe;
    } else if (name == "LT") {
      rel = RelOp::kLt;
    } else if (name == "LE") {
      rel = RelOp::kLe;
    } else if (name == "EQ") {
      rel = RelOp::kEq;
    } else if (name == "NE") {
      rel = RelOp::kNe;
    } else {
      return ErrorHere(StrCat("unsupported operator .", name, ". in IF condition"));
    }
    SourceLocation loc = Take().location;
    auto rhs = ParseExpr();
    if (!rhs.ok()) {
      return rhs.error();
    }
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    node->rel = rel;
    node->location = loc;
    node->lhs = std::move(lhs).value();
    node->rhs = std::move(rhs).value();
    return node;
  }

  // `CALL name(arg, ...)` — args are integer literals or identifiers
  // (arrays / PARAMETERs); resolved and inlined after all units parse.
  MaybeError ParseCall() {
    SourceLocation loc = Peek().location;
    Take();  // CALL
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected subroutine name after CALL");
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kCall;
    stmt->location = loc;
    stmt->call_name = Take().text;
    if (auto err = Expect(TokenKind::kLParen)) {
      return err;
    }
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        CallArg arg;
        arg.location = Peek().location;
        if (Peek().kind == TokenKind::kInteger) {
          arg.is_literal = true;
          arg.value = Peek().int_value;
          arg.spelling = Take().text;
        } else if (Peek().kind == TokenKind::kIdentifier) {
          arg.spelling = Take().text;
        } else {
          return ErrorHere("expected integer literal or identifier as CALL argument");
        }
        stmt->call_args.push_back(std::move(arg));
        if (Peek().kind != TokenKind::kComma) {
          break;
        }
        Take();
      }
    }
    if (auto err = Expect(TokenKind::kRParen)) {
      return err;
    }
    if (auto err = ExpectNewline()) {
      return err;
    }
    Emit(std::move(stmt));
    return std::nullopt;
  }

  MaybeError ParseSubscripts(ArrayRef* ref) {
    if (auto err = Expect(TokenKind::kLParen)) {
      return err;
    }
    while (true) {
      auto ix = ParseIndexExpr();
      if (!ix.ok()) {
        return ix.error();
      }
      ref->indices.push_back(std::move(ix).value());
      if (Peek().kind != TokenKind::kComma) {
        break;
      }
      Take();
    }
    if (ref->indices.size() > 2) {
      return Error{StrCat("array ", ref->name, " referenced with ", ref->indices.size(),
                          " subscripts; only 1- and 2-dimensional arrays are supported"),
                   ref->location};
    }
    return Expect(TokenKind::kRParen);
  }

  // index := IDENT [ (+|-) INT ] | IDENT '(' subscripts ')' [ (+|-) INT ] | INT
  Result<IndexExpr> ParseIndexExpr() {
    IndexExpr ix;
    ix.location = Peek().location;
    if (Peek().kind == TokenKind::kInteger) {
      ix.offset = Take().int_value;
      return ix;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected index variable or constant subscript");
    }
    if (Peek(1).kind == TokenKind::kLParen) {
      // Indirect subscript: the value of an INTEGER array element.
      ArrayRef inner;
      inner.location = Peek().location;
      inner.name = Take().text;
      if (auto err = ParseSubscripts(&inner)) {
        return *err;
      }
      ix.indirect = std::make_shared<ArrayRef>(std::move(inner));
    } else {
      ix.var = Take().text;
    }
    if (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      bool negative = Take().kind == TokenKind::kMinus;
      if (Peek().kind != TokenKind::kInteger) {
        return ErrorHere("expected integer offset in subscript");
      }
      int64_t off = Take().int_value;
      ix.offset = negative ? -off : off;
    }
    return ix;
  }

  // expr := term (('+'|'-') term)*
  Result<ExprPtr> ParseExpr() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) {
      return lhs.error();
    }
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      char op = Take().kind == TokenKind::kPlus ? '+' : '-';
      auto rhs = ParseTerm();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kBinary;
      bin->op = op;
      bin->location = node->location;
      bin->lhs = std::move(node);
      bin->rhs = std::move(rhs).value();
      node = std::move(bin);
    }
    return node;
  }

  // term := factor (('*'|'/') factor)*
  Result<ExprPtr> ParseTerm() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) {
      return lhs.error();
    }
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == TokenKind::kStar || Peek().kind == TokenKind::kSlash) {
      char op = Take().kind == TokenKind::kStar ? '*' : '/';
      auto rhs = ParseFactor();
      if (!rhs.ok()) {
        return rhs.error();
      }
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kBinary;
      bin->op = op;
      bin->location = node->location;
      bin->lhs = std::move(node);
      bin->rhs = std::move(rhs).value();
      node = std::move(bin);
    }
    return node;
  }

  // factor := NUMBER | IDENT | IDENT '(' subscripts ')' | MOD '(' e ',' e ')'
  //         | '(' expr ')' | '-' factor
  Result<ExprPtr> ParseFactor() {
    SourceLocation loc = Peek().location;
    if (Peek().kind == TokenKind::kMinus) {
      Take();
      auto inner = ParseFactor();
      if (!inner.ok()) {
        return inner.error();
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNegate;
      node->location = loc;
      node->lhs = std::move(inner).value();
      return node;
    }
    if (Peek().kind == TokenKind::kInteger || Peek().kind == TokenKind::kReal) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->location = loc;
      node->number = Peek().kind == TokenKind::kInteger ? static_cast<double>(Peek().int_value)
                                                        : std::stod(Peek().text);
      Take();
      return node;
    }
    if (Peek().kind == TokenKind::kLParen) {
      Take();
      auto inner = ParseExpr();
      if (!inner.ok()) {
        return inner.error();
      }
      if (auto err = Expect(TokenKind::kRParen)) {
        return *err;
      }
      return std::move(inner).value();
    }
    if (Peek().kind == TokenKind::kIdentifier) {
      std::string name = Take().text;
      if (name == "MOD" && Peek().kind == TokenKind::kLParen) {
        // MOD intrinsic, stored as a kBinary with op '%'.
        Take();
        auto a = ParseExpr();
        if (!a.ok()) {
          return a.error();
        }
        if (auto err = Expect(TokenKind::kComma)) {
          return *err;
        }
        auto b = ParseExpr();
        if (!b.ok()) {
          return b.error();
        }
        if (auto err = Expect(TokenKind::kRParen)) {
          return *err;
        }
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kBinary;
        node->op = '%';
        node->location = loc;
        node->lhs = std::move(a).value();
        node->rhs = std::move(b).value();
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->location = loc;
      if (Peek().kind == TokenKind::kLParen) {
        node->kind = Expr::Kind::kArrayElement;
        node->array.name = name;
        node->array.location = loc;
        if (auto err = ParseSubscripts(&node->array)) {
          return *err;
        }
      } else {
        node->kind = Expr::Kind::kScalar;
        node->scalar = name;
      }
      return node;
    }
    return ErrorHere(StrCat("expected expression, found ", Peek().ToString()));
  }

  // ---- SUBROUTINE units and CALL inlining -------------------------------

  MaybeError ParseSubroutine() {
    SourceLocation loc = Peek().location;
    Take();  // SUBROUTINE
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected subroutine name after SUBROUTINE");
    }
    SubUnit sub;
    sub.location = loc;
    sub.name = Take().text;
    if (subs_.count(sub.name) != 0 || sub.name == program_.name) {
      return Error{StrCat("duplicate program unit name '", sub.name, "'"), loc};
    }
    if (auto err = Expect(TokenKind::kLParen)) {
      return err;
    }
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return ErrorHere("expected formal parameter name");
        }
        std::string formal = Take().text;
        if (std::find(sub.formals.begin(), sub.formals.end(), formal) != sub.formals.end()) {
          return ErrorHere(StrCat("duplicate formal parameter '", formal, "'"));
        }
        sub.formals.push_back(std::move(formal));
        if (Peek().kind != TokenKind::kComma) {
          break;
        }
        Take();
      }
    }
    if (auto err = Expect(TokenKind::kRParen)) {
      return err;
    }
    if (auto err = ExpectNewline()) {
      return err;
    }

    // Retarget the statement parsers at this unit.
    in_subroutine_ = true;
    params_ = &sub.parameters;
    arrays_ = &sub.arrays;
    body_ = &sub.body;
    formals_ = &sub.formals;
    auto err = ParseUnitBody();
    in_subroutine_ = false;
    params_ = &program_.parameters;
    arrays_ = &program_.arrays;
    body_ = &program_.body;
    formals_ = nullptr;
    if (err) {
      return err;
    }
    std::string name = sub.name;
    subs_.emplace(std::move(name), std::move(sub));
    return std::nullopt;
  }

  // Registers every name visible in the main program so inline-generated
  // names never capture or collide; also finds the highest statement label.
  void CollectNamesAndLabels() {
    used_names_.insert(program_.name);
    for (const auto& [n, v] : program_.parameters) {
      (void)v;
      used_names_.insert(n);
    }
    for (const ArrayDecl& a : program_.arrays) {
      used_names_.insert(a.name);
    }
    int64_t max_label = 0;
    auto note_expr = [&](const Expr& e, auto&& self) -> void {
      if (e.kind == Expr::Kind::kScalar) {
        used_names_.insert(e.scalar);
      }
      if (e.lhs != nullptr) {
        self(*e.lhs, self);
      }
      if (e.rhs != nullptr) {
        self(*e.rhs, self);
      }
    };
    auto note_stmt = [&](const Stmt& s, auto&& self) -> void {
      if (s.kind == Stmt::Kind::kDoLoop) {
        used_names_.insert(s.loop_var);
        max_label = std::max(max_label, s.label);
        for (const StmtPtr& c : s.body) {
          self(*c, self);
        }
        return;
      }
      if (s.kind == Stmt::Kind::kIf) {
        note_expr(*s.if_cond, note_expr);
        self(*s.if_then, self);
        return;
      }
      if (s.kind == Stmt::Kind::kCall) {
        for (const CallArg& a : s.call_args) {
          if (!a.is_literal) {
            used_names_.insert(a.spelling);
          }
        }
        return;
      }
      if (!s.lhs_scalar.empty()) {
        used_names_.insert(s.lhs_scalar);
      }
      for (const ArrayRef* r : s.DirectArrayRefs()) {
        for (const IndexExpr& ix : r->indices) {
          if (!ix.var.empty()) {
            used_names_.insert(ix.var);
          }
        }
      }
      if (s.rhs != nullptr) {
        note_expr(*s.rhs, note_expr);
      }
    };
    for (const StmtPtr& s : program_.body) {
      note_stmt(*s, note_stmt);
    }
    for (const auto& [n, sub] : subs_) {
      used_names_.insert(n);
      auto labels = [&](const Stmt& s, auto&& self) -> void {
        if (s.kind == Stmt::Kind::kDoLoop) {
          max_label = std::max(max_label, s.label);
          for (const StmtPtr& c : s.body) {
            self(*c, self);
          }
        }
      };
      for (const StmtPtr& s : sub.body) {
        labels(*s, labels);
      }
    }
    next_label_ = (max_label / 10 + 1) * 10;
  }

  std::string FreshName(const std::string& base) {
    if (used_names_.insert(base).second) {
      return base;
    }
    for (int k = 2;; ++k) {
      std::string cand = StrCat(base, k);
      if (used_names_.insert(cand).second) {
        return cand;
      }
    }
  }

  MaybeError InlineAllCalls() {
    CollectNamesAndLabels();
    return ExpandBody(&program_.body);
  }

  MaybeError ExpandBody(std::vector<StmtPtr>* body) {
    for (size_t i = 0; i < body->size();) {
      Stmt& s = *(*body)[i];
      if (s.kind == Stmt::Kind::kDoLoop) {
        if (auto err = ExpandBody(&s.body)) {
          return err;
        }
        ++i;
        continue;
      }
      if (s.kind != Stmt::Kind::kCall) {
        ++i;
        continue;
      }
      auto expanded = ExpandCall(s);
      if (!expanded.ok()) {
        return expanded.error();
      }
      std::vector<StmtPtr> stmts = std::move(expanded).value();
      body->erase(body->begin() + static_cast<ptrdiff_t>(i));
      for (size_t k = 0; k < stmts.size(); ++k) {
        body->insert(body->begin() + static_cast<ptrdiff_t>(i + k), std::move(stmts[k]));
      }
      i += stmts.size();
    }
    return std::nullopt;
  }

  Result<std::vector<StmtPtr>> ExpandCall(const Stmt& call) {
    auto it = subs_.find(call.call_name);
    if (it == subs_.end()) {
      return Error{StrCat("CALL to unknown subroutine '", call.call_name, "'"), call.location};
    }
    const SubUnit& sub = it->second;
    if (std::find(inline_stack_.begin(), inline_stack_.end(), sub.name) != inline_stack_.end()) {
      return Error{StrCat("recursive CALL chain through '", sub.name, "'"), call.location};
    }
    if (inline_stack_.size() >= 8) {
      return Error{"CALL nesting exceeds the inline depth limit (8)", call.location};
    }
    if (call.call_args.size() != sub.formals.size()) {
      return Error{StrCat("subroutine '", sub.name, "' expects ", sub.formals.size(),
                          " argument(s), got ", call.call_args.size()),
                   call.location};
    }

    InlineCtx ctx;
    for (size_t i = 0; i < sub.formals.size(); ++i) {
      const std::string& formal = sub.formals[i];
      const CallArg& arg = call.call_args[i];
      bool formal_is_array = false;
      for (const ArrayDecl& d : sub.arrays) {
        if (d.name == formal) {
          formal_is_array = true;
        }
      }
      if (arg.is_literal) {
        if (formal_is_array) {
          return Error{StrCat("integer literal passed to array formal '", formal, "' of ",
                              sub.name),
                       arg.location};
        }
        ctx.const_subst[formal] = arg.value;
        continue;
      }
      auto pit = program_.parameters.find(arg.spelling);
      if (pit != program_.parameters.end()) {
        if (formal_is_array) {
          return Error{StrCat("PARAMETER '", arg.spelling, "' passed to array formal '", formal,
                              "' of ", sub.name),
                       arg.location};
        }
        ctx.const_subst[formal] = pit->second;
        continue;
      }
      if (program_.FindArray(arg.spelling) != nullptr) {
        if (!formal_is_array) {
          return Error{StrCat("array '", arg.spelling, "' passed to scalar formal '", formal,
                              "' of ", sub.name),
                       arg.location};
        }
        ctx.name_subst[formal] = arg.spelling;
        continue;
      }
      return Error{StrCat("CALL argument '", arg.spelling,
                          "' must be an integer literal, PARAMETER, or array"),
                   arg.location};
    }
    for (const auto& [n, v] : sub.parameters) {
      ctx.const_subst[n] = v;
    }

    // Rename the subroutine's local scalars (loop variables and assigned
    // scalars) to caller-unique names, in deterministic preorder.
    auto collect_locals = [&](const Stmt& s, auto&& self) -> void {
      const Stmt* target = &s;
      if (s.kind == Stmt::Kind::kIf) {
        target = s.if_then.get();
      }
      if (target->kind == Stmt::Kind::kDoLoop) {
        if (ctx.const_subst.count(target->loop_var) == 0 &&
            ctx.name_subst.count(target->loop_var) == 0) {
          ctx.name_subst[target->loop_var] = FreshName(target->loop_var);
        }
        for (const StmtPtr& c : target->body) {
          self(*c, self);
        }
        return;
      }
      if (target->kind == Stmt::Kind::kAssign && !target->lhs_scalar.empty() &&
          ctx.const_subst.count(target->lhs_scalar) == 0 &&
          ctx.name_subst.count(target->lhs_scalar) == 0) {
        ctx.name_subst[target->lhs_scalar] = FreshName(target->lhs_scalar);
      }
    };
    for (const StmtPtr& s : sub.body) {
      collect_locals(*s, collect_locals);
    }

    inline_stack_.push_back(sub.name);
    std::map<int64_t, int64_t> label_map;
    std::vector<StmtPtr> out;
    for (const StmtPtr& s : sub.body) {
      auto cloned = CloneStmt(*s, sub, ctx, &label_map);
      if (!cloned.ok()) {
        inline_stack_.pop_back();
        return cloned.error();
      }
      out.push_back(std::move(cloned).value());
    }
    // Nested CALLs inside the clone expand with this subroutine still on the
    // stack, which is what makes recursion detection work.
    if (auto err = ExpandBody(&out)) {
      inline_stack_.pop_back();
      return *err;
    }
    inline_stack_.pop_back();
    return out;
  }

  Result<ArrayRef> CloneRef(const ArrayRef& ref, const SubUnit& sub, const InlineCtx& ctx) {
    ArrayRef out;
    out.location = ref.location;
    auto nit = ctx.name_subst.find(ref.name);
    if (nit != ctx.name_subst.end()) {
      out.name = nit->second;
    } else if (ctx.const_subst.count(ref.name) != 0) {
      return Error{StrCat("value formal '", ref.name, "' of ", sub.name, " used as an array"),
                   ref.location};
    } else {
      return Error{StrCat("subroutine ", sub.name, " references undeclared array '", ref.name,
                          "' (subroutine arrays must be formal parameters)"),
                   ref.location};
    }
    for (const IndexExpr& ix : ref.indices) {
      IndexExpr nix;
      nix.location = ix.location;
      nix.offset = ix.offset;
      if (ix.IsIndirect()) {
        auto inner = CloneRef(*ix.indirect, sub, ctx);
        if (!inner.ok()) {
          return inner.error();
        }
        nix.indirect = std::make_shared<ArrayRef>(std::move(inner).value());
      } else if (!ix.var.empty()) {
        auto cit = ctx.const_subst.find(ix.var);
        if (cit != ctx.const_subst.end()) {
          nix.offset += cit->second;  // folds to a constant subscript
        } else {
          auto vit = ctx.name_subst.find(ix.var);
          nix.var = vit != ctx.name_subst.end() ? vit->second : ix.var;
        }
      }
      out.indices.push_back(std::move(nix));
    }
    return out;
  }

  Result<ExprPtr> CloneExpr(const Expr& e, const SubUnit& sub, const InlineCtx& ctx) {
    auto node = std::make_unique<Expr>();
    node->kind = e.kind;
    node->location = e.location;
    node->number = e.number;
    node->op = e.op;
    node->rel = e.rel;
    if (e.kind == Expr::Kind::kScalar) {
      auto cit = ctx.const_subst.find(e.scalar);
      if (cit != ctx.const_subst.end()) {
        node->kind = Expr::Kind::kNumber;
        node->number = static_cast<double>(cit->second);
        return node;
      }
      auto vit = ctx.name_subst.find(e.scalar);
      node->scalar = vit != ctx.name_subst.end() ? vit->second : e.scalar;
      return node;
    }
    if (e.kind == Expr::Kind::kArrayElement) {
      auto ref = CloneRef(e.array, sub, ctx);
      if (!ref.ok()) {
        return ref.error();
      }
      node->array = std::move(ref).value();
      return node;
    }
    if (e.lhs != nullptr) {
      auto lhs = CloneExpr(*e.lhs, sub, ctx);
      if (!lhs.ok()) {
        return lhs.error();
      }
      node->lhs = std::move(lhs).value();
    }
    if (e.rhs != nullptr) {
      auto rhs = CloneExpr(*e.rhs, sub, ctx);
      if (!rhs.ok()) {
        return rhs.error();
      }
      node->rhs = std::move(rhs).value();
    }
    return node;
  }

  Result<LoopBound> CloneBound(const LoopBound& b, const SubUnit& sub, const InlineCtx& ctx) {
    if (b.kind == LoopBound::Kind::kConstant) {
      return b;
    }
    if (b.kind == LoopBound::Kind::kParameter) {
      // A subroutine-local PARAMETER; its name does not survive inlining.
      LoopBound out = LoopBound::Constant(b.value);
      out.location = b.location;
      return out;
    }
    auto cit = ctx.const_subst.find(b.spelling);
    if (cit != ctx.const_subst.end()) {
      LoopBound out = LoopBound::Constant(cit->second);
      out.location = b.location;
      return out;
    }
    LoopBound out = b;
    auto vit = ctx.name_subst.find(b.spelling);
    if (vit != ctx.name_subst.end()) {
      out.spelling = vit->second;
    }
    (void)sub;
    return out;
  }

  Result<StmtPtr> CloneStmt(const Stmt& s, const SubUnit& sub, InlineCtx& ctx,
                            std::map<int64_t, int64_t>* label_map) {
    auto out = std::make_unique<Stmt>();
    out->kind = s.kind;
    out->location = s.location;
    switch (s.kind) {
      case Stmt::Kind::kAssign: {
        if (s.lhs_array.has_value()) {
          auto ref = CloneRef(*s.lhs_array, sub, ctx);
          if (!ref.ok()) {
            return ref.error();
          }
          out->lhs_array = std::move(ref).value();
        } else {
          if (ctx.const_subst.count(s.lhs_scalar) != 0) {
            return Error{StrCat("cannot assign to value formal '", s.lhs_scalar, "' of ",
                                sub.name),
                         s.location};
          }
          auto vit = ctx.name_subst.find(s.lhs_scalar);
          out->lhs_scalar = vit != ctx.name_subst.end() ? vit->second : s.lhs_scalar;
        }
        auto rhs = CloneExpr(*s.rhs, sub, ctx);
        if (!rhs.ok()) {
          return rhs.error();
        }
        out->rhs = std::move(rhs).value();
        return out;
      }
      case Stmt::Kind::kIf: {
        auto cond = CloneExpr(*s.if_cond, sub, ctx);
        if (!cond.ok()) {
          return cond.error();
        }
        out->if_cond = std::move(cond).value();
        auto then = CloneStmt(*s.if_then, sub, ctx, label_map);
        if (!then.ok()) {
          return then.error();
        }
        out->if_then = std::move(then).value();
        return out;
      }
      case Stmt::Kind::kCall: {
        out->call_name = s.call_name;
        for (const CallArg& a : s.call_args) {
          CallArg na = a;
          if (!a.is_literal) {
            auto cit = ctx.const_subst.find(a.spelling);
            if (cit != ctx.const_subst.end()) {
              na.is_literal = true;
              na.value = cit->second;
              na.spelling = StrCat(cit->second);
            } else {
              auto vit = ctx.name_subst.find(a.spelling);
              if (vit != ctx.name_subst.end()) {
                na.spelling = vit->second;
              }
            }
          }
          out->call_args.push_back(std::move(na));
        }
        return out;
      }
      case Stmt::Kind::kDoLoop: {
        auto lit = label_map->find(s.label);
        if (lit == label_map->end()) {
          lit = label_map->emplace(s.label, next_label_).first;
          next_label_ += 10;
        }
        out->label = lit->second;
        out->loop_id = ++program_.loop_count;  // renumbered afterwards
        out->marked_independent = s.marked_independent;
        out->loop_var = ctx.name_subst.at(s.loop_var);
        out->loop_var_location = s.loop_var_location;
        auto lower = CloneBound(s.lower, sub, ctx);
        if (!lower.ok()) {
          return lower.error();
        }
        out->lower = std::move(lower).value();
        auto upper = CloneBound(s.upper, sub, ctx);
        if (!upper.ok()) {
          return upper.error();
        }
        out->upper = std::move(upper).value();
        out->step = s.step;
        for (const StmtPtr& c : s.body) {
          auto cloned = CloneStmt(*c, sub, ctx, label_map);
          if (!cloned.ok()) {
            return cloned.error();
          }
          out->body.push_back(std::move(cloned).value());
        }
        return out;
      }
    }
    return Error{"internal: bad statement kind in CloneStmt", s.location};
  }

  // Loop ids are assigned per-unit during parsing and shuffled by inlining;
  // renumber to a clean 1..n preorder over the final program.
  void RenumberLoops() {
    uint32_t next = 0;
    auto walk = [&](Stmt& s, auto&& self) -> void {
      if (s.kind == Stmt::Kind::kDoLoop) {
        s.loop_id = ++next;
        for (StmtPtr& c : s.body) {
          self(*c, self);
        }
      }
    };
    for (StmtPtr& s : program_.body) {
      walk(*s, walk);
    }
    program_.loop_count = next;
  }

  // Sentinel extent for a formal scalar used in a subroutine DIMENSION.
  static constexpr int64_t kFormalExtent = -1;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program program_;
  std::vector<Stmt*> open_loops_;
  bool pending_independent_ = false;
  SourceLocation pending_independent_loc_;

  // Current-unit targets; point at program_ except inside a SUBROUTINE.
  bool in_subroutine_ = false;
  std::map<std::string, int64_t>* params_ = &program_.parameters;
  std::vector<ArrayDecl>* arrays_ = &program_.arrays;
  std::vector<StmtPtr>* body_ = &program_.body;
  const std::vector<std::string>* formals_ = nullptr;

  std::map<std::string, SubUnit> subs_;
  std::set<std::string> used_names_;
  std::vector<std::string> inline_stack_;
  int64_t next_label_ = 0;
};

}  // namespace

Result<Program> Parse(std::string_view source) {
  auto tokens = Lex(source);
  if (!tokens.ok()) {
    return tokens.error();
  }
  return Parser(std::move(tokens).value()).Run();
}

}  // namespace cdmm
