#include "src/lang/lexer.h"

#include <cctype>

#include "src/support/str.h"

namespace cdmm {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0; }
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

TokenKind KeywordKind(const std::string& upper) {
  if (upper == "PROGRAM") {
    return TokenKind::kKwProgram;
  }
  if (upper == "DIMENSION") {
    return TokenKind::kKwDimension;
  }
  if (upper == "PARAMETER") {
    return TokenKind::kKwParameter;
  }
  if (upper == "REAL" || upper == "DOUBLEPRECISION") {
    return TokenKind::kKwReal;
  }
  if (upper == "INTEGER") {
    return TokenKind::kKwInteger;
  }
  if (upper == "DO") {
    return TokenKind::kKwDo;
  }
  if (upper == "CONTINUE") {
    return TokenKind::kKwContinue;
  }
  if (upper == "END") {
    return TokenKind::kKwEnd;
  }
  if (upper == "IF") {
    return TokenKind::kKwIf;
  }
  if (upper == "CALL") {
    return TokenKind::kKwCall;
  }
  if (upper == "SUBROUTINE") {
    return TokenKind::kKwSubroutine;
  }
  return TokenKind::kIdentifier;
}

bool IsDotOpName(const std::string& upper) {
  return upper == "GT" || upper == "GE" || upper == "LT" || upper == "LE" || upper == "EQ" ||
         upper == "NE" || upper == "AND" || upper == "OR" || upper == "NOT";
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    bool line_has_tokens = false;
    while (pos_ < source_.size()) {
      char c = source_[pos_];
      SourceLocation loc{line_, column_};

      if (c == '\n') {
        if (line_has_tokens) {
          tokens.push_back(Token{TokenKind::kNewline, "", 0, loc});
          line_has_tokens = false;
        }
        AdvanceNewline();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        Advance();
        continue;
      }
      // Comments: '!' anywhere, or 'C'/'c'/'*' in column 1 followed by
      // whitespace/EOL (classic FORTRAN comment card). A `!$CDMM <word>`
      // comment is a compiler directive and lexes as a token instead.
      if (c == '!') {
        if (source_.substr(pos_).rfind("!$CDMM", 0) == 0) {
          for (int i = 0; i < 6; ++i) {
            Advance();
          }
          while (pos_ < source_.size() && (source_[pos_] == ' ' || source_[pos_] == '\t')) {
            Advance();
          }
          std::string word;
          while (pos_ < source_.size() && IsIdentBody(source_[pos_])) {
            word.push_back(source_[pos_]);
            Advance();
          }
          SkipToEol();  // anything after the word is commentary
          if (word.empty()) {
            return Error{"empty !$CDMM directive", loc};
          }
          tokens.push_back(Token{TokenKind::kDirective, ToUpperAscii(word), 0, loc});
          line_has_tokens = true;
          continue;
        }
        SkipToEol();
        continue;
      }
      if (column_ == 1 && (c == '*' || c == 'C' || c == 'c') && IsCommentCard()) {
        SkipToEol();
        continue;
      }
      if (c == '.') {
        Token tok;
        if (LexDotOp(loc, &tok)) {
          tokens.push_back(std::move(tok));
          line_has_tokens = true;
          continue;
        }
        return Error{"stray '.' (expected a .GT./.EQ./... operator)", loc};
      }

      if (IsDigit(c)) {
        Token tok = LexNumber(loc);
        tokens.push_back(std::move(tok));
        line_has_tokens = true;
        continue;
      }
      if (IsIdentStart(c)) {
        std::string word;
        while (pos_ < source_.size() && IsIdentBody(source_[pos_])) {
          word.push_back(source_[pos_]);
          Advance();
        }
        std::string upper = ToUpperAscii(word);
        tokens.push_back(Token{KeywordKind(upper), upper, 0, loc});
        line_has_tokens = true;
        continue;
      }

      TokenKind kind;
      switch (c) {
        case '(':
          kind = TokenKind::kLParen;
          break;
        case ')':
          kind = TokenKind::kRParen;
          break;
        case ',':
          kind = TokenKind::kComma;
          break;
        case '=':
          kind = TokenKind::kAssign;
          break;
        case '+':
          kind = TokenKind::kPlus;
          break;
        case '-':
          kind = TokenKind::kMinus;
          break;
        case '*':
          kind = TokenKind::kStar;
          break;
        case '/':
          kind = TokenKind::kSlash;
          break;
        default:
          return Error{StrCat("unexpected character '", std::string(1, c), "'"), loc};
      }
      tokens.push_back(Token{kind, std::string(1, c), 0, loc});
      line_has_tokens = true;
      Advance();
    }
    if (line_has_tokens) {
      tokens.push_back(Token{TokenKind::kNewline, "", 0, SourceLocation{line_, column_}});
    }
    tokens.push_back(Token{TokenKind::kEof, "", 0, SourceLocation{line_, column_}});
    return tokens;
  }

 private:
  void Advance() {
    ++pos_;
    ++column_;
  }
  void AdvanceNewline() {
    ++pos_;
    ++line_;
    column_ = 1;
  }
  void SkipToEol() {
    while (pos_ < source_.size() && source_[pos_] != '\n') {
      Advance();
    }
  }
  // At a potential comment card start (column 1 'C'/'c'/'*'): treat as a
  // comment only when followed by a space or end of line, so identifiers like
  // "CC" starting a statement still lex normally... except FORTRAN kernels in
  // this project never start a statement with a bare identifier in column 1;
  // assignments are indented. '*' in column 1 is always a comment.
  bool IsCommentCard() const {
    char c = source_[pos_];
    if (c == '*') {
      return true;
    }
    size_t next = pos_ + 1;
    if (next >= source_.size()) {
      return true;
    }
    char n = source_[next];
    return n == ' ' || n == '\t' || n == '\n' || n == '\r';
  }

  // At a '.', true when the characters ahead spell a dot operator like
  // ".GT."; used both to lex the operator and to stop number lexing so that
  // "2.EQ.3" is INTEGER DOTOP INTEGER rather than a real literal.
  bool PeekDotOp(size_t at, std::string* name) const {
    if (at >= source_.size() || source_[at] != '.') {
      return false;
    }
    std::string word;
    size_t i = at + 1;
    while (i < source_.size() && IsIdentStart(source_[i])) {
      word.push_back(source_[i]);
      ++i;
    }
    if (word.empty() || i >= source_.size() || source_[i] != '.') {
      return false;
    }
    std::string upper = ToUpperAscii(word);
    if (!IsDotOpName(upper)) {
      return false;
    }
    if (name != nullptr) {
      *name = upper;
    }
    return true;
  }

  bool LexDotOp(SourceLocation loc, Token* out) {
    std::string name;
    if (!PeekDotOp(pos_, &name)) {
      return false;
    }
    for (size_t i = 0; i < name.size() + 2; ++i) {
      Advance();
    }
    *out = Token{TokenKind::kDotOp, name, 0, loc};
    return true;
  }

  Token LexNumber(SourceLocation loc) {
    std::string text;
    bool is_real = false;
    while (pos_ < source_.size() && IsDigit(source_[pos_])) {
      text.push_back(source_[pos_]);
      Advance();
    }
    if (pos_ < source_.size() && source_[pos_] == '.' && !PeekDotOp(pos_, nullptr)) {
      // Accept a real literal; its value is irrelevant for tracing.
      is_real = true;
      text.push_back('.');
      Advance();
      while (pos_ < source_.size() && IsDigit(source_[pos_])) {
        text.push_back(source_[pos_]);
        Advance();
      }
      // Optional exponent: E+dd / E-dd / Edd.
      if (pos_ < source_.size() &&
          (source_[pos_] == 'E' || source_[pos_] == 'e' || source_[pos_] == 'D' ||
           source_[pos_] == 'd')) {
        text.push_back('E');
        Advance();
        if (pos_ < source_.size() && (source_[pos_] == '+' || source_[pos_] == '-')) {
          text.push_back(source_[pos_]);
          Advance();
        }
        while (pos_ < source_.size() && IsDigit(source_[pos_])) {
          text.push_back(source_[pos_]);
          Advance();
        }
      }
    }
    Token tok;
    tok.kind = is_real ? TokenKind::kReal : TokenKind::kInteger;
    tok.text = text;
    tok.int_value = is_real ? 0 : std::stoll(text);
    tok.location = loc;
    return tok;
  }

  std::string_view source_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace cdmm
