// Structural/semantic validation of parsed programs. Run this before
// analysis or interpretation; both CDMM_CHECK on invariants it establishes.
#ifndef CDMM_SRC_LANG_SEMA_H_
#define CDMM_SRC_LANG_SEMA_H_

#include <optional>

#include "src/lang/ast.h"
#include "src/support/result.h"

namespace cdmm {

// Validates:
//  - array names are unique and do not collide with PARAMETER names;
//  - every array reference names a declared array with the right number of
//    subscripts (1 for vectors, 2 for matrices);
//  - every subscript variable is bound by an enclosing DO loop;
//  - DO-loop variables are not reused by an enclosing active loop and do not
//    collide with array names;
//  - scalar uses do not name declared arrays.
// Returns nullopt on success, or the first error found.
std::optional<Error> CheckProgram(const Program& program);

// Convenience: parse + check in one step (used by the workload registry).
Result<Program> ParseAndCheck(std::string_view source);

}  // namespace cdmm

#endif  // CDMM_SRC_LANG_SEMA_H_
