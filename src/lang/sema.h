// Structural/semantic validation of parsed programs. Run this before
// analysis or interpretation; both CDMM_CHECK on invariants it establishes.
//
// The checker is built on the structured-diagnostics engine: it accumulates
// every problem it can find (pass "sema", codes S001-S009, see
// src/lint/lint.h) instead of stopping at the first. CheckProgram is the
// legacy first-error view kept for callers that only need pass/fail.
#ifndef CDMM_SRC_LANG_SEMA_H_
#define CDMM_SRC_LANG_SEMA_H_

#include <optional>
#include <vector>

#include "src/lang/ast.h"
#include "src/lint/diagnostics.h"
#include "src/support/result.h"

namespace cdmm {

// Validates:
//  - array names are unique and do not collide with PARAMETER names;
//  - every array reference names a declared array with the right number of
//    subscripts (1 for vectors, 2 for matrices);
//  - every subscript variable is bound by an enclosing DO loop;
//  - DO-loop variables are not reused by an enclosing active loop and do not
//    collide with array names;
//  - scalar uses do not name declared arrays.
// Returns every violation found, in traversal (roughly source) order.
std::vector<Diagnostic> CheckProgramAll(const Program& program);

// First-error view of CheckProgramAll: nullopt on success.
std::optional<Error> CheckProgram(const Program& program);

// Convenience: parse + check in one step (used by the workload registry).
Result<Program> ParseAndCheck(std::string_view source);

}  // namespace cdmm

#endif  // CDMM_SRC_LANG_SEMA_H_
