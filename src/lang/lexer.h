// Lexer for the mini-FORTRAN dialect. The dialect is line-oriented like
// FORTRAN but free-form within a line: statement labels are ordinary leading
// integers, comments start with 'C ' in column 1 or with '!'. Continuation
// lines are not supported (the kernels do not need them).
#ifndef CDMM_SRC_LANG_LEXER_H_
#define CDMM_SRC_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/support/result.h"

namespace cdmm {

// Tokenises `source`; newlines become explicit kNewline tokens (consecutive
// blank lines collapse), the stream always ends with kEof.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace cdmm

#endif  // CDMM_SRC_LANG_LEXER_H_
