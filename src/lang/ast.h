// AST for the mini-FORTRAN dialect. The dialect covers exactly what the
// paper's locality study needs: PROGRAM/END, PARAMETER integer constants,
// DIMENSION declarations of one- and two-dimensional arrays, DO loops closed
// by labelled CONTINUE statements (possibly shared labels), and arithmetic
// assignments over array elements and scalars.
#ifndef CDMM_SRC_LANG_AST_H_
#define CDMM_SRC_LANG_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/support/source_location.h"

namespace cdmm {

struct ArrayRef;

// One subscript of an array reference: `var + offset` (offset may be
// negative or zero), a plain integer constant, or an *indirect* subscript
// `IDX(...) + offset` whose value is an element of an INTEGER array (sparse
// gather/scatter). The canonical spelling is what §2's parameter X counts:
// "the number of distinct indexed variables used to reference array
// elements".
struct IndexExpr {
  std::string var;     // empty => constant or indirect subscript
  int64_t offset = 0;  // added to the variable's value, or the constant value
  // Non-null => the subscript is the referenced element's value + offset.
  // shared_ptr keeps IndexExpr copyable (ArrayRef is incomplete here).
  std::shared_ptr<ArrayRef> indirect;
  SourceLocation location;

  bool IsConstant() const { return var.empty() && indirect == nullptr; }
  bool IsIndirect() const { return indirect != nullptr; }

  // "I", "I+1", "I-2", "5", or "IDX(I)+1"; two IndexExprs denote the same
  // index usage iff their canonical spellings are equal.
  std::string Canonical() const;

  friend bool operator==(const IndexExpr& a, const IndexExpr& b);
};

// A reference to an array element, e.g. A(I,J+1), V(K), or Y(IDX(I)).
struct ArrayRef {
  std::string name;
  std::vector<IndexExpr> indices;  // size 1 (vector) or 2 (matrix)
  SourceLocation location;

  // True when any subscript is indirect (non-affine for dependence tests).
  bool HasIndirect() const;

  std::string ToString() const;
};

// Arithmetic expression tree. Only the embedded ArrayRefs matter for trace
// generation; scalars and constants are assumed permanently resident (§2).
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// Relational operator of a logical-IF condition (.GT. etc.).
enum class RelOp : uint8_t { kGt, kGe, kLt, kLe, kEq, kNe };

// ".GT." etc. (with the dots), for printing and diagnostics.
const char* RelOpSpelling(RelOp op);

struct Expr {
  enum class Kind : uint8_t {
    kNumber,
    kScalar,
    kArrayElement,
    kBinary,
    kNegate,
    kCompare,  // lhs RELOP rhs (logical IF conditions only)
    kAnd,      // lhs .AND. rhs
    kOr,       // lhs .OR. rhs
  };

  Kind kind = Kind::kNumber;
  SourceLocation location;

  double number = 0.0;     // kNumber
  std::string scalar;      // kScalar
  ArrayRef array;          // kArrayElement
  char op = '+';           // kBinary: one of + - * / and '%' for MOD(a, b)
  RelOp rel = RelOp::kEq;  // kCompare
  ExprPtr lhs;             // kBinary / kNegate / kCompare / kAnd / kOr
  ExprPtr rhs;             // kBinary / kCompare / kAnd / kOr

  std::string ToString() const;
};

// A DO-loop bound: integer literal, PARAMETER name (resolved at parse time)
// or an enclosing loop's variable (triangular loops, e.g. "DO 10 K = L, N").
struct LoopBound {
  enum class Kind : uint8_t { kConstant, kParameter, kVariable };

  Kind kind = Kind::kConstant;
  int64_t value = 0;     // kConstant/kParameter: the resolved value
  std::string spelling;  // "100", "N", or the variable name
  SourceLocation location;

  bool IsStatic() const { return kind != Kind::kVariable; }

  static LoopBound Constant(int64_t v);
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

// One actual argument of a CALL statement: an integer literal or an
// identifier (array name, PARAMETER, or scalar).
struct CallArg {
  std::string spelling;  // identifier name, or literal spelling
  bool is_literal = false;
  int64_t value = 0;  // valid when is_literal
  SourceLocation location;
};

// A statement: assignment, DO loop, logical IF, or CALL. (A tagged struct
// rather than a class hierarchy: the dialect is closed and consumers switch
// on `kind`.) kCall only exists transiently during parsing — calls are
// inlined before the Program is returned.
struct Stmt {
  enum class Kind : uint8_t { kAssign, kDoLoop, kIf, kCall };

  Kind kind = Kind::kAssign;
  SourceLocation location;

  // kAssign: exactly one of lhs_array / lhs_scalar is set.
  std::optional<ArrayRef> lhs_array;
  std::string lhs_scalar;
  ExprPtr rhs;

  // kDoLoop.
  uint32_t loop_id = 0;  // unique, 1-based, preorder over the whole program
  int64_t label = 0;     // label of the terminating CONTINUE
  std::string loop_var;
  SourceLocation loop_var_location;
  LoopBound lower;
  LoopBound upper;
  int64_t step = 1;
  std::vector<StmtPtr> body;
  // True when a `!$CDMM INDEPENDENT` directive comment precedes the DO:
  // the author asserts the loop carries no dependence (checked by lint).
  bool marked_independent = false;

  // kIf: `IF (if_cond) <assignment>`; if_then is always a kAssign.
  ExprPtr if_cond;
  StmtPtr if_then;

  // kCall (pre-inline only).
  std::string call_name;
  std::vector<CallArg> call_args;

  // Collects every ArrayRef in this statement (LHS first) including arrays
  // named by indirect subscripts, without recursing into nested loops for
  // kDoLoop (returns empty for loops). kIf delegates to the guarded
  // assignment (the condition itself is array-free by construction).
  std::vector<const ArrayRef*> DirectArrayRefs() const;
};

// DIMENSION entry. Column-major storage; vectors have cols == 1.
struct ArrayDecl {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 1;
  std::string rows_spelling;  // symbolic form for printing
  std::string cols_spelling;
  // Declared via INTEGER: elements may be stored/read as integer values and
  // the array may appear in indirect subscripts.
  bool is_integer = false;
  SourceLocation location;

  bool IsVector() const { return cols == 1 && cols_spelling.empty(); }
  int64_t element_count() const { return rows * cols; }
};

// A parsed program.
struct Program {
  std::string name;
  std::map<std::string, int64_t> parameters;  // PARAMETER (NAME = value)
  // Declaration site of each PARAMETER (diagnostic spans; keyed like
  // `parameters`).
  std::map<std::string, SourceLocation> parameter_locations;
  std::vector<ArrayDecl> arrays;              // declaration order
  std::vector<StmtPtr> body;
  uint32_t loop_count = 0;  // loops are numbered 1..loop_count

  const ArrayDecl* FindArray(const std::string& array_name) const;

  // Walks all statements (pre-order, entering loop bodies) calling `fn`.
  template <typename Fn>
  void ForEachStmt(Fn&& fn) const {
    for (const StmtPtr& s : body) {
      ForEachStmtImpl(*s, fn);
    }
  }

  // Finds the loop statement with the given loop_id; nullptr if absent.
  const Stmt* FindLoop(uint32_t loop_id) const;

 private:
  template <typename Fn>
  static void ForEachStmtImpl(const Stmt& stmt, Fn&& fn) {
    fn(stmt);
    if (stmt.kind == Stmt::Kind::kDoLoop) {
      for (const StmtPtr& s : stmt.body) {
        ForEachStmtImpl(*s, fn);
      }
    }
  }
};

// Renders the program as mini-FORTRAN source (round-trip parseable).
std::string ProgramToString(const Program& program);

}  // namespace cdmm

#endif  // CDMM_SRC_LANG_AST_H_
