// Recursive-descent parser for the mini-FORTRAN dialect. Produces a Program
// whose loops carry unique preorder ids (1-based), with PARAMETER constants
// resolved into loop bounds and array dimensions.
#ifndef CDMM_SRC_LANG_PARSER_H_
#define CDMM_SRC_LANG_PARSER_H_

#include <string_view>

#include "src/lang/ast.h"
#include "src/support/result.h"

namespace cdmm {

// Lexes and parses `source`. Structural errors (unknown arrays, unbound index
// variables, dimension mismatches) are reported by CheckProgram in sema.h;
// Parse only guarantees syntactic well-formedness and loop-label matching.
Result<Program> Parse(std::string_view source);

}  // namespace cdmm

#endif  // CDMM_SRC_LANG_PARSER_H_
