#include "src/lang/token.h"

#include "src/support/str.h"

namespace cdmm {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kNewline:
      return "end of line";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kReal:
      return "real";
    case TokenKind::kKwProgram:
      return "PROGRAM";
    case TokenKind::kKwDimension:
      return "DIMENSION";
    case TokenKind::kKwParameter:
      return "PARAMETER";
    case TokenKind::kKwReal:
      return "REAL";
    case TokenKind::kKwInteger:
      return "INTEGER";
    case TokenKind::kKwDo:
      return "DO";
    case TokenKind::kKwContinue:
      return "CONTINUE";
    case TokenKind::kKwEnd:
      return "END";
    case TokenKind::kKwIf:
      return "IF";
    case TokenKind::kKwCall:
      return "CALL";
    case TokenKind::kKwSubroutine:
      return "SUBROUTINE";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kDotOp:
      return "dot operator";
    case TokenKind::kDirective:
      return "!$CDMM directive";
  }
  return "unknown";
}

std::string Token::ToString() const {
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kInteger || kind == TokenKind::kReal ||
      kind == TokenKind::kDotOp || kind == TokenKind::kDirective) {
    return StrCat(TokenKindName(kind), " '", text, "'");
  }
  return TokenKindName(kind);
}

}  // namespace cdmm
