// Deterministic PRNG (SplitMix64) for synthetic-trace generators and
// property tests. std::mt19937 is avoided so that streams are identical
// across standard-library implementations.
#ifndef CDMM_SRC_SUPPORT_RNG_H_
#define CDMM_SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace cdmm {

// SplitMix64: tiny, fast, and good enough for workload shuffling. Sequences
// are fully determined by the seed.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) {
    // Rejection-free Lemire-style reduction is overkill here; modulo bias is
    // negligible for the small bounds used by the generators.
    return Next() % bound;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_RNG_H_
