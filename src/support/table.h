// Plain-text table renderer used by the bench binaries to print paper-style
// tables (Tables 1-4 of Malkawi & Patel, SOSP'85).
#ifndef CDMM_SRC_SUPPORT_TABLE_H_
#define CDMM_SRC_SUPPORT_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace cdmm {

// Column-aligned text table. Usage:
//   TextTable t({"PROGRAM", "MEM", "PF"});
//   t.AddRow({"MAIN", "1.62", "531"});
//   t.Print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Inserts a horizontal rule before the next row.
  void AddRule();

  // Renders with a boxed header and right-aligned numeric-looking cells.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_TABLE_H_
