#include "src/support/arena.h"

#include <algorithm>

namespace cdmm {

void* Arena::AllocateSlow(size_t bytes, size_t align) {
  // Oversized request: give it a dedicated block and keep bumping in the
  // current one; the dedicated block is released on Reset.
  size_t worst = bytes + align - 1;
  if (worst > block_bytes_) {
    Block block;
    block.data = std::make_unique<char[]>(worst);
    block.size = worst;
    block.dedicated = true;
    ++stats_.blocks;
    ++stats_.large_blocks;
    stats_.bytes_reserved += worst;
    stats_.bytes_allocated += bytes;
    char* base = block.data.get();
    uintptr_t p = (reinterpret_cast<uintptr_t>(base) + (align - 1)) & ~(align - 1);
    blocks_.push_back(std::move(block));
    return reinterpret_cast<char*>(p);
  }
  // Advance through retained blocks (refilled after Reset) before growing.
  while (true) {
    size_t next = ptr_ == nullptr && !blocks_.empty() ? current_ : current_ + 1;
    // Skip dedicated blocks: their tail space is never bumped into.
    while (next < blocks_.size() && blocks_[next].dedicated) {
      ++next;
    }
    if (next >= blocks_.size()) {
      // Double the block size (capped) so arenas that outgrow the default
      // settle into a handful of blocks instead of hundreds.
      size_t size = blocks_.empty()
                        ? block_bytes_
                        : std::min(blocks_.back().size * 2, kMaxBlockBytes);
      size = std::max(size, worst);
      Block block;
      block.data = std::make_unique<char[]>(size);
      block.size = size;
      ++stats_.blocks;
      stats_.bytes_reserved += size;
      blocks_.push_back(std::move(block));
      next = blocks_.size() - 1;
    }
    current_ = next;
    ptr_ = blocks_[current_].data.get();
    end_ = ptr_ + blocks_[current_].size;
    uintptr_t p = (reinterpret_cast<uintptr_t>(ptr_) + (align - 1)) & ~(align - 1);
    if (p + bytes <= reinterpret_cast<uintptr_t>(end_)) {
      char* out = reinterpret_cast<char*>(p);
      ptr_ = out + bytes;
      stats_.bytes_allocated += bytes;
      Unpoison(out, bytes);
      return out;
    }
    // A retained block smaller than the request; keep scanning forward.
  }
}

}  // namespace cdmm
