#include "src/support/stats.h"

namespace cdmm {

void SummaryStats::Add(double sample) {
  ++count_;
  sum_ += sample;
  if (sample < min_) {
    min_ = sample;
  }
  if (sample > max_) {
    max_ = sample;
  }
}

}  // namespace cdmm
