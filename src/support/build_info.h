// Build provenance baked in at configure time via CMake configure_file (see
// src/support/CMakeLists.txt and build_info.cc.in). Surfaced by
// `cdmmc --version` / `--build-info` and stamped into every metrics sidecar
// so results stay attributable to an exact build.
#ifndef CDMM_SRC_SUPPORT_BUILD_INFO_H_
#define CDMM_SRC_SUPPORT_BUILD_INFO_H_

#include <string>

namespace cdmm {

struct BuildInfo {
  // `git describe --always --dirty --tags` at configure time, or
  // "unknown" outside a git checkout.
  const char* git_describe;
  const char* compiler_id;       // e.g. "GNU", "Clang"
  const char* compiler_version;  // e.g. "13.2.0"
  const char* build_type;        // CMAKE_BUILD_TYPE, or "unspecified"
  const char* cxx_standard;      // e.g. "20"
};

const BuildInfo& GetBuildInfo();

// One-line form: "cdmm <git> (<compiler> <version>, <type>, C++<std>)".
std::string BuildInfoLine();

// The `"build":{...}` JSON object shared by all metrics sidecars.
std::string BuildInfoJson();

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_BUILD_INFO_H_
