// Minimal ASCII chart renderer for the bench binaries: multi-series scatter
// and line charts on a character grid, with optional log axes. Used to draw
// the era-standard memory-policy curves (lifetime function, fault-rate
// curve, WS characteristic) that complement the paper's tables.
#ifndef CDMM_SRC_SUPPORT_ASCII_PLOT_H_
#define CDMM_SRC_SUPPORT_ASCII_PLOT_H_

#include <string>
#include <vector>

namespace cdmm {

struct PlotSeries {
  std::string name;
  char marker = '*';
  std::vector<std::pair<double, double>> points;
};

struct PlotOptions {
  int width = 64;   // plot area columns
  int height = 16;  // plot area rows
  bool log_x = false;
  bool log_y = false;
  std::string title;
  std::string x_label;
  std::string y_label;
};

// Renders the series onto one grid. Points with non-positive coordinates on
// a log axis are skipped. Returns a multi-line string ending in '\n'.
std::string RenderAsciiPlot(const std::vector<PlotSeries>& series, const PlotOptions& options);

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_ASCII_PLOT_H_
