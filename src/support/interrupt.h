// Process-wide interrupt latch shared by the CLI tools, the sweep engine and
// the cdmm-serve daemon. SIGINT/SIGTERM handlers only set a lock-free atomic,
// so installation never changes behaviour until a signal actually arrives:
// nominal runs are bit-identical with or without the handlers installed.
//
// Consumers poll the latch at phase boundaries (cdmmc between output stages,
// CancelToken::Expired inside a sweep, the daemon's accept loop) and convert
// it into their own graceful-exit path: partial results + flushed telemetry
// for cdmmc (exit 128+signo), stop-accepting + drain for cdmm-serve.
#ifndef CDMM_SRC_SUPPORT_INTERRUPT_H_
#define CDMM_SRC_SUPPORT_INTERRUPT_H_

namespace cdmm {

// Installs SIGINT and SIGTERM handlers that latch the signal number.
// Idempotent; safe to call from any tool main. Never alters handlers other
// than SIGINT/SIGTERM.
void InstallInterruptHandlers();

// True once a SIGINT/SIGTERM has been observed (or injected for testing).
bool InterruptRequested();

// The latched signal number, or 0 when no interrupt has been observed.
int InterruptSignal();

// Test hooks: latch/clear without delivering a real signal. The simulate
// form performs exactly the store the real handler performs.
void SimulateInterruptForTesting(int signo);
void ClearInterruptForTesting();

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_INTERRUPT_H_
