// Bump/arena allocator for per-simulation scratch: the policy kernels size a
// handful of flat frame tables once per run, so the allocation pattern is
// "allocate a burst at start, free everything at end". The arena turns that
// into pointer bumps over a few reusable blocks, eliminating the per-object
// heap traffic the profile showed in the per-event simulate path.
//
// Properties:
//  - Allocate(bytes, align) bumps within the current block, chaining a new
//    block (doubling up to a cap) when full; requests larger than a block
//    get their own dedicated block (large-block fallback).
//  - Reset() retains the blocks for reuse by the next simulation; under
//    AddressSanitizer the retained memory is poisoned so a stale pointer
//    into a reset region faults instead of silently reading old scratch.
//  - Only trivially-destructible types may be placed in the arena (New /
//    NewArray enforce this at compile time); Reset never runs destructors.
//
// The arena is single-threaded by design: every simulation owns its own.
#ifndef CDMM_SRC_SUPPORT_ARENA_H_
#define CDMM_SRC_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define CDMM_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CDMM_ARENA_ASAN 1
#endif
#endif

#ifdef CDMM_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace cdmm {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr size_t kMaxBlockBytes = 4 * 1024 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < 64 ? 64 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    // Hand the memory back to the heap unpoisoned; the allocator owns its
    // own red-zoning of freed regions.
    for (Block& b : blocks_) {
      Unpoison(b.data.get(), b.size);
    }
  }

  // Cumulative counters over the arena's lifetime (survive Reset), published
  // by the simulation kernels into the alloc.* telemetry family.
  struct Stats {
    uint64_t bytes_allocated = 0;  // total bytes handed out
    uint64_t bytes_reserved = 0;   // total block capacity owned
    uint64_t blocks = 0;           // blocks ever created
    uint64_t large_blocks = 0;     // dedicated oversized blocks
    uint64_t resets = 0;           // Reset() calls
  };

  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) {
      bytes = 1;
    }
    uintptr_t p = (reinterpret_cast<uintptr_t>(ptr_) + (align - 1)) & ~(align - 1);
    if (ptr_ == nullptr || p + bytes > reinterpret_cast<uintptr_t>(end_)) {
      return AllocateSlow(bytes, align);
    }
    char* out = reinterpret_cast<char*>(p);
    ptr_ = out + bytes;
    stats_.bytes_allocated += bytes;
    Unpoison(out, bytes);
    return out;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // A value-initialized (zero for scalars) array of `n` elements.
  template <typename T>
  T* NewArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    T* out = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    if constexpr (std::is_trivially_default_constructible_v<T>) {
      // Value initialization of a trivial type is zero fill.
      std::memset(static_cast<void*>(out), 0, n * sizeof(T));
    } else {
      for (size_t i = 0; i < n; ++i) {
        new (out + i) T();
      }
    }
    return out;
  }

  // Rewinds to empty while keeping every block for reuse. Large-block
  // fallbacks are released — their size was request-specific.
  void Reset() {
    ++stats_.resets;
    size_t keep = 0;
    for (Block& b : blocks_) {
      if (b.dedicated) {
        stats_.bytes_reserved -= b.size;
        continue;
      }
      Poison(b.data.get(), b.size);
      blocks_[keep++] = std::move(b);
    }
    blocks_.resize(keep);
    current_ = 0;
    if (blocks_.empty()) {
      ptr_ = end_ = nullptr;
    } else {
      ptr_ = blocks_[0].data.get();
      end_ = ptr_ + blocks_[0].size;
    }
  }

  const Stats& stats() const { return stats_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    bool dedicated = false;  // large-block fallback, freed on Reset
  };

  void* AllocateSlow(size_t bytes, size_t align);

  static void Poison(const void* p, size_t n) {
#ifdef CDMM_ARENA_ASAN
    __asan_poison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }
  static void Unpoison(const void* p, size_t n) {
#ifdef CDMM_ARENA_ASAN
    __asan_unpoison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;      // index of the block ptr_/end_ bump into
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  Stats stats_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_ARENA_H_
