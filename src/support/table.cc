#include "src/support/table.h"

#include <algorithm>
#include <cctype>

#include "src/support/check.h"

namespace cdmm {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != '%' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  CDMM_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  CDMM_CHECK_MSG(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto print_rule = [&]() {
    os << "+";
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) {
        os << "-";
      }
      os << "+";
    }
    os << "\n";
  };

  auto print_cells = [&](const std::vector<std::string>& cells, bool right_align_numeric) {
    os << "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      const std::string& cell = cells[i];
      size_t pad = widths[i] - cell.size();
      bool right = right_align_numeric && LooksNumeric(cell);
      os << " ";
      if (right) {
        for (size_t p = 0; p < pad; ++p) {
          os << " ";
        }
        os << cell;
      } else {
        os << cell;
        for (size_t p = 0; p < pad; ++p) {
          os << " ";
        }
      }
      os << " |";
    }
    os << "\n";
  };

  print_rule();
  print_cells(header_, /*right_align_numeric=*/false);
  print_rule();
  for (const Row& row : rows_) {
    if (row.rule_before) {
      print_rule();
    }
    print_cells(row.cells, /*right_align_numeric=*/true);
  }
  print_rule();
}

}  // namespace cdmm
