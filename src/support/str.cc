#include "src/support/str.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace cdmm {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatMillions(double value, int digits) {
  return FormatFixed(value / 1e6, digits);
}

bool IsBlank(std::string_view text) {
  for (char c : text) {
    if (c != ' ' && c != '\t') {
      return false;
    }
  }
  return true;
}

std::string ToUpperAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace cdmm
