// String formatting helpers (the toolchain lacks <format>).
#ifndef CDMM_SRC_SUPPORT_STR_H_
#define CDMM_SRC_SUPPORT_STR_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cdmm {

// Concatenates all arguments via operator<<.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Fixed-point decimal rendering with `digits` fractional digits.
std::string FormatFixed(double value, int digits);

// Renders a double the way the paper prints costs: mantissa "x 10^e" style is
// NOT used; instead values are given in units of 1e6 with 2-3 significant
// decimals ("3.39"). This helper divides by 1e6 and formats.
std::string FormatMillions(double value, int digits = 2);

// True if `text` consists only of ASCII spaces/tabs.
bool IsBlank(std::string_view text);

// Uppercases ASCII letters (FORTRAN is case-insensitive; we canonicalise).
std::string ToUpperAscii(std::string_view text);

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_STR_H_
