// Portable, #ifdef-guarded SIMD helpers for the columnar policy kernels.
// Every function has a scalar fallback with identical results; the vector
// paths only change how fast the answer arrives, never the answer. The OPT
// kernel's victim scan (argmax over packed next-use keys) and the prepared
// page-bound prescan are the profiled consumers.
#ifndef CDMM_SRC_SUPPORT_SIMD_H_
#define CDMM_SRC_SUPPORT_SIMD_H_

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#define CDMM_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__)
#define CDMM_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace cdmm {
namespace simd {

// Index of the maximum element of keys[0..n); among equal maxima the lowest
// index wins (the OPT kernel's keys are pairwise distinct, so ties never
// decide a victim there). n must be >= 1.
inline size_t ArgMaxU64(const uint64_t* keys, size_t n) {
#if defined(CDMM_SIMD_AVX2)
  if (n >= 8) {
    // Pass 1: the maximum value. Unsigned max via the sign-flip trick
    // (cmpgt is signed), fully vectorized.
    const __m256i sign = _mm256_set1_epi64x(static_cast<int64_t>(0x8000000000000000ULL));
    __m256i best = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys)), sign);
    size_t i = 4;
    for (; i + 4 <= n; i += 4) {
      __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), sign);
      __m256i gt = _mm256_cmpgt_epi64(v, best);
      best = _mm256_blendv_epi8(best, v, gt);
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    uint64_t max_flipped = lanes[0];
    for (int k = 1; k < 4; ++k) {
      if (lanes[k] > max_flipped) {
        max_flipped = lanes[k];
      }
    }
    uint64_t max_value = max_flipped ^ 0x8000000000000000ULL;
    for (; i < n; ++i) {
      if (keys[i] > max_value) {
        max_value = keys[i];
      }
    }
    // Pass 2: first index holding the maximum.
    const __m256i needle = _mm256_set1_epi64x(static_cast<int64_t>(max_value));
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j));
      int mask = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, needle)));
      if (mask != 0) {
        for (int k = 0; k < 4; ++k) {
          if ((mask >> k) & 1) {
            return j + static_cast<size_t>(k);
          }
        }
      }
    }
    for (; j < n; ++j) {
      if (keys[j] == max_value) {
        return j;
      }
    }
  }
#endif
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (keys[i] > keys[best]) {
      best = i;
    }
  }
  return best;
}

// Maximum of v[0..n); 0 for an empty range. Used to bound the flat page
// tables when a trace carries no virtual-page declaration.
inline uint32_t MaxU32(const uint32_t* v, size_t n) {
#if defined(CDMM_SIMD_AVX2)
  if (n >= 16) {
    __m256i best = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
    size_t i = 8;
    for (; i + 8 <= n; i += 8) {
      best = _mm256_max_epu32(
          best, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
    }
    alignas(32) uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    uint32_t max_value = lanes[0];
    for (int k = 1; k < 8; ++k) {
      if (lanes[k] > max_value) {
        max_value = lanes[k];
      }
    }
    for (; i < n; ++i) {
      if (v[i] > max_value) {
        max_value = v[i];
      }
    }
    return max_value;
  }
#endif
  uint32_t max_value = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] > max_value) {
      max_value = v[i];
    }
  }
  return max_value;
}

}  // namespace simd
}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_SIMD_H_
