#include "src/support/source_location.h"

#include <sstream>

namespace cdmm {

std::string ToString(SourceLocation loc) {
  if (!loc.IsValid()) {
    return "?";
  }
  std::ostringstream os;
  os << loc.line << ":" << loc.column;
  return os.str();
}

}  // namespace cdmm
