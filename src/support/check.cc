#include "src/support/check.h"

#include <cstdio>
#include <cstdlib>

namespace cdmm {

void CheckFailure(const char* expr, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "CDMM_CHECK failed: %s at %s:%d", expr, file, line);
  if (!message.empty()) {
    std::fprintf(stderr, " — %s", message.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace cdmm
