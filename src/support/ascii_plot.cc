#include "src/support/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/support/check.h"
#include "src/support/str.h"

namespace cdmm {
namespace {

double Transform(double v, bool log_scale) { return log_scale ? std::log10(v) : v; }

std::string TickLabel(double v) {
  char buf[32];
  if (v == 0) {
    return "0";
  }
  double a = std::abs(v);
  if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else if (a >= 10) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string RenderAsciiPlot(const std::vector<PlotSeries>& series, const PlotOptions& options) {
  CDMM_CHECK(options.width >= 16 && options.height >= 4);

  // Gather the transformed extent.
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = min_x;
  double max_y = -min_x;
  bool any = false;
  for (const PlotSeries& s : series) {
    for (auto [x, y] : s.points) {
      if ((options.log_x && x <= 0) || (options.log_y && y <= 0)) {
        continue;
      }
      any = true;
      min_x = std::min(min_x, Transform(x, options.log_x));
      max_x = std::max(max_x, Transform(x, options.log_x));
      min_y = std::min(min_y, Transform(y, options.log_y));
      max_y = std::max(max_y, Transform(y, options.log_y));
    }
  }
  std::ostringstream os;
  if (!options.title.empty()) {
    os << options.title << "\n";
  }
  if (!any) {
    os << "(no plottable points)\n";
    return os.str();
  }
  if (max_x == min_x) {
    max_x = min_x + 1;
  }
  if (max_y == min_y) {
    max_y = min_y + 1;
  }

  std::vector<std::string> grid(static_cast<size_t>(options.height),
                                std::string(static_cast<size_t>(options.width), ' '));
  for (const PlotSeries& s : series) {
    for (auto [x, y] : s.points) {
      if ((options.log_x && x <= 0) || (options.log_y && y <= 0)) {
        continue;
      }
      double tx = (Transform(x, options.log_x) - min_x) / (max_x - min_x);
      double ty = (Transform(y, options.log_y) - min_y) / (max_y - min_y);
      int col = std::min(options.width - 1, static_cast<int>(tx * (options.width - 1) + 0.5));
      int row = std::min(options.height - 1, static_cast<int>(ty * (options.height - 1) + 0.5));
      // Row 0 is the top of the chart.
      char& cell = grid[static_cast<size_t>(options.height - 1 - row)][static_cast<size_t>(col)];
      cell = cell == ' ' || cell == s.marker ? s.marker : '#';  // '#' marks overlaps
    }
  }

  // Y axis labels on the left; 10 characters wide.
  auto y_value = [&](int row_from_top) {
    double t = options.height == 1
                   ? 0.0
                   : 1.0 - static_cast<double>(row_from_top) / (options.height - 1);
    double v = min_y + t * (max_y - min_y);
    return options.log_y ? std::pow(10.0, v) : v;
  };
  for (int r = 0; r < options.height; ++r) {
    std::string label = (r == 0 || r == options.height - 1 || r == options.height / 2)
                            ? TickLabel(y_value(r))
                            : "";
    os << StrCat(std::string(label.size() > 9 ? 0 : 9 - label.size(), ' '), label, " |")
       << grid[static_cast<size_t>(r)] << "\n";
  }
  os << std::string(10, ' ') << "+" << std::string(static_cast<size_t>(options.width), '-')
     << "\n";
  double x_lo = options.log_x ? std::pow(10.0, min_x) : min_x;
  double x_hi = options.log_x ? std::pow(10.0, max_x) : max_x;
  std::string lo = TickLabel(x_lo);
  std::string hi = TickLabel(x_hi);
  os << std::string(11, ' ') << lo
     << std::string(
            std::max<int>(1, options.width - static_cast<int>(lo.size() + hi.size())), ' ')
     << hi << "\n";
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << std::string(11, ' ') << options.x_label;
    if (!options.y_label.empty()) {
      os << "   (y: " << options.y_label << ")";
    }
    os << "\n";
  }
  for (const PlotSeries& s : series) {
    os << "  " << s.marker << " " << s.name << "\n";
  }
  return os.str();
}

}  // namespace cdmm
