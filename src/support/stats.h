// Streaming summary statistics and time-weighted accumulators used by the VM
// simulator's MEM/ST metrics.
#ifndef CDMM_SRC_SUPPORT_STATS_H_
#define CDMM_SRC_SUPPORT_STATS_H_

#include <cstdint>
#include <limits>

#include "src/support/check.h"

namespace cdmm {

// Plain streaming min/max/mean over double samples.
class SummaryStats {
 public:
  void Add(double sample);

  uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Integrates a piecewise-constant level over virtual time. Used for the
// space-time product: level = resident-set size (pages), time in references.
// `Advance(dt)` accumulates level*dt for the current level, then time moves.
class TimeWeightedLevel {
 public:
  // Sets the current level without advancing time.
  void SetLevel(double level) { level_ = level; }
  double level() const { return level_; }

  // Advances virtual time by `dt` units at the current level.
  void Advance(uint64_t dt) {
    integral_ += level_ * static_cast<double>(dt);
    elapsed_ += dt;
  }

  // ∫ level dt so far (the space-time product).
  double integral() const { return integral_; }
  // Total time advanced.
  uint64_t elapsed() const { return elapsed_; }
  // Time-weighted mean level; 0 if no time has passed.
  double mean_level() const {
    return elapsed_ == 0 ? 0.0 : integral_ / static_cast<double>(elapsed_);
  }

 private:
  double level_ = 0.0;
  double integral_ = 0.0;
  uint64_t elapsed_ = 0;
};

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_STATS_H_
