#include "src/support/result.h"

#include <sstream>

namespace cdmm {

std::string Error::ToString() const {
  if (!location.IsValid()) {
    return message;
  }
  std::ostringstream os;
  os << cdmm::ToString(location) << ": " << message;
  return os.str();
}

}  // namespace cdmm
