// Source positions used by the lexer, parser, and diagnostic messages.
#ifndef CDMM_SRC_SUPPORT_SOURCE_LOCATION_H_
#define CDMM_SRC_SUPPORT_SOURCE_LOCATION_H_

#include <cstdint>
#include <string>

namespace cdmm {

// A (line, column) position in a mini-FORTRAN source file. Lines and columns
// are 1-based; a default-constructed location (0, 0) means "unknown".
struct SourceLocation {
  uint32_t line = 0;
  uint32_t column = 0;

  constexpr bool IsValid() const { return line != 0; }

  friend constexpr bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

// Renders "line:column", or "?" for an unknown location.
std::string ToString(SourceLocation loc);

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_SOURCE_LOCATION_H_
