#include "src/support/interrupt.h"

#include <atomic>
#include <csignal>

namespace cdmm {
namespace {

// Lock-free atomic int: stores are async-signal-safe, loads are cheap enough
// to sit on CancelToken::Expired's polling path.
std::atomic<int> g_interrupt_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free latch");

extern "C" void CdmmInterruptHandler(int signo) {
  g_interrupt_signal.store(signo, std::memory_order_relaxed);
}

}  // namespace

void InstallInterruptHandlers() {
  struct sigaction action = {};
  action.sa_handler = CdmmInterruptHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/read calls wake up
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool InterruptRequested() {
  return g_interrupt_signal.load(std::memory_order_relaxed) != 0;
}

int InterruptSignal() { return g_interrupt_signal.load(std::memory_order_relaxed); }

void SimulateInterruptForTesting(int signo) {
  g_interrupt_signal.store(signo, std::memory_order_relaxed);
}

void ClearInterruptForTesting() {
  g_interrupt_signal.store(0, std::memory_order_relaxed);
}

}  // namespace cdmm
