// Result<T> / Error: recoverable-error plumbing for user-facing inputs
// (source programs, trace files). Invariant violations use CDMM_CHECK instead.
#ifndef CDMM_SRC_SUPPORT_RESULT_H_
#define CDMM_SRC_SUPPORT_RESULT_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "src/support/check.h"
#include "src/support/source_location.h"

namespace cdmm {

// A diagnostic attached to a source location. `location` may be invalid for
// errors that are not tied to a position (e.g. I/O failures).
struct Error {
  std::string message;
  SourceLocation location;

  // Renders "line:col: message" or just "message".
  std::string ToString() const;
};

// Minimal expected-like carrier: either a value or an Error. The project
// builds with exceptions enabled but does not throw across module boundaries;
// parse/validate layers return Result instead.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    CDMM_CHECK_MSG(ok(), "Result::value() on error: " << error().ToString());
    return std::get<T>(storage_);
  }
  T& value() & {
    CDMM_CHECK_MSG(ok(), "Result::value() on error: " << error().ToString());
    return std::get<T>(storage_);
  }
  T&& value() && {
    CDMM_CHECK_MSG(ok(), "Result::value() on error: " << error().ToString());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    CDMM_CHECK(!ok());
    return std::get<Error>(storage_);
  }

 private:
  std::variant<T, Error> storage_;
};

}  // namespace cdmm

#endif  // CDMM_SRC_SUPPORT_RESULT_H_
