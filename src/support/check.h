// CHECK-style invariant assertions. These fire in every build type: the
// simulators in this project are deterministic, so an invariant violation is
// always a programming error worth aborting on, never a data-dependent
// condition to recover from.
#ifndef CDMM_SRC_SUPPORT_CHECK_H_
#define CDMM_SRC_SUPPORT_CHECK_H_

#include <sstream>
#include <string>

namespace cdmm {

// Aborts the process after printing `message` with the failing expression and
// source position. Used by the CDMM_CHECK macros below; call directly only
// for unconditional failures (e.g. unreachable switch arms).
[[noreturn]] void CheckFailure(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace cdmm

#define CDMM_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::cdmm::CheckFailure(#cond, __FILE__, __LINE__, std::string()); \
    }                                                                 \
  } while (false)

#define CDMM_CHECK_MSG(cond, msg)                          \
  do {                                                     \
    if (!(cond)) {                                         \
      std::ostringstream cdmm_check_os;                    \
      cdmm_check_os << msg;                                \
      ::cdmm::CheckFailure(#cond, __FILE__, __LINE__,      \
                           cdmm_check_os.str());           \
    }                                                      \
  } while (false)

#define CDMM_UNREACHABLE(msg) \
  ::cdmm::CheckFailure("unreachable", __FILE__, __LINE__, msg)

#endif  // CDMM_SRC_SUPPORT_CHECK_H_
