// Address map: assigns every declared array a page-aligned region of the
// process's virtual space (column-major element layout) and translates
// element coordinates to page numbers.
#ifndef CDMM_SRC_INTERP_ADDRESS_MAP_H_
#define CDMM_SRC_INTERP_ADDRESS_MAP_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/analysis/geometry.h"
#include "src/lang/ast.h"
#include "src/trace/trace.h"

namespace cdmm {

class AddressMap {
 public:
  struct ArrayInfo {
    const ArrayDecl* decl = nullptr;
    PageId first_page = 0;
    int64_t pages = 0;  // AVS
  };

  AddressMap(const Program& program, const PageGeometry& geometry);

  // Total virtual size of the program in pages (sum of page-aligned AVSs).
  uint32_t total_pages() const { return total_pages_; }
  const PageGeometry& geometry() const { return geometry_; }

  const ArrayInfo& info(const std::string& array) const;

  // Page containing element (i, j) of `array`, 1-based FORTRAN coordinates
  // (j must be 1 for vectors). CHECK-fails on out-of-bounds subscripts.
  PageId PageOf(const std::string& array, int64_t i, int64_t j) const;

 private:
  PageGeometry geometry_;
  std::map<std::string, ArrayInfo> arrays_;
  uint32_t total_pages_ = 0;
};

}  // namespace cdmm

#endif  // CDMM_SRC_INTERP_ADDRESS_MAP_H_
