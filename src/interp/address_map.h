// Address map: assigns every declared array a page-aligned region of the
// process's virtual space (column-major element layout) and translates
// element coordinates to page numbers.
#ifndef CDMM_SRC_INTERP_ADDRESS_MAP_H_
#define CDMM_SRC_INTERP_ADDRESS_MAP_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/analysis/geometry.h"
#include "src/lang/ast.h"
#include "src/trace/trace.h"

namespace cdmm {

class AddressMap {
 public:
  struct ArrayInfo {
    const ArrayDecl* decl = nullptr;
    PageId first_page = 0;
    int64_t pages = 0;  // AVS
  };

  AddressMap(const Program& program, const PageGeometry& geometry);

  // Total virtual size of the program in pages (sum of page-aligned AVSs).
  uint32_t total_pages() const { return total_pages_; }
  const PageGeometry& geometry() const { return geometry_; }

  const ArrayInfo& info(const std::string& array) const;

  // Page containing element (i, j) of `array`, 1-based FORTRAN coordinates
  // (j must be 1 for vectors). CHECK-fails on out-of-bounds subscripts.
  PageId PageOf(const std::string& array, int64_t i, int64_t j) const;

 private:
  PageGeometry geometry_;
  int64_t elements_per_page_ = 1;
  std::map<std::string, ArrayInfo> arrays_;
  uint32_t total_pages_ = 0;
  // One-entry lookup cache: subscript evaluation resolves the same array
  // name millions of times in a row, so a single string compare replaces a
  // map descent on the fast path. Content-compared (not address-compared) so
  // caller-local strings can never alias a stale entry.
  mutable const ArrayInfo* last_info_ = nullptr;
};

}  // namespace cdmm

#endif  // CDMM_SRC_INTERP_ADDRESS_MAP_H_
