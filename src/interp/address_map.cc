#include "src/interp/address_map.h"

namespace cdmm {

AddressMap::AddressMap(const Program& program, const PageGeometry& geometry)
    : geometry_(geometry), elements_per_page_(geometry.ElementsPerPage()) {
  PageId next_page = 0;
  for (const ArrayDecl& decl : program.arrays) {
    ArrayInfo info;
    info.decl = &decl;
    info.first_page = next_page;
    info.pages = ArrayVirtualSize(decl, geometry);
    next_page += static_cast<PageId>(info.pages);
    arrays_.emplace(decl.name, info);
  }
  total_pages_ = next_page;
}

const AddressMap::ArrayInfo& AddressMap::info(const std::string& array) const {
  if (last_info_ != nullptr && last_info_->decl->name == array) {
    return *last_info_;
  }
  auto it = arrays_.find(array);
  CDMM_CHECK_MSG(it != arrays_.end(), "unknown array " << array);
  last_info_ = &it->second;
  return it->second;
}

PageId AddressMap::PageOf(const std::string& array, int64_t i, int64_t j) const {
  const ArrayInfo& a = info(array);
  CDMM_CHECK_MSG(i >= 1 && i <= a.decl->rows,
                 array << " row subscript " << i << " out of 1.." << a.decl->rows);
  CDMM_CHECK_MSG(j >= 1 && j <= a.decl->cols,
                 array << " column subscript " << j << " out of 1.." << a.decl->cols);
  int64_t linear = (j - 1) * a.decl->rows + (i - 1);  // column-major
  int64_t page = linear / elements_per_page_;
  return a.first_page + static_cast<PageId>(page);
}

}  // namespace cdmm
