#include "src/interp/rle_generator.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/interp/address_map.h"
#include "src/support/check.h"

namespace cdmm {
namespace {

// Accumulated over one loop's subtree to decide fold eligibility.
struct SubtreeUsage {
  bool has_indirect = false;
  bool has_integer_store = false;
  std::set<std::string> index_vars;  // variables used in subscripts
  std::set<std::string> bound_vars;  // variables used in nested DO bounds
  std::set<std::string> cond_vars;   // scalars read by IF conditions
};

void CollectExprScalars(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return;
    case Expr::Kind::kScalar:
      out.insert(expr.scalar);
      return;
    case Expr::Kind::kArrayElement:
      return;  // S010: IF conditions are array-free
    case Expr::Kind::kNegate:
      CollectExprScalars(*expr.lhs, out);
      return;
    case Expr::Kind::kBinary:
    case Expr::Kind::kCompare:
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      CollectExprScalars(*expr.lhs, out);
      CollectExprScalars(*expr.rhs, out);
      return;
  }
}

void CollectStmt(const Program& program, const Stmt& stmt, SubtreeUsage& usage) {
  for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
    for (const IndexExpr& ix : ref->indices) {
      if (ix.IsIndirect()) {
        usage.has_indirect = true;
      } else if (!ix.var.empty()) {
        usage.index_vars.insert(ix.var);
      }
    }
  }
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
      if (stmt.lhs_array.has_value()) {
        const ArrayDecl* decl = program.FindArray(stmt.lhs_array->name);
        if (decl != nullptr && decl->is_integer) {
          usage.has_integer_store = true;
        }
      }
      return;
    case Stmt::Kind::kIf:
      CollectExprScalars(*stmt.if_cond, usage.cond_vars);
      CollectStmt(program, *stmt.if_then, usage);
      return;
    case Stmt::Kind::kDoLoop:
      if (stmt.lower.kind == LoopBound::Kind::kVariable) {
        usage.bound_vars.insert(stmt.lower.spelling);
      }
      if (stmt.upper.kind == LoopBound::Kind::kVariable) {
        usage.bound_vars.insert(stmt.upper.spelling);
      }
      for (const StmtPtr& s : stmt.body) {
        CollectStmt(program, *s, usage);
      }
      return;
    case Stmt::Kind::kCall:
      return;  // inlined before execution; never reached
  }
}

// Statically decides, for every loop, whether its iterations are guaranteed
// to emit identical reference sequences (so the loop may fold).
std::set<uint32_t> FoldableLoops(const Program& program, RleBuildStats& stats) {
  std::set<uint32_t> foldable;
  program.ForEachStmt([&](const Stmt& stmt) {
    if (stmt.kind != Stmt::Kind::kDoLoop) {
      return;
    }
    SubtreeUsage usage;
    for (const StmtPtr& s : stmt.body) {
      CollectStmt(program, *s, usage);
    }
    bool ok = !usage.has_indirect && !usage.has_integer_store &&
              usage.index_vars.count(stmt.loop_var) == 0 &&
              usage.bound_vars.count(stmt.loop_var) == 0 &&
              usage.cond_vars.count(stmt.loop_var) == 0;
    if (ok) {
      foldable.insert(stmt.loop_id);
      ++stats.foldable_loops;
    } else {
      ++stats.unfoldable_loops;
    }
  });
  return foldable;
}

// Mirrors interp/interpreter.cc statement for statement (minus directives,
// loop markers and lock bookkeeping, none of which emit references), so the
// built RLE trace expands to exactly GenerateTrace's reference string.
class RleInterpreter {
 public:
  RleInterpreter(const Program& program, const InterpOptions& options)
      : program_(program),
        options_(options),
        address_map_(program, options.geometry),
        builder_(program.name, address_map_.total_pages()) {
    foldable_ = FoldableLoops(program, stats_);
    stats_.affine = IsAffineProgram(program);
  }

  LoopRleTrace Run() {
    for (const StmtPtr& s : program_.body) {
      Execute(*s);
    }
    return builder_.Finish(stats_);
  }

 private:
  int64_t EnvLookup(const std::string& var) const {
    auto it = env_.find(var);
    CDMM_CHECK_MSG(it != env_.end(), "unbound loop variable " << var);
    return it->second;
  }

  int64_t EvalIndex(const IndexExpr& ix) {
    if (ix.IsIndirect()) {
      return ReadIntElement(*ix.indirect) + ix.offset;
    }
    return ix.IsConstant() ? ix.offset : EnvLookup(ix.var) + ix.offset;
  }

  int64_t EvalBound(const LoopBound& bound) const {
    return bound.kind == LoopBound::Kind::kVariable ? EnvLookup(bound.spelling) : bound.value;
  }

  void EmitRefAt(const ArrayRef& ref, int64_t i, int64_t j) {
    PageId page = address_map_.PageOf(ref.name, i, j);
    CDMM_CHECK_MSG(builder_.stored_pages() < options_.max_references,
                   "compressed-trace cap exceeded; runaway workload?");
    builder_.Ref(page);
  }

  void EmitRef(const ArrayRef& ref) {
    int64_t i = EvalIndex(ref.indices[0]);
    int64_t j = ref.indices.size() == 2 ? EvalIndex(ref.indices[1]) : 1;
    EmitRefAt(ref, i, j);
  }

  bool IsIntegerArray(const std::string& name) const {
    const ArrayDecl* decl = program_.FindArray(name);
    return decl != nullptr && decl->is_integer;
  }

  int64_t& IntStorage(const std::string& name, int64_t i, int64_t j) {
    const ArrayDecl* decl = program_.FindArray(name);
    CDMM_CHECK_MSG(decl != nullptr && decl->is_integer,
                   name << " is not a declared INTEGER array");
    std::vector<int64_t>& cells = state_.int_arrays[name];
    if (cells.empty()) {
      cells.assign(static_cast<size_t>(decl->rows * std::max<int64_t>(decl->cols, 1)), 0);
    }
    CDMM_CHECK_MSG(i >= 1 && i <= decl->rows && j >= 1 && j <= std::max<int64_t>(decl->cols, 1),
                   name << "(" << i << "," << j << ") outside declared bounds");
    return cells[static_cast<size_t>((i - 1) + (j - 1) * decl->rows)];
  }

  int64_t ReadIntElement(const ArrayRef& ref) {
    int64_t i = EvalIndex(ref.indices[0]);
    int64_t j = ref.indices.size() == 2 ? EvalIndex(ref.indices[1]) : 1;
    EmitRefAt(ref, i, j);
    return IntStorage(ref.name, i, j);
  }

  int64_t EvalInt(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber: {
        int64_t v = static_cast<int64_t>(expr.number);
        CDMM_CHECK_MSG(static_cast<double>(v) == expr.number,
                       "non-integral literal " << expr.number << " in integer context");
        return v;
      }
      case Expr::Kind::kScalar: {
        auto it = program_.parameters.find(expr.scalar);
        return it != program_.parameters.end() ? it->second : EnvLookup(expr.scalar);
      }
      case Expr::Kind::kArrayElement:
        return ReadIntElement(expr.array);
      case Expr::Kind::kNegate:
        return -EvalInt(*expr.lhs);
      case Expr::Kind::kBinary: {
        int64_t a = EvalInt(*expr.lhs);
        int64_t b = EvalInt(*expr.rhs);
        switch (expr.op) {
          case '+':
            return a + b;
          case '-':
            return a - b;
          case '*':
            return a * b;
          case '/':
            CDMM_CHECK_MSG(b != 0, "integer division by zero");
            return a / b;
          case '%':
            CDMM_CHECK_MSG(b != 0, "MOD by zero");
            return a % b;
        }
        CDMM_UNREACHABLE("unknown binary operator");
      }
      case Expr::Kind::kCompare: {
        int64_t a = EvalInt(*expr.lhs);
        int64_t b = EvalInt(*expr.rhs);
        switch (expr.rel) {
          case RelOp::kGt:
            return a > b;
          case RelOp::kGe:
            return a >= b;
          case RelOp::kLt:
            return a < b;
          case RelOp::kLe:
            return a <= b;
          case RelOp::kEq:
            return a == b;
          case RelOp::kNe:
            return a != b;
        }
        CDMM_UNREACHABLE("unknown relational operator");
      }
      case Expr::Kind::kAnd:
        return (EvalInt(*expr.lhs) != 0 && EvalInt(*expr.rhs) != 0) ? 1 : 0;
      case Expr::Kind::kOr:
        return (EvalInt(*expr.lhs) != 0 || EvalInt(*expr.rhs) != 0) ? 1 : 0;
    }
    CDMM_UNREACHABLE("unknown expression kind");
  }

  void EvalExprRefs(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber:
      case Expr::Kind::kScalar:
        return;
      case Expr::Kind::kArrayElement:
        EmitRef(expr.array);
        return;
      case Expr::Kind::kNegate:
        EvalExprRefs(*expr.lhs);
        return;
      case Expr::Kind::kBinary:
      case Expr::Kind::kCompare:
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        EvalExprRefs(*expr.lhs);
        EvalExprRefs(*expr.rhs);
        return;
    }
  }

  void Execute(const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kIf) {
      if (EvalInt(*stmt.if_cond) != 0) {
        Execute(*stmt.if_then);
      }
      return;
    }
    if (stmt.kind == Stmt::Kind::kAssign) {
      if (stmt.lhs_array.has_value() && IsIntegerArray(stmt.lhs_array->name)) {
        int64_t v = EvalInt(*stmt.rhs);
        int64_t i = EvalIndex(stmt.lhs_array->indices[0]);
        int64_t j = stmt.lhs_array->indices.size() == 2 ? EvalIndex(stmt.lhs_array->indices[1]) : 1;
        EmitRefAt(*stmt.lhs_array, i, j);
        IntStorage(stmt.lhs_array->name, i, j) = v;
        return;
      }
      EvalExprRefs(*stmt.rhs);
      if (stmt.lhs_array.has_value()) {
        EmitRef(*stmt.lhs_array);
      }
      return;
    }
    ExecuteLoop(stmt);
  }

  void ExecuteBody(const Stmt& loop) {
    for (const StmtPtr& s : loop.body) {
      Execute(*s);
    }
  }

  void ExecuteLoop(const Stmt& loop) {
    int64_t lo = EvalBound(loop.lower);
    int64_t hi = EvalBound(loop.upper);
    int64_t step = loop.step;
    auto continues = [&](int64_t v) { return step > 0 ? v <= hi : v >= hi; };

    uint64_t trip = 0;
    if (step > 0 && lo <= hi) {
      trip = static_cast<uint64_t>((hi - lo) / step) + 1;
    } else if (step < 0 && lo >= hi) {
      trip = static_cast<uint64_t>((lo - hi) / (-step)) + 1;
    }

    if (foldable_.count(loop.loop_id) != 0 && trip >= 2) {
      builder_.OpenScope();
      env_[loop.loop_var] = lo;
      ExecuteBody(loop);
      builder_.OpenScope();
      env_[loop.loop_var] = lo + step;
      ExecuteBody(loop);
      builder_.SealTop();
      if (builder_.TopTwoScopesEqual()) {
        builder_.DiscardScope();
        builder_.CloseScopeRepeat(trip);
        ++stats_.folds_applied;
        env_.erase(loop.loop_var);
        return;
      }
      // The static analysis promised identical iterations but the emitted
      // sequences differ (defensive path; not reachable for any construct
      // the checker accepts). Keep both iterations and run out the rest.
      builder_.CloseScopeRepeat(1);  // iteration 2 splices into iteration 1's scope
      for (int64_t v = lo + 2 * step; continues(v); v += step) {
        env_[loop.loop_var] = v;
        ExecuteBody(loop);
      }
      builder_.CloseScopeRepeat(1);
      env_.erase(loop.loop_var);
      return;
    }

    for (int64_t v = lo; continues(v); v += step) {
      env_[loop.loop_var] = v;
      ExecuteBody(loop);
    }
    env_.erase(loop.loop_var);
  }

  const Program& program_;
  InterpOptions options_;
  AddressMap address_map_;
  LoopRleBuilder builder_;
  RleBuildStats stats_;
  std::set<uint32_t> foldable_;
  InterpState state_;
  std::map<std::string, int64_t> env_;
};

}  // namespace

bool IsAffineProgram(const Program& program) {
  bool affine = true;
  program.ForEachStmt([&](const Stmt& stmt) {
    for (const ArrayRef* ref : stmt.DirectArrayRefs()) {
      if (ref->HasIndirect()) {
        affine = false;
      }
    }
  });
  return affine;
}

LoopRleTrace GenerateLoopRle(const Program& program, const InterpOptions& options) {
  return RleInterpreter(program, options).Run();
}

}  // namespace cdmm
