// Loop-RLE trace generation: executes a checked program exactly like
// GenerateTrace but emits into a LoopRleBuilder, folding every DO loop whose
// iterations provably produce the same reference sequence into a single
// repeat-counted block. The result expands byte-for-byte to
// GenerateTrace(program, tree, /*plan=*/nullptr) while typically storing
// O(program size) pages instead of O(R) events — the representation the
// analytic sweep engines consume and the chunked fallback streams from.
//
// Fold eligibility is decided statically per loop: the loop body must be
// free of indirect subscripts and INTEGER-array stores, and the loop
// variable must not appear in any subscript, nested loop bound, or IF
// condition of the body. (Scalar assignments are harmless — the interpreter
// discards their values.) Eligible loops are folded at run time whenever
// the trip count is at least 2, after a structural equality check of the
// first two iterations; a check failure demotes the loop to plain
// iteration, so generation is always exact.
#ifndef CDMM_SRC_INTERP_RLE_GENERATOR_H_
#define CDMM_SRC_INTERP_RLE_GENERATOR_H_

#include "src/interp/interpreter.h"
#include "src/lang/ast.h"
#include "src/trace/loop_rle.h"

namespace cdmm {

// True when no array reference in the program uses an indirect subscript:
// the reference string is then a pure function of the loop structure, and
// the analytic engines answer sweeps in time independent of trace length.
bool IsAffineProgram(const Program& program);

// Generates the folded reference string of `program`. Directives and loop
// markers are never emitted (sweeps consume reference-only traces); the
// options' max_references cap bounds the *stored* (compressed) page count,
// so folded programs may legally expand to far more references than a flat
// Trace could hold.
LoopRleTrace GenerateLoopRle(const Program& program, const InterpOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_INTERP_RLE_GENERATOR_H_
