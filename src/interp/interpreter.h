// Tree-walking interpreter that executes a checked program and emits its
// array-reference trace, optionally with the memory directives of a
// DirectivePlan resolved to concrete page numbers. This is the project's
// stand-in for the paper's trace generator (§5: "Traces of array references
// were generated for 9 numerical programs written in FORTRAN").
#ifndef CDMM_SRC_INTERP_INTERPRETER_H_
#define CDMM_SRC_INTERP_INTERPRETER_H_

#include <cstdint>

#include "src/analysis/loop_tree.h"
#include "src/directives/plan.h"
#include "src/interp/address_map.h"
#include "src/trace/trace.h"

namespace cdmm {

struct InterpOptions {
  PageGeometry geometry;
  // Emit kLoopEnter/kLoopExit markers (useful for debugging and tests).
  bool emit_loop_markers = false;
  // Hard cap on emitted references; exceeding it is a programming error in
  // the workload (runaway loop), reported via CDMM_CHECK.
  uint64_t max_references = 500'000'000;
};

// Generates the reference trace of `program`. When `plan` is non-null its
// ALLOCATE/LOCK/UNLOCK directives are emitted inline:
//  - ALLOCATE fires every time control reaches a loop head;
//  - LOCK fires per host-loop iteration before the nested loop, listing the
//    pages the current iteration's preceding statements touched for the
//    planned arrays; pages locked by the same site in an earlier iteration
//    and no longer covered are released by an emitted UNLOCK first;
//  - the trailing UNLOCK releases every page still locked for the nest.
// Scalars, constants and instruction fetches produce no events (§2: assumed
// permanently resident).
Trace GenerateTrace(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
                    const InterpOptions& options = {});

}  // namespace cdmm

#endif  // CDMM_SRC_INTERP_INTERPRETER_H_
