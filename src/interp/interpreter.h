// Tree-walking interpreter that executes a checked program and emits its
// array-reference trace, optionally with the memory directives of a
// DirectivePlan resolved to concrete page numbers. This is the project's
// stand-in for the paper's trace generator (§5: "Traces of array references
// were generated for 9 numerical programs written in FORTRAN").
#ifndef CDMM_SRC_INTERP_INTERPRETER_H_
#define CDMM_SRC_INTERP_INTERPRETER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/loop_tree.h"
#include "src/directives/plan.h"
#include "src/interp/address_map.h"
#include "src/trace/trace.h"

namespace cdmm {

struct InterpOptions {
  PageGeometry geometry;
  // Emit kLoopEnter/kLoopExit markers (useful for debugging and tests).
  bool emit_loop_markers = false;
  // Hard cap on emitted references; exceeding it is a programming error in
  // the workload (runaway loop), reported via CDMM_CHECK.
  uint64_t max_references = 500'000'000;
};

// Generates the reference trace of `program`. When `plan` is non-null its
// ALLOCATE/LOCK/UNLOCK directives are emitted inline:
//  - ALLOCATE fires every time control reaches a loop head;
//  - LOCK fires per host-loop iteration before the nested loop, listing the
//    pages the current iteration's preceding statements touched for the
//    planned arrays; pages locked by the same site in an earlier iteration
//    and no longer covered are released by an emitted UNLOCK first;
//  - the trailing UNLOCK releases every page still locked for the nest.
// Scalars, constants and instruction fetches produce no events (§2: assumed
// permanently resident).
Trace GenerateTrace(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
                    const InterpOptions& options = {});

// Cross-statement interpreter state: the simulated element values of INTEGER
// arrays (indirect-subscript bases). Real arrays carry no runtime values —
// the trace generator only needs page numbers — but resolving an indirect
// subscript A(IDX(I)) requires IDX's actual contents, so INTEGER-array
// assignments are executed for value as well as for their page references.
struct InterpState {
  // Keyed by array name; column-major flat element storage, zero-initialized.
  std::map<std::string, std::vector<int64_t>> int_arrays;
};

// Executes only the top-level statements in [stmt_begin, stmt_end) of the
// program body, reading and updating `state` (which carries INTEGER-array
// contents across slices). Generating consecutive slices over the whole body
// with one shared state and concatenating them with Trace::Append reproduces
// GenerateTrace byte-for-byte — the contract the parallel-nests driver
// relies on.
Trace GenerateTraceSlice(const Program& program, const LoopTree& tree, const DirectivePlan* plan,
                         const InterpOptions& options, size_t stmt_begin, size_t stmt_end,
                         InterpState* state);

}  // namespace cdmm

#endif  // CDMM_SRC_INTERP_INTERPRETER_H_
